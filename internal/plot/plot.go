// Package plot renders experiment figures as standalone SVG line charts,
// so the regenerated paper figures can be eyeballed against the originals
// without external tooling. The renderer is deliberately small: axes with
// tick labels, one polyline per series, a legend, nothing else.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/stats"
)

// Options controls the rendering. Zero values take sensible defaults.
type Options struct {
	Width  int // default 720
	Height int // default 480
}

// Default series colors (colorblind-safe-ish hues).
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginLeft   = 80.0
	marginRight  = 24.0
	marginTop    = 48.0
	marginBottom = 56.0
	legendRow    = 18.0
)

// WriteSVG renders the figure as an SVG document.
func WriteSVG(w io.Writer, fig *experiment.Figure, opts Options) error {
	if opts.Width <= 0 {
		opts.Width = 720
	}
	if opts.Height <= 0 {
		opts.Height = 480
	}
	var b strings.Builder
	width, height := float64(opts.Width), float64(opts.Height)
	legendH := legendRow * float64(len(fig.Series))
	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom - legendH

	xMin, xMax, yMin, yMax, ok := bounds(fig.Series)
	if !ok {
		return fmt.Errorf("plot: figure %q has no data", fig.ID)
	}
	// Pad the y range and anchor near zero when the data allows it.
	if yMin > 0 && yMin < yMax*0.5 {
		yMin = 0
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	yMax += (yMax - yMin) * 0.05

	sx := func(x float64) float64 { return marginLeft + (x-xMin)/(xMax-xMin)*plotW }
	sy := func(y float64) float64 { return marginTop + plotH - (y-yMin)/(yMax-yMin)*plotH }

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	fmt.Fprintf(&b, `<text x="%g" y="24" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(fig.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xMin + (xMax-xMin)*float64(i)/4
		px := sx(fx)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px, marginTop+plotH, px, marginTop+plotH+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
			px, marginTop+plotH+20, tick(fx))
		fy := yMin + (yMax-yMin)*float64(i)/4
		py := sy(fy)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			marginLeft-5, py, marginLeft, py)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n",
			marginLeft-8, py+4, tick(fy))
		// Light horizontal grid.
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, py, marginLeft+plotW, py)
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, marginTop+plotH+40, escape(fig.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(fig.YLabel))

	// Series.
	for si, s := range fig.Series {
		color := palette[si%len(palette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", sx(p.X), sy(p.Y), color)
		}
		// Legend row.
		ly := marginTop + plotH + 48 + legendRow*float64(si) + 8
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1.8"/>`+"\n",
			marginLeft, ly-4, marginLeft+24, ly-4, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", marginLeft+30, ly, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func bounds(series []stats.Series) (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
			yMin, yMax = math.Min(yMin, p.Y), math.Max(yMax, p.Y)
			ok = true
		}
	}
	return xMin, xMax, yMin, yMax, ok
}

// tick formats an axis value compactly (500000 -> 500k).
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return trimZero(fmt.Sprintf("%.1fM", v/1e6))
	case av >= 1e3:
		return trimZero(fmt.Sprintf("%.0fk", v/1e3))
	case av == 0:
		return "0"
	case av < 1:
		return fmt.Sprintf("%.2g", v)
	default:
		return trimZero(fmt.Sprintf("%.1f", v))
	}
}

func trimZero(s string) string {
	s = strings.Replace(s, ".0M", "M", 1)
	s = strings.Replace(s, ".0k", "k", 1)
	return strings.TrimSuffix(s, ".0")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
