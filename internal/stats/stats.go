// Package stats provides the small descriptive-statistics toolkit the
// experiment harness uses to aggregate sweep results into the series and
// tables the paper reports.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is one (x, y) sample of a sweep series.
type Point struct {
	X float64
	Y float64
}

// Series is a named, ordered collection of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// SortByX orders the samples by x.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Monotone reports whether the y values are non-decreasing (dir > 0) or
// non-increasing (dir < 0) within a relative tolerance tol.
func (s *Series) Monotone(dir int, tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1].Y, s.Points[i].Y
		slack := tol * math.Max(math.Abs(prev), math.Abs(cur))
		if dir > 0 && cur < prev-slack {
			return false
		}
		if dir < 0 && cur > prev+slack {
			return false
		}
	}
	return true
}

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Sum  float64
	Std  float64
}

// Summarize computes the summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g std=%.4g", s.N, s.Mean, s.Min, s.Max, s.Std)
}

// Percent returns 100·a/b, or 0 when b is 0.
func Percent(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
