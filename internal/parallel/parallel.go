// Package parallel provides the bounded worker pool shared by the
// scheduling core. The paper's two-phase heuristic is embarrassingly
// parallel at two points — phase-1 individual file scheduling (every file
// is planned against an unbounded-storage assumption, §3.2) and phase-2
// per-candidate victim evaluation (every candidate reschedule works on its
// own ledger clone, §4.4) — and the pool is how both fan that work across
// cores without giving up determinism: callers dispatch work by index and
// merge results in index order, so the outcome is byte-identical to a
// sequential run regardless of worker count or completion order.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: values <= 0 mean GOMAXPROCS,
// and the count never exceeds the number of jobs n (never below 1).
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Do runs fn(i) for every i in [0, n) across a pool of bounded size
// (see Workers for how the count is normalized). Dispatch stops as soon as
// ctx is cancelled — jobs already started run to completion, un-dispatched
// indices are never invoked — and the cancellation is reported as ctx.Err().
// fn must handle its own synchronization for any state shared between
// indices; writing only to the i-th slot of a pre-sized results slice needs
// none.
func Do(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return nil // no work: not even a cancellation check, like a 0-iteration loop
	}
	workers = Workers(workers, n)

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	aborted := false
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			aborted = true
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if aborted {
		return ctx.Err()
	}
	return nil
}
