// Benchmarks regenerating each figure and table of the paper's evaluation
// (§5) plus microbenchmarks of the scheduling pipeline's stages and
// ablations of its design choices. The figure benches run a reduced sweep
// per iteration so `go test -bench=.` stays minutes-scale; the full paper-
// scale regeneration is `cmd/vspexp`.
package vsp_test

import (
	"math/rand"
	"testing"

	vsp "github.com/vodsim/vsp"
	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/optimal"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/workload"
)

// benchBase is the reduced-scale configuration the figure benches sweep.
func benchBase() experiment.Params {
	return experiment.Params{Storages: 9, UsersPerStorage: 6, Titles: 60, Seed: 5}
}

// BenchmarkFig5 regenerates Figure 5 (network charging rate sweep under
// several storage rates, with the no-storage baseline) per iteration.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig5(benchBase(), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		reportGap(b, fig)
	}
}

// BenchmarkFig6 regenerates Figure 6 (network rate sweep under several
// access patterns).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig6(benchBase(), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates Figure 7 (storage rate sweep against the
// network-only system).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig7(benchBase(), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		reportGap(b, fig)
	}
}

// BenchmarkFig8 regenerates Figure 8 (storage rate sweep under several
// network rates).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig8(benchBase(), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (access-pattern sweep under several
// storage sizes).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9(benchBase(), 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 runs a reduced heat-metric cross product (2×2×2×2 instead
// of 6×4×8×4) per iteration, exercising phase 1 plus all four resolution
// metrics per configuration.
func BenchmarkTable5(b *testing.B) {
	cfg := experiment.Table5Config{
		Base:       benchBase(),
		SRates:     []float64{3, 6},
		Capacities: []float64{4, 8},
		NRates:     []float64{300, 700},
		Alphas:     []float64{0.1, 0.5},
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTable5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CostAffected), "affected")
		b.ReportMetric(res.Best2or4Pct(), "best2or4_%")
	}
}

// reportGap records the savings of the scheduler versus the baseline
// (last-series) on the final sweep point, the figure's headline quantity.
func reportGap(b *testing.B, fig *experiment.Figure) {
	n := len(fig.Series)
	if n < 2 {
		return
	}
	sched := fig.Series[0].Points
	base := fig.Series[n-1].Points
	last := len(sched) - 1
	if last >= 0 && base[last].Y > 0 {
		b.ReportMetric(100*(base[last].Y-sched[last].Y)/base[last].Y, "savings_%")
	}
}

// ---- pipeline stage microbenchmarks ----

func buildRig(b *testing.B, p experiment.Params) *experiment.Rig {
	b.Helper()
	r, err := experiment.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkPhase1 measures individual video scheduling (greedy, capacity
// blind) over the full reduced workload.
func BenchmarkPhase1(b *testing.B) {
	r := buildRig(b, benchBase())
	parts := r.Requests.ByVideo()
	vids := r.Requests.Videos()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vid := range vids {
			if _, err := ivs.ScheduleFile(r.Model, vid, parts[vid], ivs.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTwoPhase measures the full scheduler (phase 1 + overflow
// resolution + validation).
func BenchmarkTwoPhase(b *testing.B) {
	r := buildRig(b, benchBase())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSORP isolates the overflow-resolution phase: phase 1 runs once
// outside the loop, resolution runs per iteration.
func BenchmarkSORP(b *testing.B) {
	p := benchBase()
	p.CapacityGB = 4 // force overflows
	r := buildRig(b, p)
	raw, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{SkipResolution: true})
	if err != nil {
		b.Fatal(err)
	}
	if raw.Overflows == 0 {
		b.Skip("rig did not overflow")
	}
	parts := r.Requests.ByVideo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sorp.Resolve(r.Model, raw.Schedule, parts, sorp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeatMetrics compares resolution run time and outcome across the
// four victim-selection metrics.
func BenchmarkHeatMetrics(b *testing.B) {
	p := benchBase()
	p.CapacityGB = 4
	r := buildRig(b, p)
	raw, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{SkipResolution: true})
	if err != nil {
		b.Fatal(err)
	}
	parts := r.Requests.ByVideo()
	for _, m := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		b.Run(m.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := sorp.Resolve(r.Model, raw.Schedule, parts, sorp.Options{Metric: m})
				if err != nil {
					b.Fatal(err)
				}
				last = float64(res.CostAfter)
			}
			b.ReportMetric(last, "final_cost")
		})
	}
}

// BenchmarkCachePolicyAblation compares the caching policies (the paper's
// en-route copying vs destination-only vs none) on final schedule cost.
func BenchmarkCachePolicyAblation(b *testing.B) {
	r := buildRig(b, benchBase())
	for _, pol := range []ivs.Policy{ivs.CacheOnRoute, ivs.CacheAtDestination, ivs.NoCaching} {
		b.Run(pol.String(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				last = float64(out.FinalCost)
			}
			b.ReportMetric(last, "final_cost")
		})
	}
}

// BenchmarkRoutingTable measures all-pairs cheapest-route construction on
// the paper's 20-node topology.
func BenchmarkRoutingTable(b *testing.B) {
	topo := topology.Paper(5 * units.GB)
	book := pricing.Uniform(topo, 0, pricing.PerGB(500))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = routing.NewTable(book)
	}
}

// BenchmarkOverflowDetection measures exact overflow-interval detection
// over an integrated paper-scale schedule.
func BenchmarkOverflowDetection(b *testing.B) {
	p := experiment.Params{Seed: 1997}
	r := buildRig(b, p)
	raw, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{SkipResolution: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ledger := occupancy.FromSchedule(r.Topo, r.Catalog, raw.Schedule)
		_ = ledger.AllOverflows()
	}
}

// BenchmarkSimulator measures event-driven execution of a paper-scale
// schedule (190 streams plus cache machinery).
func BenchmarkSimulator(b *testing.B) {
	p := experiment.Params{Seed: 1997}
	r := buildRig(b, p)
	out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := vodsim.Execute(r.Book, r.Catalog, out.Schedule)
		if !rep.OK() {
			b.Fatal("violations")
		}
	}
}

// BenchmarkPaperScaleRun measures one full paper-scale scheduling run
// (19 storages, 190 users, 500 titles) end to end.
func BenchmarkPaperScaleRun(b *testing.B) {
	r := buildRig(b, experiment.Params{Seed: 1997})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(out.FinalCost), "final_cost")
		}
	}
}

// BenchmarkWorkloadGeneration measures Zipf request-batch generation at
// paper scale.
func BenchmarkWorkloadGeneration(b *testing.B) {
	topo := topology.Paper(5 * units.GB)
	cat := mustCatalog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vsp.GenerateWorkload(topo, cat, vsp.WorkloadConfig{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func mustCatalog(b *testing.B) *vsp.Catalog {
	b.Helper()
	cat, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

// BenchmarkOnlineVsOffline runs the reservation-foreknowledge ablation
// (offline two-phase vs reactive online LRU) per iteration, reporting the
// cost ratio on the final (least skewed) sweep point.
func BenchmarkOnlineVsOffline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.FigOnline(benchBase(), 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		off := fig.Series[0].Points
		on := fig.Series[1].Points
		last := len(off) - 1
		if off[last].Y > 0 {
			b.ReportMetric(on[last].Y/off[last].Y, "online_over_offline")
		}
	}
}

// BenchmarkOptimalityGap measures the greedy's gap to the exhaustive
// optimum over a fixed family of small instances (paper §5.5 claims the
// heuristic stays within ~30% of optimal on average).
func BenchmarkOptimalityGap(b *testing.B) {
	rig, err := testutil.NewPaperRig(6, 4, 8, 50*units.GB, testutil.PerGBHour(2), testutil.CentsPerMbit(0.1), 9)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	users := rig.Topo.Users()
	instances := make([]workload.Set, 30)
	for k := range instances {
		n := 2 + rng.Intn(4)
		reqs := make(workload.Set, n)
		for i := range reqs {
			reqs[i] = workload.Request{
				User:  users[rng.Intn(len(users))].ID,
				Video: 0,
				Start: simtime.Time(rng.Intn(8 * 3600)),
			}
		}
		instances[k] = reqs
	}
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		total := 0.0
		for _, reqs := range instances {
			gap, err := optimal.Gap(rig.Model, 0, reqs)
			if err != nil {
				b.Fatal(err)
			}
			total += gap
		}
		mean = total / float64(len(instances))
	}
	b.ReportMetric(100*mean, "mean_gap_%")
}

// BenchmarkRefineAblation compares the scheduler with and without the
// post-resolution improvement sweep, reporting each variant's final cost.
func BenchmarkRefineAblation(b *testing.B) {
	p := benchBase()
	p.CapacityGB = 4
	r := buildRig(b, p)
	for _, refine := range []bool{false, true} {
		name := "two-phase"
		if refine {
			name = "two-phase+refine"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{Refine: refine})
				if err != nil {
					b.Fatal(err)
				}
				last = float64(out.FinalCost)
			}
			b.ReportMetric(last, "final_cost")
		})
	}
}

// BenchmarkReplicationAblation compares caching architectures (direct /
// static-only / dynamic / dynamic+static) on final cost at a 25% off-peak
// preload tariff.
func BenchmarkReplicationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.FigReplication(benchBase(), 0.25, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		// Report the α=0.1 point: how much dearer static-only runs.
		dyn := fig.Series[0].Points[0].Y
		static := fig.Series[2].Points[0].Y
		if dyn > 0 {
			b.ReportMetric(static/dyn, "static_over_dynamic")
		}
	}
}

// BenchmarkLargeScaleRun pushes well beyond the paper's testbed: 50
// storages × 20 users (1,000 reservations over 1,000 titles) through the
// full two-phase pipeline, demonstrating headroom over the 1997 scale.
func BenchmarkLargeScaleRun(b *testing.B) {
	r := buildRig(b, experiment.Params{
		Storages:        50,
		UsersPerStorage: 20,
		Titles:          1000,
		Seed:            2026,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(r.Requests)), "requests")
			b.ReportMetric(float64(out.Overflows), "overflows")
		}
	}
}
