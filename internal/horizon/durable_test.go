package horizon_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// durableParams is deliberately tiny: the crash property test below
// recovers and replays the full workload once per journal record.
func durableParams() experiment.Params {
	return experiment.Params{
		Storages:        4,
		UsersPerStorage: 3,
		Titles:          10,
		CapacityGB:      2,
		RequestsPerUser: 2,
		Seed:            7,
	}
}

// walOp is one scripted operation of the crash workload.
type walTestOp struct {
	submit bool
	at     simtime.Time
	req    workload.Request
	to     simtime.Time
}

func applyOp(t *testing.T, svc *horizon.Service, op walTestOp) {
	t.Helper()
	var err error
	if op.submit {
		_, err = svc.Submit(op.at, op.req)
	} else {
		_, err = svc.Advance(context.Background(), op.to)
	}
	if err != nil {
		t.Fatalf("apply %+v: %v", op, err)
	}
}

// script builds the seeded workload: submissions in chronological order,
// with an Advance closing each of the epochs.
func script(r *experiment.Rig, epochs int) []walTestOp {
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	step := simtime.Duration(int64(window) / int64(epochs))

	var ops []walTestOp
	next := 0
	for k := 1; k <= epochs; k++ {
		h := simtime.Time(int64(step) * int64(k))
		for next < len(reqs) && reqs[next].Start < h.Add(step) {
			ops = append(ops, walTestOp{submit: true, at: reqs[next].Start, req: reqs[next]})
			next++
		}
		ops = append(ops, walTestOp{to: h})
	}
	return ops
}

// fingerprint captures everything a recovery must reproduce, as JSON so
// the comparison is byte-exact.
func fingerprint(t *testing.T, svc *horizon.Service) string {
	t.Helper()
	blob, err := json.Marshal(map[string]any{
		"committed": svc.Committed(),
		"epoch":     svc.Epoch(),
		"horizon":   svc.Horizon(),
		"cost":      svc.Cost(),
		"pending":   svc.Pending(),
		"accepted":  svc.Accepted(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestRecoverFreshDir(t *testing.T) {
	r := rig(t, durableParams())
	dir := t.TempDir()
	svc, err := horizon.Recover(dir, r.Model, horizon.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if st := svc.Recovery(); st.Recovered || st.SnapshotLoaded || st.TailTruncated {
		t.Fatalf("fresh dir reports recovery: %+v", st)
	}
	if !svc.Durable() {
		t.Fatal("recovered service not durable")
	}
	if _, err := svc.Submit(0, r.Requests[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Advance(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

// A closed durable service must reopen with byte-identical state, whether
// the state comes from the journal alone or from snapshot + tail replay.
func TestRecoverRestoresState(t *testing.T) {
	for _, snapEvery := range []int{-1, 1} {
		t.Run(fmt.Sprintf("snapshotEvery=%d", snapEvery), func(t *testing.T) {
			r := rig(t, durableParams())
			cfg := horizon.Config{SnapshotEvery: snapEvery, Fsync: wal.FsyncNever}
			dir := t.TempDir()

			svc, err := horizon.Recover(dir, r.Model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ops := script(r, 3)
			for _, op := range ops[:len(ops)-1] { // leave the last advance's intake pending
				applyOp(t, svc, op)
			}
			want := fingerprint(t, svc)
			if err := svc.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := horizon.Recover(dir, r.Model, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := fingerprint(t, re); got != want {
				t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
			}
			st := re.Recovery()
			if !st.Recovered {
				t.Fatalf("recovery stats claim nothing recovered: %+v", st)
			}
			if snapEvery == 1 && !st.SnapshotLoaded {
				t.Fatalf("snapshotting enabled but recovery skipped it: %+v", st)
			}
			if snapEvery == -1 && st.SnapshotLoaded {
				t.Fatalf("snapshots disabled but one was loaded: %+v", st)
			}
		})
	}
}

// The crash/recover property: kill the service at every journal record
// boundary (SIGKILL-equivalent — only the bytes on disk survive), recover
// from the prefix, re-drive the remaining operations, and require the
// final committed state to be byte-identical to the uninterrupted run.
// Cuts inside a record additionally exercise torn-tail repair: the torn
// operation was never acknowledged, so the client-visible contract is
// that re-submitting it converges to the same state.
func TestCrashRecoverEveryRecordBoundary(t *testing.T) {
	r := rig(t, durableParams())
	// Snapshots off so the journal alone carries the history and every
	// prefix is a legal crash image; the snapshot path is crash-tested
	// separately below.
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}

	refDir := t.TempDir()
	svc, err := horizon.Recover(refDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := script(r, 3)
	logPath := filepath.Join(refDir, horizon.LogName)
	boundaries := make([]int64, 0, len(ops)+1)
	stat := func() int64 {
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	boundaries = append(boundaries, stat())
	for _, op := range ops {
		applyOp(t, svc, op)
		boundaries = append(boundaries, stat())
	}
	want := fingerprint(t, svc)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	recoverAt := func(t *testing.T, img []byte, resume int) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, horizon.LogName), img, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := horizon.Recover(dir, r.Model, cfg)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		defer re.Close()
		for _, op := range ops[resume:] {
			applyOp(t, re, op)
		}
		if got := fingerprint(t, re); got != want {
			t.Errorf("resumed state differs from uninterrupted run:\n got %.200s...\nwant %.200s...", got, want)
		}
	}

	for i := 0; i <= len(ops); i++ {
		t.Run(fmt.Sprintf("boundary=%d", i), func(t *testing.T) {
			recoverAt(t, full[:boundaries[i]], i)
		})
	}
	// Torn cuts: a few bytes past a boundary, mid-record. The in-flight
	// operation is lost (never acked) and re-driven.
	for i := 0; i < len(ops); i++ {
		if boundaries[i]+3 >= boundaries[i+1] {
			continue
		}
		t.Run(fmt.Sprintf("torn=%d", i), func(t *testing.T) {
			recoverAt(t, full[:boundaries[i]+3], i)
		})
	}
}

// The same crash property across a snapshot: kill after the snapshot was
// published but before (and after) the journal reset, and with tail
// records following the snapshot.
func TestCrashRecoverAroundSnapshot(t *testing.T) {
	r := rig(t, durableParams())
	cfg := horizon.Config{SnapshotEvery: 1, Fsync: wal.FsyncNever}

	refDir := t.TempDir()
	svc, err := horizon.Recover(refDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := script(r, 3)
	// Stop right after the second advance: a snapshot was just taken.
	cut := 0
	advances := 0
	for i, op := range ops {
		if !op.submit {
			advances++
			if advances == 2 {
				cut = i + 1
				break
			}
		}
	}
	for _, op := range ops[:cut] {
		applyOp(t, svc, op)
	}
	mid := fingerprint(t, svc)
	snap, err := os.ReadFile(filepath.Join(refDir, wal.SnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[cut:] {
		applyOp(t, svc, op)
	}
	want := fingerprint(t, svc)
	svc.Close()
	tailLog, err := os.ReadFile(filepath.Join(refDir, horizon.LogName))
	if err != nil {
		t.Fatal(err)
	}

	// Crash image A: snapshot present, journal already reset (the state
	// as of the snapshot) — recover and re-drive the remainder.
	t.Run("after-reset", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, wal.SnapshotName), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := horizon.Recover(dir, r.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got := fingerprint(t, re); got != mid {
			t.Fatalf("snapshot-only recovery diverged at the cut point")
		}
		for _, op := range ops[cut:] {
			applyOp(t, re, op)
		}
		if got := fingerprint(t, re); got != want {
			t.Fatalf("post-snapshot resume diverged from uninterrupted run")
		}
	})

	// Crash image B: final snapshot plus the tail journal (crash at the
	// end of the run, before any further compaction).
	t.Run("snapshot-plus-tail", func(t *testing.T) {
		finalSnap, err := os.ReadFile(filepath.Join(refDir, wal.SnapshotName))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, wal.SnapshotName), finalSnap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, horizon.LogName), tailLog, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := horizon.Recover(dir, r.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got := fingerprint(t, re); got != want {
			t.Fatalf("snapshot+tail recovery diverged from uninterrupted run")
		}
	})
}

// A checksum-valid snapshot whose state does not audit — here, a schedule
// that serves none of the accepted reservations — must refuse to start.
func TestRecoverRefusesAuditFailure(t *testing.T) {
	r := rig(t, durableParams())
	dir := t.TempDir()
	bogus, err := json.Marshal(map[string]any{
		"horizon":  0,
		"epoch":    1,
		"cost":     0,
		"accepted": []workload.Request{r.Requests[0]},
		"pending":  []workload.Request{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteSnapshot(dir, 1, bogus); err != nil {
		t.Fatal(err)
	}
	if _, err := horizon.Recover(dir, r.Model, horizon.Config{}); err == nil {
		t.Fatal("audit-failing state served")
	} else if !strings.Contains(err.Error(), "audit") {
		t.Fatalf("refusal does not name the audit: %v", err)
	}
}

// Snapshot compaction must actually shrink the journal: after an epoch
// that snapshots, the log holds no pre-snapshot records.
func TestSnapshotCompactsJournal(t *testing.T) {
	r := rig(t, durableParams())
	dir := t.TempDir()
	svc, err := horizon.Recover(dir, r.Model, horizon.Config{SnapshotEvery: 1, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for i := 0; i < 6; i++ {
		if _, err := svc.Submit(0, r.Requests[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Advance(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, horizon.LogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 64 { // magic only; any journaled op would exceed this
		t.Fatalf("journal not compacted after snapshot: %d bytes", fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, wal.SnapshotName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
}

// An uninterrupted durable run must be byte-identical to the in-memory
// service fed the same operations: journaling is an observer, never a
// participant, of the scheduling pipeline.
func TestDurableMatchesInMemory(t *testing.T) {
	r := rig(t, durableParams())
	ops := script(r, 3)

	mem := horizon.New(r.Model, horizon.Config{})
	for _, op := range ops {
		applyOp(t, mem, op)
	}
	dur, err := horizon.Recover(t.TempDir(), r.Model, horizon.Config{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	for _, op := range ops {
		applyOp(t, dur, op)
	}
	if got, want := fingerprint(t, dur), fingerprint(t, mem); got != want {
		t.Fatalf("durable run diverged from in-memory run")
	}
}
