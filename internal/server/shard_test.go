package server

import (
	"net/http"
	"testing"

	"github.com/vodsim/vsp/internal/simtime"
)

// The /v1/stats shard block is the one-request feed a routing gateway's
// load poller reads (see internal/gateway): the -shard-id label, the
// node's leadership role, the committed epoch, and replication lag.
func TestStatsShardBlock(t *testing.T) {
	ts, f := newTestServerWithOptions(t, Options{ShardID: "s9"})

	getStats := func() ShardInfo {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decode[StatsResponse](t, resp).Shard
	}

	sh := getStats()
	if sh.ID != "s9" {
		t.Fatalf("shard id %q, want the configured s9", sh.ID)
	}
	if sh.Role != "primary" {
		t.Fatalf("unreplicated node reports role %q, want primary", sh.Role)
	}
	if sh.Epoch != 0 || sh.ReplicationLag != 0 {
		t.Fatalf("fresh shard block epoch=%d lag=%d, want 0/0", sh.Epoch, sh.ReplicationLag)
	}

	// The block tracks the committed epoch, so a gateway can spot a shard
	// that is falling behind the tier from this one poll.
	q := f.Requests[0]
	postJSON(t, ts.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
	resp := postJSON(t, ts.URL+"/v1/advance", AdvanceRequest{To: simtime.Time(120 * int64(simtime.Minute))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", resp.StatusCode)
	}
	if sh = getStats(); sh.Epoch != 1 {
		t.Fatalf("shard block epoch %d after one advance, want 1", sh.Epoch)
	}
}

// An unlabeled node omits the shard ID rather than inventing one: the
// block is present (role, epoch, lag still matter to a poller) but the
// identity is the operator's to assign.
func TestStatsShardBlockUnlabeled(t *testing.T) {
	ts, _ := newTestServerWithOptions(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sh := decode[StatsResponse](t, resp).Shard
	if sh.ID != "" {
		t.Fatalf("unlabeled node reports shard id %q, want empty", sh.ID)
	}
	if sh.Role != "primary" {
		t.Fatalf("role %q, want primary", sh.Role)
	}
}
