package scheduler

import (
	"context"
	"fmt"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// refineResult reports an improvement-sweep run.
type refineResult struct {
	passes  int
	moved   int // files whose schedule improved
	savings units.Money
}

// refine runs an iterative-improvement sweep over the resolved schedule:
// each file is rescheduled with the capacity-aware greedy against the
// other files' actual disk usage, and the new schedule is kept when it is
// strictly cheaper. Passes repeat until a fixpoint.
//
// This goes beyond the paper's two phases (the paper stops at overflow
// resolution) and addresses the suboptimality it acknowledges: phase-1
// schedules are computed in isolation and in a fixed order, so after
// integration there is often slack — a file rescheduled against the real
// residual capacity can undercut its phase-1 plan. Cost strictly
// decreases every accepted move, so the sweep terminates.
func refine(ctx context.Context, m *cost.Model, s *schedule.Schedule, parts map[media.VideoID][]workload.Request,
	policy ivs.Policy, maxPasses int, seeds map[media.VideoID][]schedule.Residency) (refineResult, error) {

	if maxPasses <= 0 {
		maxPasses = 10
	}
	topo := m.Book().Topology()
	ledger := occupancy.FromSchedule(topo, m.Catalog(), s)
	var res refineResult
	const eps = 1e-9

	for pass := 0; pass < maxPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("scheduler: refine aborted: %w", err)
		}
		improved := false
		for _, vid := range s.VideoIDs() {
			cur := s.Files[vid]
			curCost := m.FileCost(cur)
			tmp := ledger.OverlayWithout(vid)
			cand, err := ivs.ScheduleFile(m, vid, parts[vid], ivs.Options{
				Policy: policy,
				Ledger: tmp,
				Seeds:  seeds[vid],
			})
			if err != nil {
				return res, fmt.Errorf("scheduler: refine video %d: %w", vid, err)
			}
			candCost := m.FileCost(cand)
			if candCost < curCost-eps {
				s.Put(cand)
				ledger = tmp.Flatten()
				res.moved++
				res.savings += curCost - candCost
				improved = true
			}
		}
		if !improved {
			break
		}
		res.passes++
	}
	return res, nil
}
