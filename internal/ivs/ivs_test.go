package ivs

import (
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// TestGreedyBeatsPaperS2 is the paper-pinning test. On the Fig. 2 example
// the paper enumerates S1 (all direct, $259.20) and S2 (cache at IS1,
// $138.975) and picks S2. Our greedy — implementing the paper's own step
// "(2) introduce another intermediate storage" — additionally caches at IS2
// from U2's relay stream and serves U3 locally, giving an even cheaper
// schedule:
//
//	network 64.8 (VW→IS1) + 32.4 (IS1→IS2)  = $97.20
//	storage IS1 Δ=P: 2.5 GB·2.25 h·$1/GB·h  = $5.625
//	storage IS2 Δ=P:                        = $5.625
//	total                                   = $108.45
//
// The test pins that exact value and verifies the structure.
func TestGreedyBeatsPaperS2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ScheduleFile(f.Model, 0, f.Requests, Options{})
	if err != nil {
		t.Fatalf("ScheduleFile: %v", err)
	}
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := f.Model.FileCost(fs)
	if float64(got) > 138.975+1e-6 {
		t.Errorf("greedy cost = %v, must not exceed the paper's S2 $138.975", got)
	}
	if !got.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("greedy cost = %v, want $108.45", got)
	}
	if len(fs.Residencies) != 2 {
		t.Fatalf("residencies = %d, want 2 (IS1 and IS2)", len(fs.Residencies))
	}
	byLoc := map[int]schedule.Residency{}
	for _, c := range fs.Residencies {
		byLoc[int(c.Loc)] = c
	}
	c1, ok1 := byLoc[int(f.IS1)]
	c2, ok2 := byLoc[int(f.IS2)]
	if !ok1 || !ok2 {
		t.Fatalf("expected caches at IS1 and IS2, got %v", fs.Residencies)
	}
	if c1.Load != 0 || c1.LastService != simtime.Time(90*simtime.Minute) {
		t.Errorf("IS1 window [%v, %v]", c1.Load, c1.LastService)
	}
	if c2.Load != simtime.Time(90*simtime.Minute) || c2.LastService != simtime.Time(180*simtime.Minute) {
		t.Errorf("IS2 window [%v, %v]", c2.Load, c2.LastService)
	}
	if len(c1.Services) != 1 || len(c2.Services) != 1 {
		t.Errorf("service lists: %v, %v", c1.Services, c2.Services)
	}
}

func TestDirectBaselineMatchesPaperS1(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Direct(f.Model, 0, f.Requests)
	if err != nil {
		t.Fatalf("Direct: %v", err)
	}
	if len(fs.Residencies) != 0 {
		t.Error("direct schedule must not cache")
	}
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("direct cost = %v, want $259.20 (paper S1)", got)
	}
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGreedyNeverWorseThanDirect(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 5, 40, 10*units.GB, testutil.PerGBHour(1), testutil.CentsPerMbit(0.2), 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.271, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for vid, rs := range reqs.ByVideo() {
		greedy, err := ScheduleFile(rig.Model, vid, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := Direct(rig.Model, vid, rs)
		if err != nil {
			t.Fatal(err)
		}
		g, d := rig.Model.FileCost(greedy), rig.Model.FileCost(direct)
		if float64(g) > float64(d)+1e-6 {
			t.Errorf("video %d: greedy %v > direct %v", vid, g, d)
		}
	}
}

func TestGreedySchedulesAreValid(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 5, 40, 10*units.GB, testutil.PerGBHour(1), testutil.CentsPerMbit(0.2), 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.New()
	for vid, rs := range reqs.ByVideo() {
		fs, err := ScheduleFile(rig.Model, vid, rs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Put(fs)
		// Pruned: every residency serves someone.
		for _, c := range fs.Residencies {
			if len(c.Services) == 0 {
				t.Errorf("video %d: unpruned tentative residency", vid)
			}
		}
	}
	if err := s.Validate(rig.Topo, rig.Catalog, reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSimultaneousCoLocatedRequestsShareStream(t *testing.T) {
	// Two users at the same storage requesting the same title at the same
	// time: the second rides the first's stream at zero extra cost.
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	u23 := f.Topo.UsersAt(f.IS2)
	reqs := workload.Set{
		{User: u23[0], Video: 0, Start: 1000},
		{User: u23[1], Video: 0, Start: 1000},
	}
	fs, err := ScheduleFile(f.Model, 0, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oneStream := f.Model.TransferCost(0, f.VW, f.IS2)
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(oneStream, 1e-6) {
		t.Errorf("cost = %v, want single stream %v", got, oneStream)
	}
}

func TestCacheAtDestinationPolicy(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ScheduleFile(f.Model, 0, f.Requests, Options{Policy: CacheAtDestination})
	if err != nil {
		t.Fatal(err)
	}
	// With destination-only caching, the first stream (to IS1) caches at
	// IS1 and U2's relay (to IS2) caches at IS2, so the $108.45 optimum is
	// still reachable on this topology.
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("cost = %v", got)
	}
	// But a remote chain can no longer cache upstream: U2's stream from
	// IS1 to IS2 caches at IS2 only.
	for _, c := range fs.Residencies {
		feed := fs.Deliveries[c.FedBy]
		if c.Loc != feed.Dst() {
			t.Errorf("destination-only policy cached at %d, feed dst %d", c.Loc, feed.Dst())
		}
	}
}

func TestBannedWindowForcesDirect(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Ban all storages for all time: greedy degenerates to direct.
	horizon := simtime.NewInterval(0, simtime.Time(24*simtime.Hour))
	opts := Options{Banned: []occupancy.Banned{
		{Node: f.IS1, Interval: horizon},
		{Node: f.IS2, Interval: horizon},
	}}
	fs, err := ScheduleFile(f.Model, 0, f.Requests, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Residencies) != 0 {
		t.Errorf("banned everywhere: residencies = %d, want 0", len(fs.Residencies))
	}
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("cost = %v, want direct $259.20", got)
	}
}

func TestPartialBanShiftsCache(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Ban IS1 only: the greedy can still cache at IS2 (the stream to U2
	// passes it), serving U3 locally from that copy.
	horizon := simtime.NewInterval(0, simtime.Time(24*simtime.Hour))
	opts := Options{Banned: []occupancy.Banned{{Node: f.IS1, Interval: horizon}}}
	fs, err := ScheduleFile(f.Model, 0, f.Requests, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range fs.Residencies {
		if c.Loc == f.IS1 {
			t.Error("banned node still caches")
		}
	}
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Must still beat all-direct: cache at IS2 saves U3's remote stream.
	direct, _ := Direct(f.Model, 0, f.Requests)
	if f.Model.FileCost(fs) >= f.Model.FileCost(direct) {
		t.Errorf("banned-IS1 schedule %v not cheaper than direct %v",
			f.Model.FileCost(fs), f.Model.FileCost(direct))
	}
}

func TestLedgerConstraintRejectsFullStorage(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Fill IS1 and IS2 completely with another video's residencies for the
	// whole horizon. The greedy must fall back to direct streams.
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	_ = cat
	ledger := occupancy.NewLedger(f.Topo, f.Model.Catalog())
	blocker := schedule.Residency{
		Video: 0, Loc: f.IS1, Src: f.VW,
		Load: -1000, LastService: simtime.Time(48 * simtime.Hour),
	}
	// Fill capacity: 10 GB / 2.5 GB per copy = 4 copies.
	for i := 0; i < 4; i++ {
		ledger.Add(occupancy.Ref{Video: 99, Index: i}, blocker)
		b2 := blocker
		b2.Loc = f.IS2
		ledger.Add(occupancy.Ref{Video: 99, Index: 10 + i}, b2)
	}
	fs, err := ScheduleFile(f.Model, 0, f.Requests, Options{Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Residencies) != 0 {
		t.Errorf("full storages: residencies = %d, want 0", len(fs.Residencies))
	}
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("cost = %v, want direct $259.20", got)
	}
}

func TestLedgerReflectsFinalSchedule(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	ledger := occupancy.NewLedger(f.Topo, f.Model.Catalog())
	fs, err := ScheduleFile(f.Model, 0, f.Requests, Options{Ledger: ledger})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, node := range f.Topo.Storages() {
		total += ledger.NumEntries(node)
	}
	if total != len(fs.Residencies) {
		t.Errorf("ledger entries = %d, schedule residencies = %d", total, len(fs.Residencies))
	}
	// The surviving residency occupies space in the ledger.
	if got := ledger.SpaceAt(f.IS1, simtime.Time(simtime.Hour)); got != units.GBf(2.5).Float() {
		t.Errorf("ledger space at IS1 = %g", got)
	}
}

func TestScheduleFileErrors(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ScheduleFile(f.Model, 0, workload.Set{{User: 0, Video: 5, Start: 0}}, Options{})
	if err == nil {
		t.Error("expected error for wrong-video request")
	}
	_, err = ScheduleFile(f.Model, 0, workload.Set{{User: 99, Video: 0, Start: 0}}, Options{})
	if err == nil {
		t.Error("expected error for unknown user")
	}
}

func TestEmptyRequestSet(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ScheduleFile(f.Model, 0, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Deliveries) != 0 || len(fs.Residencies) != 0 {
		t.Error("empty request set must produce empty schedule")
	}
	if f.Model.FileCost(fs) != 0 {
		t.Error("empty schedule must cost 0")
	}
}

func TestUnsortedRequestsAreSorted(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	rev := workload.Set{f.Requests[2], f.Requests[0], f.Requests[1]}
	fs, err := ScheduleFile(f.Model, 0, rev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("cost with unsorted input = %v", got)
	}
}

func TestCostWrapper(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := ScheduleFile(f.Model, 0, f.Requests, Options{})
	c, err := Cost(f.Model, fs)
	if err != nil || c <= 0 {
		t.Errorf("Cost = %v, %v", c, err)
	}
}

func TestPolicyString(t *testing.T) {
	if CacheOnRoute.String() != "cache-on-route" ||
		CacheAtDestination.String() != "cache-at-destination" ||
		NoCaching.String() != "no-caching" {
		t.Error("Policy.String wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy string")
	}
}

// TestGreedyPrefersCheapStorage pins the heterogeneous-rate behaviour:
// with two equally-placed caching sites, the greedy caches at the cheaper
// one.
func TestGreedyPrefersCheapStorage(t *testing.T) {
	// VW - IS1 - IS2, both users at IS2 so both IS1 and IS2 lie on every
	// VW stream's route; IS1's disk is 10x dearer than IS2's.
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(1, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, 0, testutil.CentsPerMbit(0.2))
	if err := book.SetSRate(is1, testutil.PerGBHour(10)); err != nil {
		t.Fatal(err)
	}
	if err := book.SetSRate(is2, testutil.PerGBHour(1)); err != nil {
		t.Fatal(err)
	}
	m := cost.NewModel(book, routing.NewTable(book), cat)
	us := topo.UsersAt(is2)
	reqs := workload.Set{
		{User: us[0], Video: 0, Start: 0},
		{User: us[1], Video: 0, Start: simtime.Time(3 * simtime.Hour)},
	}
	fs, err := ScheduleFile(m, 0, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Residencies) != 1 {
		t.Fatalf("residencies = %d, want 1", len(fs.Residencies))
	}
	if fs.Residencies[0].Loc != is2 {
		t.Errorf("cached at %d, want the cheap IS2 (%d)", fs.Residencies[0].Loc, is2)
	}
}

// Property: the greedy is deterministic — scheduling the same inputs twice
// yields byte-identical schedules across random scenarios.
func TestPropertyGreedyDeterministic(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rig, err := testutil.NewPaperRig(7, 6, 20, 6*units.GB, testutil.PerGBHour(2), testutil.CentsPerMbit(0.15), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.2, Seed: seed + 11})
		if err != nil {
			t.Fatal(err)
		}
		for vid, rs := range reqs.ByVideo() {
			a, err := ScheduleFile(rig.Model, vid, rs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := ScheduleFile(rig.Model, vid, rs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Deliveries) != len(b.Deliveries) || len(a.Residencies) != len(b.Residencies) {
				t.Fatalf("seed %d video %d: nondeterministic shape", seed, vid)
			}
			for i := range a.Deliveries {
				if a.Deliveries[i].Start != b.Deliveries[i].Start ||
					a.Deliveries[i].SourceResidency != b.Deliveries[i].SourceResidency ||
					a.Deliveries[i].Src() != b.Deliveries[i].Src() {
					t.Fatalf("seed %d video %d: delivery %d differs", seed, vid, i)
				}
			}
			for j := range a.Residencies {
				if a.Residencies[j].Loc != b.Residencies[j].Loc ||
					a.Residencies[j].Load != b.Residencies[j].Load ||
					a.Residencies[j].LastService != b.Residencies[j].LastService {
					t.Fatalf("seed %d video %d: residency %d differs", seed, vid, j)
				}
			}
		}
	}
}

func TestSeedHandling(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	horizon := simtime.Time(12 * simtime.Hour)
	goodSeed := schedule.Residency{
		Video: 0, Loc: f.IS2, Src: f.VW,
		Load: 0, LastService: horizon, FedBy: schedule.PrePlacedFeed,
	}
	// Wrong-video seed.
	bad := goodSeed
	bad.Video = 7
	if _, err := ScheduleFile(f.Model, 0, f.Requests, Options{Seeds: []schedule.Residency{bad}}); err == nil {
		t.Error("expected error for wrong-video seed")
	}
	// Unmarked seed.
	bad = goodSeed
	bad.FedBy = 0
	if _, err := ScheduleFile(f.Model, 0, f.Requests, Options{Seeds: []schedule.Residency{bad}}); err == nil {
		t.Error("expected error for unmarked seed")
	}
	// A good seed at IS2 serves the IS2 requests locally for free AND even
	// U1 at IS1 — the IS2→IS1 hop (0.1 ¢/Mbit) undercuts the VW→IS1 hop
	// (0.2 ¢/Mbit). Total = one cheap relay + the seed's committed cost.
	fs, err := ScheduleFile(f.Model, 0, f.Requests, Options{Seeds: []schedule.Residency{goodSeed}})
	if err != nil {
		t.Fatal(err)
	}
	want := f.Model.TransferCost(0, f.IS2, f.IS1) +
		f.Model.ResidencyCost(goodSeed) + f.Model.PrePlacementCost(goodSeed)
	got := f.Model.FileCost(fs)
	if !got.ApproxEqual(want, 1e-6) {
		t.Errorf("seeded cost %v, want %v", got, want)
	}
	// Seed survives pruning and serves all three requests.
	seedFound := false
	for _, c := range fs.Residencies {
		if c.FedBy == schedule.PrePlacedFeed {
			seedFound = true
			if len(c.Services) != 3 {
				t.Errorf("seed services = %v, want all three requests", c.Services)
			}
		}
	}
	if !seedFound {
		t.Error("seed pruned")
	}
	// A request AFTER the seed's span cannot use it.
	lateReq := workload.Set{{User: f.Topo.UsersAt(f.IS2)[0], Video: 0, Start: horizon + 100}}
	fs2, err := ScheduleFile(f.Model, 0, lateReq, Options{Seeds: []schedule.Residency{goodSeed}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range fs2.Deliveries {
		if d.SourceResidency != schedule.NoResidency &&
			fs2.Residencies[d.SourceResidency].FedBy == schedule.PrePlacedFeed {
			t.Error("request beyond the seed's span served from it")
		}
	}
}
