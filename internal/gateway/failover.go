package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
)

// Shard-level failure handling: a forwarded call that finds the shard's
// primary fenced or unreachable consults the standby, drives the
// ordinary HTTP promote path, swaps the pair, and retries — the
// operator runbook of examples/failover, automated.

// forward runs one call against the shard's current primary,
// transparently failing over to the standby when the primary is gone.
func (g *Gateway) forward(ctx context.Context, sh *shard, call func(base string) error) error {
	primary := sh.current()
	err := call(primary)
	if err == nil || !failoverWorthy(err) {
		return err
	}
	if ferr := g.failover(ctx, sh, primary); ferr != nil {
		return fmt.Errorf("shard %s: %w (failover: %v)", sh.id, err, ferr)
	}
	return call(sh.current())
}

// failoverWorthy distinguishes "this node is no longer the shard's
// primary" from every other failure. Only two signals qualify: the
// stale-leadership 409 (the node was fenced or demoted), and a pure
// transport failure (every retry died without an HTTP status — a dead
// primary is indistinguishable from a partition here, which is exactly
// when the standby must be consulted). A late-arrival 409, or any other
// status, is a protocol answer from a live primary and must reach the
// caller untouched.
func failoverWorthy(err error) bool {
	var se *retryhttp.StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusConflict && strings.Contains(se.Message, "stale leadership")
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// failover swaps sh to its standby. Concurrent callers coalesce on the
// shard mutex: whoever loses the race finds the swap already done and
// simply retries against the new primary. The standby is promoted
// through the ordinary HTTP path — planned (drain the primary's tail)
// first, forced only when the drain proves the primary unreachable and
// the standby had synced, the same judgment the operator runbook makes.
func (g *Gateway) failover(ctx context.Context, sh *shard, failed string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.primary != failed {
		return nil // another request already failed this shard over
	}
	if sh.standby == "" {
		return fmt.Errorf("no standby configured")
	}
	standby := sh.standby
	var st replica.Status
	if err := retryhttp.GetJSON(ctx, g.retry, standby+"/v1/replication/status", &st); err != nil {
		return fmt.Errorf("standby unreachable: %w", err)
	}
	if st.Role != replica.RolePrimary.String() {
		if !st.Synced {
			return fmt.Errorf("standby never synced with the primary; promoting it would serve an empty shard")
		}
		var prom server.PromoteResponse
		err := retryhttp.PostJSON(ctx, g.retry, standby+"/v1/replication/promote",
			server.PromoteRequest{FenceSource: true}, &prom)
		var se *retryhttp.StatusError
		if errors.As(err, &se) && se.Code == http.StatusConflict {
			// The planned promote could not confirm catch-up — the primary
			// really is gone. The standby has synced, so force the promotion
			// and accept whatever unreplicated suffix died with the primary.
			err = retryhttp.PostJSON(ctx, g.retry, standby+"/v1/replication/promote",
				server.PromoteRequest{Force: true, FenceSource: true}, &prom)
		}
		if err != nil {
			return fmt.Errorf("promote standby: %w", err)
		}
	}
	// The old primary becomes the shard's (dead) standby: if an operator
	// revives it as a follower of the new primary, the pair is whole again.
	sh.primary, sh.standby = standby, failed
	sh.failovers.Add(1)
	return nil
}
