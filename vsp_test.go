package vsp_test

import (
	"context"
	"sort"
	"testing"

	vsp "github.com/vodsim/vsp"
)

// newSystem builds a moderate test system through the public API only.
func newSystem(t *testing.T) (*vsp.System, vsp.RequestSet) {
	t.Helper()
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 6, Capacity: vsp.GB(6),
	}, 17)
	cat, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 40, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, cat, vsp.PerGBHour(2), vsp.PerGB(400))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, cat, vsp.WorkloadConfig{Alpha: 0.1, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	return sys, reqs
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys, reqs := newSystem(t)
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{Metric: vsp.SpacePerCost})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sys.Validate(out.Schedule, reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if n := len(sys.Overflows(out.Schedule)); n != 0 {
		t.Errorf("final schedule has %d overflows", n)
	}
	direct, err := sys.ScheduleDirect(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(out.FinalCost) > float64(direct.FinalCost) {
		t.Errorf("scheduler %v worse than direct %v", out.FinalCost, direct.FinalCost)
	}
	storage, network := sys.CostSplit(out.Schedule)
	if !(storage + network).ApproxEqual(sys.Cost(out.Schedule), 1e-6) {
		t.Error("cost split does not sum")
	}
	rep := sys.Simulate(out.Schedule)
	if !rep.OK() {
		t.Fatalf("simulator violations: %v", rep.Violations)
	}
	if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-3) {
		t.Errorf("simulated %v != analytic %v", rep.TotalCost(), out.FinalCost)
	}
}

func TestPublicAPIBandwidth(t *testing.T) {
	sys, reqs := newSystem(t)
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A generous cap leaves nothing to do.
	caps := sys.UniformLinkCapacities(vsp.Mbps(10000))
	if n := len(sys.LinkOverloads(out.Schedule, caps)); n != 0 {
		t.Errorf("overloads under generous cap: %d", n)
	}
	res, err := sys.ResolveBandwidth(out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reroutes != 0 {
		t.Error("no-op resolution rerouted streams")
	}
	// A tight cap produces overloads; resolution must not corrupt the
	// schedule even when some remain unresolved.
	tight := sys.UniformLinkCapacities(vsp.Mbps(10))
	res, err = sys.ResolveBandwidth(out.Schedule, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(res.Schedule, reqs); err != nil {
		t.Fatalf("rerouted schedule invalid: %v", err)
	}
}

func TestPublicAPIRateOverrides(t *testing.T) {
	sys, reqs := newSystem(t)
	before, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Raising every link's rate must raise the total cost.
	for e := 0; e < sys.Topology().NumEdges(); e++ {
		sys.SetLinkRate(e, vsp.PerGB(4000))
	}
	after, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if after.FinalCost <= before.FinalCost {
		t.Errorf("10x link rates did not raise cost: %v -> %v", before.FinalCost, after.FinalCost)
	}
	// Warehouse storage rate stays pinned at zero.
	if err := sys.SetStorageRate(sys.Topology().Warehouse(), vsp.PerGBHour(1)); err == nil {
		t.Error("expected error setting warehouse rate")
	}
}

func TestNewSystemErrors(t *testing.T) {
	topo := vsp.StarTopology(vsp.GenConfig{Storages: 2, UsersPerStorage: 1, Capacity: vsp.GB(5)})
	if _, err := vsp.NewSystem(nil, nil, 0, 0); err == nil {
		t.Error("expected error for nil inputs")
	}
	empty := &vsp.Catalog{}
	if _, err := vsp.NewSystem(topo, empty, 0, 0); err == nil {
		t.Error("expected error for empty catalog")
	}
}

func TestPublicExperimentFacade(t *testing.T) {
	r, err := vsp.RunExperiment(vsp.ExperimentParams{
		Storages: 6, UsersPerStorage: 4, Titles: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalCost <= 0 || r.Requests != 24 {
		t.Errorf("experiment result: %+v", r)
	}
}

func TestPublicAPINodeBandwidth(t *testing.T) {
	sys, reqs := newSystem(t)
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	caps := sys.UniformNodeCapacities(vsp.Mbps(10000))
	res, err := sys.ResolveNodeBandwidth(out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 {
		t.Error("generous node caps must not trigger moves")
	}
	tight := sys.UniformNodeCapacities(vsp.Mbps(6))
	res, err = sys.ResolveNodeBandwidth(out.Schedule, tight)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(res.Schedule, reqs); err != nil {
		t.Fatalf("node-resolved schedule invalid: %v", err)
	}
}

func TestPublicAPIAnalyze(t *testing.T) {
	sys, reqs := newSystem(t)
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Analyze(out.Schedule)
	if rep.Requests != len(reqs) {
		t.Errorf("analysis requests = %d", rep.Requests)
	}
	if !rep.TotalCost.ApproxEqual(out.FinalCost, 1e-6) {
		t.Errorf("analysis total %v != %v", rep.TotalCost, out.FinalCost)
	}
}

func TestPublicAPIOnlineBaseline(t *testing.T) {
	sys, reqs := newSystem(t)
	off, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	on, err := sys.ScheduleOnline(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if on.Requests != len(reqs) {
		t.Errorf("online served %d of %d", on.Requests, len(reqs))
	}
	if float64(off.FinalCost) > float64(on.TotalCost())*1.001 {
		t.Errorf("offline %v lost to online %v", off.FinalCost, on.TotalCost())
	}
}

func TestPublicAPIOptimalFile(t *testing.T) {
	sys, _ := newSystem(t)
	users := sys.Topology().Users()
	reqs := vsp.RequestSet{
		{User: users[0].ID, Video: 0, Start: 0},
		{User: users[1].ID, Video: 0, Start: vsp.Time(2 * vsp.Hour)},
	}
	fs, best, err := sys.OptimalFile(0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if best <= 0 || len(fs.Deliveries) != 2 {
		t.Errorf("optimal: %v, %d deliveries", best, len(fs.Deliveries))
	}
}

func TestPublicAPIPlacement(t *testing.T) {
	topo := vsp.MetroTopology(vsp.GenConfig{Storages: 9, UsersPerStorage: 10, Capacity: vsp.GB(10)}, 13)
	cat, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 40, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, cat, vsp.PerGBHour(1), vsp.PerGB(900))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPreloadFactor(0.25); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetPreloadFactor(2); err == nil {
		t.Error("expected error for factor > 1")
	}
	plan, err := sys.PlanPlacement(vsp.PlacementConfig{Alpha: 0.1, CapacityFraction: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCopies() == 0 {
		t.Fatal("no placements")
	}
	reqs, err := vsp.GenerateWorkload(topo, cat, vsp.WorkloadConfig{Alpha: 0.1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{Seeds: plan.Seeds()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(out.Schedule, reqs); err != nil {
		t.Fatalf("seeded schedule invalid: %v", err)
	}
	// Simulator handles pre-placement bulk flows.
	rep := sys.Simulate(out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-3) {
		t.Errorf("simulated %v != analytic %v", rep.TotalCost(), out.FinalCost)
	}
	// Billing separates the operator-borne infrastructure.
	bill, err := sys.Bill(out.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if bill.Infrastructure <= 0 {
		t.Error("seeded schedule must carry infrastructure cost")
	}
	if !bill.Total().ApproxEqual(out.FinalCost, 1e-6) {
		t.Errorf("bill total %v != Ψ(S) %v", bill.Total(), out.FinalCost)
	}
}

func TestPublicAPIAudit(t *testing.T) {
	sys, reqs := newSystem(t)
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Audit(out.Schedule, reqs)
	if !rep.OK() {
		t.Fatalf("audit findings: %v", rep.Findings)
	}
	// Corrupt the schedule: audit must notice.
	bad := out.Schedule.Clone()
	for _, fs := range bad.Files {
		if len(fs.Deliveries) > 0 {
			fs.Deliveries[0].Start += 1
			break
		}
	}
	if sys.Audit(bad, reqs).OK() {
		t.Error("audit passed a corrupted schedule")
	}
}

// TestPublicAPIDurableHorizon drives the crash-safe intake through the
// façade: submit, advance, close, then reopen the same directory and
// verify the committed schedule survived.
func TestPublicAPIDurableHorizon(t *testing.T) {
	sys, reqs := newSystem(t)
	dir := t.TempDir()
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].Start < reqs[j].Start })
	batch := reqs[:8]

	hz, err := sys.OpenDurableHorizon(dir, vsp.HorizonConfig{Fsync: vsp.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range batch {
		if _, err := hz.Submit(0, r); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	to := batch[len(batch)-1].Start + 1
	if _, err := hz.Advance(context.Background(), to); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	cost, epoch := hz.Cost(), hz.Epoch()
	if cost <= 0 || epoch != 1 {
		t.Fatalf("after advance: cost=%v epoch=%d", cost, epoch)
	}
	if err := hz.Close(); err != nil {
		t.Fatal(err)
	}

	hz2, err := sys.OpenDurableHorizon(dir, vsp.HorizonConfig{Fsync: vsp.FsyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer hz2.Close()
	if !hz2.Recovery().Recovered {
		t.Error("reopen did not report recovery")
	}
	if hz2.Cost() != cost || hz2.Epoch() != epoch || hz2.Horizon() != to {
		t.Errorf("recovered cost=%v epoch=%d horizon=%v, want %v/%d/%v",
			hz2.Cost(), hz2.Epoch(), hz2.Horizon(), cost, epoch, to)
	}
	if rep := sys.Audit(hz2.Committed(), vsp.RequestSet(batch)); !rep.OK() {
		t.Errorf("recovered schedule fails audit: %v", rep.Findings)
	}
}
