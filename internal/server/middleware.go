package server

import (
	"log"
	"net/http"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
)

// Options tunes the hardening middleware around the API handlers.
type Options struct {
	// RequestTimeout bounds each request's handling time; the client gets
	// 503 with a JSON body when it elapses. 0 means DefaultRequestTimeout;
	// negative disables the timeout (used by tests that need slow handlers).
	RequestTimeout time.Duration
	// MaxRequestBytes caps request body size; larger bodies get 413.
	// 0 means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// Horizon configures the rolling-horizon intake service behind
	// /v1/reservations, /v1/plan and /v1/advance. The zero value is usable:
	// no epoch trigger ever fires on its own and clients advance explicitly.
	Horizon horizon.Config
	// Workers bounds the scheduling worker pool used by /v1/schedule (the
	// rolling-horizon endpoints take theirs from Horizon.Workers). The
	// produced schedule is byte-identical for any value; 0 means GOMAXPROCS,
	// 1 forces the sequential path.
	Workers int
	// DataDir makes the rolling-horizon service durable: every accepted
	// reservation and committed epoch is journaled to a write-ahead log
	// under this directory, and construction recovers prior state from it
	// (refusing on a state that fails the audit bundle). Empty keeps the
	// horizon in memory, as before. The fsync policy and snapshot period
	// come from Horizon (Fsync, FsyncInterval, SnapshotEvery).
	DataDir string
	// MaxInFlight bounds concurrently handled requests; excess requests
	// wait briefly in a bounded queue and are then shed with 429 +
	// Retry-After. 0 means DefaultMaxInFlight; negative disables
	// admission control.
	MaxInFlight int
	// MaxQueue bounds the overload wait queue (0 = DefaultMaxQueue;
	// negative = no queue, shed immediately at saturation).
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed (0 = DefaultQueueWait).
	QueueWait time.Duration
	// Role is the node's serving role (default RolePrimary). Followers
	// reject stateful intake with the stale-leadership error until
	// promoted via POST /v1/replication/promote.
	Role replica.Role
	// ReplicateFrom is a primary's base URL; setting it makes the node a
	// follower that ships the primary's WAL into its own horizon service
	// once StartReplication is called. Combine with DataDir so the
	// applied position survives a follower restart.
	ReplicateFrom string
	// ReplicateEvery is the shipper's poll period when idle (0 =
	// replica.DefaultInterval); a backlogged follower drains
	// continuously regardless.
	ReplicateEvery time.Duration
	// ShardID labels this node's shard in a sharded intake tier; it is
	// echoed in the /v1/stats shard block so a routing gateway can match
	// polled load to its configured shards. Empty for unsharded nodes.
	ShardID string
}

const (
	// DefaultRequestTimeout is the per-request handling budget.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxRequestBytes caps POST bodies at 16 MiB — far above any
	// legitimate reservation batch, far below a memory-exhaustion payload.
	DefaultMaxRequestBytes = 16 << 20
	// DefaultMaxInFlight bounds concurrently handled requests. Scheduling
	// is CPU-bound, so admitting far beyond the core count only adds
	// queueing delay dressed up as work in progress.
	DefaultMaxInFlight = 64
	// DefaultMaxQueue is the overload wait-queue depth.
	DefaultMaxQueue = 256
	// DefaultQueueWait is how long a queued request may wait for a slot.
	DefaultQueueWait = time.Second
)

func (o Options) withDefaults() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.MaxRequestBytes == 0 {
		o.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueWait <= 0 {
		o.QueueWait = DefaultQueueWait
	}
	return o
}

// harden wraps the router with the protective layers, innermost first:
// body-size capping (so handlers can never buffer an unbounded body), the
// per-request timeout, admission control (outside the timeout, so queue
// wait does not consume the handling budget), the Retry-After decoration
// of 503s, and outermost panic recovery (http.TimeoutHandler propagates
// inner-handler panics to its caller, so recovery must sit outside it).
func harden(h http.Handler, opts Options, lim *limiter) http.Handler {
	h = limitBody(h, opts.MaxRequestBytes)
	if opts.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, opts.RequestTimeout, `{"error":"request timed out"}`)
	}
	if lim != nil {
		h = lim.wrap(h)
	}
	return recoverPanics(retryAfter503(h))
}

// timeoutRetryAfter is the Retry-After value attached to 503 replies.
const timeoutRetryAfter = "1"

// retryAfter503 decorates every 503 reply — http.TimeoutHandler's, and
// the handlers' own context-expiry 503s — with a Retry-After header, so
// timed-out clients back off exactly like shed ones (whose 429 carries
// the header already).
func retryAfter503(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&retryAfterWriter{ResponseWriter: w}, r)
	})
}

type retryAfterWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (w *retryAfterWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", timeoutRetryAfter)
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *retryAfterWriter) Write(b []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// limitBody caps the request body via http.MaxBytesReader; reads past the
// limit fail with *http.MaxBytesError, which the JSON decode path maps to
// 413.
func limitBody(next http.Handler, limit int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// recoverPanics converts a handler panic into a 500 JSON error instead of
// tearing down the connection, and logs the panic value. A panicking
// handler may already have written a partial response; in that case the
// write of the error body fails silently, which is the best that can be
// done after the fact.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
