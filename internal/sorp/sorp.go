// Package sorp implements the Storage Overflow Resolution phase of the
// paper's heuristic (§4): after the individually-scheduled files are
// integrated, some intermediate storages may be over-committed during some
// intervals. SORP repeatedly selects the victim file whose rescheduling
// yields the most improvement per unit of overhead — measured by one of
// four heat metrics (Eqs. 8–11) — and recomputes its schedule with the
// Rejective Greedy (§4.4): the victim may not occupy the overflowing
// (interval, storage) pair and must respect the remaining capacity of every
// other storage.
package sorp

import (
	"context"
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/parallel"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// HeatMetric selects the victim-ranking criterion (paper §4.3).
type HeatMetric int

const (
	// Period is Method 1 (Eq. 8): the length X of the improved period.
	Period HeatMetric = iota + 1
	// PeriodPerCost is Method 2 (Eq. 9): X divided by the overhead cost.
	PeriodPerCost
	// Space is Method 3 (Eq. 10): the amortized time–space product ΔS
	// removed from the overflow window (Eq. 5).
	Space
	// SpacePerCost is Method 4 (Eq. 11): ΔS divided by the overhead cost.
	// The paper finds it the best performer on average.
	SpacePerCost
)

func (h HeatMetric) String() string {
	switch h {
	case Period:
		return "period"
	case PeriodPerCost:
		return "period-per-cost"
	case Space:
		return "space"
	case SpacePerCost:
		return "space-per-cost"
	default:
		return fmt.Sprintf("HeatMetric(%d)", int(h))
	}
}

// Options configures a Resolve run.
type Options struct {
	// Metric ranks victims; defaults to SpacePerCost (Method 4).
	Metric HeatMetric
	// Policy is the caching policy handed to the rejective greedy.
	Policy ivs.Policy
	// MaxIterations bounds the resolution loop as a safety valve; 0 means
	// a generous default proportional to the LIVE schedule size plus the
	// reschedulable request total, re-evaluated every iteration (a bound
	// frozen from the input schedule can trip on legitimately convergent
	// runs, since rescheduling a victim may grow its residency count).
	MaxIterations int
	// Workers bounds the concurrent evaluation of candidate reschedules
	// during victim selection: each candidate works on its own ledger
	// clone, and the winner is picked by the same total order as a
	// sequential run, so the victim sequence is byte-identical for any
	// worker count. 0 means GOMAXPROCS, 1 forces the sequential path.
	Workers int
	// Seeds are the pre-placed standing copies per video (strategic
	// replication). Rescheduling a victim re-seeds them: they are placed
	// infrastructure the resolver can neither move nor strip, so they are
	// never selected as victims.
	Seeds map[media.VideoID][]schedule.Residency
	// Frozen holds, per video, the immutable prefix committed by earlier
	// epochs of a rolling-horizon run (see internal/horizon). A frozen
	// prefix's records lead the file's slices; its residencies are never
	// selected as victims, and rescheduling a file re-plans only its
	// un-frozen requests on top of the prefix. The reqs map handed to
	// Resolve must then hold only the un-frozen requests of each file.
	Frozen map[media.VideoID]*schedule.FileSchedule
}

// Victim records one rescheduling decision, for diagnostics and the
// heat-metric study of Experiment 4.
type Victim struct {
	Video    media.VideoID
	Node     topology.NodeID
	Window   simtime.Interval
	Heat     float64
	Overhead units.Money
}

// Result summarizes a resolution run.
type Result struct {
	Schedule         *schedule.Schedule
	Victims          []Victim
	InitialOverflows int
	CostBefore       units.Money
	CostAfter        units.Money
}

// Delta returns the total cost increase caused by overflow resolution,
// the paper's Ψ(S_SORP) − Ψ(S).
func (r *Result) Delta() units.Money { return r.CostAfter - r.CostBefore }

// Resolve runs the SORP loop on the integrated schedule s. The request
// partition must be the one the schedule was built from (rescheduling a
// victim re-serves its whole request list R_i). The input schedule is not
// modified; the resolved schedule is returned in the Result.
func Resolve(m *cost.Model, s *schedule.Schedule, reqs map[media.VideoID][]workload.Request, opts Options) (*Result, error) {
	return ResolveContext(context.Background(), m, s, reqs, opts)
}

// ResolveContext is Resolve with cancellation: the context is checked at
// the top of every victim iteration, so a cancelled or timed-out ctx stops
// the (potentially long) resolution loop promptly with ctx.Err() wrapped
// in the returned error.
func ResolveContext(ctx context.Context, m *cost.Model, s *schedule.Schedule, reqs map[media.VideoID][]workload.Request, opts Options) (*Result, error) {
	if opts.Metric == 0 {
		opts.Metric = SpacePerCost
	}
	topo := m.Book().Topology()
	nreq := 0
	for _, vid := range s.VideoIDs() {
		want := len(s.Files[vid].Deliveries)
		if pre := opts.Frozen[vid]; pre != nil {
			want -= len(pre.Deliveries)
		}
		if got := len(reqs[vid]); got != want {
			return nil, fmt.Errorf("sorp: video %d has %d un-frozen requests but %d reschedulable deliveries", vid, got, want)
		}
		nreq += len(reqs[vid])
	}
	work := s.Clone()
	ledger := occupancy.FromSchedule(topo, m.Catalog(), work)

	res := &Result{
		Schedule:         work,
		InitialOverflows: len(ledger.AllOverflows()),
		CostBefore:       m.ScheduleCost(s),
	}

	cache := newResolveCache()
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sorp: resolution aborted: %w", err)
		}
		overflows := ledger.AllOverflows()
		if len(overflows) == 0 {
			break
		}
		if iter >= iterationBound(opts.MaxIterations, work, nreq) {
			return nil, fmt.Errorf("sorp: no resolution after %d iterations (%d overflows remain)",
				iter, len(overflows))
		}
		best, found, err := selectVictim(ctx, m, work, ledger, overflows, reqs, opts, cache)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("sorp: %d overflows but no reschedulable victim", len(overflows))
		}
		if best.schedule == nil {
			// The winner was revalidated from the pair cache, which keeps
			// only the decision-ranking fields. Replay the reschedule on a
			// fresh view of the current ledger: the cache's validity
			// conditions (unchanged file, unchanged touched-node profiles)
			// guarantee the replay makes the identical placement decisions,
			// and the replayed view reflects the current base state.
			of := occupancy.Overflow{Node: best.record.Node, Interval: best.record.Window}
			rs := rescheduleFile(m, ledger.OverlayWithout(best.record.Video), best.record.Video, of,
				reqs[best.record.Video], opts, cache.fileCost[best.record.Video])
			if !rs.ok {
				return nil, fmt.Errorf("sorp: cached victim (video %d) failed to replay", best.record.Video)
			}
			best.schedule, best.ledger, best.newCost = rs.fs, rs.ledger, rs.newCost
		}
		// Commit the winning candidate: materializing its overlay view
		// yields the ledger with the rescheduled file applied.
		work.Put(best.schedule)
		ledger = best.ledger.Flatten()
		cache.fileVer[best.record.Video]++
		cache.fileCost[best.record.Video] = best.newCost
		res.Victims = append(res.Victims, best.record)
	}
	res.CostAfter = m.ScheduleCost(work)
	return res, nil
}

type candidate struct {
	schedule *schedule.FileSchedule
	ledger   *occupancy.Ledger
	record   Victim
	heat     float64
	overhead units.Money
	newCost  units.Money
}

// pairKey identifies one deduped reschedule evaluation: resolving overflow
// (node, interval) by re-planning the whole file of one video.
type pairKey struct {
	node     topology.NodeID
	interval simtime.Interval
	video    media.VideoID
}

// pairEntry memoizes the outcome of one (overflow, video) evaluation
// across resolution iterations. It stays valid while (a) the victim file
// itself is unchanged (fileVer) and (b) every node whose occupancy answers
// the evaluation read is at the same profile version (touched/vers) — the
// rejective greedy's decisions depend on the base ledger only through
// CanFit queries, so unchanged answers replay to an identical schedule and
// identical overhead. heats memoizes computeHeat per involved residency
// (ref.Index); the improvement term depends only on the residency and the
// overflow window, both pinned by the validity conditions.
type pairEntry struct {
	ok       bool
	overhead units.Money
	fileVer  uint64
	touched  []topology.NodeID
	vers     []uint64
	heats    map[int]float64
}

// resolveCache carries SORP's incremental state across iterations: the
// (overflow, video) evaluation memos and, per video, the committed file's
// version counter and Ψ contribution. Committing a victim bumps only that
// file's version and only the rescheduled nodes' profile versions, so the
// next iteration re-evaluates just the pairs the commit actually touched —
// every other pair's heat and overhead are reused, and overheads are Ψ
// deltas against the cached per-file cost instead of full re-costings.
type resolveCache struct {
	pairs    map[pairKey]*pairEntry
	fileVer  map[media.VideoID]uint64
	fileCost map[media.VideoID]units.Money
}

func newResolveCache() *resolveCache {
	return &resolveCache{
		pairs:    make(map[pairKey]*pairEntry),
		fileVer:  make(map[media.VideoID]uint64),
		fileCost: make(map[media.VideoID]units.Money),
	}
}

// valid reports whether the memo may stand in for re-running the
// evaluation against the current base ledger.
func (pe *pairEntry) valid(ledger *occupancy.Ledger, fileVer uint64) bool {
	if pe.fileVer != fileVer {
		return false
	}
	for i, n := range pe.touched {
		if ledger.Version(n) != pe.vers[i] {
			return false
		}
	}
	return true
}

// iterationBound returns the safety valve for the resolution loop. An
// explicit Options.MaxIterations always wins; the default is proportional
// to the live schedule plus the reschedulable request total. It must be
// re-evaluated against the LIVE schedule each iteration: rescheduling a
// victim may legitimately grow its residency count (the rejective greedy
// spreads copies across storages the banned one can't hold), so a bound
// frozen from the input schedule's residency count can trip on convergent
// runs.
func iterationBound(configured int, work *schedule.Schedule, nreq int) int {
	if configured > 0 {
		return configured
	}
	return 10 * (work.NumResidencies() + nreq + 1)
}

// liveVictim resolves an overflow ref against the working schedule and
// reports whether the residency is victimizable.
func liveVictim(work *schedule.Schedule, opts Options, ref occupancy.Ref) (schedule.Residency, bool, error) {
	fs := work.File(ref.Video)
	if fs == nil || ref.Index >= len(fs.Residencies) {
		return schedule.Residency{}, false, fmt.Errorf("sorp: dangling overflow ref %+v", ref)
	}
	ci := fs.Residencies[ref.Index]
	if ci.FedBy == schedule.PrePlacedFeed {
		return ci, false, nil // standing copies cannot be victimized
	}
	if pre := opts.Frozen[ref.Video]; pre != nil && ref.Index < len(pre.Residencies) &&
		ci.LastService <= pre.Residencies[ref.Index].LastService {
		// Committed history: the copy sits at its frozen span and
		// rescheduling could not touch it. A frozen copy EXTENDED
		// this epoch is a victim like any other — the extension is
		// a live decision the rejective greedy can roll back (the
		// committed span itself is re-installed untouched).
		return ci, false, nil
	}
	return ci, true, nil
}

// selectVictim evaluates rescheduling every file involved in every current
// overflow and returns the candidate with the largest heat (paper Table 3,
// lines 8–18). Heat ties break toward lower overhead, then lower video ID,
// for determinism.
//
// Rescheduling operates on whole files; each involved residency c_i is
// evaluated for its heat but the expensive reschedule is deduped by
// (overflow, video) — the paper's loop is per c_i, yet for a given pair
// the reschedule result is identical and only the improvement term
// differs. Pairs whose memoized evaluation is still valid (see pairEntry)
// are reused outright; the rest run fresh. The fresh reschedules are
// independent — each works on its own ledger clone — so they are evaluated
// across the worker pool; the clones are taken sequentially up front
// (Ledger.Clone is a mutation of the source's sharing state) and the
// winner is then picked by a sequential walk in overflow/ref order with
// the better() total order. Both the memo state and the walk are
// independent of worker count and completion order, so the selected victim
// sequence stays byte-identical for any Workers setting.
func selectVictim(ctx context.Context, m *cost.Model, work *schedule.Schedule, ledger *occupancy.Ledger,
	overflows []occupancy.Overflow, reqs map[media.VideoID][]workload.Request, opts Options,
	cache *resolveCache) (candidate, bool, error) {

	type reschedJob struct {
		overflow int
		video    media.VideoID
		tmp      *occupancy.Ledger
		entry    *pairEntry
		result   reschedResult
	}
	var jobs []reschedJob
	pairOf := make([]map[media.VideoID]*pairEntry, len(overflows))
	refsOf := make([][]occupancy.Ref, len(overflows))
	for oi, of := range overflows {
		refs := ledger.OverflowSet(of.Node, of.Interval)
		refsOf[oi] = refs
		pairOf[oi] = make(map[media.VideoID]*pairEntry, len(refs))
		for _, ref := range refs {
			if _, live, err := liveVictim(work, opts, ref); err != nil {
				return candidate{}, false, err
			} else if !live {
				continue
			}
			if _, dup := pairOf[oi][ref.Video]; dup {
				continue
			}
			key := pairKey{node: of.Node, interval: of.Interval, video: ref.Video}
			if pe := cache.pairs[key]; pe != nil && pe.valid(ledger, cache.fileVer[ref.Video]) {
				pairOf[oi][ref.Video] = pe
				continue
			}
			if _, ok := cache.fileCost[ref.Video]; !ok {
				cache.fileCost[ref.Video] = m.FileCost(work.File(ref.Video))
			}
			pe := &pairEntry{fileVer: cache.fileVer[ref.Video]}
			cache.pairs[key] = pe
			pairOf[oi][ref.Video] = pe
			tmp := ledger.OverlayWithout(ref.Video)
			tmp.TrackQueries()
			jobs = append(jobs, reschedJob{overflow: oi, video: ref.Video, tmp: tmp, entry: pe})
		}
	}

	if err := parallel.Do(ctx, opts.Workers, len(jobs), func(i int) {
		j := &jobs[i]
		j.result = rescheduleFile(m, j.tmp, j.video, overflows[j.overflow], reqs[j.video], opts,
			cache.fileCost[j.video])
	}); err != nil {
		return candidate{}, false, fmt.Errorf("sorp: victim selection aborted: %w", err)
	}
	for i := range jobs {
		j := &jobs[i]
		j.entry.ok = j.result.ok
		j.entry.overhead = j.result.overhead
		j.entry.touched = j.tmp.QueriedNodes()
		j.entry.vers = j.entry.vers[:0]
		for _, n := range j.entry.touched {
			j.entry.vers = append(j.entry.vers, ledger.Version(n))
		}
	}

	// Fresh results (with a replayable schedule+ledger in hand) per pair,
	// so a winning fresh pair commits without a replay.
	fresh := make(map[*pairEntry]*reschedResult, len(jobs))
	for i := range jobs {
		fresh[jobs[i].entry] = &jobs[i].result
	}

	var best candidate
	found := false
	for oi, of := range overflows {
		for _, ref := range refsOf[oi] {
			ci, live, err := liveVictim(work, opts, ref)
			if err != nil {
				return candidate{}, false, err
			}
			if !live {
				continue
			}
			pe := pairOf[oi][ref.Video]
			if !pe.ok {
				continue
			}
			heat, cached := pe.heats[ref.Index]
			if !cached {
				heat = computeHeat(m, ci, of, pe.overhead, opts.Metric)
				if pe.heats == nil {
					pe.heats = make(map[int]float64, 4)
				}
				pe.heats[ref.Index] = heat
			}
			cand := candidate{
				heat:     heat,
				overhead: pe.overhead,
				record: Victim{
					Video:    ref.Video,
					Node:     of.Node,
					Window:   of.Interval,
					Heat:     heat,
					Overhead: pe.overhead,
				},
			}
			if rs := fresh[pe]; rs != nil {
				cand.schedule, cand.ledger, cand.newCost = rs.fs, rs.ledger, rs.newCost
			}
			if !found || better(cand, best) {
				best = cand
				found = true
			}
		}
	}
	return best, found, nil
}

func better(a, b candidate) bool {
	if a.heat != b.heat {
		return a.heat > b.heat
	}
	if a.overhead != b.overhead {
		return a.overhead < b.overhead
	}
	return a.record.Video < b.record.Video
}

type reschedResult struct {
	fs       *schedule.FileSchedule
	ledger   *occupancy.Ledger
	overhead units.Money
	newCost  units.Money
	ok       bool
}

// rescheduleFile re-plans one victim file on tmp, a view of the base
// ledger with the victim already removed (Ledger.OverlayWithout; taken by
// the caller sequentially, so the concurrent evaluation path can fan the
// views out afterwards). baseCost is the file's current Ψ contribution,
// maintained incrementally by the resolve cache; the overhead is the Ψ
// delta against it.
func rescheduleFile(m *cost.Model, tmp *occupancy.Ledger,
	vid media.VideoID, of occupancy.Overflow, rs []workload.Request, opts Options,
	baseCost units.Money) (out reschedResult) {
	fs, err := ivs.ScheduleFile(m, vid, rs, ivs.Options{
		Policy: opts.Policy,
		Ledger: tmp,
		Banned: []occupancy.Banned{{Node: of.Node, Interval: of.Interval}},
		Seeds:  opts.Seeds[vid],
		Frozen: opts.Frozen[vid],
	})
	if err != nil {
		return out // unreschedulable candidate; skip (ok=false)
	}
	out.fs = fs
	out.ledger = tmp
	out.newCost = m.FileCost(fs)
	out.overhead = out.newCost - baseCost
	out.ok = true
	return out
}

// computeHeat evaluates the selected metric for rescheduling the residency
// c_i with respect to the overflow (paper Eqs. 8–11). For the per-cost
// metrics, a non-positive overhead means rescheduling improves the overflow
// AND saves money; such candidates are infinitely hot — but only when they
// improve anything at all: a candidate whose improved window is empty
// (X = 0, so ΔS = 0 too) is clamped to heat 0 regardless of overhead, or a
// free-but-useless reschedule would outrank genuine victims and burn
// resolution iterations without shrinking the overflow.
func computeHeat(m *cost.Model, ci schedule.Residency, of occupancy.Overflow,
	overhead units.Money, metric HeatMetric) float64 {

	v := m.Catalog().Video(ci.Video)
	// Improved window: [max(ts_of, ts_ci), min(tf_of, tf_ci + P)] (Eq. 8).
	lo := simtime.Max(of.Interval.Start, ci.Load)
	hi := simtime.Min(of.Interval.End, ci.LastService.Add(v.Playback))
	x := hi.Sub(lo).Seconds()
	if x < 0 {
		x = 0
	}
	var improvement float64
	switch metric {
	case Period, PeriodPerCost:
		improvement = x
	default:
		improvement = ci.SpaceIntegral(simtime.NewInterval(lo, hi), v.Size.Float(), v.Playback)
	}
	if improvement <= 0 {
		return 0
	}
	switch metric {
	case Period, Space:
		return improvement
	default:
		if float64(overhead) <= 0 {
			return math.Inf(1)
		}
		return improvement / float64(overhead)
	}
}
