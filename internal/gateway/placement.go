package gateway

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// View is the per-shard state offered to a placement policy at decision
// time: the gateway's own live counters plus the shard's last polled
// /v1/stats shard block.
type View struct {
	// Index is the shard's position in the gateway configuration.
	Index int
	// ID is the shard's label.
	ID string
	// Outstanding is the gateway's live count of calls currently forwarded
	// to the shard and not yet answered (auto-advances included). Unlike
	// the polled fields it is never stale, which is what makes collision
	// avoidance possible at sub-poll-interval timescales.
	Outstanding int64
	// Routed counts reservations ever placed on the shard.
	Routed uint64
	// HasStats reports whether the polled fields below are populated (the
	// most recent /v1/stats poll of this shard succeeded).
	HasStats bool
	// Pending is the shard's un-planned reservation backlog.
	Pending int
	// InFlight is the shard's admission-control saturation.
	InFlight int
	// Shed counts requests the shard rejected with 429 since it started.
	Shed uint64
	// Epoch is the shard's committed horizon epoch.
	Epoch int
}

// RouteInfo describes the reservation being placed.
type RouteInfo struct {
	User  topology.UserID
	Video media.VideoID
	Start simtime.Time
	// Region is the requesting neighborhood's region index (see
	// UserRegions), or -1 when the gateway has no topology to derive it.
	Region int
}

// Placement chooses the shard for one reservation. Place is always
// invoked under the gateway's placement lock — implementations may keep
// unguarded state, and the chosen shard's Outstanding counter is bumped
// atomically with the decision — and must return an index in
// [0, len(shards)). A Placement instance must not be shared between
// gateways.
type Placement interface {
	Name() string
	Place(r RouteInfo, shards []View) int
}

// RoundRobin rotates through the shards in configuration order,
// ignoring every observable. It is the baseline the policy study
// measures the others against.
func RoundRobin() Placement { return &roundRobin{} }

type roundRobin struct{ next int }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Place(_ RouteInfo, shards []View) int {
	i := p.next % len(shards)
	p.next = (i + 1) % len(shards)
	return i
}

// LeastLoaded prefers the shard with the fewest outstanding gateway
// calls, breaking ties by the polled backlog (pending + in-flight) and
// then by configuration order. The live Outstanding counter leads
// because the polled stats are one poll interval stale — routing on them
// alone sends bursts into a shard that is already busy.
func LeastLoaded() Placement { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Place(_ RouteInfo, shards []View) int {
	best := 0
	for i := 1; i < len(shards); i++ {
		if lighter(shards[i], shards[best]) {
			best = i
		}
	}
	return best
}

func lighter(a, b View) bool {
	if a.Outstanding != b.Outstanding {
		return a.Outstanding < b.Outstanding
	}
	if la, lb := a.Pending+a.InFlight, b.Pending+b.InFlight; la != lb {
		return la < lb
	}
	return false // full tie: keep the earlier shard
}

// Locality routes by the requesting neighborhood's region: users of
// region k always land on shard k, so a shard's plan only ever touches
// its own corner of the metro ring. Requests without a region (no
// topology configured) fall back to the deterministic video hash.
func Locality() Placement { return locality{} }

type locality struct{}

func (locality) Name() string { return "locality" }

func (locality) Place(r RouteInfo, shards []View) int {
	if r.Region >= 0 {
		return r.Region % len(shards)
	}
	return hashPlace(r.Video, len(shards))
}

// Hash partitions the catalog: a title always lands on the same shard,
// so no two shards ever plan copies of the same video. The deterministic
// request-to-shard mapping is also what the failover tests lean on.
func Hash() Placement { return hashPolicy{} }

type hashPolicy struct{}

func (hashPolicy) Name() string { return "hash" }

func (hashPolicy) Place(r RouteInfo, shards []View) int {
	return hashPlace(r.Video, len(shards))
}

func hashPlace(v media.VideoID, n int) int {
	h := fnv.New32a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// ParsePlacement maps a policy name (the -policy flag) to a fresh
// policy instance.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "", "round-robin":
		return RoundRobin(), nil
	case "least-loaded":
		return LeastLoaded(), nil
	case "locality":
		return Locality(), nil
	case "hash":
		return Hash(), nil
	}
	return nil, fmt.Errorf("gateway: unknown placement policy %q (want round-robin | least-loaded | locality | hash)", name)
}

// UserRegions partitions the topology's neighborhoods into n contiguous
// regions of near-equal size — storages ordered by node ID, so adjacent
// neighborhoods share a region — and returns each user's region index.
func UserRegions(topo *topology.Topology, n int) []int {
	storages := topo.Storages()
	region := make(map[topology.NodeID]int, len(storages))
	for i, s := range storages {
		region[s] = i * n / len(storages)
	}
	out := make([]int, topo.NumUsers())
	for i := range out {
		out[i] = region[topo.User(topology.UserID(i)).Local]
	}
	return out
}
