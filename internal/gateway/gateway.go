// Package gateway is the routing front end of the sharded intake tier:
// it partitions the reservation stream across N independent horizon
// shards (each one a primary + warm standby pair replicated by
// internal/replica) while exposing the same intake surface as a single
// server —
//
//	POST /v1/reservations    place on a shard per the Placement policy
//	POST /v1/advance         broadcast; per-shard epoch results aggregated
//	GET  /v1/plan            shard plans merged into one global schedule
//	GET  /v1/stats           per-shard routing + breaker + polled counters
//	GET  /healthz            gateway liveness
//	GET  /readyz             tier readiness (≥1 shard routable)
//
// Placement is pluggable (round-robin, least-loaded, locality, hash; see
// placement.go), and failure handling is automatic: a request hitting a
// fenced or unreachable primary promotes the shard's standby through the
// ordinary HTTP promote path and retries (failover.go), while a shard
// that keeps failing — or keeps answering too slowly, the gray failure a
// dead-or-alive health check cannot see — is ejected from placement by a
// per-shard circuit breaker (breaker.go) until a half-open probe clears
// it. When every shard is ejected the gateway sheds with 503 +
// Retry-After instead of queueing doomed work.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// ShardConfig names one shard: the serving primary and, optionally, the
// warm standby the gateway may promote when the primary fails.
type ShardConfig struct {
	ID      string
	Primary string
	Standby string
}

// Config assembles a Gateway.
type Config struct {
	// Shards lists the partitions (at least one). Empty IDs default to
	// "s<index>".
	Shards []ShardConfig
	// Policy picks the shard per reservation (default RoundRobin()). The
	// instance must be exclusive to this gateway.
	Policy Placement
	// Topo enables region-aware placement: users are mapped onto
	// len(Shards) contiguous regions of the metro ring (UserRegions) and
	// the region reaches the policy via RouteInfo.Region. Optional;
	// without it Locality degrades to the video hash.
	Topo *topology.Topology
	// PollInterval is the period of the background /v1/stats poll that
	// feeds the polled View fields (0 disables the background poller;
	// GET /v1/stats still refreshes on demand).
	PollInterval time.Duration
	// Retry tunes the forwarding client shared by every upstream call.
	Retry retryhttp.Options
	// AutoAdvance makes the gateway close a shard's epoch in the
	// background whenever that shard's intake ack reports its trigger
	// fired. With N shards no client can know per-shard trigger state, so
	// epoch management moves into the tier itself.
	AutoAdvance bool
	// AdvanceLag holds each auto-advance target this far behind the
	// shard's newest acked arrival instant. It is the guard against
	// cross-client arrival skew: a straggler up to AdvanceLag behind the
	// fastest client never lands inside the frozen window.
	AdvanceLag simtime.Duration
	// Breaker tunes the per-shard circuit breakers that eject failing
	// or gray-slow shards from placement (see BreakerConfig). The zero
	// value enables breakers with defaults; set Disabled to opt out.
	Breaker BreakerConfig
	// ShardTimeout bounds each forwarded intake call, failover retries
	// included (0 = only the client's own deadline applies). It is the
	// deadline the gateway propagates to the shard: one slow shard can
	// then never pin an intake worker past this budget, and the blown
	// deadline feeds the shard's breaker as a failure.
	ShardTimeout time.Duration
}

// shardStats is one polled /v1/stats snapshot.
type shardStats struct {
	pending  int
	inFlight int
	shed     uint64
	epoch    int
	role     string
	lag      uint64
	err      string
}

// shard is the gateway's live state for one partition.
type shard struct {
	id string

	mu      sync.Mutex // guards primary/standby and the failover dance
	primary string
	standby string

	outstanding atomic.Int64
	routed      atomic.Uint64
	failovers   atomic.Uint64
	polled      atomic.Pointer[shardStats]
	brk         *breaker // nil when breakers are disabled

	// Auto-advance state: maxAt tracks the newest acked arrival instant,
	// lastAdvance the last advance target (so targets never regress), and
	// advancing coalesces concurrent triggers.
	advMu        sync.Mutex
	advancing    bool
	maxAt        atomic.Int64
	lastAdvance  atomic.Int64
	advances     atomic.Uint64
	advanceNanos atomic.Int64
}

func (sh *shard) current() string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.primary
}

func (sh *shard) view(i int) View {
	v := View{Index: i, ID: sh.id, Outstanding: sh.outstanding.Load(), Routed: sh.routed.Load()}
	if ps := sh.polled.Load(); ps != nil && ps.err == "" {
		v.HasStats = true
		v.Pending, v.InFlight, v.Shed, v.Epoch = ps.pending, ps.inFlight, ps.shed, ps.epoch
	}
	return v
}

// Gateway fronts the shards. It is an http.Handler safe for concurrent
// use; Close it after the HTTP server has drained.
type Gateway struct {
	shards      []*shard
	policy      Placement
	retry       retryhttp.Options
	autoAdvance  bool
	advanceLag   simtime.Duration
	shardTimeout time.Duration
	regions      []int // user -> region, nil without Config.Topo

	// sheds counts reservations the gateway itself refused because every
	// shard's breaker was open (distinct from shard-side 429 sheds).
	sheds atomic.Uint64

	placeMu sync.Mutex // serializes Place with the outstanding bump

	mux *http.ServeMux

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a gateway and, when Config.PollInterval is set, starts its
// background stats poller.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("gateway: no shards configured")
	}
	policy := cfg.Policy
	if policy == nil {
		policy = RoundRobin()
	}
	g := &Gateway{
		policy:       policy,
		retry:        cfg.Retry,
		autoAdvance:  cfg.AutoAdvance,
		advanceLag:   cfg.AdvanceLag,
		shardTimeout: cfg.ShardTimeout,
		stop:         make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		id := sc.ID
		if id == "" {
			id = fmt.Sprintf("s%d", i)
		}
		if seen[id] {
			return nil, fmt.Errorf("gateway: duplicate shard id %q", id)
		}
		seen[id] = true
		if sc.Primary == "" {
			return nil, fmt.Errorf("gateway: shard %q has no primary URL", id)
		}
		sh := &shard{
			id:      id,
			primary: strings.TrimRight(sc.Primary, "/"),
			standby: strings.TrimRight(sc.Standby, "/"),
			brk:     newBreaker(cfg.Breaker),
		}
		sh.lastAdvance.Store(-1)
		g.shards = append(g.shards, sh)
	}
	if cfg.Topo != nil {
		g.regions = UserRegions(cfg.Topo, len(g.shards))
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /healthz", g.handleHealth)
	g.mux.HandleFunc("GET /readyz", g.handleReady)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /v1/plan", g.handlePlan)
	g.mux.HandleFunc("POST /v1/reservations", g.handleReservation)
	g.mux.HandleFunc("POST /v1/advance", g.handleAdvance)
	if cfg.PollInterval > 0 {
		g.wg.Add(1)
		go g.pollLoop(cfg.PollInterval)
	}
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Policy returns the active placement policy's name.
func (g *Gateway) Policy() string { return g.policy.Name() }

// Close stops the background poller and waits for in-flight
// auto-advances to finish. Call it after the HTTP server has drained.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

func (g *Gateway) closed() bool {
	select {
	case <-g.stop:
		return true
	default:
		return false
	}
}

// place runs the policy and bumps the chosen shard's counters in one
// critical section, so two concurrent placements can never both observe
// the shard as idle. Shards with an open breaker are hidden from the
// policy (degraded routing); an open breaker past its cool-off admits
// this placement as its half-open probe, and probe slots the policy did
// not use are released. Returns nil when every shard is ejected — the
// caller must shed.
func (g *Gateway) place(info RouteInfo) *shard {
	now := time.Now()
	g.placeMu.Lock()
	defer g.placeMu.Unlock()
	views := make([]View, 0, len(g.shards))
	eligible := make([]*shard, 0, len(g.shards))
	for i, sh := range g.shards {
		if !sh.brk.allow(now) {
			continue
		}
		views = append(views, sh.view(i))
		eligible = append(eligible, sh)
	}
	if len(eligible) == 0 {
		return nil
	}
	idx := g.policy.Place(info, views)
	if idx < 0 || idx >= len(eligible) {
		idx = 0
	}
	sh := eligible[idx]
	for _, other := range eligible {
		if other != sh {
			other.brk.release()
		}
	}
	sh.outstanding.Add(1)
	sh.routed.Add(1)
	return sh
}

// ReservationResponse is the gateway's POST /v1/reservations reply: the
// shard's ack plus which shard served it.
type ReservationResponse struct {
	server.ReservationResponse
	Shard string `json:"shard"`
}

func (g *Gateway) handleReservation(w http.ResponseWriter, r *http.Request) {
	var req server.ReservationRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Start < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("negative start time %v", req.Start))
		return
	}
	info := RouteInfo{User: req.User, Video: req.Video, Start: req.Start, Region: -1}
	if g.regions != nil && int(req.User) >= 0 && int(req.User) < len(g.regions) {
		info.Region = g.regions[req.User]
	}
	sh := g.place(info)
	if sh == nil {
		// Degraded mode bottomed out: every shard's breaker is open.
		// Shed like an overloaded shard would, naming when to come back.
		g.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("all shards ejected by circuit breakers; retry shortly"))
		return
	}
	defer sh.outstanding.Add(-1)
	ctx, cancel := g.shardContext(r)
	defer cancel()
	var ack server.ReservationResponse
	t0 := time.Now()
	err := g.forward(ctx, sh, func(base string) error {
		return retryhttp.PostJSON(ctx, g.retry, base+"/v1/reservations", req, &ack)
	})
	recordOutcome(sh, time.Since(t0), err)
	if err != nil {
		writeUpstreamErr(w, sh, err)
		return
	}
	at := req.Start
	if req.At != nil {
		at = *req.At
	}
	storeMax(&sh.maxAt, int64(at))
	if ack.EpochDue {
		g.maybeAutoAdvance(sh)
	}
	writeJSON(w, http.StatusAccepted, ReservationResponse{ReservationResponse: ack, Shard: sh.id})
}

// shardContext derives the per-forward deadline: the configured
// ShardTimeout, tightened further by an X-Request-Budget-Ms header when
// the client names its own remaining budget. The request context stays
// the parent, so client disconnects still cancel the forward.
func (g *Gateway) shardContext(r *http.Request) (context.Context, context.CancelFunc) {
	budget := g.shardTimeout
	if h := r.Header.Get("X-Request-Budget-Ms"); h != "" {
		if ms, err := strconv.Atoi(h); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; budget == 0 || d < budget {
				budget = d
			}
		}
	}
	if budget <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), budget)
}

// recordOutcome feeds one forwarded call into the shard's breaker.
// Protocol answers below 500 — a shard-side 429 shed, a late-arrival
// 409 — are the shard working as designed and count as successes; the
// 5xx family, transport death, and a blown deadline count as failures.
// A cancelled client says nothing about the shard and is not recorded.
func recordOutcome(sh *shard, dur time.Duration, err error) {
	if sh.brk == nil {
		return
	}
	now := time.Now()
	if err == nil {
		sh.brk.record(now, dur, false)
		return
	}
	var se *retryhttp.StatusError
	if errors.As(err, &se) {
		sh.brk.record(now, dur, se.Code >= 500)
		return
	}
	if errors.Is(err, context.Canceled) {
		return
	}
	sh.brk.record(now, dur, true)
}

// maybeAutoAdvance closes sh's epoch in the background. Concurrent
// triggers coalesce: while one advance is in flight the next EpochDue
// ack re-arms it.
func (g *Gateway) maybeAutoAdvance(sh *shard) {
	if !g.autoAdvance || g.closed() {
		return
	}
	sh.advMu.Lock()
	if sh.advancing {
		sh.advMu.Unlock()
		return
	}
	sh.advancing = true
	sh.advMu.Unlock()
	// The advance occupies the shard like any forwarded call, so live
	// policies (least-loaded) steer new reservations away from it.
	sh.outstanding.Add(1)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer sh.outstanding.Add(-1)
		defer func() {
			sh.advMu.Lock()
			sh.advancing = false
			sh.advMu.Unlock()
		}()
		g.advanceShard(context.Background(), sh)
	}()
}

func (g *Gateway) advanceShard(ctx context.Context, sh *shard) {
	to := simtime.Time(sh.maxAt.Load()).Add(-g.advanceLag)
	if to < 0 {
		to = 0
	}
	if int64(to) <= sh.lastAdvance.Load() {
		return // nothing new to commit
	}
	t0 := time.Now()
	var res horizon.EpochResult
	err := g.forward(ctx, sh, func(base string) error {
		return retryhttp.PostJSON(ctx, g.retry, base+"/v1/advance", server.AdvanceRequest{To: to}, &res)
	})
	// Epoch solves are legitimately slow, so an advance feeds the breaker
	// only its error signal, never its duration.
	recordOutcome(sh, 0, err)
	if err != nil {
		return // not fatal: the next EpochDue ack retries
	}
	storeMax(&sh.lastAdvance, int64(to))
	sh.advances.Add(1)
	sh.advanceNanos.Add(time.Since(t0).Nanoseconds())
}

// ShardEpoch is one shard's slice of a broadcast advance.
type ShardEpoch struct {
	Shard     string              `json:"shard"`
	Result    horizon.EpochResult `json:"result"`
	ElapsedMS int64               `json:"elapsed_ms"`
}

// ShardFailure is one shard's slot in a partially failed broadcast:
// which shard, what went wrong, and the HTTP status when the shard
// answered with one (0 for transport-level deaths).
type ShardFailure struct {
	Shard  string `json:"shard"`
	Error  string `json:"error"`
	Status int    `json:"status,omitempty"`
}

// AdvanceResponse aggregates a broadcast epoch close. The top-level
// fields mirror horizon.EpochResult's JSON, so single-server clients
// (cmd/vsphorizon) decode it unchanged: counters are summed, Horizon is
// the slowest (minimum) shard commit horizon, Epoch the largest shard
// epoch index. LagMS is the epoch-advance lag — the spread between the
// fastest and slowest shard's advance round-trip.
//
// A broadcast is not all-or-nothing: shards that advanced report their
// results in Shards, shards that did not land in Failed, and only a
// broadcast with zero successes is an error. A partitioned shard
// therefore cannot veto the rest of the tier's epoch close; it catches
// up on the next advance once reachable (targets are absolute instants,
// so a missed epoch is re-covered, never skipped).
type AdvanceResponse struct {
	Epoch             int            `json:"epoch"`
	Horizon           simtime.Time   `json:"horizon"`
	Admitted          int            `json:"admitted"`
	Replanned         int            `json:"replanned"`
	FrozenDeliveries  int            `json:"frozen_deliveries"`
	FrozenResidencies int            `json:"frozen_residencies"`
	Overflows         int            `json:"overflows"`
	Cost              units.Money    `json:"cost"`
	Shards            []ShardEpoch   `json:"shards"`
	Failed            []ShardFailure `json:"failed,omitempty"`
	LagMS             int64          `json:"lag_ms"`
}

func (g *Gateway) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req server.AdvanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, sh, err := g.advanceAll(r.Context(), req.To)
	if err != nil {
		writeUpstreamErr(w, sh, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// advanceAll broadcasts one advance to every shard concurrently and
// aggregates whatever succeeded; shards that failed are reported in the
// response's Failed list instead of vetoing the broadcast. Only when
// every shard fails does it return an error (with the first offending
// shard, for the error reply).
func (g *Gateway) advanceAll(ctx context.Context, to simtime.Time) (AdvanceResponse, *shard, error) {
	type outcome struct {
		res horizon.EpochResult
		dur time.Duration
		err error
	}
	outs := make([]outcome, len(g.shards))
	var wg sync.WaitGroup
	for i, sh := range g.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sh.outstanding.Add(1)
			defer sh.outstanding.Add(-1)
			t0 := time.Now()
			var res horizon.EpochResult
			err := g.forward(ctx, sh, func(base string) error {
				return retryhttp.PostJSON(ctx, g.retry, base+"/v1/advance", server.AdvanceRequest{To: to}, &res)
			})
			recordOutcome(sh, 0, err)
			outs[i] = outcome{res: res, dur: time.Since(t0), err: err}
		}(i, sh)
	}
	wg.Wait()
	var agg AdvanceResponse
	minDur, maxDur := time.Duration(-1), time.Duration(0)
	first := true
	for i, o := range outs {
		sh := g.shards[i]
		if o.err != nil {
			f := ShardFailure{Shard: sh.id, Error: o.err.Error()}
			var se *retryhttp.StatusError
			if errors.As(o.err, &se) {
				f.Status = se.Code
			}
			agg.Failed = append(agg.Failed, f)
			continue
		}
		storeMax(&sh.lastAdvance, int64(to))
		if first || o.res.Horizon < agg.Horizon {
			agg.Horizon = o.res.Horizon
		}
		first = false
		if o.res.Epoch > agg.Epoch {
			agg.Epoch = o.res.Epoch
		}
		agg.Admitted += o.res.Admitted
		agg.Replanned += o.res.Replanned
		agg.FrozenDeliveries += o.res.FrozenDeliveries
		agg.FrozenResidencies += o.res.FrozenResidencies
		agg.Overflows += o.res.Overflows
		agg.Cost += o.res.Cost
		agg.Shards = append(agg.Shards, ShardEpoch{Shard: sh.id, Result: o.res, ElapsedMS: o.dur.Milliseconds()})
		if minDur < 0 || o.dur < minDur {
			minDur = o.dur
		}
		if o.dur > maxDur {
			maxDur = o.dur
		}
	}
	if minDur >= 0 {
		agg.LagMS = (maxDur - minDur).Milliseconds()
	}
	if len(agg.Shards) == 0 {
		for i, o := range outs {
			if o.err != nil {
				return agg, g.shards[i], o.err
			}
		}
	}
	return agg, nil, nil
}

func (g *Gateway) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": len(g.shards)})
}

// ReadyResponse is the GET /readyz reply: the tier is ready while at
// least one shard is routable (breaker closed, half-open, or open but
// past its cool-off and so about to be probed).
type ReadyResponse struct {
	Ready         bool `json:"ready"`
	HealthyShards int  `json:"healthy_shards"`
	Shards        int  `json:"shards"`
}

// Ready reports tier readiness from the breakers alone — a pure
// read, safe for load-balancer probes at any rate.
func (g *Gateway) Ready() ReadyResponse {
	now := time.Now()
	resp := ReadyResponse{Shards: len(g.shards)}
	for _, sh := range g.shards {
		if sh.brk.viable(now) {
			resp.HealthyShards++
		}
	}
	resp.Ready = resp.HealthyShards > 0
	return resp
}

func (g *Gateway) handleReady(w http.ResponseWriter, _ *http.Request) {
	resp := g.Ready()
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// pollLoop refreshes the polled stats snapshots on the configured
// interval until the gateway is closed.
func (g *Gateway) pollLoop(every time.Duration) {
	defer g.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	timeout := every
	if timeout < time.Second {
		timeout = time.Second
	}
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			g.PollNow(ctx)
			cancel()
		}
	}
}

// PollNow refreshes every shard's stats snapshot from its /v1/stats —
// exactly one request per shard, thanks to the shard block the servers
// expose. Polls never trigger failover: a poll failure is recorded, and
// only real intake traffic may promote a standby.
func (g *Gateway) PollNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			var st server.StatsResponse
			if err := retryhttp.GetJSON(ctx, g.retry, sh.current()+"/v1/stats", &st); err != nil {
				sh.polled.Store(&shardStats{err: err.Error()})
				return
			}
			sh.polled.Store(&shardStats{
				pending:  st.Horizon.Pending,
				inFlight: st.Overload.InFlight,
				shed:     st.Overload.Shed,
				epoch:    st.Shard.Epoch,
				role:     st.Shard.Role,
				lag:      st.Shard.ReplicationLag,
			})
		}(sh)
	}
	wg.Wait()
}

// ShardStatus is one shard's row in the gateway's GET /v1/stats reply.
type ShardStatus struct {
	ID          string `json:"id"`
	Primary     string `json:"primary"`
	Standby     string `json:"standby,omitempty"`
	Routed      uint64 `json:"routed"`
	Outstanding int64  `json:"outstanding"`
	Failovers   uint64 `json:"failovers"`
	Advances    uint64 `json:"advances"`
	AdvanceMS   int64  `json:"advance_ms"`
	// Breaker is the shard's circuit-breaker snapshot (absent when
	// breakers are disabled).
	Breaker *BreakerStatus `json:"breaker,omitempty"`
	// Polled shard-side counters (zero until a poll succeeds).
	Pending        int    `json:"pending"`
	InFlight       int    `json:"in_flight"`
	Shed           uint64 `json:"shed"`
	Epoch          int    `json:"epoch"`
	Role           string `json:"role,omitempty"`
	ReplicationLag uint64 `json:"replication_lag"`
	StatsError     string `json:"stats_error,omitempty"`
}

// StatsResponse is the gateway's GET /v1/stats reply.
type StatsResponse struct {
	Policy    string        `json:"policy"`
	Shards    []ShardStatus `json:"shards"`
	Routed    uint64        `json:"routed_total"`
	Shed      uint64        `json:"shed_total"`
	Failovers uint64        `json:"failovers_total"`
	// GatewayShed counts reservations the gateway refused itself
	// because every shard's breaker was open (shard-side 429 sheds are
	// in Shed).
	GatewayShed uint64 `json:"gateway_shed_total"`
	// HealthyShards is the breaker view of the tier, as in /readyz.
	HealthyShards int `json:"healthy_shards"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.PollNow(r.Context())
	writeJSON(w, http.StatusOK, g.Stats())
}

// Stats assembles the gateway's view of the tier from the counters and
// the most recent poll (call PollNow first for fresh shard-side fields).
func (g *Gateway) Stats() StatsResponse {
	now := time.Now()
	resp := StatsResponse{Policy: g.policy.Name(), GatewayShed: g.sheds.Load()}
	for _, sh := range g.shards {
		sh.mu.Lock()
		row := ShardStatus{ID: sh.id, Primary: sh.primary, Standby: sh.standby}
		sh.mu.Unlock()
		row.Routed = sh.routed.Load()
		row.Outstanding = sh.outstanding.Load()
		row.Failovers = sh.failovers.Load()
		row.Advances = sh.advances.Load()
		row.AdvanceMS = time.Duration(sh.advanceNanos.Load()).Milliseconds()
		row.Breaker = sh.brk.status(now)
		if sh.brk.viable(now) {
			resp.HealthyShards++
		}
		if ps := sh.polled.Load(); ps != nil {
			row.Pending, row.InFlight, row.Shed = ps.pending, ps.inFlight, ps.shed
			row.Epoch, row.Role, row.ReplicationLag = ps.epoch, ps.role, ps.lag
			row.StatsError = ps.err
		}
		resp.Routed += row.Routed
		resp.Shed += row.Shed
		resp.Failovers += row.Failovers
		resp.Shards = append(resp.Shards, row)
	}
	return resp
}

// storeMax raises a to at least v.
func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return false
	}
	return true
}

// writeUpstreamErr relays a shard failure: protocol answers keep their
// status and message (a late-arrival 409 must reach the client intact);
// transport-level failures become 502, which retrying clients treat as
// transient.
func writeUpstreamErr(w http.ResponseWriter, sh *shard, err error) {
	id := ""
	if sh != nil {
		id = sh.id
	}
	var se *retryhttp.StatusError
	if errors.As(err, &se) {
		writeJSON(w, se.Code, map[string]string{"error": se.Message, "shard": id})
		return
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": fmt.Sprintf("shard %s: %v", id, err),
		"shard": id,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
