package wal

import (
	"errors"
	"io/fs"
	"os"
)

// Tail streaming: the replication shipper resumes from any acknowledged
// sequence by re-reading the journal's decoded suffix. The log file is
// append-only between compactions, so a concurrent read observes a valid
// prefix at worst (the writer's in-flight record decodes as a truncated
// tail and is picked up on the next round).

// Checksum returns the CRC-32 (IEEE) a record with this sequence and
// payload must carry — the same checksum the on-disk framing stores.
// Exported so replication transport can re-verify shipped records before
// applying them.
func Checksum(seq uint64, payload []byte) uint32 {
	return checksum(seq, payload)
}

// ReadLogAfter decodes the log at path and returns the records with
// sequence numbers strictly greater than after, in sequence order. A
// missing file reads as an empty, clean log (the journal may have just
// been compacted away). A truncated tail is tolerated — the torn record
// was never acknowledged — but corruption is returned as an error
// wrapping ErrCorrupt, exactly like Open.
func ReadLogAfter(path string, after uint64) ([]Record, Tail, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, TailClean, nil
	}
	if err != nil {
		return nil, TailClean, err
	}
	recs, tail, derr := DecodeAll(data)
	if derr != nil {
		return nil, tail, derr
	}
	i := 0
	for i < len(recs) && recs[i].Seq <= after {
		i++
	}
	return recs[i:], tail, nil
}
