// Package cli holds the file-loading and model-wiring helpers shared by
// the command-line tools.
package cli

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// LoadTopology reads a topology spec JSON file.
func LoadTopology(path string) (*topology.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	defer f.Close()
	return topology.Decode(f)
}

// LoadCatalog reads a catalog JSON file.
func LoadCatalog(path string) (*media.Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return media.Decode(f)
}

// LoadRequests reads a request-batch JSON file.
func LoadRequests(path string) (workload.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("requests: %w", err)
	}
	defer f.Close()
	var set workload.Set
	if err := json.NewDecoder(f).Decode(&set); err != nil {
		return nil, fmt.Errorf("requests: decode: %w", err)
	}
	return set, nil
}

// LoadRequestsAuto loads a request batch, choosing the format by file
// extension: ".csv" parses a reservation trace (validated against the
// topology and catalog), anything else parses JSON.
func LoadRequestsAuto(path string, topo *topology.Topology, cat *media.Catalog) (workload.Set, error) {
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("requests: %w", err)
		}
		defer f.Close()
		return workload.ReadCSV(f, topo, cat)
	}
	return LoadRequests(path)
}

// LoadSchedule reads a schedule JSON file.
func LoadSchedule(path string) (*schedule.Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	defer f.Close()
	s := schedule.New()
	if err := json.NewDecoder(f).Decode(s); err != nil {
		return nil, fmt.Errorf("schedule: decode: %w", err)
	}
	return s, nil
}

// LoadScenario reads a fault scenario JSON file.
func LoadScenario(path string) (*faults.Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	return faults.Decode(f)
}

// SaveJSON writes v as indented JSON to path ("-" or "" means stdout).
func SaveJSON(path string, v any) error {
	w := os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// BuildModel wires a uniform-rate cost model over a topology and catalog.
// Rates use the paper's quoted units: srate in $/(GB·hour), nrate in $/GB.
func BuildModel(topo *topology.Topology, cat *media.Catalog, srateGBHour, nrateGB float64) *cost.Model {
	srate := pricing.SRate(srateGBHour / (float64(units.GB) * 3600))
	book := pricing.Uniform(topo, srate, pricing.PerGB(nrateGB))
	table := routing.NewTable(book)
	return cost.NewModel(book, table, cat)
}
