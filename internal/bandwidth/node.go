package bandwidth

import (
	"fmt"
	"math"
	"sort"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// NodeCaps holds per-storage I/O bandwidth limits: the total streaming
// rate a node's disk subsystem sustains, covering streams it serves
// (deliveries supplied by a copy at the node, local playbacks included)
// and cache-fill writes. A zero entry means uncapped. The second half of
// the paper's §6 future work ("bandwidth constraints of the intermediate
// storages").
type NodeCaps struct {
	Node []units.BytesPerSec
}

// UniformNodes caps every intermediate storage at the same I/O rate; the
// warehouse stays uncapped (it is the provider's high-end archive).
func UniformNodes(topo *topology.Topology, cap units.BytesPerSec) NodeCaps {
	c := NodeCaps{Node: make([]units.BytesPerSec, topo.NumNodes())}
	for _, n := range topo.Nodes() {
		if n.Kind == topology.KindStorage {
			c.Node[n.ID] = cap
		}
	}
	return c
}

// Capped reports whether the node has a finite I/O limit.
func (c NodeCaps) Capped(n topology.NodeID) bool {
	return int(n) < len(c.Node) && c.Node[n] > 0
}

// NodeOverload is one saturated-storage situation.
type NodeOverload struct {
	Node     topology.NodeID
	Interval simtime.Interval
	Peak     units.BytesPerSec
}

func (o NodeOverload) String() string {
	return fmt.Sprintf("storage %d I/O overloaded %s peak=%v", o.Node, o.Interval, o.Peak)
}

// NodeUsage is the per-storage I/O profile of a schedule.
type NodeUsage struct {
	topo   *topology.Topology
	events [][]event
}

// AnalyzeNodes builds the I/O profile: each delivery loads its supply node
// at the title's rate for the playback length (reads), and each residency
// loads its own node while being written (its feeding stream's window).
func AnalyzeNodes(topo *topology.Topology, catalog *media.Catalog, s *schedule.Schedule) *NodeUsage {
	u := &NodeUsage{topo: topo, events: make([][]event, topo.NumNodes())}
	add := func(n topology.NodeID, start simtime.Time, playback simtime.Duration, rate float64) {
		u.events[n] = append(u.events[n],
			event{at: start, rate: rate},
			event{at: start.Add(playback), rate: -rate})
	}
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		v := catalog.Video(vid)
		rate := float64(v.Rate)
		for _, d := range fs.Deliveries {
			add(d.Src(), d.Start, v.Playback, rate) // read at the supply
		}
		for _, c := range fs.Residencies {
			add(c.Loc, c.Load, v.Playback, rate) // write while loading
		}
	}
	for n := range u.events {
		sort.Slice(u.events[n], func(i, j int) bool { return u.events[n][i].at < u.events[n][j].at })
	}
	return u
}

// PeakRate returns the maximum I/O rate ever seen at the node.
func (u *NodeUsage) PeakRate(n topology.NodeID) units.BytesPerSec {
	peak, cur := 0.0, 0.0
	for _, ev := range u.events[n] {
		cur += ev.rate
		if cur > peak {
			peak = cur
		}
	}
	return units.BytesPerSec(peak)
}

// Overloads returns the windows where each capped storage's I/O rate
// strictly exceeds its limit.
func (u *NodeUsage) Overloads(caps NodeCaps) []NodeOverload {
	var out []NodeOverload
	for n := range u.events {
		id := topology.NodeID(n)
		if !caps.Capped(id) {
			continue
		}
		for _, x := range sweepSteps(u.events[n], float64(caps.Node[id])) {
			out = append(out, NodeOverload{Node: id, Interval: x.iv, Peak: units.BytesPerSec(x.peak)})
		}
	}
	return out
}

// NodeResult reports a storage-I/O resolution pass.
type NodeResult struct {
	Schedule   *schedule.Schedule
	Moves      int // deliveries re-pointed at the warehouse
	CostBefore units.Money
	CostAfter  units.Money
	Unresolved []NodeOverload
}

// Delta returns the cost increase paid for I/O feasibility.
func (r *NodeResult) Delta() units.Money { return r.CostAfter - r.CostBefore }

// ResolveNodes offloads saturated storages: deliveries reading an
// over-committed copy are re-pointed at the warehouse, cheapest first,
// until every capped storage fits its I/O limit (or no movable delivery
// remains — a delivery that feeds a cache copy stays put, since moving it
// would re-source the copy).
//
// The input schedule is not modified.
func ResolveNodes(m *cost.Model, s *schedule.Schedule, caps NodeCaps) (*NodeResult, error) {
	topo := m.Book().Topology()
	work := s.Clone()
	res := &NodeResult{Schedule: work, CostBefore: m.ScheduleCost(s)}

	maxIter := 10 * (work.NumDeliveries() + 1)
	for iter := 0; ; iter++ {
		usage := AnalyzeNodes(topo, m.Catalog(), work)
		overloads := filterNodeResolved(usage.Overloads(caps), res.Unresolved)
		if len(overloads) == 0 {
			break
		}
		if iter >= maxIter {
			return nil, fmt.Errorf("bandwidth: node resolution did not converge after %d moves", iter)
		}
		of := overloads[0]
		if !moveOneDelivery(m, work, of) {
			res.Unresolved = append(res.Unresolved, of)
			continue
		}
		res.Moves++
	}
	res.CostAfter = m.ScheduleCost(work)
	return res, nil
}

func filterNodeResolved(ovs, unresolved []NodeOverload) []NodeOverload {
	if len(unresolved) == 0 {
		return ovs
	}
	kept := ovs[:0]
	for _, o := range ovs {
		skip := false
		for _, u := range unresolved {
			if o.Node == u.Node && o.Interval.Overlaps(u.Interval) {
				skip = true
				break
			}
		}
		if !skip {
			kept = append(kept, o)
		}
	}
	return kept
}

// moveOneDelivery re-points the cheapest-to-move delivery reading from the
// overloaded node during the window at the warehouse, maintaining every
// schedule invariant (service lists, LastService, residency pruning).
func moveOneDelivery(m *cost.Model, work *schedule.Schedule, of NodeOverload) bool {
	topo := m.Book().Topology()
	bestDelta := math.Inf(1)
	var bestVid media.VideoID
	bestIdx := -1

	for _, vid := range work.VideoIDs() {
		fs := work.Files[vid]
		v := m.Catalog().Video(vid)
		for di, d := range fs.Deliveries {
			if d.Src() != of.Node || d.SourceResidency == schedule.NoResidency {
				continue
			}
			window := simtime.NewInterval(d.Start, d.Start.Add(v.Playback))
			if !window.Overlaps(of.Interval) && !window.Contains(of.Interval.Start) {
				continue
			}
			if feedsAnyResidency(fs, di) {
				continue
			}
			delta := float64(moveDelta(m, fs, v, di))
			if delta < bestDelta {
				bestDelta = delta
				bestVid, bestIdx = vid, di
			}
		}
	}
	if bestIdx < 0 {
		return false
	}
	applyMove(m, topo, work.Files[bestVid], bestIdx)
	return true
}

func feedsAnyResidency(fs *schedule.FileSchedule, di int) bool {
	for _, c := range fs.Residencies {
		if c.FedBy == di {
			return true
		}
	}
	return false
}

// moveDelta prices re-pointing delivery di at the warehouse: the new
// direct transfer, minus the old relay transfer, minus any storage saved
// by the source copy's LastService shrinking.
func moveDelta(m *cost.Model, fs *schedule.FileSchedule, v media.Video, di int) units.Money {
	d := fs.Deliveries[di]
	c := fs.Residencies[d.SourceResidency]
	newNet := m.TransferCost(v.ID, m.Book().Topology().Warehouse(), d.Dst())
	oldNet := m.TransferCost(v.ID, c.Loc, d.Dst())

	oldStorage := m.ResidencyCost(c)
	shrunk := c
	shrunk.LastService = lastServiceWithout(fs, d.SourceResidency, di)
	newStorage := m.ResidencyCost(shrunk)
	return newNet - oldNet + newStorage - oldStorage
}

// lastServiceWithout recomputes a residency's LastService with one service
// removed.
func lastServiceWithout(fs *schedule.FileSchedule, resIdx, di int) simtime.Time {
	c := fs.Residencies[resIdx]
	last := c.Load
	for _, svc := range c.Services {
		if svc == di {
			continue
		}
		if fs.Deliveries[svc].Start > last {
			last = fs.Deliveries[svc].Start
		}
	}
	return last
}

// applyMove performs the surgery: route from the warehouse, detach from
// the source residency, shrink or prune the residency.
func applyMove(m *cost.Model, topo *topology.Topology, fs *schedule.FileSchedule, di int) {
	d := &fs.Deliveries[di]
	resIdx := d.SourceResidency
	route, err := m.Table().Route(topo.Warehouse(), d.Dst())
	if err != nil {
		// Topology is connected by construction; treat as programmer error.
		panic("bandwidth: warehouse route missing: " + err.Error())
	}
	d.Route = route
	d.SourceResidency = schedule.NoResidency

	c := &fs.Residencies[resIdx]
	kept := c.Services[:0]
	for _, svc := range c.Services {
		if svc != di {
			kept = append(kept, svc)
		}
	}
	c.Services = kept
	c.LastService = lastServiceWithout(fs, resIdx, di)
	if len(c.Services) == 0 {
		pruneResidency(fs, resIdx)
	}
}

// pruneResidency removes one serviceless residency and remaps the
// delivery-side indices (Residency.FedBy indexes deliveries and needs no
// remap).
func pruneResidency(fs *schedule.FileSchedule, resIdx int) {
	fs.Residencies = append(fs.Residencies[:resIdx], fs.Residencies[resIdx+1:]...)
	for i := range fs.Deliveries {
		if sr := fs.Deliveries[i].SourceResidency; sr != schedule.NoResidency && sr > resIdx {
			fs.Deliveries[i].SourceResidency = sr - 1
		}
	}
}
