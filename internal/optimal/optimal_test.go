package optimal

import (
	"math/rand"
	"testing"

	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/stats"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestOptimalMatchesHandAnalysisOnFig2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	fs, best, err := ScheduleFile(f.Model, 0, f.Requests)
	if err != nil {
		t.Fatalf("ScheduleFile: %v", err)
	}
	// $108.45 is optimal on the worked example (beats the paper's S2).
	if !best.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("optimal cost = %v, want $108.45", best)
	}
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
}

func TestGreedyIsOptimalOnFig2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	gap, err := Gap(f.Model, 0, f.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if gap != 0 {
		t.Errorf("greedy gap on Fig 2 = %g, want 0", gap)
	}
}

func TestRejectsOversizedInstance(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make(workload.Set, MaxRequests+1)
	for i := range reqs {
		reqs[i] = workload.Request{User: 0, Video: 0, Start: simtime.Time(i * 100)}
	}
	if _, _, err := ScheduleFile(f.Model, 0, reqs); err == nil {
		t.Error("expected error above MaxRequests")
	}
}

func TestInputValidation(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ScheduleFile(f.Model, 0, workload.Set{{User: 0, Video: 9, Start: 0}}); err == nil {
		t.Error("expected wrong-video error")
	}
	if _, _, err := ScheduleFile(f.Model, 0, workload.Set{{User: 42, Video: 0, Start: 0}}); err == nil {
		t.Error("expected unknown-user error")
	}
	fs, c, err := ScheduleFile(f.Model, 0, nil)
	if err != nil || c != 0 || len(fs.Deliveries) != 0 {
		t.Errorf("empty instance: %v %v %v", fs, c, err)
	}
}

// TestGreedyNeverBeatsOptimal is the central cross-check of both
// implementations: over many random small instances the exhaustive search
// must lower-bound the greedy, and the schedules of both must validate.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 4, 8, 50*units.GB, testutil.PerGBHour(2), testutil.CentsPerMbit(0.1), 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	var gaps []float64
	users := rig.Topo.Users()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4) // 2..5 requests
		reqs := make(workload.Set, n)
		for i := range reqs {
			reqs[i] = workload.Request{
				User:  users[rng.Intn(len(users))].ID,
				Video: 0,
				Start: simtime.Time(rng.Intn(8 * 3600)),
			}
		}
		gap, err := Gap(rig.Model, 0, reqs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gap < 0 {
			t.Fatalf("trial %d: negative gap %g", trial, gap)
		}
		gaps = append(gaps, gap)

		opt, _, err := ScheduleFile(rig.Model, 0, reqs)
		if err != nil {
			t.Fatal(err)
		}
		s := schedule.New()
		s.Put(opt)
		if err := s.Validate(rig.Topo, rig.Catalog, reqs); err != nil {
			t.Fatalf("trial %d: optimal schedule invalid: %v", trial, err)
		}
	}
	sum := stats.Summarize(gaps)
	// The paper's empirical claim: the heuristic stays within ~30% of
	// optimal on average. Our greedy is far tighter on these instances.
	if sum.Mean > 0.30 {
		t.Errorf("mean optimality gap %.1f%% exceeds the paper's 30%% bound", 100*sum.Mean)
	}
	t.Logf("optimality gap over %d instances: mean %.2f%%, worst %.2f%%",
		sum.N, 100*sum.Mean, 100*sum.Max)
}

// TestOptimalFindsCrossNeighborhoodPlans checks a case where the optimum
// requires chaining caches across neighborhoods.
func TestOptimalFindsCrossNeighborhoodPlans(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	u23 := f.Topo.UsersAt(f.IS2)
	// Two late requests at IS2 far apart: optimal caches at IS2 from the
	// first stream rather than re-streaming from VW.
	reqs := workload.Set{
		{User: u23[0], Video: 0, Start: 0},
		{User: u23[1], Video: 0, Start: simtime.Time(5 * simtime.Hour)},
	}
	fs, best, err := ScheduleFile(f.Model, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ivs.Direct(f.Model, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if best >= f.Model.FileCost(direct) {
		t.Errorf("optimal %v not cheaper than direct %v", best, f.Model.FileCost(direct))
	}
	if len(fs.Residencies) == 0 {
		t.Error("expected the optimum to cache")
	}
}

func TestGapErrorPropagation(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Gap(f.Model, 0, workload.Set{{User: 99, Video: 0, Start: 0}}); err == nil {
		t.Error("expected error from invalid request")
	}
}
