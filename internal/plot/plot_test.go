package plot

import (
	"encoding/xml"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/stats"
)

func sample() *experiment.Figure {
	s1 := stats.Series{Name: "with storage"}
	s1.Add(300, 374000)
	s1.Add(500, 624000)
	s1.Add(1000, 1248000)
	s2 := stats.Series{Name: `baseline & "direct"`}
	s2.Add(300, 404000)
	s2.Add(500, 674000)
	s2.Add(1000, 1348000)
	return &experiment.Figure{
		ID: "figX", Title: "sample <figure>", XLabel: "nrate", YLabel: "cost ($)",
		Series: []stats.Series{s1, s2},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := WriteSVG(&sb, sample(), Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Must be well-formed XML (escaping of & < > " included).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	for _, want := range []string{"<svg", "polyline", "circle", "with storage", "&amp;", "&lt;figure&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One polyline per series.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// One dot per point.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("circles = %d, want 6", got)
	}
}

func TestWriteSVGCustomSize(t *testing.T) {
	var sb strings.Builder
	if err := WriteSVG(&sb, sample(), Options{Width: 1000, Height: 600}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="1000" height="600"`) {
		t.Error("custom size not applied")
	}
}

func TestWriteSVGEmptyFigure(t *testing.T) {
	var sb strings.Builder
	err := WriteSVG(&sb, &experiment.Figure{ID: "empty"}, Options{})
	if err == nil {
		t.Error("expected error for empty figure")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	s := stats.Series{Name: "flat"}
	s.Add(5, 100)
	fig := &experiment.Figure{ID: "d", Title: "d", Series: []stats.Series{s}}
	var sb strings.Builder
	if err := WriteSVG(&sb, fig, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
		t.Error("degenerate figure produced NaN/Inf coordinates")
	}
}

func TestTickFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.271:   "0.27",
		5:       "5",
		1500:    "2k", // %.0fk rounds
		500000:  "500k",
		1250000: "1.2M",
	}
	for in, want := range cases {
		if got := tick(in); got != want {
			t.Errorf("tick(%g) = %q, want %q", in, got, want)
		}
	}
}
