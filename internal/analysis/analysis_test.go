package analysis

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestSummarizeFig2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(f.Model, out.Schedule)
	// The optimal Fig2 schedule: 3 requests; U2 and U3 hit caches (U3
	// locally), U1 from the warehouse; 2 copies.
	if rep.Requests != 3 {
		t.Errorf("requests = %d", rep.Requests)
	}
	if rep.CacheHits != 2 || rep.WarehouseHit != 1 || rep.LocalHits != 1 {
		t.Errorf("hits: cache=%d local=%d vw=%d", rep.CacheHits, rep.LocalHits, rep.WarehouseHit)
	}
	if rep.Copies != 2 {
		t.Errorf("copies = %d", rep.Copies)
	}
	if got := rep.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %g", got)
	}
	// Network volume: VW->IS1 (1 hop) + IS1->IS2 (1 hop) + local (0 hops)
	// = 2 × 4.05 GB; all-direct would be 1 + 2 + 2 = 5 hops × 4.05 GB.
	vol := 4.05e9
	if got := rep.StreamBytes.Float(); got != 2*vol {
		t.Errorf("stream bytes = %g, want %g", got, 2*vol)
	}
	if got := rep.DirectBytes.Float(); got != 5*vol {
		t.Errorf("direct bytes = %g, want %g", got, 5*vol)
	}
	if got := rep.NetworkSavings().Float(); got != 3*vol {
		t.Errorf("savings = %g", got)
	}
	// Cost identities.
	if !rep.TotalCost.ApproxEqual(units.Money(108.45), 1e-6) {
		t.Errorf("total = %v", rep.TotalCost)
	}
	if !rep.DirectCost.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("direct = %v", rep.DirectCost)
	}
	if !rep.CostSavings().ApproxEqual(units.Money(150.75), 1e-6) {
		t.Errorf("cost savings = %v", rep.CostSavings())
	}
	// Node stats: IS1 and IS2 each host one copy serving one request.
	if len(rep.Nodes) != 2 {
		t.Fatalf("nodes = %+v", rep.Nodes)
	}
	for _, st := range rep.Nodes {
		if st.Copies != 1 || st.Served != 1 {
			t.Errorf("node %s: %+v", st.Name, st)
		}
		if st.PeakBytes != 2.5e9 {
			t.Errorf("node %s peak = %g", st.Name, st.PeakBytes)
		}
		if st.ByteSeconds <= 0 || st.StorageCost <= 0 {
			t.Errorf("node %s usage: %+v", st.Name, st)
		}
	}
	// Video stats.
	if len(rep.Videos) != 1 || rep.Videos[0].Requests != 3 || rep.Videos[0].CacheHits != 2 {
		t.Errorf("videos = %+v", rep.Videos)
	}
	if rep.Videos[0].Savings() <= 0 {
		t.Error("video savings not positive")
	}
}

func TestSummarizeDirectSchedule(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.RunDirect(f.Model, f.Requests)
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(f.Model, out.Schedule)
	if rep.CacheHits != 0 || rep.Copies != 0 || rep.HitRate() != 0 {
		t.Error("direct schedule must have no cache activity")
	}
	if rep.StreamBytes != rep.DirectBytes {
		t.Error("direct schedule volume must equal the direct baseline")
	}
	if rep.CostSavings() != 0 {
		t.Errorf("direct savings = %v", rep.CostSavings())
	}
	if len(rep.Nodes) != 0 {
		t.Errorf("direct schedule nodes = %+v", rep.Nodes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, nil, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(f.Model, out.Schedule)
	if rep.Requests != 0 || rep.HitRate() != 0 || rep.TotalCost != 0 {
		t.Errorf("empty report: %+v", rep)
	}
}

func TestWriteReport(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 5, 15, 8*units.GB, testutil.PerGBHour(2), pricing.PerGB(400), 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(rig.Model, out.Schedule)
	var sb strings.Builder
	if err := rep.Write(&sb, 3); err != nil {
		t.Fatal(err)
	}
	outStr := sb.String()
	for _, want := range []string{"requests", "network volume", "total cost", "vs all-direct"} {
		if !strings.Contains(outStr, want) {
			t.Errorf("report missing %q:\n%s", want, outStr)
		}
	}
	if rep.Copies > 0 && !strings.Contains(outStr, "busiest storages") {
		t.Error("busiest storages section missing")
	}
	// Ordering: nodes sorted by Served descending.
	for i := 1; i < len(rep.Nodes); i++ {
		if rep.Nodes[i].Served > rep.Nodes[i-1].Served {
			t.Error("nodes not sorted by served")
		}
	}
	for i := 1; i < len(rep.Videos); i++ {
		if rep.Videos[i].TotalCost > rep.Videos[i-1].TotalCost {
			t.Error("videos not sorted by cost")
		}
	}
}

func TestSummarizeSeededSchedule(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	seed := schedule.Residency{
		Video: 0, Loc: f.IS2, Src: f.Topo.Warehouse(),
		Load: 0, LastService: simtime.Time(12 * simtime.Hour),
		FedBy: schedule.PrePlacedFeed,
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{
		Seeds: map[media.VideoID][]schedule.Residency{0: {seed}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Summarize(f.Model, out.Schedule)
	if rep.PrePlacedCopies != 1 {
		t.Errorf("pre-placed copies = %d", rep.PrePlacedCopies)
	}
	// Per-video totals include the pre-load, so they sum to Ψ(S).
	var perVideo float64
	for _, vs := range rep.Videos {
		perVideo += float64(vs.TotalCost)
	}
	if !rep.TotalCost.ApproxEqual(out.FinalCost, 1e-6) {
		t.Errorf("report total %v != Ψ(S) %v", rep.TotalCost, out.FinalCost)
	}
	if !rep.TotalCost.ApproxEqual(vspMoney(perVideo), 1e-6) {
		t.Errorf("per-video sum %g != total %v", perVideo, rep.TotalCost)
	}
}

type vspMoney = units.Money
