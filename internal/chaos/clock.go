package chaos

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock abstracts time for the injector so fault schedules (windows,
// flapping duty cycles) and injected latency can run against a virtual
// clock in deterministic tests and against the wall clock in soaks.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// VirtualClock is a manually advanced clock. Sleep parks the caller
// until Advance moves the clock past its wake time, which makes flap
// phases and latency windows exactly reproducible in unit tests.
type VirtualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	at time.Time
	ch chan struct{}
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward and wakes every sleeper whose
// deadline has passed.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var rest []*waiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			close(w.ch)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	c.mu.Unlock()
}

func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	if d <= 0 {
		c.mu.Unlock()
		return ctx.Err()
	}
	w := &waiter{at: c.now.Add(d), ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		for i, o := range c.waiters {
			if o == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return ctx.Err()
	case <-w.ch:
		return nil
	}
}

// Sleepers reports how many goroutines are currently parked in Sleep,
// sorted wake times first; tests use it to advance exactly when the
// system under test has quiesced.
func (c *VirtualClock) Sleepers() []time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Time, len(c.waiters))
	for i, w := range c.waiters {
		out[i] = w.at
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
