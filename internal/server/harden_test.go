package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
)

// TestPanicRecovery: a handler panic becomes a 500 JSON error, and the
// server keeps serving afterwards.
func TestPanicRecovery(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	s := New(f.Model)
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("panic reply is not JSON: %v", err)
	}
	if body["error"] == "" {
		t.Errorf("panic reply missing error field: %v", body)
	}
	if strings.Contains(body["error"], "kaboom") {
		t.Errorf("panic value leaked to the client: %v", body)
	}
	// The server must still be alive.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp2.StatusCode)
	}
}

// TestOversizedBodyRejected: a body over the cap gets 413, not an OOM.
func TestOversizedBodyRejected(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustNew(t, f, Options{MaxRequestBytes: 1 << 10}))
	t.Cleanup(ts.Close)

	big := `{"requests": [` + strings.Repeat(`{"user":0,"video":0,"start":0},`, 200) + `{"user":0,"video":0,"start":0}]}`
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestRequestTimeout: a request exceeding the budget gets 503 with the
// JSON timeout body.
func TestRequestTimeout(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, f, Options{RequestTimeout: 50 * time.Millisecond})
	s.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// Timed-out clients must be told to back off exactly like shed ones.
	if resp.Header.Get("Retry-After") == "" {
		t.Error("timeout 503 missing Retry-After header")
	}
	body, _ := io.ReadAll(resp.Body)
	var msg map[string]string
	if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
		t.Errorf("timeout reply not a JSON error: %q", body)
	}
}

// TestSimulateWithFaults: the simulate endpoint executes under a scenario
// and, when asked, returns a repair summary with zero misses for a
// recoverable outage.
func TestSimulateWithFaults(t *testing.T) {
	ts, f := newTestServer(t)
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.NodeOutage, Node: f.IS1,
		From: simtime.Time(30 * simtime.Minute), Until: simtime.Time(60 * simtime.Minute),
	}}}
	resp := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: out.Schedule, Faults: sc, Repair: "reroute"})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	got := decode[SimulateResponse](t, resp)
	if got.Missed != 2 || got.Severed != 1 {
		t.Errorf("missed=%d severed=%d, want 2/1", got.Missed, got.Severed)
	}
	if got.Repair == nil {
		t.Fatal("no repair summary in response")
	}
	if got.Repair.Repaired != 2 || len(got.Repair.Missed) != 0 {
		t.Errorf("repair: %+v, want 2 repaired / 0 missed", got.Repair)
	}
	if got.Repair.CostDelta == 0 {
		t.Error("repair reported zero cost delta")
	}
	if got.Repair.Schedule == nil {
		t.Error("repair summary missing repaired schedule")
	}

	// Unknown repair policy and invalid scenario are client errors.
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: out.Schedule, Faults: sc, Repair: "pray"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown policy: status = %d, want 400", resp.StatusCode)
	}
	bad := &faults.Scenario{Faults: []faults.Fault{{Kind: faults.NodeOutage, Node: 99, From: 0, Until: 1}}}
	resp = postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Schedule: out.Schedule, Faults: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid scenario: status = %d, want 400", resp.StatusCode)
	}
}

// FuzzScheduleDecode feeds arbitrary bodies to the busiest POST endpoint:
// whatever arrives, the server must answer with a well-formed JSON reply
// and never panic (the recovery middleware turns a panic into a 500, which
// the fuzz target also treats as a failure — handlers should reject, not
// blow up).
func FuzzScheduleDecode(f *testing.F) {
	fig, err := testutil.NewFig2()
	if err != nil {
		f.Fatal(err)
	}
	srv := New(fig.Model)
	f.Add([]byte(`{"requests":[{"user":0,"video":0,"start":0}]}`))
	f.Add([]byte(`{"requests":[]}`))
	f.Add([]byte(`{"requests":[{"user":-1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"requests":[{"user":0,"video":99,"start":-5}],"metric":"bogus"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code == http.StatusInternalServerError {
			t.Fatalf("body %q produced a 500: %s", body, rec.Body.Bytes())
		}
		var reply any
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatalf("body %q produced non-JSON reply %q (status %d)", body, rec.Body.Bytes(), rec.Code)
		}
	})
}
