// Package faults models infrastructure failures the service schedule may
// encounter while it executes: an intermediate storage going dark, a
// network link dropping, or the video warehouse browning out (refusing to
// admit new streams). A Scenario is a set of timed fault windows; it can be
// written as JSON, generated from a seed, and assessed against a schedule
// to determine exactly which deliveries and residencies it breaks.
//
// The fault semantics are deliberately crisp so the simulator, the repair
// planner and the tests agree to the second:
//
//   - Node outage [t0, t1) at storage n: every copy held at n dies at t0
//     and its reservation is released; every stream whose route touches n
//     is severed at t0 if in flight, and cannot start during the window.
//
//   - Link down [t0, t1) on edge e: every stream routed over e is severed
//     at t0 if in flight, and cannot start during the window.
//
//   - VW brown-out [t0, t1): the warehouse admits no NEW streams or bulk
//     pre-placement transfers during the window; streams already flowing
//     from the warehouse continue (a brown-out is an admission stop, not
//     an archive loss).
//
// Severed in-flight streams are unrecoverable history; missed stream
// starts are the repairable future — the distinction internal/repair is
// built on.
package faults

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Kind enumerates the failure classes.
type Kind int

const (
	// NodeOutage takes one intermediate storage completely offline.
	NodeOutage Kind = iota + 1
	// LinkDown severs one network edge.
	LinkDown
	// VWBrownout stops the warehouse from admitting new streams.
	VWBrownout
)

var kindNames = map[Kind]string{
	NodeOutage: "node-outage",
	LinkDown:   "link-down",
	VWBrownout: "vw-brownout",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("faults: unknown kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kk, name := range kindNames {
		if name == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("faults: unknown kind %q", s)
}

// Fault is one timed failure. The window is half-open: the element is down
// on [From, Until) and healthy again at Until.
type Fault struct {
	Kind Kind `json:"kind"`
	// Node is the failing storage for NodeOutage (ignored otherwise).
	Node topology.NodeID `json:"node,omitempty"`
	// Edge is the failing link's index for LinkDown (ignored otherwise).
	Edge  int          `json:"edge,omitempty"`
	From  simtime.Time `json:"from"`
	Until simtime.Time `json:"until"`
}

// Window returns the fault's down interval [From, Until).
func (f Fault) Window() simtime.Interval { return simtime.NewInterval(f.From, f.Until) }

func (f Fault) String() string {
	switch f.Kind {
	case NodeOutage:
		return fmt.Sprintf("node %d down %v", f.Node, f.Window())
	case LinkDown:
		return fmt.Sprintf("link %d down %v", f.Edge, f.Window())
	case VWBrownout:
		return fmt.Sprintf("VW brown-out %v", f.Window())
	default:
		return fmt.Sprintf("unknown fault %v", f.Window())
	}
}

// Scenario is a set of faults applied to one schedule execution.
type Scenario struct {
	Faults []Fault `json:"faults"`
}

// Empty reports whether the scenario contains no effective fault windows.
func (s *Scenario) Empty() bool {
	if s == nil {
		return true
	}
	for _, f := range s.Faults {
		if !f.Window().Empty() {
			return false
		}
	}
	return true
}

// Validate checks every fault against the topology: node outages must name
// an intermediate storage (the warehouse never fully dies in this model —
// use VWBrownout), link downs a valid edge index, and windows must be
// well-formed.
func (s *Scenario) Validate(topo *topology.Topology) error {
	if s == nil {
		return nil
	}
	for i, f := range s.Faults {
		if f.Until < f.From {
			return fmt.Errorf("faults: fault %d window ends %v before it starts %v", i, f.Until, f.From)
		}
		switch f.Kind {
		case NodeOutage:
			if int(f.Node) < 0 || int(f.Node) >= topo.NumNodes() {
				return fmt.Errorf("faults: fault %d names unknown node %d", i, f.Node)
			}
			if topo.Node(f.Node).Kind != topology.KindStorage {
				return fmt.Errorf("faults: fault %d outages node %d which is not an intermediate storage (use vw-brownout)", i, f.Node)
			}
		case LinkDown:
			if f.Edge < 0 || f.Edge >= topo.NumEdges() {
				return fmt.Errorf("faults: fault %d names unknown edge %d", i, f.Edge)
			}
		case VWBrownout:
			// no element reference
		default:
			return fmt.Errorf("faults: fault %d has unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// NodeWindows returns the outage windows of node n.
func (s *Scenario) NodeWindows(n topology.NodeID) []simtime.Interval {
	if s == nil {
		return nil
	}
	var out []simtime.Interval
	for _, f := range s.Faults {
		if f.Kind == NodeOutage && f.Node == n && !f.Window().Empty() {
			out = append(out, f.Window())
		}
	}
	return out
}

// EdgeWindows returns the down windows of edge e.
func (s *Scenario) EdgeWindows(e int) []simtime.Interval {
	if s == nil {
		return nil
	}
	var out []simtime.Interval
	for _, f := range s.Faults {
		if f.Kind == LinkDown && f.Edge == e && !f.Window().Empty() {
			out = append(out, f.Window())
		}
	}
	return out
}

// BrownoutWindows returns the warehouse brown-out windows.
func (s *Scenario) BrownoutWindows() []simtime.Interval {
	if s == nil {
		return nil
	}
	var out []simtime.Interval
	for _, f := range s.Faults {
		if f.Kind == VWBrownout && !f.Window().Empty() {
			out = append(out, f.Window())
		}
	}
	return out
}

// NodeDown reports whether node n is down at any point of iv.
func (s *Scenario) NodeDown(n topology.NodeID, iv simtime.Interval) bool {
	for _, w := range s.NodeWindows(n) {
		if w.Overlaps(iv) {
			return true
		}
	}
	return false
}

// NodeDownAt reports whether node n is down at instant t.
func (s *Scenario) NodeDownAt(n topology.NodeID, t simtime.Time) bool {
	for _, w := range s.NodeWindows(n) {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// EdgeDown reports whether edge e is down at any point of iv.
func (s *Scenario) EdgeDown(e int, iv simtime.Interval) bool {
	for _, w := range s.EdgeWindows(e) {
		if w.Overlaps(iv) {
			return true
		}
	}
	return false
}

// VWBrownedOutAt reports whether the warehouse refuses new streams at t.
func (s *Scenario) VWBrownedOutAt(t simtime.Time) bool {
	for _, w := range s.BrownoutWindows() {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// BannedPairs converts the scenario's node outages into the rejective
// greedy's (interval, storage) exclusion constraints (paper §4.2): a
// repaired schedule must not place or extend a copy whose space profile
// overlaps an outage window at the dead node.
func (s *Scenario) BannedPairs() []occupancy.Banned {
	if s == nil {
		return nil
	}
	var out []occupancy.Banned
	for _, f := range s.Faults {
		if f.Kind == NodeOutage && !f.Window().Empty() {
			out = append(out, occupancy.Banned{Node: f.Node, Interval: f.Window()})
		}
	}
	return out
}

// Encode writes the scenario as indented JSON.
func (s *Scenario) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode reads a scenario from JSON.
func Decode(r io.Reader) (*Scenario, error) {
	var s Scenario
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: decode: %w", err)
	}
	return &s, nil
}
