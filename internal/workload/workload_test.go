package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

func testCatalog(t *testing.T, n int) *media.Catalog {
	t.Helper()
	c, err := media.Uniform(n, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestZipfNormalization(t *testing.T) {
	for _, alpha := range []float64{0, 0.1, 0.271, 0.5, 0.7, 1} {
		z, err := NewZipf(100, alpha)
		if err != nil {
			t.Fatalf("NewZipf(%g): %v", alpha, err)
		}
		total := 0.0
		for r := 0; r < 100; r++ {
			p := z.Prob(r)
			if p < 0 {
				t.Fatalf("negative probability at rank %d", r)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("alpha=%g: probabilities sum to %g", alpha, total)
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Smaller alpha = more skew = higher mass on rank 0.
	zLow, _ := NewZipf(500, 0.1)
	zHigh, _ := NewZipf(500, 0.7)
	if zLow.Prob(0) <= zHigh.Prob(0) {
		t.Errorf("P0(alpha=0.1)=%g must exceed P0(alpha=0.7)=%g", zLow.Prob(0), zHigh.Prob(0))
	}
	// alpha=1 is exactly uniform.
	zUni, _ := NewZipf(10, 1)
	for r := 0; r < 10; r++ {
		if math.Abs(zUni.Prob(r)-0.1) > 1e-12 {
			t.Errorf("alpha=1 rank %d prob %g, want 0.1", r, zUni.Prob(r))
		}
	}
	// Probabilities are non-increasing in rank.
	z, _ := NewZipf(50, 0.271)
	for r := 1; r < 50; r++ {
		if z.Prob(r) > z.Prob(r-1)+1e-15 {
			t.Errorf("prob not monotone at rank %d", r)
		}
	}
	if z.Alpha() != 0.271 {
		t.Error("Alpha() wrong")
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 0.5); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewZipf(10, -0.1); err == nil {
		t.Error("expected error for negative alpha")
	}
	if _, err := NewZipf(10, 1.5); err == nil {
		t.Error("expected error for alpha > 1")
	}
}

func TestZipfDrawMatchesProb(t *testing.T) {
	z, _ := NewZipf(20, 0.271)
	rng := rand.New(rand.NewSource(9))
	const n = 200000
	counts := make([]int, 20)
	for i := 0; i < n; i++ {
		counts[z.Draw(rng)]++
	}
	for r := 0; r < 20; r++ {
		emp := float64(counts[r]) / n
		want := z.Prob(r)
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("rank %d: empirical %g vs %g", r, emp, want)
		}
	}
}

func TestGenerate(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 4, UsersPerStorage: 5, Capacity: units.GB})
	cat := testCatalog(t, 50)
	set, err := Generate(topo, cat, Config{Alpha: 0.271, Window: 6 * simtime.Hour, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(set) != 20 {
		t.Fatalf("len = %d, want 20 (one per user)", len(set))
	}
	lo, hi := set.Window()
	if lo < 0 || hi >= simtime.Time(6*simtime.Hour) {
		t.Errorf("window [%v, %v] outside config", lo, hi)
	}
	// Sorted chronologically.
	for i := 1; i < len(set); i++ {
		if set[i].Start < set[i-1].Start {
			t.Fatal("set not sorted")
		}
	}
	// Deterministic.
	set2, _ := Generate(topo, cat, Config{Alpha: 0.271, Window: 6 * simtime.Hour, Seed: 3})
	for i := range set {
		if set[i] != set2[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	// Different seeds differ.
	set3, _ := Generate(topo, cat, Config{Alpha: 0.271, Window: 6 * simtime.Hour, Seed: 4})
	same := true
	for i := range set {
		if set[i] != set3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical sets")
	}
}

func TestGenerateMultipleRequestsPerUser(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 3, Capacity: units.GB})
	cat := testCatalog(t, 10)
	set, err := Generate(topo, cat, Config{RequestsPerUser: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 24 {
		t.Errorf("len = %d, want 24", len(set))
	}
}

func TestGenerateEmptyCatalog(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 1, Capacity: units.GB})
	empty := &media.Catalog{}
	if _, err := Generate(topo, empty, Config{}); err == nil {
		t.Error("expected error for empty catalog")
	}
}

func TestArrivalProcesses(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 10, UsersPerStorage: 10, Capacity: units.GB})
	cat := testCatalog(t, 20)
	for _, a := range []Arrival{Uniform, EveningPeak, Slotted} {
		set, err := Generate(topo, cat, Config{Arrival: a, Window: 12 * simtime.Hour, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		lo, hi := set.Window()
		if lo < 0 || hi >= simtime.Time(12*simtime.Hour) {
			t.Errorf("%v: window [%v, %v]", a, lo, hi)
		}
		if a == Slotted {
			for _, r := range set {
				if int64(r.Start)%int64(30*simtime.Minute) != 0 {
					t.Errorf("slotted start %v not on a half-hour boundary", r.Start)
				}
			}
		}
	}
	// EveningPeak should put more mass in the second half than the first.
	set, _ := Generate(topo, cat, Config{Arrival: EveningPeak, Window: 12 * simtime.Hour, Seed: 6})
	half := simtime.Time(6 * simtime.Hour)
	late := 0
	for _, r := range set {
		if r.Start >= half {
			late++
		}
	}
	if late <= len(set)/2 {
		t.Errorf("evening peak: only %d/%d requests in second half", late, len(set))
	}
}

func TestArrivalString(t *testing.T) {
	if Uniform.String() != "uniform" || EveningPeak.String() != "evening-peak" || Slotted.String() != "slotted" {
		t.Error("Arrival.String wrong")
	}
	if Arrival(9).String() != "Arrival(9)" {
		t.Error("unknown arrival string wrong")
	}
}

func TestByVideoPartition(t *testing.T) {
	set := Set{
		{User: 0, Video: 2, Start: 30},
		{User: 1, Video: 1, Start: 20},
		{User: 2, Video: 2, Start: 10},
		{User: 3, Video: 2, Start: 10},
	}
	parts := set.ByVideo()
	if len(parts) != 2 {
		t.Fatalf("parts = %d, want 2", len(parts))
	}
	v2 := parts[2]
	if len(v2) != 3 {
		t.Fatalf("video 2 has %d requests", len(v2))
	}
	if v2[0].Start != 10 || v2[0].User != 2 || v2[1].User != 3 || v2[2].Start != 30 {
		t.Errorf("video 2 ordering wrong: %+v", v2)
	}
	videos := set.Videos()
	if len(videos) != 2 || videos[0] != 1 || videos[1] != 2 {
		t.Errorf("Videos() = %v", videos)
	}
}

func TestWindowEmpty(t *testing.T) {
	var s Set
	lo, hi := s.Window()
	if lo != 0 || hi != 0 {
		t.Error("empty window must be (0,0)")
	}
}

// Property: the Zipf CDF is monotone and Draw never panics or returns an
// out-of-range rank.
func TestPropertyZipfDrawInRange(t *testing.T) {
	f := func(seed int64, n uint8, alphaQ uint8) bool {
		size := int(n%200) + 1
		alpha := float64(alphaQ%101) / 100
		z, err := NewZipf(size, alpha)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			r := z.Draw(rng)
			if r < 0 || r >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLocalityZeroMatchesGlobal(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 4, UsersPerStorage: 5, Capacity: units.GB})
	cat := testCatalog(t, 50)
	base, err := Generate(topo, cat, Config{Alpha: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Generate(topo, cat, Config{Alpha: 0.1, Seed: 9, Locality: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != zero[i] {
			t.Fatal("Locality=0 must reproduce the default stream")
		}
	}
}

func TestLocalityDiversifiesNeighborhoods(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 6, UsersPerStorage: 30, Capacity: units.GB})
	cat := testCatalog(t, 100)
	// Strong skew, full locality: each neighborhood should concentrate on
	// a different top title.
	set, err := Generate(topo, cat, Config{Alpha: 0.1, Seed: 9, Locality: 1})
	if err != nil {
		t.Fatal(err)
	}
	topPer := map[topology.NodeID]media.VideoID{}
	for _, is := range topo.Storages() {
		counts := map[media.VideoID]int{}
		for _, r := range set {
			if topo.User(r.User).Local == is {
				counts[r.Video]++
			}
		}
		best, bestN := media.VideoID(-1), 0
		for v, n := range counts {
			if n > bestN {
				best, bestN = v, n
			}
		}
		topPer[is] = best
	}
	distinct := map[media.VideoID]bool{}
	for _, v := range topPer {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Errorf("full locality produced identical top titles everywhere: %v", topPer)
	}
	// Still a valid request set: every video within catalog bounds.
	for _, r := range set {
		if int(r.Video) < 0 || int(r.Video) >= cat.Len() {
			t.Fatalf("rank out of range: %d", r.Video)
		}
	}
}

// Regression: the locality remap used to index perms[u.Local] directly.
// Permutations are built only for topo.Storages(), so a user homed on a
// node outside that set (no Builder path creates one today, but the spec
// format and future topology forms can) hit a nil permutation and
// panicked on perm[rank]. The remap now falls back to the identity
// mapping for any node without a permutation.
func TestRemapRankMissingPermIsIdentity(t *testing.T) {
	perms := map[topology.NodeID][]int{
		1: {2, 0, 1},
	}
	// Known node: remapped.
	if got := remapRank(perms, 1, 0); got != 2 {
		t.Errorf("remapRank(known, 0) = %d, want 2", got)
	}
	// Node with no permutation (e.g. the warehouse): identity, no panic.
	for _, rank := range []int{0, 1, 2} {
		if got := remapRank(perms, 0, rank); got != rank {
			t.Errorf("remapRank(missing, %d) = %d, want identity", rank, got)
		}
	}
	// Nil map (locality disabled): identity too.
	if got := remapRank(nil, 5, 7); got != 7 {
		t.Errorf("remapRank(nil map) = %d, want 7", got)
	}
}

// Every user of a valid topology has a permutation, and full locality
// keeps every remapped rank inside the catalog.
func TestLocalityRemapCoversAllUsers(t *testing.T) {
	topo := topology.Metro(topology.GenConfig{Storages: 5, UsersPerStorage: 3, Capacity: units.GB}, 7)
	cat := testCatalog(t, 30)
	set, err := Generate(topo, cat, Config{Alpha: 0.1, Seed: 11, Locality: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range set {
		if int(r.Video) < 0 || int(r.Video) >= cat.Len() {
			t.Fatalf("remapped video %d outside catalog", r.Video)
		}
	}
}

func TestLocalityValidation(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 1, Capacity: units.GB})
	cat := testCatalog(t, 5)
	if _, err := Generate(topo, cat, Config{Locality: -0.1}); err == nil {
		t.Error("expected error for negative locality")
	}
	if _, err := Generate(topo, cat, Config{Locality: 1.5}); err == nil {
		t.Error("expected error for locality > 1")
	}
}
