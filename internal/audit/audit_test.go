package audit

import (
	"testing"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestAuditCleanSchedule(t *testing.T) {
	rig, err := testutil.NewPaperRig(8, 7, 25, 5*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(rig.Model, out.Schedule, reqs)
	if !rep.OK() {
		t.Fatalf("clean schedule failed audit: %v", rep.Findings)
	}
	if rep.Overflows != 0 {
		t.Errorf("overflows = %d", rep.Overflows)
	}
	if !rep.AnalyticCost.ApproxEqual(out.FinalCost, 1e-6) {
		t.Error("analytic cost mismatch")
	}
	if !rep.SimulatedCost.ApproxEqual(rep.AnalyticCost, 1e-3) ||
		!rep.BilledCost.ApproxEqual(rep.AnalyticCost, 1e-3) {
		t.Errorf("cost triangle broken: %v / %v / %v", rep.AnalyticCost, rep.SimulatedCost, rep.BilledCost)
	}
}

func TestAuditFlagsCorruption(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(s *schedule.Schedule, reqs *workload.Set)
		want string
	}{
		{"unserved request", func(s *schedule.Schedule, reqs *workload.Set) {
			*reqs = append(*reqs, workload.Request{User: 0, Video: 0, Start: 99999})
		}, "validate"},
		{"inflated residency", func(s *schedule.Schedule, reqs *workload.Set) {
			for _, fs := range s.Files {
				if len(fs.Residencies) > 0 {
					fs.Residencies[0].LastService += 7200
				}
			}
		}, "validate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := out.Schedule.Clone()
			reqs := append(workload.Set(nil), f.Requests...)
			c.mut(s, &reqs)
			rep := Run(f.Model, s, reqs)
			if rep.OK() {
				t.Fatal("audit passed a corrupted schedule")
			}
			found := false
			for _, fd := range rep.Findings {
				if fd.Check == c.want {
					found = true
				}
				if fd.String() == "" {
					t.Error("empty finding string")
				}
			}
			if !found {
				t.Errorf("expected a %q finding, got %v", c.want, rep.Findings)
			}
		})
	}
}

func TestAuditFlagsOverflow(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, pricing.PerGBSec(5.0/3600), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := scheduler.Run(rig.Model, reqs, scheduler.Config{SkipResolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Overflows == 0 {
		t.Skip("rig did not overflow")
	}
	rep := Run(rig.Model, raw.Schedule, reqs)
	if rep.OK() {
		t.Fatal("audit passed an over-committed schedule")
	}
	if rep.Overflows == 0 {
		t.Error("overflow count not reported")
	}
}
