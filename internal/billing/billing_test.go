package billing

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestAttributeFig2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Attribute(f.Model, out.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	// Sum property: the statement equals Ψ(S) = $108.45.
	if !st.Total().ApproxEqual(out.FinalCost, 1e-9) {
		t.Fatalf("statement %v != Ψ(S) %v", st.Total(), out.FinalCost)
	}
	if len(st.Lines) != 3 {
		t.Fatalf("lines = %d", len(st.Lines))
	}
	// Hand-checked invoice for the optimal Fig2 schedule:
	//   U1: direct stream VW->IS1            network 64.80, storage 0
	//   U2: relay IS1->IS2, extends IS1 copy network 32.40, storage 5.625
	//   U3: local at IS2, extends IS2 copy   network  0.00, storage 5.625
	wantNet := []float64{64.8, 32.4, 0}
	wantSto := []float64{0, 5.625, 5.625}
	for i, l := range st.Lines {
		if !l.Network.ApproxEqual(units.Money(wantNet[i]), 1e-6) {
			t.Errorf("line %d network = %v, want %g", i, l.Network, wantNet[i])
		}
		if !l.Storage.ApproxEqual(units.Money(wantSto[i]), 1e-6) {
			t.Errorf("line %d storage = %v, want %g", i, l.Storage, wantSto[i])
		}
	}
	// No user pays more than a direct stream would have cost them.
	for i, l := range st.Lines {
		direct := f.Model.TransferCost(0, f.Topo.Warehouse(), f.Topo.User(l.User).Local)
		if float64(l.Total()) > float64(direct)+1e-9 {
			t.Errorf("line %d total %v exceeds direct alternative %v", i, l.Total(), direct)
		}
	}
}

// TestAttributeSumsToPsiAtScale is the central billing property across
// random scenarios: line totals sum exactly to Ψ(S), and every charge is
// non-negative.
func TestAttributeSumsToPsiAtScale(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rig, err := testutil.NewPaperRig(9, 8, 30, 5*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: seed + 40})
		if err != nil {
			t.Fatal(err)
		}
		out, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Attribute(rig.Model, out.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Total().ApproxEqual(out.FinalCost, 1e-6) {
			t.Fatalf("seed %d: statement %v != Ψ(S) %v", seed, st.Total(), out.FinalCost)
		}
		if len(st.Lines) != len(reqs) {
			t.Fatalf("seed %d: %d lines for %d requests", seed, len(st.Lines), len(reqs))
		}
		var sum units.Money
		for _, l := range st.Lines {
			if l.Network < 0 || l.Storage < 0 {
				t.Fatalf("seed %d: negative charge %+v", seed, l)
			}
			sum += l.Total()
		}
		if !sum.ApproxEqual(st.Total(), 1e-6) {
			t.Fatalf("seed %d: line sum %v != total %v", seed, sum, st.Total())
		}
	}
}

func TestAttributeDirectSchedule(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.RunDirect(f.Model, f.Requests)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Attribute(f.Model, out.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if st.Storage != 0 {
		t.Error("direct schedule must bill no storage")
	}
	for _, l := range st.Lines {
		if l.Storage != 0 {
			t.Error("direct line bills storage")
		}
	}
}

func TestStatementWrite(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Attribute(f.Model, out.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := st.Write(&sb); err != nil {
		t.Fatal(err)
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "TOTAL") || !strings.Contains(outStr, "$108.4500") {
		t.Errorf("invoice missing totals:\n%s", outStr)
	}
	// Header + 3 lines + total.
	if got := len(strings.Split(strings.TrimSpace(outStr), "\n")); got != 5 {
		t.Errorf("invoice lines = %d", got)
	}
}

func TestAttributeRejectsCorruptSchedule(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := out.Schedule.Clone()
	for _, fs := range bad.Files {
		if len(fs.Residencies) > 0 {
			fs.Residencies[0].Services = nil // orphan the copy
		}
	}
	if _, err := Attribute(f.Model, bad); err == nil {
		t.Error("expected error for serviceless residency")
	}
	bad2 := out.Schedule.Clone()
	for _, fs := range bad2.Files {
		if len(fs.Residencies) > 0 {
			fs.Residencies[0].LastService += 99999 // inconsistent booked cost
		}
	}
	if _, err := Attribute(f.Model, bad2); err == nil {
		t.Error("expected error for inconsistent LastService")
	}
}
