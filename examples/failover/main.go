// Failover: a primary intake node journals every accepted reservation to
// its write-ahead log; a warm standby ships that log over HTTP into its
// own durable service and reports readiness once caught up. This example
// walks the full life of a planned failover in one process:
//
//  1. submit the early half of a reservation trace to the primary,
//  2. wait for the standby's GET /readyz to turn 200,
//  3. promote the standby (which fences the old primary under the new
//     leadership epoch),
//  4. show the fenced primary rejecting intake with the stale-leadership
//     error,
//  5. finish the trace on the new primary,
//
// and finally verifies the punchline: the failed-over plan is
// byte-identical to an uninterrupted single-node run of the same trace.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	vsp "github.com/vodsim/vsp"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// serve binds srv to a loopback port and returns its base URL.
func serve(srv *server.Server) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }
}

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 4, UsersPerStorage: 6, Capacity: vsp.GB(8),
	}, 21)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 24, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Start != reqs[j].Start {
			return reqs[i].Start < reqs[j].Start
		}
		return reqs[i].User < reqs[j].User
	})
	model := cli.BuildModel(topo, catalog, 5, 500)

	primaryDir, err := os.MkdirTemp("", "vsp-primary-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(primaryDir)
	standbyDir, err := os.MkdirTemp("", "vsp-standby-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(standbyDir)

	primary, err := server.NewWithOptions(model, server.Options{DataDir: primaryDir})
	if err != nil {
		log.Fatal(err)
	}
	primaryURL, stopPrimary := serve(primary)
	defer stopPrimary()

	standby, err := server.NewWithOptions(model, server.Options{
		DataDir:        standbyDir,
		ReplicateFrom:  primaryURL,
		ReplicateEvery: 20 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	standbyURL, stopStandby := serve(standby)
	defer stopStandby()

	ctx := context.Background()
	standby.StartReplication(ctx)
	var retry retryhttp.Options

	// The reference for the punchline: the same trace, one node, no
	// failover. Reservations arrive at their start time; the plan is
	// committed in two epochs, split exactly where the failover will be.
	reference := horizon.New(model, horizon.Config{})
	submit := func(base string, r workload.Request) {
		var ack server.ReservationResponse
		err := retryhttp.PostJSON(ctx, retry, base+"/v1/reservations",
			server.ReservationRequest{User: r.User, Video: r.Video, Start: r.Start}, &ack)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		if _, err := reference.Submit(r.Start, r); err != nil {
			log.Fatalf("reference submit: %v", err)
		}
	}
	advance := func(base string, to simtime.Time) {
		var res horizon.EpochResult
		if err := retryhttp.PostJSON(ctx, retry, base+"/v1/advance", server.AdvanceRequest{To: to}, &res); err != nil {
			log.Fatalf("advance: %v", err)
		}
		if _, err := reference.Advance(ctx, to); err != nil {
			log.Fatalf("reference advance: %v", err)
		}
		fmt.Printf("  epoch %d committed at horizon %v: %d admitted, cost %v\n",
			res.Epoch, res.Horizon, res.Admitted, res.Cost)
	}

	split := len(reqs) / 2
	fmt.Printf("phase 1: %d reservations to the primary (%s)\n", split, primaryURL)
	for _, r := range reqs[:split] {
		submit(primaryURL, r)
	}
	advance(primaryURL, reqs[split-1].Start)

	fmt.Println("\nwaiting for the standby to catch up...")
	for {
		var ready server.ReadyResponse
		if err := retryhttp.GetJSON(ctx, retry, standbyURL+"/readyz", &ready); err == nil && ready.Ready {
			fmt.Printf("  standby ready: applied seq %d, lag %d\n",
				ready.Status.AppliedSeq, ready.Status.Lag)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\npromoting the standby (fencing the old primary)...")
	var prom server.PromoteResponse
	err = retryhttp.PostJSON(ctx, retry, standbyURL+"/v1/replication/promote",
		server.PromoteRequest{FenceSource: true}, &prom)
	if err != nil {
		log.Fatalf("promote: %v", err)
	}
	fmt.Printf("  promoted at epoch %d (applied seq %d, old primary fenced: %v)\n",
		prom.Epoch, prom.AppliedSeq, prom.SourceFenced)

	// The fenced ex-primary now refuses intake: any client still pointed
	// at it gets the stale-leadership error instead of a silent fork.
	r0 := reqs[split]
	err = retryhttp.PostJSON(ctx, retry, primaryURL+"/v1/reservations",
		server.ReservationRequest{User: r0.User, Video: r0.Video, Start: r0.Start}, nil)
	fmt.Printf("  old primary rejects intake: %v\n", err)

	fmt.Printf("\nphase 2: %d reservations to the new primary (%s)\n", len(reqs)-split, standbyURL)
	for _, r := range reqs[split:] {
		submit(standbyURL, r)
	}
	advance(standbyURL, reqs[len(reqs)-1].Start)

	var plan server.PlanResponse
	if err := retryhttp.GetJSON(ctx, retry, standbyURL+"/v1/plan", &plan); err != nil {
		log.Fatal(err)
	}
	got, err := json.Marshal(plan.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	want, err := json.Marshal(reference.Committed())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal committed cost  %v (uninterrupted reference %v)\n", plan.Cost, reference.Cost())
	if bytes.Equal(got, want) {
		fmt.Println("failed-over plan is byte-identical to the uninterrupted run ✓")
	} else {
		fmt.Println("PLANS DIVERGED — this is a bug")
		os.Exit(1)
	}
}
