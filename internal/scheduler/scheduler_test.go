package scheduler

import (
	"encoding/json"
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestRunEndToEnd(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 6, 30, 6*units.GB, testutil.PerGBHour(5), pricing.PerGB(500), 21)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.271, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rig.Model, reqs, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.FinalCost <= 0 {
		t.Error("final cost must be positive")
	}
	if out.Schedule.NumDeliveries() != len(reqs) {
		t.Errorf("deliveries = %d, requests = %d", out.Schedule.NumDeliveries(), len(reqs))
	}
	// Run validates internally; re-validate here for belt and braces.
	if err := out.Schedule.Validate(rig.Topo, rig.Catalog, reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Final schedule must be overflow-free.
	ledger := occupancy.FromSchedule(rig.Topo, rig.Catalog, out.Schedule)
	if ovs := ledger.AllOverflows(); len(ovs) != 0 {
		t.Errorf("overflows in final schedule: %v", ovs)
	}
}

func TestRunBeatsDirectBaseline(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 6, 30, 8*units.GB, testutil.PerGBHour(1), pricing.PerGB(500), 31)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	smart, err := Run(rig.Model, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunDirect(rig.Model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Overflows != 0 || len(direct.Victims) != 0 {
		t.Error("direct baseline must never overflow")
	}
	if direct.Schedule.NumResidencies() != 0 {
		t.Error("direct baseline must not cache")
	}
	if smart.FinalCost >= direct.FinalCost {
		t.Errorf("caching scheduler %v not cheaper than direct %v (highly skewed workload)",
			smart.FinalCost, direct.FinalCost)
	}
}

func TestRunSkipResolution(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, testutil.PerGBHour(5), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rig.Model, reqs, Config{SkipResolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Overflows == 0 {
		t.Skip("rig did not overflow; adjust seed")
	}
	if out.FinalCost != out.Phase1Cost || len(out.Victims) != 0 {
		t.Error("SkipResolution must return the phase-1 schedule untouched")
	}
	// With resolution, cost goes up and overflows disappear.
	full, err := Run(rig.Model, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Phase1Cost != out.Phase1Cost {
		t.Error("phase 1 must be deterministic")
	}
	if full.ResolutionDelta() < 0 {
		t.Errorf("resolution delta %v negative", full.ResolutionDelta())
	}
	if len(full.Victims) == 0 {
		t.Error("resolution recorded no victims despite overflows")
	}
}

func TestRunMetricsProduceDifferentSchedules(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, testutil.PerGBHour(5), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	costs := map[sorp.HeatMetric]float64{}
	for _, metric := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		out, err := Run(rig.Model, reqs, Config{Metric: metric})
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		costs[metric] = float64(out.FinalCost)
	}
	// All four must succeed; the per-cost metrics must be no worse than
	// their absolute counterparts on average — here just sanity that the
	// results are positive and recorded.
	for m, c := range costs {
		if c <= 0 {
			t.Errorf("%v produced non-positive cost", m)
		}
	}
}

func TestRunEmptyRequests(t *testing.T) {
	rig, err := testutil.NewPaperRig(4, 2, 5, 5*units.GB, testutil.PerGBHour(5), pricing.PerGB(500), 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(rig.Model, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalCost != 0 || out.Schedule.NumDeliveries() != 0 {
		t.Error("empty request set must produce empty, free schedule")
	}
}

func TestRunDeterminism(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, testutil.PerGBHour(5), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(rig.Model, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rig.Model, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalCost != b.FinalCost || len(a.Victims) != len(b.Victims) {
		t.Error("Run not deterministic")
	}
}

func TestRunPolicyAblation(t *testing.T) {
	rig, err := testutil.NewPaperRig(9, 6, 30, 8*units.GB, testutil.PerGBHour(1), pricing.PerGB(500), 41)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	onRoute, err := Run(rig.Model, reqs, Config{Policy: ivs.CacheOnRoute})
	if err != nil {
		t.Fatal(err)
	}
	dstOnly, err := Run(rig.Model, reqs, Config{Policy: ivs.CacheAtDestination})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunDirect(rig.Model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// En-route caching dominates destination-only, which dominates direct,
	// in option space; greedy choices could in principle invert the first
	// pair, but both must beat direct on a skewed workload.
	if float64(onRoute.FinalCost) > float64(direct.FinalCost) {
		t.Errorf("on-route %v worse than direct %v", onRoute.FinalCost, direct.FinalCost)
	}
	if float64(dstOnly.FinalCost) > float64(direct.FinalCost) {
		t.Errorf("dst-only %v worse than direct %v", dstOnly.FinalCost, direct.FinalCost)
	}
}

// TestScheduleJSONRoundTrip is a persistence property: for several seeds,
// a produced schedule survives JSON encode/decode with identical cost and
// validity.
func TestScheduleJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rig, err := testutil.NewPaperRig(7, 5, 20, 6*units.GB, testutil.PerGBHour(2), pricing.PerGB(400), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.2, Seed: seed + 31})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(rig.Model, reqs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(out.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		back := schedule.New()
		if err := json.Unmarshal(blob, back); err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(rig.Topo, rig.Catalog, reqs); err != nil {
			t.Fatalf("seed %d: decoded schedule invalid: %v", seed, err)
		}
		if got := rig.Model.ScheduleCost(back); !got.ApproxEqual(out.FinalCost, 1e-9) {
			t.Fatalf("seed %d: decoded cost %v != %v", seed, got, out.FinalCost)
		}
	}
}

func TestRefineNeverHurts(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rig, err := testutil.NewPaperRig(8, 7, 16, 4*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed+80)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 8 * simtime.Hour, Seed: seed + 90})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(rig.Model, reqs, Config{})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := Run(rig.Model, reqs, Config{Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if float64(refined.FinalCost) > float64(plain.FinalCost)+1e-6 {
			t.Errorf("seed %d: refine increased cost %v -> %v", seed, plain.FinalCost, refined.FinalCost)
		}
		// Savings accounting is consistent.
		want := float64(plain.FinalCost - refined.FinalCost)
		if got := float64(refined.RefineSavings); got < want-1e-6 {
			t.Errorf("seed %d: claimed savings %g < realized %g", seed, got, want)
		}
		if refined.RefinedFiles == 0 && refined.RefineSavings != 0 {
			t.Error("savings without moved files")
		}
		// Refined schedule stays valid and overflow-free (Run checks both
		// internally; double-check overflow-freeness explicitly).
		ledger := occupancy.FromSchedule(rig.Topo, rig.Catalog, refined.Schedule)
		if ovs := ledger.AllOverflows(); len(ovs) != 0 {
			t.Errorf("seed %d: refine introduced overflows: %v", seed, ovs)
		}
	}
}

func TestRefineFindsImprovementOnTightRig(t *testing.T) {
	// On a rig with many victims, phase-2 rescheduling decisions leave
	// slack that the sweep should recover at least sometimes across seeds.
	improvedSomewhere := false
	for seed := int64(0); seed < 6; seed++ {
		rig, err := testutil.NewPaperRig(8, 7, 12, 4*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed+70)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: seed + 71})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(rig.Model, reqs, Config{Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		if out.RefinedFiles > 0 {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Log("note: refinement found no improvement on any seed (schedules already locally optimal)")
	}
}

// TestZeroCapacityDegeneratesToDirect is a failure-injection case: with no
// usable disk anywhere, phase 1 still caches (it is capacity-blind), and
// resolution must strip every residency, landing on the all-direct
// schedule.
func TestZeroCapacityDegeneratesToDirect(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 4, UsersPerStorage: 4, Capacity: 1}) // 1 byte
	cat, err := media.Uniform(3, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(1), pricing.PerGB(300))
	model := cost.NewModel(book, routing.NewTable(book), cat)
	reqs, err := workload.Generate(topo, cat, workload.Config{Alpha: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(model, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule.NumResidencies() != 0 {
		t.Errorf("1-byte disks still hold %d residencies", out.Schedule.NumResidencies())
	}
	direct, err := RunDirect(model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !out.FinalCost.ApproxEqual(direct.FinalCost, 1e-6) {
		t.Errorf("zero-capacity cost %v != direct %v", out.FinalCost, direct.FinalCost)
	}
}
