package topology

import (
	"fmt"
	"math/rand"

	"github.com/vodsim/vsp/internal/units"
)

// GenConfig parameterizes the topology generators. Zero fields take the
// paper's defaults (Table 4 / §5.1): 19 intermediate storages, 10 users per
// neighborhood, 5 GB of disk per storage.
type GenConfig struct {
	Storages        int         // number of intermediate storages
	UsersPerStorage int         // users attached to each storage
	Capacity        units.Bytes // per-storage disk capacity
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Storages == 0 {
		c.Storages = 19
	}
	if c.UsersPerStorage == 0 {
		c.UsersPerStorage = 10
	}
	if c.Capacity == 0 {
		c.Capacity = 5 * units.GB
	}
	return c
}

// Star builds a hub-and-spoke network: every storage links directly to the
// warehouse. It is the degenerate case in which no storage-to-storage
// sharing is possible except through the warehouse.
func Star(cfg GenConfig) *Topology {
	cfg = cfg.withDefaults()
	b := NewBuilder()
	vw := b.Warehouse("VW")
	for i := 0; i < cfg.Storages; i++ {
		is := b.Storage(fmt.Sprintf("IS%d", i+1), cfg.Capacity)
		b.Connect(vw, is)
		b.AttachUsers(is, cfg.UsersPerStorage)
	}
	return mustBuild(b)
}

// Chain builds a linear network VW - IS1 - IS2 - ... - ISn, the worst case
// for path length and the best case for en-route caching.
func Chain(cfg GenConfig) *Topology {
	cfg = cfg.withDefaults()
	b := NewBuilder()
	prev := b.Warehouse("VW")
	for i := 0; i < cfg.Storages; i++ {
		is := b.Storage(fmt.Sprintf("IS%d", i+1), cfg.Capacity)
		b.Connect(prev, is)
		b.AttachUsers(is, cfg.UsersPerStorage)
		prev = is
	}
	return mustBuild(b)
}

// Tree builds a complete k-ary distribution tree rooted at the warehouse,
// the classic cable head-end hierarchy. Interior and leaf storages all
// serve a neighborhood.
func Tree(cfg GenConfig, fanout int) *Topology {
	cfg = cfg.withDefaults()
	if fanout < 1 {
		fanout = 2
	}
	b := NewBuilder()
	vw := b.Warehouse("VW")
	parents := []NodeID{vw}
	made := 0
	for made < cfg.Storages {
		var next []NodeID
		for _, p := range parents {
			for k := 0; k < fanout && made < cfg.Storages; k++ {
				made++
				is := b.Storage(fmt.Sprintf("IS%d", made), cfg.Capacity)
				b.Connect(p, is)
				b.AttachUsers(is, cfg.UsersPerStorage)
				next = append(next, is)
			}
		}
		parents = next
	}
	return mustBuild(b)
}

// Ring builds a cycle VW - IS1 - ... - ISn - VW, a common metro-fiber
// layout that offers two disjoint routes between any pair of nodes.
func Ring(cfg GenConfig) *Topology {
	cfg = cfg.withDefaults()
	b := NewBuilder()
	vw := b.Warehouse("VW")
	prev := vw
	var first NodeID
	for i := 0; i < cfg.Storages; i++ {
		is := b.Storage(fmt.Sprintf("IS%d", i+1), cfg.Capacity)
		if i == 0 {
			first = is
		}
		b.Connect(prev, is)
		b.AttachUsers(is, cfg.UsersPerStorage)
		prev = is
	}
	if cfg.Storages >= 2 {
		b.Connect(prev, vw)
	}
	_ = first
	return mustBuild(b)
}

// Metro builds the experimental topology standing in for the paper's
// unpublished Fig. 4 graph: one warehouse, a two-level hierarchy of
// regional hubs and neighborhood storages, plus seeded cross links between
// sibling neighborhoods. With the default configuration it has exactly 20
// nodes (1 VW + 19 IS) like the paper's testbed.
//
// The generator is deterministic for a given (cfg, seed).
func Metro(cfg GenConfig, seed int64) *Topology {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	vw := b.Warehouse("VW")

	// Roughly a quarter of the storages act as regional hubs hanging off
	// the warehouse; the rest are neighborhood storages under the hubs.
	numHubs := cfg.Storages / 4
	if numHubs < 1 {
		numHubs = 1
	}
	hubs := make([]NodeID, 0, numHubs)
	made := 0
	for i := 0; i < numHubs; i++ {
		made++
		h := b.Storage(fmt.Sprintf("IS%d", made), cfg.Capacity)
		b.Connect(vw, h)
		b.AttachUsers(h, cfg.UsersPerStorage)
		hubs = append(hubs, h)
	}
	// Adjacent hubs are interconnected (metro ring between head-ends).
	for i := 1; i < len(hubs); i++ {
		b.Connect(hubs[i-1], hubs[i])
	}

	leavesPerHub := make([][]NodeID, numHubs)
	for made < cfg.Storages {
		h := (made - numHubs) % numHubs
		made++
		leaf := b.Storage(fmt.Sprintf("IS%d", made), cfg.Capacity)
		b.Connect(hubs[h], leaf)
		b.AttachUsers(leaf, cfg.UsersPerStorage)
		leavesPerHub[h] = append(leavesPerHub[h], leaf)
	}
	// Seeded cross links between consecutive leaves of the same hub, taken
	// with probability 1/2: enough redundancy for alternative routes
	// without collapsing the hierarchy.
	for _, leaves := range leavesPerHub {
		for i := 1; i < len(leaves); i++ {
			if rng.Intn(2) == 0 {
				b.Connect(leaves[i-1], leaves[i])
			}
		}
	}
	return mustBuild(b)
}

// Paper returns the default experimental topology of §5.1: 20 nodes
// (1 warehouse + 19 intermediate storages), 10 users per neighborhood,
// with the given per-storage capacity. It is Metro with a fixed seed so
// every experiment sees the identical graph.
func Paper(capacity units.Bytes) *Topology {
	return Metro(GenConfig{Storages: 19, UsersPerStorage: 10, Capacity: capacity}, 1997)
}

// Random builds a connected random graph: a random spanning tree over the
// warehouse and storages plus extraEdges additional random links.
func Random(cfg GenConfig, extraEdges int, seed int64) *Topology {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	ids := make([]NodeID, 0, cfg.Storages+1)
	ids = append(ids, b.Warehouse("VW"))
	for i := 0; i < cfg.Storages; i++ {
		is := b.Storage(fmt.Sprintf("IS%d", i+1), cfg.Capacity)
		b.AttachUsers(is, cfg.UsersPerStorage)
		ids = append(ids, is)
	}
	// Random spanning tree: attach each node to a random earlier node.
	for i := 1; i < len(ids); i++ {
		b.Connect(ids[rng.Intn(i)], ids[i])
	}
	// Extra links between distinct random pairs; duplicates are skipped by
	// retrying a bounded number of times.
	for k := 0; k < extraEdges; k++ {
		for attempt := 0; attempt < 32; attempt++ {
			i, j := rng.Intn(len(ids)), rng.Intn(len(ids))
			if i == j {
				continue
			}
			if _, dup := edgeExists(b, ids[i], ids[j]); dup {
				continue
			}
			b.Connect(ids[i], ids[j])
			break
		}
	}
	return mustBuild(b)
}

func edgeExists(b *Builder, a, c NodeID) (int, bool) {
	for i, e := range b.edges {
		if (e.A == a && e.B == c) || (e.A == c && e.B == a) {
			return i, true
		}
	}
	return 0, false
}

func mustBuild(b *Builder) *Topology {
	t, err := b.Build()
	if err != nil {
		panic("topology generator produced invalid graph: " + err.Error())
	}
	return t
}
