// Fault injection and failure-aware repair: what happens to a carefully
// scheduled evening when an intermediate storage goes dark for two hours —
// and how much of it a repair policy can save.
//
// The example schedules a metro-scale batch, injects a storage outage plus
// a link failure, measures the damage (missed service starts, severed
// in-flight streams, wiped cache copies), then repairs the schedule two
// ways: re-routing around the damage via surviving copies, and the blunt
// warehouse-direct fallback. Both are re-executed under the same scenario
// to prove the repaired plan actually survives it.
package main

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 10, Capacity: vsp.GB(12),
	}, 21)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 40, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(1), vsp.PerGB(900))
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Alpha: 0.1, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d reservations, fault-free Ψ(S) = %v\n\n", len(reqs), out.FinalCost)

	// The scenario: one storage dark from 2 pm to 4 pm, one link cut for
	// an hour in the middle of it.
	is := topo.Storages()[0]
	edge := -1
	for e := 0; e < topo.NumEdges(); e++ {
		if ed := topo.Edge(e); ed.A == is || ed.B == is {
			edge = e
			break
		}
	}
	if edge < 0 {
		log.Fatal("storage has no incident link")
	}
	scenario := &vsp.FaultScenario{Faults: []vsp.Fault{
		{Kind: vsp.NodeOutage, Node: is, From: vsp.Time(2 * vsp.Hour), Until: vsp.Time(4 * vsp.Hour)},
		{Kind: vsp.LinkDown, Edge: edge, From: vsp.Time(3 * vsp.Hour), Until: vsp.Time(4 * vsp.Hour)},
	}}
	for _, f := range scenario.Faults {
		fmt.Printf("inject: %v\n", f)
	}

	rep := sys.SimulateUnder(out.Schedule, scenario)
	fmt.Printf("\nunrepaired execution: %d missed starts, %d severed streams, %d dead copies\n",
		rep.Missed, rep.Severed, rep.DeadResidencies)

	fmt.Println()
	fmt.Printf("%-12s %-10s %-10s %-8s %-8s %-12s %s\n",
		"policy", "repaired", "missed", "cache", "vw", "cost delta", "re-run misses")
	for _, pol := range []vsp.RepairPolicy{vsp.RepairReroute, vsp.RepairVWDirect} {
		res, err := sys.Repair(out.Schedule, scenario, vsp.RepairOptions{Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		rerun := sys.SimulateUnder(res.Schedule, scenario)
		fmt.Printf("%-12v %-10d %-10d %-8d %-8d %-12v %d\n",
			pol, res.Repaired, len(res.Missed), res.FromCache, res.FromVW, res.Delta(), rerun.Missed)
	}

	fmt.Println()
	fmt.Println("Reading the table: services whose destination itself is dark are")
	fmt.Println("unservable under any policy, but everything else comes back. The")
	fmt.Println("reroute policy also weighs surviving cached copies against a fresh")
	fmt.Println("warehouse stream and takes whichever is cheaper — here the outage")
	fmt.Println("wiped the useful copies, so both policies fall back to the")
	fmt.Println("warehouse and coincide. The cost delta prices the outage: what the")
	fmt.Println("operator pays, over the fault-free plan, to keep serving.")
}
