package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Trace I/O: a plain CSV reservation log with the columns
//
//	user,video,start_seconds
//
// and an optional header row. This is the interchange format for replaying
// recorded reservation batches through the scheduler (the paper evaluates
// synthetic Zipf batches; a deployment would feed its real log here).

// WriteCSV writes the set as CSV with a header row.
func WriteCSV(w io.Writer, s Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "video", "start_seconds"}); err != nil {
		return err
	}
	for _, r := range s {
		rec := []string{
			strconv.Itoa(int(r.User)),
			strconv.Itoa(int(r.Video)),
			strconv.FormatInt(int64(r.Start), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a reservation log and validates every row against the
// topology and catalog. A first row of "user,video,start_seconds" is
// treated as a header and skipped.
func ReadCSV(r io.Reader, topo *topology.Topology, catalog *media.Catalog) (Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var set Set
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
		}
		line++
		if line == 1 && rec[0] == "user" {
			continue
		}
		user, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad user %q", line, rec[0])
		}
		video, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad video %q", line, rec[1])
		}
		start, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad start %q", line, rec[2])
		}
		if user < 0 || user >= topo.NumUsers() {
			return nil, fmt.Errorf("workload: trace line %d: unknown user %d", line, user)
		}
		if video < 0 || video >= catalog.Len() {
			return nil, fmt.Errorf("workload: trace line %d: unknown video %d", line, video)
		}
		if start < 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative start %d", line, start)
		}
		set = append(set, Request{
			User:  topology.UserID(user),
			Video: media.VideoID(video),
			Start: simtime.Time(start),
		})
	}
	SortChronological(set)
	return set, nil
}
