package chaos

import (
	"fmt"
	"net/http"
)

// Middleware wraps a handler so the *server* misbehaves for every
// caller: delays before handling, aborted connections, synthesized
// error answers, and responses cut after a byte budget. Rules are
// matched against the request's Host header and URL path.
//
// Drops and dirty cuts abort the connection via http.ErrAbortHandler,
// which net/http recovers from by severing the TCP stream — the client
// observes a transport error or an unexpected EOF mid-body.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o := in.decide(r.Host, r.URL.Path)

		if o.delay > 0 {
			in.delayed.Add(1)
			if err := in.clock.Sleep(r.Context(), o.delay); err != nil {
				panic(http.ErrAbortHandler)
			}
		}
		if o.drop {
			in.dropped.Add(1)
			panic(http.ErrAbortHandler)
		}
		if o.code != 0 {
			in.errored.Add(1)
			w.Header().Set("Content-Type", "application/json")
			if o.code == http.StatusServiceUnavailable || o.code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			w.WriteHeader(o.code)
			fmt.Fprintf(w, "{\"error\":\"chaos: injected %d\"}\n", o.code)
			return
		}
		if o.cut >= 0 {
			in.cut.Add(1)
			cw := &cutWriter{rw: w, remain: o.cut}
			next.ServeHTTP(cw, r)
			if cw.truncated && !o.cutClean {
				// Push the kept prefix onto the wire before tearing the
				// connection, so the client fails mid-body rather than
				// before the response starts.
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				panic(http.ErrAbortHandler)
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

// cutWriter forwards at most remain body bytes and silently discards
// the rest. The middleware decides afterwards whether the truncation
// ends cleanly or tears the connection.
type cutWriter struct {
	rw        http.ResponseWriter
	remain    int
	truncated bool
}

func (c *cutWriter) Header() http.Header { return c.rw.Header() }

func (c *cutWriter) WriteHeader(code int) {
	// The advertised length no longer matches what we will send; drop
	// it so a clean cut reads as a short-but-well-formed stream.
	c.rw.Header().Del("Content-Length")
	c.rw.WriteHeader(code)
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.remain <= 0 {
		c.truncated = c.truncated || len(p) > 0
		return len(p), nil
	}
	if len(p) > c.remain {
		c.truncated = true
		if _, err := c.rw.Write(p[:c.remain]); err != nil {
			return 0, err
		}
		c.remain = 0
		return len(p), nil
	}
	n, err := c.rw.Write(p)
	c.remain -= n
	return n, err
}
