package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/workload"
)

func genTopology(t *testing.T, gen string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(&sb, "topology", gen, 5, 3, 8, 2, 4, 0, 0, "", "", 0, 0, 0, "", 7); err != nil {
		t.Fatalf("run topology %s: %v", gen, err)
	}
	return sb.String()
}

func TestGenerateTopologies(t *testing.T) {
	for _, gen := range []string{"metro", "star", "chain", "tree", "ring", "random"} {
		out := genTopology(t, gen)
		topo, err := topology.Decode(strings.NewReader(out))
		if err != nil {
			t.Fatalf("%s: decode: %v", gen, err)
		}
		if topo.NumStorages() != 5 || topo.NumUsers() != 15 {
			t.Errorf("%s: %d storages, %d users", gen, topo.NumStorages(), topo.NumUsers())
		}
	}
	var sb strings.Builder
	if err := run(&sb, "topology", "bogus", 5, 3, 8, 2, 4, 0, 0, "", "", 0, 0, 0, "", 7); err == nil {
		t.Error("expected unknown generator error")
	}
}

func TestGenerateCatalog(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "catalog", "", 0, 0, 0, 0, 0, 25, 3.3, "", "", 0, 0, 0, "", 7); err != nil {
		t.Fatalf("run catalog: %v", err)
	}
	var videos []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &videos); err != nil {
		t.Fatal(err)
	}
	if len(videos) != 25 {
		t.Errorf("titles = %d", len(videos))
	}
}

func TestGenerateWorkloadFromFiles(t *testing.T) {
	dir := t.TempDir()
	topoP := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(topoP, []byte(genTopology(t, "star")), 0o644); err != nil {
		t.Fatal(err)
	}
	var catBuf strings.Builder
	if err := run(&catBuf, "catalog", "", 0, 0, 0, 0, 0, 10, 3.3, "", "", 0, 0, 0, "", 7); err != nil {
		t.Fatal(err)
	}
	catP := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(catP, []byte(catBuf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, arrival := range []string{"uniform", "peak", "slotted"} {
		var sb strings.Builder
		if err := run(&sb, "workload", "", 0, 0, 0, 0, 0, 0, 0, topoP, catP, 0.271, 6, 2, arrival, 7); err != nil {
			t.Fatalf("workload %s: %v", arrival, err)
		}
		var set workload.Set
		if err := json.Unmarshal([]byte(sb.String()), &set); err != nil {
			t.Fatal(err)
		}
		if len(set) != 30 { // 15 users × 2 rpu
			t.Errorf("%s: requests = %d", arrival, len(set))
		}
	}
	var sb strings.Builder
	if err := run(&sb, "workload", "", 0, 0, 0, 0, 0, 0, 0, topoP, catP, 0.271, 6, 1, "bogus", 7); err == nil {
		t.Error("expected unknown arrival error")
	}
	if err := run(&sb, "workload", "", 0, 0, 0, 0, 0, 0, 0, "", "", 0.271, 6, 1, "uniform", 7); err == nil {
		t.Error("expected missing-paths error")
	}
}

func TestUnknownKind(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "bogus", "", 0, 0, 0, 0, 0, 0, 0, "", "", 0, 0, 0, "", 7); err == nil {
		t.Error("expected unknown kind error")
	}
}
