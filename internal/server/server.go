// Package server exposes the scheduler as a JSON-over-HTTP service: the
// form a Video-On-Reservation operator would actually deploy. A server is
// bound to one priced infrastructure (topology + catalog + rates) and
// schedules reservation batches on demand.
//
//	GET  /healthz            liveness
//	GET  /v1/topology        the service network (topology.Spec JSON)
//	GET  /v1/catalog         the title list
//	POST /v1/schedule        {"requests": [...], "metric": "...", "policy": "..."}
//	                          -> schedule + costs + cache statistics
//	POST /v1/simulate        {"schedule": {...}} -> execution report
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/vodsim/vsp/internal/analysis"
	"github.com/vodsim/vsp/internal/billing"
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/repair"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/workload"
)

// Server serves scheduling requests for one fixed infrastructure. It is
// safe for concurrent use: the model is read-only after construction and
// the rolling-horizon service does its own locking.
type Server struct {
	model   *cost.Model
	horizon *horizon.Service
	workers int
	shardID string
	limiter *limiter
	mux     *http.ServeMux
	handler http.Handler

	// Epoch-advance telemetry for /v1/stats: how many advances committed
	// and how long they took in aggregate, so a load harness (or the
	// gateway's poller) can read advance lag without scraping logs.
	advances     atomic.Uint64
	advanceNanos atomic.Int64

	// Replication & failover (see replication.go). lead is always set;
	// shipper only on followers built with Options.ReplicateFrom.
	lead    *replica.Leadership
	shipper *replica.Shipper

	replMu     sync.Mutex
	replCtx    context.Context
	replCancel context.CancelFunc
	replDone   chan struct{}
}

// New builds a server around a cost model with default hardening and an
// in-memory horizon (no DataDir, so construction cannot fail).
func New(model *cost.Model) *Server {
	s, err := NewWithOptions(model, Options{})
	if err != nil {
		panic("server: default construction failed: " + err.Error())
	}
	return s
}

// NewWithOptions builds a server with explicit hardening options. It
// fails when Options.DataDir names a directory whose journaled state
// cannot be recovered (corrupt log, or a recovered schedule that fails
// the audit bundle) — a crashed service must not come back up serving a
// schedule it cannot honor.
func NewWithOptions(model *cost.Model, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	var hz *horizon.Service
	if opts.DataDir != "" {
		var err error
		hz, err = horizon.Recover(opts.DataDir, model, opts.Horizon)
		if err != nil {
			return nil, err
		}
	} else {
		hz = horizon.New(model, opts.Horizon)
	}
	role := opts.Role
	if opts.ReplicateFrom != "" {
		// A node shipping another's WAL is a follower by definition.
		role = replica.RoleFollower
	}
	var epoch uint64
	if role == replica.RolePrimary {
		epoch = 1
	}
	s := &Server{
		model:   model,
		horizon: hz,
		workers: opts.Workers,
		shardID: opts.ShardID,
		mux:     http.NewServeMux(),
		lead:    replica.NewLeadership(role, epoch),
	}
	if opts.ReplicateFrom != "" {
		s.shipper = replica.NewShipper(hz, s.lead, replica.ShipperConfig{
			Source:   opts.ReplicateFrom,
			Interval: opts.ReplicateEvery,
		})
	}
	if opts.MaxInFlight > 0 {
		s.limiter = newLimiter(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/replication/wal", s.handleReplWAL)
	s.mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
	s.mux.HandleFunc("POST /v1/replication/fence", s.handleFence)
	s.mux.HandleFunc("POST /v1/replication/promote", s.handlePromote)
	s.mux.HandleFunc("GET /v1/topology", s.handleTopology)
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/bill", s.handleBill)
	s.mux.HandleFunc("POST /v1/reservations", s.handleReservation)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	s.handler = harden(s.mux, opts, s.limiter)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Recovery reports what the horizon service recovered at construction
// (zero for in-memory servers).
func (s *Server) Recovery() horizon.RecoveryStats { return s.horizon.Recovery() }

// Close stops background replication, then flushes and closes the
// horizon journal (no-op without DataDir). Call it after the HTTP
// server has drained.
func (s *Server) Close() error {
	s.stopReplication()
	return s.horizon.Close()
}

// decodeBody decodes a JSON request body into v, writing the error reply
// itself on failure: 413 when the hardening body cap was hit, 400 for any
// other malformed payload.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTopology(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.model.Book().Topology().ToSpec())
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.model.Catalog())
}

// StatsResponse is the GET /v1/stats reply: the infrastructure's shape
// and tariff summary, the live rolling-horizon state, the overload
// counters and what recovery reconstructed at startup.
type StatsResponse struct {
	Topology topology.Stats        `json:"topology"`
	Titles   int                   `json:"titles"`
	MeanSize units.Bytes           `json:"mean_title_bytes"`
	Horizon  HorizonStats          `json:"horizon"`
	Overload OverloadStats         `json:"overload"`
	Recovery horizon.RecoveryStats `json:"recovery"`
	// Replication reports the node's role, leadership epoch, applied
	// sequence and (on followers) shipping lag; Ready mirrors /readyz.
	Replication replica.Status `json:"replication"`
	Ready       bool           `json:"ready"`
	// Shard condenses the node's place in a sharded intake tier into the
	// one block a routing gateway's load poller needs (see
	// internal/gateway); present even when unsharded, with an empty ID.
	Shard ShardInfo `json:"shard"`
}

// ShardInfo is the shard block of /v1/stats: the label the node was
// started with (-shard-id), its leadership role, the committed horizon
// epoch and the replication position behind it — everything a placement
// policy needs, in one request per shard.
type ShardInfo struct {
	ID              string `json:"id,omitempty"`
	Role            string `json:"role"`
	Epoch           int    `json:"epoch"`
	LeadershipEpoch uint64 `json:"leadership_epoch"`
	ReplicationLag  uint64 `json:"replication_lag"`
}

// HorizonStats is the rolling-horizon service's live state.
type HorizonStats struct {
	Epoch         int          `json:"epoch"`
	Horizon       simtime.Time `json:"horizon"`
	Pending       int          `json:"pending"`
	CommittedCost units.Money  `json:"committed_cost"`
	Durable       bool         `json:"durable"`
	// Advances counts committed POST /v1/advance epoch closes and
	// AdvanceMS their cumulative in-handler time, so advance lag is
	// observable per node (the load harness and the gateway poller
	// divide one by the other).
	Advances  uint64 `json:"advances"`
	AdvanceMS int64  `json:"advance_ms"`
}

// OverloadStats reports the admission-control counters.
type OverloadStats struct {
	// Shed counts requests rejected with 429 since startup.
	Shed uint64 `json:"shed"`
	// InFlight and MaxInFlight describe current saturation.
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var ov OverloadStats
	if s.limiter != nil {
		ov = OverloadStats{
			Shed:        s.limiter.Shed(),
			InFlight:    s.limiter.InFlight(),
			MaxInFlight: s.limiter.Capacity(),
		}
	}
	repl, ready := s.replStatus()
	writeJSON(w, http.StatusOK, StatsResponse{
		Topology: s.model.Book().Topology().ComputeStats(),
		Titles:   s.model.Catalog().Len(),
		MeanSize: s.model.Catalog().MeanSize(),
		Horizon: HorizonStats{
			Epoch:         s.horizon.Epoch(),
			Horizon:       s.horizon.Horizon(),
			Pending:       s.horizon.Pending(),
			CommittedCost: s.horizon.Cost(),
			Durable:       s.horizon.Durable(),
			Advances:      s.advances.Load(),
			AdvanceMS:     time.Duration(s.advanceNanos.Load()).Milliseconds(),
		},
		Overload:    ov,
		Recovery:    s.horizon.Recovery(),
		Replication: repl,
		Ready:       ready,
		Shard: ShardInfo{
			ID:              s.shardID,
			Role:            repl.Role,
			Epoch:           s.horizon.Epoch(),
			LeadershipEpoch: repl.Epoch,
			ReplicationLag:  repl.Lag,
		},
	})
}

// ScheduleRequest is the POST /v1/schedule body.
type ScheduleRequest struct {
	Requests workload.Set `json:"requests"`
	Metric   string       `json:"metric,omitempty"` // default space-per-cost
	Policy   string       `json:"policy,omitempty"` // default cache-on-route
}

// ScheduleResponse is the POST /v1/schedule reply.
type ScheduleResponse struct {
	Schedule   *schedule.Schedule `json:"schedule"`
	Phase1Cost units.Money        `json:"phase1_cost"`
	FinalCost  units.Money        `json:"final_cost"`
	DirectCost units.Money        `json:"direct_cost"`
	Overflows  int                `json:"overflows"`
	Victims    int                `json:"victims"`
	HitRatePct float64            `json:"hit_rate_pct"`
	Copies     int                `json:"copies"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req ScheduleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty request batch"))
		return
	}
	metric, err := parseMetric(req.Metric)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Reject malformed reservations up front (unknown user/title/time):
	// the scheduler validates its own output, so pre-validate inputs for a
	// 4xx rather than a 5xx.
	topo := s.model.Book().Topology()
	for _, q := range req.Requests {
		if int(q.User) < 0 || int(q.User) >= topo.NumUsers() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown user %d", q.User))
			return
		}
		if int(q.Video) < 0 || int(q.Video) >= s.model.Catalog().Len() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown video %d", q.Video))
			return
		}
		if q.Start < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("negative start time %v", q.Start))
			return
		}
	}
	// Scheduling respects the request context, so an abandoned connection
	// or a tripped http.TimeoutHandler stops the computation too.
	out, err := scheduler.Schedule(r.Context(), s.model, req.Requests, scheduler.Config{Metric: metric, Policy: policy, Workers: s.workers})
	if err != nil {
		writeErr(w, schedulingStatus(err), err)
		return
	}
	direct, err := scheduler.Schedule(r.Context(), s.model, req.Requests, scheduler.Config{Policy: ivs.NoCaching, Workers: s.workers})
	if err != nil {
		writeErr(w, schedulingStatus(err), err)
		return
	}
	rep := analysis.Summarize(s.model, out.Schedule)
	writeJSON(w, http.StatusOK, ScheduleResponse{
		Schedule:   out.Schedule,
		Phase1Cost: out.Phase1Cost,
		FinalCost:  out.FinalCost,
		DirectCost: direct.FinalCost,
		Overflows:  out.Overflows,
		Victims:    len(out.Victims),
		HitRatePct: 100 * rep.HitRate(),
		Copies:     rep.Copies,
	})
}

// SimulateRequest is the POST /v1/simulate body. Faults optionally injects
// a failure scenario into the execution; Repair additionally asks for a
// failure-aware repaired schedule ("reroute" or "vw-direct").
type SimulateRequest struct {
	Schedule *schedule.Schedule `json:"schedule"`
	Faults   *faults.Scenario   `json:"faults,omitempty"`
	Repair   string             `json:"repair,omitempty"`
}

// RepairSummary reports the repair pass of a faulted simulation.
type RepairSummary struct {
	Policy     string                 `json:"policy"`
	Impacted   int                    `json:"impacted"`
	Repaired   int                    `json:"repaired"`
	FromCache  int                    `json:"from_cache"`
	FromVW     int                    `json:"from_vw"`
	Missed     []repair.MissedService `json:"missed,omitempty"`
	DeadCopies int                    `json:"dead_copies"`
	CostBefore units.Money            `json:"cost_before"`
	CostAfter  units.Money            `json:"cost_after"`
	CostDelta  units.Money            `json:"cost_delta"`
	Copies     int                    `json:"copies"`
	HitRatePct float64                `json:"hit_rate_pct"`
	Schedule   *schedule.Schedule     `json:"schedule"`
}

// SimulateResponse is the POST /v1/simulate reply.
type SimulateResponse struct {
	OK          bool        `json:"ok"`
	Streams     int         `json:"streams"`
	CacheLoads  int         `json:"cache_loads"`
	Violations  []string    `json:"violations,omitempty"`
	TotalCost   units.Money `json:"total_cost"`
	NetworkCost units.Money `json:"network_cost"`
	StorageCost units.Money `json:"storage_cost"`
	// Fault-injection outcome (zero when no scenario was supplied).
	Missed          int            `json:"missed,omitempty"`
	Severed         int            `json:"severed,omitempty"`
	DeadResidencies int            `json:"dead_residencies,omitempty"`
	FaultNotes      []string       `json:"fault_notes,omitempty"`
	Repair          *RepairSummary `json:"repair,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Schedule == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing schedule"))
		return
	}
	for vid := range req.Schedule.Files {
		if int(vid) < 0 || int(vid) >= s.model.Catalog().Len() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("schedule references unknown video %d", vid))
			return
		}
	}
	if err := req.Faults.Validate(s.model.Book().Topology()); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	rep := vodsim.ExecuteScenario(s.model.Book(), s.model.Catalog(), req.Schedule, req.Faults)
	resp := SimulateResponse{
		OK:              rep.OK(),
		Streams:         rep.Streams,
		CacheLoads:      rep.CacheLoads,
		TotalCost:       rep.TotalCost(),
		NetworkCost:     rep.NetworkCost,
		StorageCost:     rep.StorageCost,
		Missed:          rep.Missed,
		Severed:         rep.Severed,
		DeadResidencies: rep.DeadResidencies,
		FaultNotes:      rep.FaultNotes,
	}
	for _, v := range rep.Violations {
		resp.Violations = append(resp.Violations, v.String())
	}
	if req.Repair != "" {
		pol, err := repair.ParsePolicy(req.Repair)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		rres, err := repair.Repair(s.model, req.Schedule, req.Faults, repair.Options{Policy: pol})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.Repair = &RepairSummary{
			Policy:     pol.String(),
			Impacted:   rres.Impacted,
			Repaired:   rres.Repaired,
			FromCache:  rres.FromCache,
			FromVW:     rres.FromVW,
			Missed:     rres.Missed,
			DeadCopies: rres.DeadCopies,
			CostBefore: rres.CostBefore,
			CostAfter:  rres.CostAfter,
			CostDelta:  rres.Delta(),
			Copies:     rres.Copies,
			HitRatePct: rres.HitRatePct,
			Schedule:   rres.Schedule,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// BillRequest is the POST /v1/bill body.
type BillRequest struct {
	Schedule *schedule.Schedule `json:"schedule"`
}

// BillResponse is the POST /v1/bill reply.
type BillResponse struct {
	Lines   []billing.Line `json:"lines"`
	Network units.Money    `json:"network"`
	Storage units.Money    `json:"storage"`
	Total   units.Money    `json:"total"`
}

func (s *Server) handleBill(w http.ResponseWriter, r *http.Request) {
	var req BillRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Schedule == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing schedule"))
		return
	}
	for vid := range req.Schedule.Files {
		if int(vid) < 0 || int(vid) >= s.model.Catalog().Len() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("schedule references unknown video %d", vid))
			return
		}
	}
	st, err := billing.Attribute(s.model, req.Schedule)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, BillResponse{
		Lines:   st.Lines,
		Network: st.Network,
		Storage: st.Storage,
		Total:   st.Total(),
	})
}

// schedulingStatus maps a scheduling failure to an HTTP status: context
// expiry (client went away or the request timed out) is 503, anything else
// is an internal error.
func schedulingStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func parseMetric(s string) (sorp.HeatMetric, error) {
	if s == "" {
		return sorp.SpacePerCost, nil
	}
	for _, m := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}

func parsePolicy(s string) (ivs.Policy, error) {
	if s == "" {
		return ivs.CacheOnRoute, nil
	}
	for _, p := range []ivs.Policy{ivs.CacheOnRoute, ivs.CacheAtDestination, ivs.NoCaching} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
