package gateway_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// The gateway failover property, in the style of internal/replica's
// TestFailoverAtRecordBoundaries but with the whole tier in the loop:
// kill one shard's primary at a record boundary mid-load, and the
// gateway must promote that shard's standby on its own and finish the
// workload with a merged committed plan byte-identical to a run that
// never failed. The hash placement makes routing deterministic, so the
// interrupted and uninterrupted runs shard the stream identically.

func failoverParams() experiment.Params {
	return experiment.Params{
		Storages:        4,
		UsersPerStorage: 3,
		Titles:          10,
		CapacityGB:      2,
		RequestsPerUser: 2,
		Seed:            7,
	}
}

// op is one scripted operation; submissions journal one WAL record each,
// so op boundaries are record boundaries on every shard's journal.
type op struct {
	submit bool
	req    workload.Request
	to     simtime.Time
}

// buildOps scripts the seeded workload: submissions in chronological
// order with a broadcast Advance closing each epoch.
func buildOps(r *experiment.Rig, epochs int) []op {
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	step := simtime.Duration(int64(window) / int64(epochs))

	var ops []op
	next := 0
	for k := 1; k <= epochs; k++ {
		h := simtime.Time(int64(step) * int64(k))
		for next < len(reqs) && reqs[next].Start < h.Add(step) {
			ops = append(ops, op{submit: true, req: reqs[next]})
			next++
		}
		ops = append(ops, op{to: h})
	}
	return ops
}

// driveOp sends one op through the gateway as a client would.
func driveOp(t *testing.T, base string, o op) {
	t.Helper()
	ctx := context.Background()
	var err error
	if o.submit {
		err = retryhttp.PostJSON(ctx, fastRetry, base+"/v1/reservations",
			server.ReservationRequest{User: o.req.User, Video: o.req.Video, Start: o.req.Start}, nil)
	} else {
		err = retryhttp.PostJSON(ctx, fastRetry, base+"/v1/advance", server.AdvanceRequest{To: o.to}, nil)
	}
	if err != nil {
		t.Fatalf("drive %+v: %v", o, err)
	}
}

// planFingerprint fetches the gateway's merged plan and renders the
// parts a failover must preserve as JSON, so comparison is byte-exact.
func planFingerprint(t *testing.T, base string) string {
	t.Helper()
	var plan gateway.PlanResponse
	if err := retryhttp.GetJSON(context.Background(), fastRetry, base+"/v1/plan", &plan); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(map[string]any{
		"schedule": plan.Schedule,
		"horizon":  plan.Horizon,
		"epoch":    plan.Epoch,
		"pending":  plan.Pending,
		"cost":     plan.Cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// node is one shard server whose kill is idempotent, so an early kill
// and the registered cleanup cannot double-close the journal.
type node struct {
	srv  *server.Server
	ts   *httptest.Server
	url  string
	once sync.Once
}

func (n *node) kill() {
	n.once.Do(func() {
		n.ts.Close()
		n.srv.Close()
	})
}

func startNode(t *testing.T, r *experiment.Rig, opts server.Options) *node {
	t.Helper()
	srv, err := server.NewWithOptions(r.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	n := &node{srv: srv, ts: ts, url: ts.URL}
	t.Cleanup(n.kill)
	return n
}

// referencePlan replays every op through a gateway over three
// uninterrupted in-memory shards. The committed schedule is
// byte-identical between in-memory and durable services, so this is the
// plan every failover run must reproduce.
func referencePlan(t *testing.T, r *experiment.Rig, ops []op) string {
	t.Helper()
	var shards []gateway.ShardConfig
	for i := 0; i < 3; i++ {
		n := startNode(t, r, server.Options{})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: n.url})
	}
	gw, err := gateway.New(gateway.Config{Shards: shards, Policy: gateway.Hash(), Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	t.Cleanup(func() { gts.Close(); gw.Close() })
	for _, o := range ops {
		driveOp(t, gts.URL, o)
	}
	return planFingerprint(t, gts.URL)
}

// waitCaughtUp blocks until the standby has applied every record the
// primary has journaled. The standby's own /readyz is not enough here:
// its CaughtUp flag compares against the primary sequence seen at its
// *last* poll, which may predate the final boundary record.
func waitCaughtUp(t *testing.T, primary, standby string) {
	t.Helper()
	ctx := context.Background()
	var pst replica.Status
	if err := retryhttp.GetJSON(ctx, fastRetry, primary+"/v1/replication/status", &pst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st replica.Status
		err := retryhttp.GetJSON(ctx, fastRetry, standby+"/v1/replication/status", &st)
		if err == nil && st.Synced && st.AppliedSeq >= pst.AppliedSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby %s never caught up to primary seq %d (last status %+v, err %v)",
				standby, pst.AppliedSeq, st, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func runGatewayFailover(t *testing.T, r *experiment.Rig, ops []op, boundary int, want string) {
	t.Helper()
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	var shards []gateway.ShardConfig
	primaries := make([]*node, 3)
	standbys := make([]*node, 3)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		primaries[i] = startNode(t, r, server.Options{DataDir: t.TempDir(), Horizon: cfg})
		standbys[i] = startNode(t, r, server.Options{
			DataDir: t.TempDir(), Horizon: cfg,
			ReplicateFrom: primaries[i].url, ReplicateEvery: 2 * time.Millisecond,
		})
		standbys[i].srv.StartReplication(ctx)
		shards = append(shards, gateway.ShardConfig{
			ID: fmt.Sprintf("s%d", i), Primary: primaries[i].url, Standby: standbys[i].url,
		})
	}
	gw, err := gateway.New(gateway.Config{Shards: shards, Policy: gateway.Hash(), Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	t.Cleanup(func() { gts.Close(); gw.Close() })

	for _, o := range ops[:boundary] {
		driveOp(t, gts.URL, o)
	}

	// Kill one primary at the record boundary — the victim rotates with
	// the boundary, so the property is exercised for every shard. The
	// standby's continuous 2ms shipping catches it up before the kill.
	victim := boundary % 3
	waitCaughtUp(t, primaries[victim].url, standbys[victim].url)
	primaries[victim].kill()

	for _, o := range ops[boundary:] {
		driveOp(t, gts.URL, o)
	}

	// The final plan fetch reaches every shard, so even a failover with no
	// ops left to drive must promote the standby to answer it.
	if got := planFingerprint(t, gts.URL); got != want {
		t.Errorf("boundary %d (victim s%d): merged plan differs from uninterrupted run:\n got %.200s...\nwant %.200s...",
			boundary, victim, got, want)
	}
	var st gateway.StatsResponse
	if err := retryhttp.GetJSON(ctx, fastRetry, gts.URL+"/v1/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Failovers == 0 {
		t.Errorf("boundary %d: gateway never failed shard s%d over", boundary, victim)
	}
	if got := st.Shards[victim].Primary; got != standbys[victim].url {
		t.Errorf("boundary %d: shard s%d serves from %q, want promoted standby %q",
			boundary, victim, got, standbys[victim].url)
	}
}

// TestGatewayFailoverAtRecordBoundaries is the tier-level headline
// property: killing any one shard primary at any record boundary under
// load loses zero accepted reservations — the gateway promotes the
// standby itself and the merged committed plan is byte-identical to the
// uninterrupted run.
func TestGatewayFailoverAtRecordBoundaries(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	ops := buildOps(r, 3)
	want := referencePlan(t, r, ops)

	stride := 5
	if testing.Short() {
		stride = 9
	}
	boundaries := []int{}
	for i := 0; i <= len(ops); i += stride {
		boundaries = append(boundaries, i)
	}
	if len(ops)%stride != 0 {
		// Always include the final boundary: a failover with nothing left
		// to re-drive must still reproduce the whole merged plan.
		boundaries = append(boundaries, len(ops))
	}
	for _, b := range boundaries {
		t.Run(fmt.Sprintf("boundary=%d", b), func(t *testing.T) {
			runGatewayFailover(t, r, ops, b, want)
		})
	}
}
