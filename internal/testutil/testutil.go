// Package testutil provides shared fixtures for the test suites of the
// scheduling packages, most importantly the paper's Fig. 2 worked example,
// whose published dollar figures pin down the whole cost model.
package testutil

import (
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Fig2 bundles the worked example of paper §3.2: VW—IS1—IS2, one user at
// IS1 and two at IS2, all requesting the same title at 1:00, 2:30 and
// 4:00 pm (times measured from 1:00 pm).
type Fig2 struct {
	Topo     *topology.Topology
	Model    *cost.Model
	Requests workload.Set
	VW       topology.NodeID
	IS1      topology.NodeID
	IS2      topology.NodeID
}

// CentsPerMbit converts the paper's network rate unit — cents per
// (Mbit/s · s), i.e. cents per megabit — to the internal $/byte rate.
func CentsPerMbit(c float64) pricing.NRate { return pricing.NRate(c / 100 * 8 / 1e6) }

// PerGBHour converts $ per gigabyte-hour to the internal $/(byte·s) rate.
func PerGBHour(d float64) pricing.SRate { return pricing.SRate(d / (1e9 * 3600)) }

// NewFig2 builds the example with the rates that reproduce the paper's
// dollar figures: nrate(VW,IS1) = 0.2 ¢/Mbit, nrate(IS1,IS2) = 0.1 ¢/Mbit,
// srate = $1/GB·h. Capacity is generous so phase 1 is unconstrained.
func NewFig2() (*Fig2, error) {
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		return nil, err
	}
	cat, err := media.Uniform(1, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		return nil, err
	}
	book := pricing.Uniform(topo, 0, 0)
	e01, _ := topo.EdgeBetween(vw, is1)
	e12, _ := topo.EdgeBetween(is1, is2)
	book.SetNRate(e01, CentsPerMbit(0.2))
	book.SetNRate(e12, CentsPerMbit(0.1))
	if err := book.SetSRate(is1, PerGBHour(1)); err != nil {
		return nil, err
	}
	if err := book.SetSRate(is2, PerGBHour(1)); err != nil {
		return nil, err
	}
	table := routing.NewTable(book)
	model := cost.NewModel(book, table, cat)

	u1 := topo.UsersAt(is1)[0]
	u23 := topo.UsersAt(is2)
	reqs := workload.Set{
		{User: u1, Video: 0, Start: 0},
		{User: u23[0], Video: 0, Start: simtime.Time(90 * simtime.Minute)},
		{User: u23[1], Video: 0, Start: simtime.Time(180 * simtime.Minute)},
	}
	return &Fig2{Topo: topo, Model: model, Requests: reqs, VW: vw, IS1: is1, IS2: is2}, nil
}

// PaperRig bundles a full paper-scale experimental setup.
type PaperRig struct {
	Topo    *topology.Topology
	Catalog *media.Catalog
	Book    *pricing.Book
	Table   *routing.Table
	Model   *cost.Model
}

// NewPaperRig builds a (scaled-down if titles/storages are small) instance
// of the paper's §5.1 environment with uniform rates.
func NewPaperRig(storages, usersPer, titles int, capacity units.Bytes, srate pricing.SRate, nrate pricing.NRate, seed int64) (*PaperRig, error) {
	topo := topology.Metro(topology.GenConfig{
		Storages: storages, UsersPerStorage: usersPer, Capacity: capacity,
	}, seed)
	cat, err := media.Generate(media.GenConfig{Titles: titles, Seed: seed})
	if err != nil {
		return nil, err
	}
	book := pricing.Uniform(topo, srate, nrate)
	table := routing.NewTable(book)
	return &PaperRig{
		Topo:    topo,
		Catalog: cat,
		Book:    book,
		Table:   table,
		Model:   cost.NewModel(book, table, cat),
	}, nil
}
