// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON record, so benchmark history can be committed and
// diffed (see the bench-json Makefile target, which writes
// BENCH_scheduler.json).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson -out BENCH.json
//
// When both BenchmarkHorizonAdvance and BenchmarkFullResolve appear in the
// input, the record also carries their ns/op ratio — the incremental
// scheduler's speedup over re-solving the whole batch at every epoch.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// CPU is the GOMAXPROCS the benchmark ran with (the -N name suffix),
	// so `-cpu 1,4` runs of the same benchmark stay distinguishable.
	CPU int `json:"cpu,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU is the host's logical core count. A `-cpu 4` run on a
	// 1-core container sets GOMAXPROCS=4 without any hardware
	// parallelism, so the per-entry CPU field alone cannot tell a real
	// parallel measurement from goroutine-scheduling noise — this field
	// is what the derived-ratio gating below keys on.
	NumCPU     int         `json:"num_cpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// HorizonSpeedup is BenchmarkFullResolve's ns/op over
	// BenchmarkHorizonAdvance's: how much work the rolling-horizon
	// incremental extension saves vs. a full re-solve per epoch.
	HorizonSpeedup float64 `json:"horizon_speedup_vs_full_resolve,omitempty"`
	// Phase1ParallelSpeedup is BenchmarkSchedulePhase1's ns/op at -cpu 1
	// over its ns/op at the highest -cpu in the input: the wall-clock win
	// of the parallel phase-1 fan-out. Meaningful only on multi-core
	// machines — on a single hardware thread it hovers near 1.
	Phase1ParallelSpeedup float64 `json:"phase1_parallel_speedup,omitempty"`
	// GatewaySubmitSpeedup is BenchmarkGatewaySubmit1Server's ns/op over
	// BenchmarkGatewaySubmit3Shards's at the same GOMAXPROCS: the intake
	// throughput a 3-shard gateway tier buys over a single server under
	// concurrent submission. Like the phase-1 ratio, it needs real cores
	// to mean much.
	GatewaySubmitSpeedup float64 `json:"gateway_submit_speedup_3shards,omitempty"`
	// ParallelNote explains why the two parallelism ratios above are
	// absent when NumCPU < 2: a single hardware thread measures pure
	// scheduling noise (historically 0.37–0.57 "speedups" that read as
	// regressions), so the fields are omitted rather than recorded.
	ParallelNote string `json:"parallel_speedup_note,omitempty"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	check := flag.String("check", "", "baseline JSON (a previous benchjson report) to compare against; exit nonzero on regression")
	maxRatio := flag.Float64("max-ratio", 2, "with -check: maximum allowed ns/op ratio current/baseline")
	flag.Parse()
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", *check, err)
			os.Exit(1)
		}
		lines, err := compare(&base, rep, *maxRatio)
		for _, l := range lines {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d benchmark(s) to %s\n", len(rep.Benchmarks), *out)
	}
}

func parse(r io.Reader) (*Report, error) {
	return parseWithCPU(r, runtime.NumCPU())
}

// parseWithCPU is parse with the host core count injected, so tests can
// exercise both sides of the cores<2 gating.
func parseWithCPU(r io.Reader, numCPU int) (*Report, error) {
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    numCPU,
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		b, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	derive(rep)
	return rep, nil
}

// derive fills the ratio fields the report carries beyond the raw lines.
// Both kinds of derived ratio compare runs matched at the same
// GOMAXPROCS: dividing a -cpu 1 numerator by a -cpu 4 denominator (or
// vice versa) would fold the parallel fan-out into a ratio that is
// supposed to measure something else.
//
// The two hardware-parallelism ratios (phase-1 fan-out, gateway submit)
// are additionally gated on NumCPU: on a single-core host a -cpu 4 run
// just timeslices one hardware thread, and the resulting "speedup"
// (0.37–0.57 observed on the 1-CPU CI container) is noise that reads as
// a regression in the committed trajectory. HorizonSpeedup stays — it
// compares two algorithms at the same GOMAXPROCS, not one algorithm
// across core counts.
func derive(rep *Report) {
	idx := indexBenchmarks(rep.Benchmarks)
	if h, f, ok := pairAtSameCPU(idx, "BenchmarkHorizonAdvance", "BenchmarkFullResolve"); ok && h > 0 {
		rep.HorizonSpeedup = f / h
	}
	if rep.NumCPU < 2 {
		rep.ParallelNote = fmt.Sprintf(
			"parallel speedup ratios omitted: host has %d core(s); a multi-GOMAXPROCS run without hardware parallelism measures scheduling noise",
			rep.NumCPU)
		return
	}
	if g3, g1, ok := pairAtSameCPU(idx, "BenchmarkGatewaySubmit3Shards", "BenchmarkGatewaySubmit1Server"); ok && g3 > 0 {
		rep.GatewaySubmitSpeedup = g1 / g3
	}
	if seq, ok := idx[benchKey{"BenchmarkSchedulePhase1", 1}]; ok && seq.NsPerOp > 0 {
		parCPU, par := 1, 0.0
		for k, b := range idx {
			if k.name == "BenchmarkSchedulePhase1" && k.cpu > parCPU {
				parCPU, par = k.cpu, b.NsPerOp
			}
		}
		if parCPU > 1 && par > 0 {
			rep.Phase1ParallelSpeedup = seq.NsPerOp / par
		}
	}
}

// benchKey identifies one benchmark configuration. Results are keyed by
// (name, cpu), never by name alone: a `-cpu 1,4` run emits two lines for
// the same benchmark, and a name-only key would let one overwrite the
// other and derive phase1_parallel_speedup from an arbitrary pair.
type benchKey struct {
	name string
	cpu  int
}

// indexBenchmarks builds the (name, cpu) index the derived ratios read.
// A suffix-free line (GOMAXPROCS=1) keys as cpu 1. When the input holds
// several runs of one configuration (-count>1), the fastest wins — the
// slower runs carry scheduling noise, not information.
func indexBenchmarks(bs []Benchmark) map[benchKey]Benchmark {
	idx := make(map[benchKey]Benchmark, len(bs))
	for _, b := range bs {
		k := benchKey{b.Name, b.CPU}
		if k.cpu == 0 {
			k.cpu = 1
		}
		if prev, ok := idx[k]; !ok || b.NsPerOp < prev.NsPerOp {
			idx[k] = b
		}
	}
	return idx
}

// compare checks every benchmark configuration present in both the
// baseline and the current report, and returns an error if any current
// ns/op exceeds maxRatio times its baseline. This backs the CI bench
// smoke: a quick `-benchtime=1x -count=3` run whose fastest iteration
// (indexBenchmarks keeps the fastest per configuration) must stay within
// the ratio of the committed BENCH_scheduler.json. Configurations only
// one side measured are ignored — the smoke runs a subset of the full
// bench suite.
func compare(base, cur *Report, maxRatio float64) ([]string, error) {
	bi, ci := indexBenchmarks(base.Benchmarks), indexBenchmarks(cur.Benchmarks)
	keys := make([]benchKey, 0, len(ci))
	for k := range ci {
		if _, ok := bi[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].cpu < keys[j].cpu
	})
	if len(keys) == 0 {
		return nil, fmt.Errorf("no benchmark in the input matches the baseline")
	}
	var lines []string
	var regressed []string
	for _, k := range keys {
		b, c := bi[k], ci[k]
		if b.NsPerOp <= 0 {
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > maxRatio {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s-%d", k.name, k.cpu))
		}
		lines = append(lines, fmt.Sprintf("%s (cpu=%d): %.0f ns/op vs baseline %.0f (%.2fx, limit %.2fx) %s",
			k.name, k.cpu, c.NsPerOp, b.NsPerOp, ratio, maxRatio, verdict))
	}
	if len(regressed) > 0 {
		return lines, fmt.Errorf("benchmark regression beyond %.2fx: %s", maxRatio, strings.Join(regressed, ", "))
	}
	return lines, nil
}

// pairAtSameCPU returns the ns/op of benchmarks a and b measured at the
// same GOMAXPROCS, preferring the highest cpu at which both ran. ok is
// false when no common cpu exists.
func pairAtSameCPU(idx map[benchKey]Benchmark, a, b string) (na, nb float64, ok bool) {
	best := 0
	for k := range idx {
		if k.name == a && k.cpu > best {
			if _, found := idx[benchKey{b, k.cpu}]; found {
				best = k.cpu
			}
		}
	}
	if best == 0 {
		return 0, 0, false
	}
	return idx[benchKey{a, best}].NsPerOp, idx[benchKey{b, best}].NsPerOp, true
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   34   34567890 ns/op   123456 B/op   789 allocs/op
//
// Non-benchmark lines (package headers, PASS, ok ...) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false, nil
	}
	name := fields[0]
	cpu := 0
	// The GOMAXPROCS suffix (BenchmarkX-8) moves to the CPU field so that
	// `-cpu 1,4` runs of one benchmark keep distinct records under a
	// stable name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, cpu = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters, CPU: cpu}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if b.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad ns/op in %q: %w", line, err)
			}
		case "B/op":
			if b.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
		case "allocs/op":
			if b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Benchmark{}, false, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
		}
	}
	return b, true, nil
}
