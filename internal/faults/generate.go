package faults

import (
	"fmt"
	"math/rand"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// GenConfig parameterizes the seeded scenario generator.
type GenConfig struct {
	// Seed makes the scenario reproducible; the same seed over the same
	// topology always yields the same scenario.
	Seed int64
	// NodeOutages, LinkDowns and Brownouts count the faults of each kind
	// to draw (defaults 1, 1, 0).
	NodeOutages int
	LinkDowns   int
	Brownouts   int
	// Window is the span fault onsets are drawn from (default [0, 24h)).
	Window simtime.Interval
	// MeanDuration is the mean repair time; each fault's length is drawn
	// uniformly from [MeanDuration/2, 3·MeanDuration/2) (default 2h).
	MeanDuration simtime.Duration
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NodeOutages == 0 && c.LinkDowns == 0 && c.Brownouts == 0 {
		c.NodeOutages, c.LinkDowns = 1, 1
	}
	if c.Window.Empty() {
		c.Window = simtime.NewInterval(0, simtime.Time(24*simtime.Hour))
	}
	if c.MeanDuration <= 0 {
		c.MeanDuration = 2 * simtime.Hour
	}
	return c
}

// Generate draws a random fault scenario over the topology. Outage targets
// are drawn uniformly over the intermediate storages and link targets over
// the edges; the result always passes Validate.
func Generate(topo *topology.Topology, cfg GenConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	storages := topo.Storages()
	if cfg.NodeOutages > 0 && len(storages) == 0 {
		return nil, fmt.Errorf("faults: topology has no intermediate storages to outage")
	}
	if cfg.LinkDowns > 0 && topo.NumEdges() == 0 {
		return nil, fmt.Errorf("faults: topology has no links to down")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	window := func() (simtime.Time, simtime.Time) {
		span := int64(cfg.Window.Len())
		from := cfg.Window.Start.Add(simtime.Duration(rng.Int63n(span)))
		lo := int64(cfg.MeanDuration) / 2
		hi := 3 * int64(cfg.MeanDuration) / 2
		d := lo
		if hi > lo {
			d = lo + rng.Int63n(hi-lo)
		}
		return from, from.Add(simtime.Duration(d))
	}
	sc := &Scenario{}
	for i := 0; i < cfg.NodeOutages; i++ {
		from, until := window()
		sc.Faults = append(sc.Faults, Fault{
			Kind: NodeOutage, Node: storages[rng.Intn(len(storages))],
			From: from, Until: until,
		})
	}
	for i := 0; i < cfg.LinkDowns; i++ {
		from, until := window()
		sc.Faults = append(sc.Faults, Fault{
			Kind: LinkDown, Edge: rng.Intn(topo.NumEdges()),
			From: from, Until: until,
		})
	}
	for i := 0; i < cfg.Brownouts; i++ {
		from, until := window()
		sc.Faults = append(sc.Faults, Fault{Kind: VWBrownout, From: from, Until: until})
	}
	return sc, nil
}
