// Command vspexp regenerates the paper's evaluation: Figures 5–9 and
// Table 5, plus the §5.5 overflow-resolution cost statistics.
//
// Usage:
//
//	vspexp -exp fig5                  # one figure as an aligned table
//	vspexp -exp all -format csv       # everything, CSV to stdout
//	vspexp -exp table5 -scale small   # quick smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/plot"
	"github.com/vodsim/vsp/internal/report"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig5 | fig6 | fig7 | fig8 | fig9 | fig-online | fig-replication | fig-locality | table5 | grid | all")
		format   = flag.String("format", "table", "output format for figures: table | csv | svg | markdown")
		repeats  = flag.Int("repeats", 3, "workload draws averaged per figure point")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
		scale    = flag.String("scale", "paper", "system scale: paper (19 IS, 500 titles) | small (9 IS, 60 titles)")
		seed     = flag.Int64("seed", 1997, "master seed")
		rpu      = flag.Int("rpu", 1, "reservations per user (workload density)")
		outDir   = flag.String("out", ".", "directory for -format svg output files")
	)
	flag.Parse()
	if err := run(os.Stdout, *exp, *format, *repeats, *parallel, *scale, *seed, *rpu, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "vspexp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp, format string, repeats, parallel int, scale string, seed int64, rpu int, outDir string) error {
	var base experiment.Params
	switch scale {
	case "paper":
		base = experiment.Params{Seed: seed}
	case "small":
		base = experiment.Params{Storages: 9, UsersPerStorage: 6, Titles: 60, Seed: seed}
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if rpu > 1 {
		base.RequestsPerUser = rpu
	}

	figures := map[string]func(experiment.Params, int, int) (*experiment.Figure, error){
		"fig5":         experiment.Fig5,
		"fig6":         experiment.Fig6,
		"fig7":         experiment.Fig7,
		"fig8":         experiment.Fig8,
		"fig9":         experiment.Fig9,
		"fig-online":   experiment.FigOnline,
		"fig-locality": experiment.FigLocality,
		"fig-replication": func(b experiment.Params, r, p int) (*experiment.Figure, error) {
			return experiment.FigReplication(b, 0.25, r, p)
		},
	}
	order := []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig-online", "fig-replication", "fig-locality"}

	emitFigure := func(name string) error {
		start := time.Now()
		fig, err := figures[name](base, repeats, parallel)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d series in %v\n", name, len(fig.Series), time.Since(start).Round(time.Millisecond))
		switch format {
		case "csv":
			return report.WriteFigureCSV(w, fig)
		case "markdown":
			if err := report.WriteFigureMarkdown(w, fig); err != nil {
				return err
			}
			_, err = fmt.Fprintln(w)
			return err
		case "svg":
			path := filepath.Join(outDir, fig.ID+".svg")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := plot.WriteSVG(f, fig, plot.Options{}); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "wrote %s\n", path)
			return err
		case "table":
			if err := report.WriteFigureTable(w, fig); err != nil {
				return err
			}
			_, err = fmt.Fprintln(w)
			return err
		default:
			return fmt.Errorf("unknown format %q", format)
		}
	}

	emitTable5 := func() error {
		start := time.Now()
		res, err := experiment.RunTable5(experiment.Table5Config{Base: base, Parallelism: parallel})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "table5: %d cases in %v\n", res.TotalCases, time.Since(start).Round(time.Millisecond))
		if format == "csv" {
			return report.WriteTable5CSV(w, res)
		}
		return report.WriteTable5(w, res)
	}

	emitGrid := func() error {
		start := time.Now()
		var ps []experiment.Params
		for _, sr := range experiment.SRateSweep {
			for _, cap := range experiment.CapacitySweep {
				for _, nr := range experiment.NRateSweep {
					for _, a := range experiment.AlphaSweep {
						p := base
						p.SRateGBHour, p.CapacityGB, p.NRateGB, p.Alpha = sr, cap, nr, a
						ps = append(ps, p)
					}
				}
			}
		}
		results, err := experiment.RunMany(ps, parallel)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "grid: %d configurations in %v\n", len(results), time.Since(start).Round(time.Millisecond))
		return report.WriteResults(w, results)
	}

	switch exp {
	case "all":
		for _, name := range order {
			if err := emitFigure(name); err != nil {
				return err
			}
		}
		return emitTable5()
	case "table5":
		return emitTable5()
	case "grid":
		return emitGrid()
	default:
		if _, ok := figures[exp]; !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		return emitFigure(exp)
	}
}
