package replica

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/wal"
)

// Shipper defaults.
const (
	DefaultInterval = 250 * time.Millisecond
	DefaultBatchMax = 1024
)

// ShipperConfig configures WAL shipping from a primary.
type ShipperConfig struct {
	// Source is the primary's base URL (e.g. "http://primary:8080").
	Source string
	// Interval is Run's poll period (default DefaultInterval). A poll
	// that applied a full batch re-polls immediately, so the interval
	// only paces an idle or caught-up follower.
	Interval time.Duration
	// BatchMax caps records per poll (default DefaultBatchMax).
	BatchMax int
	// Retry tunes the transport retry loop (jittered exponential backoff
	// honoring Retry-After; see internal/retryhttp).
	Retry retryhttp.Options
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.BatchMax <= 0 {
		c.BatchMax = DefaultBatchMax
	}
	return c
}

// Shipper ships the primary's WAL into a local follower service. It is
// the client half of the replication protocol: it resumes from the
// service's applied sequence, verifies every shipped record's CRC, and
// applies records through the service's idempotent replay entry point.
// Safe for concurrent use; Run is the long-lived driver and Poll a
// single deterministic round (the fault-injection harness drives Poll
// directly).
type Shipper struct {
	svc  *horizon.Service
	lead *Leadership
	cfg  ShipperConfig

	mu                 sync.Mutex
	primaryLastSeq     uint64
	synced             bool
	caughtUp           bool
	recordsApplied     uint64
	snapshotsInstalled uint64
	lastErr            string
}

// NewShipper builds a shipper feeding svc from cfg.Source under the
// node's leadership view.
func NewShipper(svc *horizon.Service, lead *Leadership, cfg ShipperConfig) *Shipper {
	return &Shipper{svc: svc, lead: lead, cfg: cfg.withDefaults()}
}

// Source returns the primary base URL this shipper pulls from.
func (sh *Shipper) Source() string { return sh.cfg.Source }

// Status returns the shipper's replication status combined with the
// node's leadership view.
func (sh *Shipper) Status() Status {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	applied := sh.svc.AppliedSeq()
	st := Status{
		Role:               sh.lead.Role().String(),
		Epoch:              sh.lead.Epoch(),
		AppliedSeq:         applied,
		Source:             sh.cfg.Source,
		PrimaryLastSeq:     sh.primaryLastSeq,
		Synced:             sh.synced,
		CaughtUp:           sh.caughtUp && applied >= sh.primaryLastSeq,
		RecordsApplied:     sh.recordsApplied,
		SnapshotsInstalled: sh.snapshotsInstalled,
		LastError:          sh.lastErr,
	}
	if sh.primaryLastSeq > applied {
		st.Lag = sh.primaryLastSeq - applied
	}
	return st
}

// Poll performs one shipping round: fetch the tail after the applied
// sequence, verify, apply. It returns the number of records (or
// snapshot installs) applied, so callers can drain a backlog by polling
// until the count is zero.
func (sh *Shipper) Poll(ctx context.Context) (applied int, err error) {
	defer func() {
		sh.mu.Lock()
		if err != nil {
			sh.lastErr = err.Error()
		} else {
			sh.lastErr = ""
		}
		sh.mu.Unlock()
	}()
	if sh.lead.IsPrimary() {
		return 0, fmt.Errorf("replica: node is primary; shipping from %s stopped", sh.cfg.Source)
	}
	after := sh.svc.AppliedSeq()
	u := fmt.Sprintf("%s/v1/replication/wal?after=%d&epoch=%d&max=%d",
		sh.cfg.Source, after, sh.lead.Epoch(), sh.cfg.BatchMax)
	var batch Batch
	if err := retryhttp.GetJSON(ctx, sh.cfg.Retry, u, &batch); err != nil {
		return 0, fmt.Errorf("replica: fetch tail from %s: %w", sh.cfg.Source, err)
	}
	return sh.ApplyBatch(ctx, batch)
}

// ApplyBatch verifies and applies one batch. Records at or before the
// applied sequence are skipped (idempotency by sequence), so a
// duplicated delivery — a retried request whose first attempt did reach
// the applier — converges instead of diverging. Exported so tests can
// inject duplicate and reordered deliveries directly.
func (sh *Shipper) ApplyBatch(ctx context.Context, batch Batch) (applied int, err error) {
	sh.lead.Observe(batch.LeaderEpoch)
	if len(batch.Snapshot) > 0 && batch.SnapshotSeq > sh.svc.AppliedSeq() {
		if err := sh.svc.InstallSnapshot(batch.SnapshotSeq, batch.Snapshot); err != nil {
			return 0, err
		}
		sh.mu.Lock()
		sh.snapshotsInstalled++
		sh.mu.Unlock()
		applied++
	}
	for _, rec := range batch.Records {
		if err := rec.Verify(); err != nil {
			return applied, err
		}
		ok, err := sh.svc.ApplyReplicated(ctx, wal.Record{Seq: rec.Seq, Payload: rec.Payload})
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
			sh.mu.Lock()
			sh.recordsApplied++
			sh.mu.Unlock()
		}
	}
	sh.mu.Lock()
	sh.primaryLastSeq = batch.LastSeq
	sh.synced = true
	sh.caughtUp = sh.svc.AppliedSeq() >= batch.LastSeq
	sh.mu.Unlock()
	return applied, nil
}

// Drain polls until a round ships nothing new, leaving the follower
// caught up with the primary's tail as observed by that final round. The
// shipper's Status is point-in-time — it reports the primary's last seq
// as of the previous poll, which may be stale the moment a new record is
// journaled — so promotion MUST drain rather than trust Status, or a
// planned failover can silently drop the records acknowledged since the
// last poll.
func (sh *Shipper) Drain(ctx context.Context) error {
	for {
		n, err := sh.Poll(ctx)
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}

// Run polls until the context is cancelled or the node is promoted.
// Transient failures are recorded in Status and retried on the next
// tick (on top of the per-request retry loop); a backlogged follower
// polls continuously until it drains, then settles to the interval.
func (sh *Shipper) Run(ctx context.Context) {
	t := time.NewTicker(sh.cfg.Interval)
	defer t.Stop()
	for {
		if sh.lead.IsPrimary() {
			return
		}
		n, err := sh.Poll(ctx)
		if err == nil && n > 0 {
			// Backlog: keep draining without waiting out the interval.
			select {
			case <-ctx.Done():
				return
			default:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
