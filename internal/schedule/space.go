package schedule

import (
	"github.com/vodsim/vsp/internal/simtime"
)

// SpaceIntegral returns the time–space product of the copy over the given
// interval: ∫ f_c(t) dt in byte·seconds (paper Eq. 5). f_c is the piecewise
// linear profile of SpaceAt, so the integral has a closed form.
func (c Residency) SpaceIntegral(iv simtime.Interval, size float64, playback simtime.Duration) float64 {
	if playback <= 0 {
		return 0
	}
	window := iv.Intersect(c.Support(playback))
	if window.Empty() {
		return 0
	}
	g := c.Gamma(playback)
	total := 0.0
	// Plateau part: [Load, LastService] at height γ·size.
	plateau := window.Intersect(simtime.NewInterval(c.Load, c.LastService))
	total += g * size * plateau.Len().Seconds()
	// Decay part: [LastService, LastService+P], height falls linearly from
	// γ·size to 0. Integral of the trapezoid between a and b.
	decay := window.Intersect(simtime.NewInterval(c.LastService, c.LastService.Add(playback)))
	if !decay.Empty() {
		hA := c.SpaceAt(decay.Start, size, playback)
		hB := c.SpaceAt(decay.End, size, playback)
		total += (hA + hB) / 2 * decay.Len().Seconds()
	}
	return total
}

// TotalSpaceIntegral returns the copy's full lifetime time–space product:
// γ·size·(Δ + P/2), the quantity the storage cost model charges (Eq. 2–3).
func (c Residency) TotalSpaceIntegral(size float64, playback simtime.Duration) float64 {
	return c.SpaceIntegral(c.Support(playback), size, playback)
}
