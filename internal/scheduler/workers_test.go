package scheduler_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/sorp"
)

// fingerprint serializes everything observable about an outcome so the
// worker-count property below really is "byte-identical", not merely
// "equal cost".
func fingerprint(t *testing.T, out *scheduler.Outcome) string {
	t.Helper()
	blob, err := json.Marshal(struct {
		Schedule   interface{}
		Phase1Cost interface{}
		FinalCost  interface{}
		Overflows  int
		Victims    []sorp.Victim
	}{out.Schedule, out.Phase1Cost, out.FinalCost, out.Overflows, out.Victims})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestScheduleWorkersByteIdentical is the determinism property for the
// parallel two-phase scheduler: for seeded random workloads tight enough to
// force SORP activity, the outcome with any worker count must serialize to
// the same bytes as the sequential (Workers: 1) run — same schedule, same
// costs, same victim sequence. Run under -race in CI, this also shakes out
// data races in the phase-1 fan-out and the concurrent candidate evaluation.
func TestScheduleWorkersByteIdentical(t *testing.T) {
	for _, seed := range []int64{1, 42, 1997} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r, err := experiment.Build(experiment.Params{
				Storages:        6,
				UsersPerStorage: 4,
				RequestsPerUser: 3,
				Titles:          20,
				CapacityGB:      2, // tight: forces overflows, so phase 2 runs
				Seed:            seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) string {
				out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{Workers: workers})
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				return fingerprint(t, out)
			}
			want := run(1)
			if want == "" {
				t.Fatal("empty fingerprint")
			}
			for _, workers := range []int{0, 2, 4, 16} {
				if got := run(workers); got != want {
					t.Errorf("Workers=%d outcome differs from sequential run", workers)
				}
			}
		})
	}
}
