package occupancy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// equivTol absorbs the accumulation-order difference between the two query
// paths: the naive path re-sums Eq. 6 per entry while the index sweeps
// jumps and integrates slopes, so results may differ by float rounding but
// never by more than a few ulps of the byte totals involved.
const equivTol = 1e-6

// randomLedgers builds a naive and an indexed ledger over the same topology
// and feeds both the identical seeded mutation sequence: adds, extensions,
// relocations, removals and whole-video removals, with spans from zero
// (γ=0 tentatives) through short to long residencies.
func randomLedgers(t *testing.T, seed int64, nvideos, muts int) (*Ledger, *Ledger, *topology.Topology, *media.Catalog) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	var stores []topology.NodeID
	for i := 0; i < 4; i++ {
		stores = append(stores, b.Storage(fmt.Sprintf("IS%d", i), 2500))
	}
	b.Connect(vw, stores[0])
	for i := 1; i < len(stores); i++ {
		b.Connect(stores[i-1], stores[i])
	}
	b.AttachUsers(stores[0], 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(nvideos, 1000, p, units.BytesPerSec(1000.0/100*2))
	if err != nil {
		t.Fatal(err)
	}

	SetNaiveForTesting(true)
	naive := NewLedger(topo, cat)
	SetNaiveForTesting(false)
	indexed := NewLedger(topo, cat)
	if naive.naive == indexed.naive {
		t.Fatal("fixture bug: both ledgers on the same query path")
	}

	rng := rand.New(rand.NewSource(seed))
	type slot struct {
		ref Ref
		c   schedule.Residency
	}
	var live []slot
	randRes := func(vid media.VideoID) schedule.Residency {
		loc := stores[rng.Intn(len(stores))]
		load := simtime.Time(rng.Intn(500)) * simtime.Time(simtime.Second)
		span := simtime.Duration(rng.Intn(250)) * simtime.Second
		if rng.Intn(5) == 0 {
			span = 0 // zero-span tentative: occupies nothing
		}
		return res(vid, loc, load, load.Add(span))
	}
	nextIdx := make(map[media.VideoID]int)
	for m := 0; m < muts; m++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // add
			vid := media.VideoID(rng.Intn(nvideos))
			ref := Ref{Video: vid, Index: nextIdx[vid]}
			nextIdx[vid]++
			c := randRes(vid)
			naive.Add(ref, c)
			indexed.Add(ref, c)
			live = append(live, slot{ref, c})
		case op < 7: // extend or relocate
			i := rng.Intn(len(live))
			c := live[i].c
			if rng.Intn(2) == 0 {
				c.LastService = c.LastService.Add(simtime.Duration(rng.Intn(100)) * simtime.Second)
			} else {
				c.Loc = stores[rng.Intn(len(stores))]
			}
			if got, want := naive.Update(live[i].ref, c), indexed.Update(live[i].ref, c); got != want {
				t.Fatalf("Update found mismatch: naive=%v indexed=%v", got, want)
			}
			live[i].c = c
		case op < 9: // remove one
			i := rng.Intn(len(live))
			if got, want := naive.Remove(live[i].ref), indexed.Remove(live[i].ref); got != want {
				t.Fatalf("Remove found mismatch: naive=%v indexed=%v", got, want)
			}
			live = append(live[:i], live[i+1:]...)
		default: // remove a whole video
			vid := media.VideoID(rng.Intn(nvideos))
			naive.RemoveVideo(vid)
			indexed.RemoveVideo(vid)
			kept := live[:0]
			for _, s := range live {
				if s.ref.Video != vid {
					kept = append(kept, s)
				}
			}
			live = kept
		}
	}
	return naive, indexed, topo, cat
}

// TestPropertyNaiveIndexedEquivalence drives both query paths through the
// same seeded random mutation sequences and demands they agree on every
// query the scheduler uses: SpaceAt over a time grid, Peak, Overflows,
// OverflowSet and CanFit/CanFitExcluding for random candidates.
func TestPropertyNaiveIndexedEquivalence(t *testing.T) {
	defer SetNaiveForTesting(false)
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			naive, indexed, topo, _ := randomLedgers(t, seed, 6, 120)
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for n := 1; n < topo.NumNodes(); n++ {
				node := topology.NodeID(n)
				for ti := 0; ti <= 90; ti++ {
					at := simtime.Time(ti*10) * simtime.Time(simtime.Second)
					a, b := naive.SpaceAt(node, at), indexed.SpaceAt(node, at)
					if math.Abs(a-b) > equivTol*(1+math.Abs(a)) {
						t.Fatalf("SpaceAt(%d, %v): naive %g, indexed %g", node, at, a, b)
					}
				}
				pa, ta := naive.Peak(node)
				pb, tb := indexed.Peak(node)
				if math.Abs(pa-pb) > equivTol*(1+math.Abs(pa)) {
					t.Fatalf("Peak(%d): naive %g@%v, indexed %g@%v", node, pa, ta, pb, tb)
				}
				ofa, ofb := naive.Overflows(node), indexed.Overflows(node)
				if len(ofa) != len(ofb) {
					t.Fatalf("Overflows(%d): naive %v, indexed %v", node, ofa, ofb)
				}
				for i := range ofa {
					if ofa[i].Interval != ofb[i].Interval ||
						math.Abs(ofa[i].Peak-ofb[i].Peak) > equivTol*(1+ofa[i].Peak) {
						t.Fatalf("Overflows(%d)[%d]: naive %v, indexed %v", node, i, ofa[i], ofb[i])
					}
					sa := naive.OverflowSet(node, ofa[i].Interval)
					sb := indexed.OverflowSet(node, ofb[i].Interval)
					if len(sa) != len(sb) {
						t.Fatalf("OverflowSet(%d): naive %v, indexed %v", node, sa, sb)
					}
					for j := range sa {
						if sa[j] != sb[j] {
							t.Fatalf("OverflowSet(%d)[%d]: naive %v, indexed %v", node, j, sa[j], sb[j])
						}
					}
				}
				// Random candidates, including some that barely fit or barely
				// overflow around the shared capacity.
				for k := 0; k < 40; k++ {
					load := simtime.Time(rng.Intn(600)) * simtime.Time(simtime.Second)
					span := simtime.Duration(rng.Intn(300)) * simtime.Second
					cand := res(media.VideoID(rng.Intn(6)), node, load, load.Add(span))
					if a, b := naive.CanFit(cand), indexed.CanFit(cand); a != b {
						t.Fatalf("CanFit(%v): naive %v, indexed %v", cand, a, b)
					}
				}
			}
		})
	}
}

// TestPropertyOverlayMatchesCloneRemove pins the overlay view to its
// specification: for seeded random ledgers, OverlayWithout(v) must answer
// SpaceAt and CanFit exactly like Clone-then-RemoveVideo(v), and Flatten
// must reproduce the clone path's committed state byte for byte (entry
// order and version counters included).
func TestPropertyOverlayMatchesCloneRemove(t *testing.T) {
	defer SetNaiveForTesting(false)
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, indexed, topo, _ := randomLedgers(t, seed, 6, 120)
			rng := rand.New(rand.NewSource(seed ^ 0x0f1a7))
			for vid := media.VideoID(0); vid < 6; vid++ {
				view := indexed.OverlayWithout(vid)
				ref := indexed.Clone()
				ref.RemoveVideo(vid)
				for n := 1; n < topo.NumNodes(); n++ {
					node := topology.NodeID(n)
					for ti := 0; ti <= 60; ti++ {
						at := simtime.Time(ti*15) * simtime.Time(simtime.Second)
						a, b := ref.SpaceAt(node, at), view.SpaceAt(node, at)
						if math.Abs(a-b) > equivTol*(1+math.Abs(a)) {
							t.Fatalf("vid %d SpaceAt(%d,%v): clone %g, overlay %g", vid, node, at, a, b)
						}
					}
					for k := 0; k < 25; k++ {
						load := simtime.Time(rng.Intn(600)) * simtime.Time(simtime.Second)
						span := simtime.Duration(rng.Intn(300)) * simtime.Second
						cand := res(vid, node, load, load.Add(span))
						if a, b := ref.CanFit(cand), view.CanFit(cand); a != b {
							t.Fatalf("vid %d CanFit(%v): clone %v, overlay %v", vid, cand, a, b)
						}
					}
				}
				// Mutate both identically, then compare the flattened view
				// against the clone: same entries, same versions.
				add := res(vid, topology.NodeID(1+rng.Intn(topo.NumNodes()-1)), 100, 250)
				r := Ref{Video: vid, Index: 9000 + int(vid)}
				view.Add(r, add)
				ref.Add(r, add)
				flat := view.Flatten()
				for n := 0; n < topo.NumNodes(); n++ {
					node := topology.NodeID(n)
					if got, want := flat.Version(node), ref.Version(node); got != want {
						t.Fatalf("vid %d node %d version: flatten %d, clone %d", vid, node, got, want)
					}
					if got, want := flat.NumEntries(node), ref.NumEntries(node); got != want {
						t.Fatalf("vid %d node %d entries: flatten %d, clone %d", vid, node, got, want)
					}
					a, b := ref.nodes[n], flat.nodes[n]
					for i := range a.entries {
						if a.entries[i].ref != b.entries[i].ref || a.entries[i].res.Loc != b.entries[i].res.Loc ||
							a.entries[i].v != b.entries[i].v || a.entries[i].k != b.entries[i].k {
							t.Fatalf("vid %d node %d entry %d differs", vid, node, i)
						}
					}
					if len(a.events) != len(b.events) {
						t.Fatalf("vid %d node %d: %d events vs %d", vid, node, len(a.events), len(b.events))
					}
					for i := range a.events {
						if a.events[i] != b.events[i] {
							t.Fatalf("vid %d node %d event %d: %+v vs %+v", vid, node, i, a.events[i], b.events[i])
						}
					}
				}
			}
		})
	}
}
