// Replication: static pre-placement vs dynamic en-route caching. The
// paper's companion work studies strategic replication of video files;
// this example pits a placement plan (standing copies of the expected-hot
// titles, pre-loaded at an off-peak bulk tariff) against the paper's
// reactive two-phase scheduler, across tariff regimes — and shows the
// repository's placement finding: free cache-fills from passing streams
// make reactive caching very hard to beat.
package main

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 10, Capacity: vsp.GB(10),
	}, 13)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 40, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("architecture comparison (α = 0.1, skewed evening demand)")
	fmt.Println()
	fmt.Printf("%-34s %-14s %-14s %-14s %s\n", "off-peak preload tariff", "direct", "static only", "dynamic", "dynamic+static")
	for _, factor := range []float64{1.0, 0.5, 0.1} {
		sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(1), vsp.PerGB(900))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.SetPreloadFactor(factor); err != nil {
			log.Fatal(err)
		}
		reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{Alpha: 0.1, Seed: 14})
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sys.PlanPlacement(vsp.PlacementConfig{Alpha: 0.1, CapacityFraction: 0.8})
		if err != nil {
			log.Fatal(err)
		}
		seeds := plan.Seeds()

		direct, err := sys.ScheduleDirect(reqs)
		if err != nil {
			log.Fatal(err)
		}
		static, err := sys.Schedule(reqs, vsp.SchedulerConfig{Policy: vsp.NoCaching, Seeds: seeds})
		if err != nil {
			log.Fatal(err)
		}
		dynamic, err := sys.Schedule(reqs, vsp.SchedulerConfig{})
		if err != nil {
			log.Fatal(err)
		}
		both, err := sys.Schedule(reqs, vsp.SchedulerConfig{Seeds: seeds})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.0f%% of stream rate (%2d copies)     %-14.0f %-14.0f %-14.0f %.0f\n",
			factor*100, plan.NumCopies(),
			float64(direct.FinalCost), float64(static.FinalCost),
			float64(dynamic.FinalCost), float64(both.FinalCost))
	}

	fmt.Println()
	fmt.Println("Reading the table: static replication recovers a large share of the")
	fmt.Println("no-cache system's waste, and cheaper off-peak pre-loads help it —")
	fmt.Println("but the dynamic scheduler, which fills caches for free from streams")
	fmt.Println("that are passing anyway, beats static-only at every tariff. At full")
	fmt.Println("tariff, standing copies on top of dynamic caching just add committed")
	fmt.Println("cost; only once pre-loads get very cheap (here ~10% of the stream")
	fmt.Println("rate) does the combination finally undercut pure dynamic caching.")
}
