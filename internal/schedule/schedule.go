// Package schedule defines the service schedule of the paper (§2.1): the
// complete instruction set telling the warehouse, the intermediate storages
// and the network how a batch of requests will be serviced.
//
// A schedule for one file consists of
//
//   - Deliveries (the paper's network transfer information d_i): one stream
//     per request, flowing from a supply node (the warehouse or a caching
//     storage) to the requesting user's local storage, starting at the
//     request's start time. A delivery whose route has zero hops is a local
//     cache hit and uses no network.
//
//   - Residencies (the paper's file residency information c_i): temporary
//     copies at an intermediate storage, filled by copying data blocks from
//     an on-going delivery stream. A residency records the caching interval
//     [Load, LastService] — Load is when the copy starts being written,
//     LastService is the start time of the last service reading from it —
//     plus the feeding delivery and the deliveries it supplies.
package schedule

import (
	"fmt"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/workload"
)

// NoResidency marks a delivery supplied straight from the warehouse.
const NoResidency = -1

// PrePlacedFeed marks a residency that is not filled from a request's
// stream but pre-placed by a bulk transfer from the warehouse before the
// cycle (strategic replication — the companion work the paper cites as
// [16]). Its [Load, LastService] window is the planned holding span chosen
// by the placement planner; services must fall inside it but do not extend
// it, and the copy is retained (and charged) for the whole span even if
// nothing reads it.
const PrePlacedFeed = -1

// Delivery is one network transfer record (d_i): file Video streams along
// Route starting at Start to serve User. SourceResidency is the index (in
// the owning FileSchedule) of the cached copy supplying the stream, or
// NoResidency when the warehouse supplies it.
type Delivery struct {
	Video           media.VideoID   `json:"video"`
	User            topology.UserID `json:"user"`
	Start           simtime.Time    `json:"start"`
	Route           routing.Route   `json:"route"`
	SourceResidency int             `json:"source_residency"`
}

// Dst returns the destination storage (the served user's local IS).
func (d Delivery) Dst() topology.NodeID { return d.Route.Dst() }

// Src returns the supply node the stream originates from.
func (d Delivery) Src() topology.NodeID { return d.Route.Src() }

// Residency is one file residency record (c_i): a temporary copy of Video
// at storage Loc, written from a stream originating at Src.
type Residency struct {
	Video       media.VideoID   `json:"video"`
	Loc         topology.NodeID `json:"loc"`
	Src         topology.NodeID `json:"src"`
	Load        simtime.Time    `json:"load"`         // t_s: copy starts being written
	LastService simtime.Time    `json:"last_service"` // t_f: start of the last service
	FedBy       int             `json:"fed_by"`       // delivery index writing the copy
	Services    []int           `json:"services"`     // delivery indices reading the copy
}

// Span returns the caching interval length Δ = LastService − Load.
func (c Residency) Span() simtime.Duration { return c.LastService.Sub(c.Load) }

// Long reports whether the residency is of the long type (Δ ≥ P, paper
// §2.2.1); otherwise it is short.
func (c Residency) Long(playback simtime.Duration) bool {
	return c.Span() >= playback
}

// Gamma returns the space coefficient γ (paper Eq. 7): the fraction of the
// file size the copy occupies at its peak. Long residencies reserve the
// full size from the start of caching; short residencies never hold more
// than the writer/last-reader gap Δ/P.
func (c Residency) Gamma(playback simtime.Duration) float64 {
	if playback <= 0 {
		return 0
	}
	if c.Long(playback) {
		return 1
	}
	return float64(c.Span()) / float64(playback)
}

// Support returns the time interval during which the copy occupies any
// space: caching plus the playback tail of the last service (paper §2.2.1:
// "Caching interval [ts, tf] is followed by the playback duration of the
// last service").
func (c Residency) Support(playback simtime.Duration) simtime.Interval {
	return simtime.NewInterval(c.Load, c.LastService.Add(playback))
}

// SpaceAt returns the copy's space requirement at time t (paper Eq. 6):
// γ·size on [Load, LastService], decaying linearly to zero over the
// playback length of the last service.
func (c Residency) SpaceAt(t simtime.Time, size float64, playback simtime.Duration) float64 {
	if t < c.Load || playback <= 0 {
		return 0
	}
	g := c.Gamma(playback)
	if t <= c.LastService {
		return g * size
	}
	end := c.LastService.Add(playback)
	if t >= end {
		return 0
	}
	return g * size * (1 - float64(t.Sub(c.LastService))/float64(playback))
}

// FileSchedule is the schedule S_i for a single title: all deliveries and
// residencies arranged for its request set R_i.
type FileSchedule struct {
	Video       media.VideoID `json:"video"`
	Deliveries  []Delivery    `json:"deliveries"`
	Residencies []Residency   `json:"residencies"`
}

// Clone returns a deep copy of the file schedule.
func (fs *FileSchedule) Clone() *FileSchedule {
	out := &FileSchedule{Video: fs.Video}
	out.Deliveries = make([]Delivery, len(fs.Deliveries))
	for i, d := range fs.Deliveries {
		d.Route = d.Route.Clone()
		out.Deliveries[i] = d
	}
	out.Residencies = make([]Residency, len(fs.Residencies))
	for i, c := range fs.Residencies {
		c.Services = append([]int(nil), c.Services...)
		out.Residencies[i] = c
	}
	return out
}

// Schedule is the global service schedule S: the union of per-file
// schedules (paper §2.3).
type Schedule struct {
	Files map[media.VideoID]*FileSchedule `json:"files"`
}

// New returns an empty schedule.
func New() *Schedule {
	return &Schedule{Files: make(map[media.VideoID]*FileSchedule)}
}

// Put installs (or replaces) the schedule of one file.
func (s *Schedule) Put(fs *FileSchedule) { s.Files[fs.Video] = fs }

// File returns the schedule of one title, or nil.
func (s *Schedule) File(v media.VideoID) *FileSchedule { return s.Files[v] }

// VideoIDs returns the scheduled titles in ascending order.
func (s *Schedule) VideoIDs() []media.VideoID {
	out := make([]media.VideoID, 0, len(s.Files))
	for id := range s.Files {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NumDeliveries returns the total number of streams across all files.
func (s *Schedule) NumDeliveries() int {
	n := 0
	for _, fs := range s.Files {
		n += len(fs.Deliveries)
	}
	return n
}

// NumResidencies returns the total number of cached copies across all files.
func (s *Schedule) NumResidencies() int {
	n := 0
	for _, fs := range s.Files {
		n += len(fs.Residencies)
	}
	return n
}

// Clone returns a deep copy of the schedule.
func (s *Schedule) Clone() *Schedule {
	out := New()
	for id, fs := range s.Files {
		out.Files[id] = fs.Clone()
	}
	return out
}

// Validate checks every structural invariant of the schedule against the
// topology and catalog, and that it serves exactly the given request set.
// It returns the first violation found.
func (s *Schedule) Validate(topo *topology.Topology, catalog *media.Catalog, requests workload.Set) error {
	type key struct {
		u topology.UserID
		v media.VideoID
		t simtime.Time
	}
	want := make(map[key]int)
	for _, r := range requests {
		want[key{r.User, r.Video, r.Start}]++
	}
	for vid, fs := range s.Files {
		if fs.Video != vid {
			return fmt.Errorf("schedule: file map key %d holds schedule for %d", vid, fs.Video)
		}
		if int(vid) < 0 || int(vid) >= catalog.Len() {
			return fmt.Errorf("schedule: unknown video %d", vid)
		}
		video := catalog.Video(vid)
		if err := validateFile(topo, video, fs); err != nil {
			return err
		}
		for _, d := range fs.Deliveries {
			k := key{d.User, d.Video, d.Start}
			if want[k] == 0 {
				return fmt.Errorf("schedule: delivery for (%d,%d,%v) matches no request", d.User, d.Video, d.Start)
			}
			want[k]--
		}
	}
	for k, n := range want {
		if n > 0 {
			return fmt.Errorf("schedule: request (user %d, video %d, %v) not served", k.u, k.v, k.t)
		}
	}
	return nil
}

func validateFile(topo *topology.Topology, video media.Video, fs *FileSchedule) error {
	for i, d := range fs.Deliveries {
		if d.Video != fs.Video {
			return fmt.Errorf("schedule: delivery %d of file %d names video %d", i, fs.Video, d.Video)
		}
		if len(d.Route) == 0 {
			return fmt.Errorf("schedule: delivery %d has empty route", i)
		}
		if d.Start < 0 {
			return fmt.Errorf("schedule: delivery %d starts at negative time %v", i, d.Start)
		}
		for h := 1; h < len(d.Route); h++ {
			if _, ok := topo.EdgeBetween(d.Route[h-1], d.Route[h]); !ok {
				return fmt.Errorf("schedule: delivery %d route hop %v-%v is not a link", i, d.Route[h-1], d.Route[h])
			}
		}
		if int(d.User) < 0 || int(d.User) >= topo.NumUsers() {
			return fmt.Errorf("schedule: delivery %d serves unknown user %d", i, d.User)
		}
		if local := topo.User(d.User).Local; d.Dst() != local {
			return fmt.Errorf("schedule: delivery %d ends at %d, but user %d is local to %d", i, d.Dst(), d.User, local)
		}
		switch {
		case d.SourceResidency == NoResidency:
			if d.Src() != topo.Warehouse() {
				return fmt.Errorf("schedule: delivery %d claims warehouse supply but starts at node %d", i, d.Src())
			}
		case d.SourceResidency < 0 || d.SourceResidency >= len(fs.Residencies):
			return fmt.Errorf("schedule: delivery %d references residency %d of %d", i, d.SourceResidency, len(fs.Residencies))
		default:
			c := fs.Residencies[d.SourceResidency]
			if c.Loc != d.Src() {
				return fmt.Errorf("schedule: delivery %d starts at %d but its residency lives at %d", i, d.Src(), c.Loc)
			}
			if d.Start < c.Load || d.Start > c.LastService {
				return fmt.Errorf("schedule: delivery %d at %v outside residency window [%v, %v]",
					i, d.Start, c.Load, c.LastService)
			}
		}
	}
	for j, c := range fs.Residencies {
		if c.Video != fs.Video {
			return fmt.Errorf("schedule: residency %d of file %d names video %d", j, fs.Video, c.Video)
		}
		if topo.Node(c.Loc).Kind != topology.KindStorage {
			return fmt.Errorf("schedule: residency %d caches at non-storage node %d", j, c.Loc)
		}
		if c.Load > c.LastService {
			return fmt.Errorf("schedule: residency %d has Load %v after LastService %v", j, c.Load, c.LastService)
		}
		prePlaced := c.FedBy == PrePlacedFeed
		if prePlaced {
			if c.Src != topo.Warehouse() {
				return fmt.Errorf("schedule: pre-placed residency %d must be sourced at the warehouse", j)
			}
			if c.Load < 0 {
				return fmt.Errorf("schedule: pre-placed residency %d loads at negative time %v", j, c.Load)
			}
		} else {
			if c.FedBy < 0 || c.FedBy >= len(fs.Deliveries) {
				return fmt.Errorf("schedule: residency %d fed by delivery %d of %d", j, c.FedBy, len(fs.Deliveries))
			}
			feed := fs.Deliveries[c.FedBy]
			if feed.Start != c.Load {
				return fmt.Errorf("schedule: residency %d loads at %v but its feed starts at %v", j, c.Load, feed.Start)
			}
			if feed.Src() != c.Src {
				return fmt.Errorf("schedule: residency %d claims source %d but its feed originates at %d", j, c.Src, feed.Src())
			}
			onRoute := false
			for _, n := range feed.Route {
				if n == c.Loc {
					onRoute = true
					break
				}
			}
			if !onRoute {
				return fmt.Errorf("schedule: residency %d at node %d is not on its feed's route %v", j, c.Loc, feed.Route)
			}
		}
		// The service list must be exactly the deliveries drawing from this
		// copy. For stream-fed copies LastService must equal the latest
		// service start (or Load when the copy serves nothing beyond its
		// own feed); a pre-placed copy's span is planned, so services only
		// need to fall inside it.
		last := c.Load
		seen := make(map[int]bool, len(c.Services))
		for _, di := range c.Services {
			if di < 0 || di >= len(fs.Deliveries) {
				return fmt.Errorf("schedule: residency %d lists unknown service %d", j, di)
			}
			if seen[di] {
				return fmt.Errorf("schedule: residency %d lists service %d twice", j, di)
			}
			seen[di] = true
			if fs.Deliveries[di].SourceResidency != j {
				return fmt.Errorf("schedule: residency %d lists service %d which draws from %d",
					j, di, fs.Deliveries[di].SourceResidency)
			}
			if fs.Deliveries[di].Start > last {
				last = fs.Deliveries[di].Start
			}
		}
		if prePlaced {
			if last > c.LastService {
				return fmt.Errorf("schedule: pre-placed residency %d serves at %v beyond its span end %v", j, last, c.LastService)
			}
		} else if last != c.LastService {
			return fmt.Errorf("schedule: residency %d LastService %v, but latest service starts at %v", j, c.LastService, last)
		}
		for di, d := range fs.Deliveries {
			if d.SourceResidency == j && !seen[di] {
				return fmt.Errorf("schedule: delivery %d draws from residency %d but is not in its service list", di, j)
			}
		}
	}
	return nil
}
