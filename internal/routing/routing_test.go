package routing

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

func lineTopo(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo := topology.Chain(topology.GenConfig{Storages: n, UsersPerStorage: 1, Capacity: units.GB})
	return topo
}

func TestTableOnChain(t *testing.T) {
	topo := lineTopo(t, 4)
	book := pricing.Uniform(topo, 0, pricing.PerGB(100))
	table := NewTable(book)
	vw := topo.Warehouse()
	last, _ := topo.Lookup("IS4")
	if got, want := table.Rate(vw, last), pricing.PerGB(400); math.Abs(float64(got-want)) > 1e-18 {
		t.Errorf("Rate = %v, want %v", got, want)
	}
	r, err := table.Route(vw, last)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if r.Hops() != 4 || r.Src() != vw || r.Dst() != last {
		t.Errorf("Route = %v", r)
	}
	// Self route.
	r, err = table.Route(vw, vw)
	if err != nil || len(r) != 1 || r.Hops() != 0 {
		t.Errorf("self route = %v, err %v", r, err)
	}
	if table.Rate(vw, vw) != 0 {
		t.Error("self rate must be zero")
	}
}

func TestRouteEdgesAreAdjacent(t *testing.T) {
	topo := topology.Metro(topology.GenConfig{}, 5)
	book := pricing.Uniform(topo, 0, pricing.PerGB(300))
	table := NewTable(book)
	for _, s := range topo.Nodes() {
		for _, d := range topo.Nodes() {
			r, err := table.Route(s.ID, d.ID)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", s.ID, d.ID, err)
			}
			for i := 1; i < len(r); i++ {
				if _, ok := topo.EdgeBetween(r[i-1], r[i]); !ok {
					t.Fatalf("route %v contains non-edge hop", r)
				}
			}
			// The route's priced rate must equal the table's rate.
			if got := book.RouteRate(r); math.Abs(float64(got-table.Rate(s.ID, d.ID))) > 1e-15 {
				t.Fatalf("route rate %v != table rate %v", got, table.Rate(s.ID, d.ID))
			}
		}
	}
}

// brute-force cheapest path by DFS enumeration for small graphs.
func bruteCheapest(topo *topology.Topology, book *pricing.Book, src, dst topology.NodeID) float64 {
	best := math.Inf(1)
	visited := make([]bool, topo.NumNodes())
	var dfs func(n topology.NodeID, cost float64)
	dfs = func(n topology.NodeID, cost float64) {
		if cost >= best {
			return
		}
		if n == dst {
			best = cost
			return
		}
		visited[n] = true
		topo.Neighbors(n, func(ei int, to topology.NodeID) {
			if !visited[to] {
				dfs(to, cost+float64(book.NRate(ei)))
			}
		})
		visited[n] = false
	}
	dfs(src, 0)
	return best
}

func TestDijkstraMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		topo := topology.Random(topology.GenConfig{Storages: 7, UsersPerStorage: 1, Capacity: units.GB}, 5, seed)
		book := pricing.Uniform(topo, 0, 0)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < topo.NumEdges(); i++ {
			book.SetNRate(i, pricing.NRate(rng.Float64()*1000))
		}
		table := NewTable(book)
		for s := 0; s < topo.NumNodes(); s++ {
			for d := 0; d < topo.NumNodes(); d++ {
				want := bruteCheapest(topo, book, topology.NodeID(s), topology.NodeID(d))
				got := float64(table.Rate(topology.NodeID(s), topology.NodeID(d)))
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("seed %d: rate(%d,%d) = %g, brute force %g", seed, s, d, got, want)
				}
			}
		}
	}
}

func TestZeroRateEdges(t *testing.T) {
	// All-zero rates must not loop or crash; any route works, rate is 0.
	topo := topology.Ring(topology.GenConfig{Storages: 6, UsersPerStorage: 1, Capacity: units.GB})
	book := pricing.Uniform(topo, 0, 0)
	table := NewTable(book)
	for _, d := range topo.Storages() {
		r, err := table.Route(topo.Warehouse(), d)
		if err != nil {
			t.Fatalf("Route: %v", err)
		}
		if table.Rate(topo.Warehouse(), d) != 0 {
			t.Error("zero-rate network must have zero rates")
		}
		if r.Hops() > topo.NumNodes() {
			t.Error("route too long")
		}
	}
}

func TestEndToEndModeOverride(t *testing.T) {
	topo := lineTopo(t, 3)
	book := pricing.Uniform(topo, 0, pricing.PerGB(100))
	vw := topo.Warehouse()
	is3, _ := topo.Lookup("IS3")
	table := NewTable(book)
	perHop := table.Rate(vw, is3)
	book.SetMode(pricing.EndToEnd)
	// Without an override, end-to-end defaults to the cheapest per-hop sum.
	if table.Rate(vw, is3) != perHop {
		t.Error("end-to-end default must equal cheapest per-hop rate")
	}
	book.SetEndToEnd(vw, is3, pricing.PerGB(42))
	if got := table.Rate(vw, is3); got != pricing.PerGB(42) {
		t.Errorf("override not used: %v", got)
	}
}

func TestRouteClone(t *testing.T) {
	r := Route{0, 1, 2}
	c := r.Clone()
	c[0] = 9
	if r[0] != 0 {
		t.Error("Clone must be independent")
	}
}

func TestDeterministicRoutes(t *testing.T) {
	topo := topology.Metro(topology.GenConfig{}, 11)
	book := pricing.Uniform(topo, 0, pricing.PerGB(300))
	t1 := NewTable(book)
	t2 := NewTable(book)
	for s := 0; s < topo.NumNodes(); s++ {
		for d := 0; d < topo.NumNodes(); d++ {
			r1, _ := t1.Route(topology.NodeID(s), topology.NodeID(d))
			r2, _ := t2.Route(topology.NodeID(s), topology.NodeID(d))
			if len(r1) != len(r2) {
				t.Fatalf("nondeterministic route %d->%d", s, d)
			}
			for i := range r1 {
				if r1[i] != r2[i] {
					t.Fatalf("nondeterministic route %d->%d", s, d)
				}
			}
		}
	}
}

// Property: the all-pairs table agrees with the single-shot avoid-nothing
// Dijkstra on random priced graphs.
func TestPropertyTableMatchesRouteAvoiding(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		topo := topology.Random(topology.GenConfig{Storages: 8, UsersPerStorage: 1, Capacity: units.GB}, 5, seed)
		book := pricing.Uniform(topo, 0, 0)
		rng := rand.New(rand.NewSource(seed + 500))
		for i := 0; i < topo.NumEdges(); i++ {
			book.SetNRate(i, pricing.NRate(rng.Float64()*100))
		}
		table := NewTable(book)
		for s := 0; s < topo.NumNodes(); s++ {
			for d := 0; d < topo.NumNodes(); d++ {
				_, rate, err := RouteAvoiding(book, topology.NodeID(s), topology.NodeID(d), func(int) bool { return false })
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(float64(rate-table.Rate(topology.NodeID(s), topology.NodeID(d)))) > 1e-9 {
					t.Fatalf("seed %d: rate mismatch %d->%d", seed, s, d)
				}
			}
		}
	}
}
