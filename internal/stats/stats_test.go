package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Add(1, 10)
	s.Add(3, 30)
	s.Add(2, 20)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[1].X != 2 || s.Points[2].X != 3 {
		t.Errorf("SortByX: %v", s.Points)
	}
	ys := s.Ys()
	if len(ys) != 3 || ys[0] != 10 || ys[2] != 30 {
		t.Errorf("Ys = %v", ys)
	}
}

func TestMonotone(t *testing.T) {
	up := Series{Points: []Point{{0, 1}, {1, 2}, {2, 3}}}
	if !up.Monotone(+1, 0) {
		t.Error("increasing series not detected")
	}
	if up.Monotone(-1, 0) {
		t.Error("increasing series passed as decreasing")
	}
	down := Series{Points: []Point{{0, 3}, {1, 2}, {2, 1}}}
	if !down.Monotone(-1, 0) {
		t.Error("decreasing series not detected")
	}
	// Tolerance forgives a small dip.
	noisy := Series{Points: []Point{{0, 100}, {1, 99.5}, {2, 110}}}
	if noisy.Monotone(+1, 0) {
		t.Error("dip accepted at zero tolerance")
	}
	if !noisy.Monotone(+1, 0.01) {
		t.Error("1% tolerance should forgive a 0.5% dip")
	}
	var empty Series
	if !empty.Monotone(+1, 0) {
		t.Error("empty series must be trivially monotone")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Errorf("summary = %+v", s)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.13809) > 1e-4 {
		t.Errorf("std = %g", s.Std)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 || empty.Std != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	one := Summarize([]float64{42})
	if one.Mean != 42 || one.Std != 0 {
		t.Errorf("single summary = %+v", one)
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Error("Percent wrong")
	}
	if Percent(1, 0) != 0 {
		t.Error("Percent by zero must be 0")
	}
}

func TestPropertySummarizeBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		s := Summarize(clean)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean) &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Max) && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
