package bandwidth

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// fig2CacheSchedule builds the standard Fig2 schedule: VW feeds IS1's copy,
// which serves U2 (relay to IS2) and U3. IS1's I/O carries the write
// [0, P] plus reads at [P, 2P] and [2P, 3P].
func fig2CacheSchedule(t *testing.T) (*testutil.Fig2, *scheduler.Outcome) {
	t.Helper()
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f, out
}

func TestAnalyzeNodesProfiles(t *testing.T) {
	f, out := fig2CacheSchedule(t)
	u := AnalyzeNodes(f.Topo, f.Model.Catalog(), out.Schedule)
	// The optimal Fig2 schedule: IS1 writes its copy during [0,P] (6 Mbps)
	// and serves U2's relay at [P, 2P]; IS2 writes during [P, 2P] and
	// serves U3 locally at [2P, 3P]. Peaks are single-stream = 6 Mbps at
	// IS1; at IS2 write+read never overlap either (write [P,2P], read
	// [2P,3P]) => 6 Mbps.
	if got := u.PeakRate(f.IS1).Mbit(); math.Abs(got-12) > 1e-9 && math.Abs(got-6) > 1e-9 {
		t.Errorf("IS1 peak = %g Mbps", got)
	}
	// The warehouse serves exactly one stream.
	if got := u.PeakRate(f.VW).Mbit(); math.Abs(got-6) > 1e-9 {
		t.Errorf("VW peak = %g Mbps, want 6", got)
	}
}

func TestNodeOverloadDetection(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Two users at IS2 at the same instant: phase 1 shares one stream from
	// VW, caches at IS1 and IS2... construct with three overlapping reads
	// from one copy: requests at t, t+600, t+1200 all served from the IS1
	// copy produce concurrent reads.
	u23 := f.Topo.UsersAt(f.IS2)
	u1 := f.Topo.UsersAt(f.IS1)[0]
	reqs := workload.Set{
		{User: u1, Video: 0, Start: 0},
		{User: u23[0], Video: 0, Start: 600},
		{User: u23[1], Video: 0, Start: 1200},
	}
	out, err := scheduler.Run(f.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	u := AnalyzeNodes(f.Topo, f.Model.Catalog(), out.Schedule)
	var busiest units.BytesPerSec
	for _, n := range f.Topo.Nodes() {
		if r := u.PeakRate(n.ID); r > busiest {
			busiest = r
		}
	}
	if busiest.Mbit() < 12 {
		t.Fatalf("expected some node to sustain >= 2 concurrent streams, busiest %v", busiest)
	}
	caps := UniformNodes(f.Topo, units.Mbps(6))
	ovs := u.Overloads(caps)
	if len(ovs) == 0 {
		t.Fatal("expected node I/O overloads at a 6 Mbps cap")
	}
	for _, o := range ovs {
		if o.String() == "" {
			t.Error("String empty")
		}
		if f.Topo.Node(o.Node).Kind != 1 { // KindStorage
			t.Errorf("warehouse reported overloaded despite being uncapped")
		}
	}
	// Generous cap: nothing.
	if ovs := u.Overloads(UniformNodes(f.Topo, units.Mbps(100))); len(ovs) != 0 {
		t.Errorf("overloads at generous cap: %v", ovs)
	}
}

func TestResolveNodesMovesReadsToWarehouse(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	u23 := f.Topo.UsersAt(f.IS2)
	u1 := f.Topo.UsersAt(f.IS1)[0]
	reqs := workload.Set{
		{User: u1, Video: 0, Start: 0},
		{User: u23[0], Video: 0, Start: 600},
		{User: u23[1], Video: 0, Start: 1200},
	}
	out, err := scheduler.Run(f.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	caps := UniformNodes(f.Topo, units.Mbps(6))
	before := AnalyzeNodes(f.Topo, f.Model.Catalog(), out.Schedule).Overloads(caps)
	if len(before) == 0 {
		t.Skip("phase 1 produced no node overload on this rig")
	}
	res, err := ResolveNodes(f.Model, out.Schedule, caps)
	if err != nil {
		t.Fatalf("ResolveNodes: %v", err)
	}
	after := AnalyzeNodes(f.Topo, f.Model.Catalog(), res.Schedule).Overloads(caps)
	after = filterNodeResolved(after, res.Unresolved)
	if len(after) != 0 {
		t.Fatalf("overloads remain: %v", after)
	}
	if res.Moves == 0 && len(res.Unresolved) == 0 {
		t.Fatal("resolution did nothing yet reported success")
	}
	// Moving reads to the warehouse costs network but must keep a valid
	// schedule serving every request.
	if err := res.Schedule.Validate(f.Topo, f.Model.Catalog(), reqs); err != nil {
		t.Fatalf("moved schedule invalid: %v", err)
	}
	if res.Moves > 0 && res.Delta() < 0 {
		// Moving to VW can actually SAVE storage cost when the shrink
		// dominates; only assert consistency.
		t.Logf("note: move saved money: %v", res.Delta())
	}
	// Input untouched.
	if len(AnalyzeNodes(f.Topo, f.Model.Catalog(), out.Schedule).Overloads(caps)) == 0 {
		t.Error("ResolveNodes modified its input")
	}
}

func TestResolveNodesNoop(t *testing.T) {
	f, out := fig2CacheSchedule(t)
	caps := UniformNodes(f.Topo, units.Mbps(1000))
	res, err := ResolveNodes(f.Model, out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 0 || res.CostAfter != res.CostBefore {
		t.Error("no-op node resolution changed the schedule")
	}
}

func TestResolveNodesKeepsFeeders(t *testing.T) {
	// The Fig2 optimal schedule's IS1->IS2 relay FEEDS the IS2 copy, so
	// under an impossible cap it must never be moved; the overload is
	// reported unresolved instead and the schedule stays intact.
	f, out := fig2CacheSchedule(t)
	caps := UniformNodes(f.Topo, units.Mbps(3)) // below a single stream
	res, err := ResolveNodes(f.Model, out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unresolved) == 0 {
		t.Fatal("sub-stream cap must leave unresolved overloads")
	}
	if err := res.Schedule.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("schedule corrupted: %v", err)
	}
	for _, fs := range res.Schedule.Files {
		for _, c := range fs.Residencies {
			feed := fs.Deliveries[c.FedBy]
			if feed.Src() != c.Src {
				t.Error("residency source corrupted")
			}
		}
	}
}

func TestResolveNodesPrunesEmptiedResidency(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// One cached copy at IS2 serving one later local request; capping IS2
	// tight forces the read to move to VW, emptying the copy, which must
	// then disappear.
	u23 := f.Topo.UsersAt(f.IS2)
	reqs := workload.Set{
		{User: u23[0], Video: 0, Start: 0},
		{User: u23[1], Video: 0, Start: 3000},
	}
	out, err := scheduler.Run(f.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schedule.NumResidencies() == 0 {
		t.Skip("greedy chose not to cache; nothing to prune")
	}
	// Cap IS2's I/O below write+read concurrency (the write [0,P] overlaps
	// the read [3000, 3000+P]).
	caps := UniformNodes(f.Topo, units.Mbps(7))
	res, err := ResolveNodes(f.Model, out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(f.Topo, f.Model.Catalog(), reqs); err != nil {
		t.Fatalf("invalid after prune: %v", err)
	}
	if res.Moves > 0 && res.Schedule.NumResidencies() >= out.Schedule.NumResidencies() {
		t.Error("expected the emptied residency to be pruned")
	}
}

func TestSweepStepsEdgeCases(t *testing.T) {
	// Empty events.
	if got := sweepSteps(nil, 5); len(got) != 0 {
		t.Errorf("empty sweep = %v", got)
	}
	// A single spike above the limit opening and closing at the same pair
	// of events, with simultaneous coalescing.
	evs := []event{
		{at: 10, rate: 4}, {at: 10, rate: 4}, // 8 > 5
		{at: 20, rate: -4}, {at: 20, rate: -4},
	}
	got := sweepSteps(evs, 5)
	if len(got) != 1 || got[0].iv.Start != 10 || got[0].iv.End != 20 || got[0].peak != 8 {
		t.Errorf("sweep = %+v", got)
	}
	// Exactly at the limit: no exceedance.
	if got := sweepSteps(evs, 8); len(got) != 0 {
		t.Errorf("at-limit sweep = %v", got)
	}
	// Two disjoint exceedances.
	evs = []event{
		{at: 0, rate: 10}, {at: 5, rate: -10},
		{at: 20, rate: 10}, {at: 30, rate: -10},
	}
	got = sweepSteps(evs, 5)
	if len(got) != 2 || got[1].iv.Start != 20 {
		t.Errorf("disjoint sweep = %+v", got)
	}
}

func TestSimultaneousFig2Requests(t *testing.T) {
	// Simultaneity probe used by vodsim too: the three-request Fig2 batch
	// under node caps resolves or reports cleanly for every cap.
	f, out := fig2CacheSchedule(t)
	for _, mbps := range []float64{4, 6, 8, 12, 24} {
		res, err := ResolveNodes(f.Model, out.Schedule, UniformNodes(f.Topo, units.Mbps(mbps)))
		if err != nil {
			t.Fatalf("cap %g: %v", mbps, err)
		}
		if err := res.Schedule.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
			t.Fatalf("cap %g: %v", mbps, err)
		}
	}
	_ = simtime.Time(0)
}
