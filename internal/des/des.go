// Package des is a minimal deterministic discrete-event engine: a clock and
// a time-ordered event queue with FIFO ordering for simultaneous events.
// The vodsim package drives schedule execution on top of it.
package des

import (
	"container/heap"
	"fmt"

	"github.com/vodsim/vsp/internal/simtime"
)

// Event is a callback scheduled at a point in simulated time.
type Event func(now simtime.Time)

type item struct {
	at  simtime.Time
	seq uint64
	fn  Event
}

type queue []*item

func (q queue) Len() int { return len(q) }
func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q queue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded event loop. The zero value is NOT ready;
// use New.
type Engine struct {
	q       queue
	now     simtime.Time
	seq     uint64
	running bool
}

// New returns an engine with its clock at the given origin.
func New(origin simtime.Time) *Engine {
	return &Engine{now: origin}
}

// Now returns the current simulated time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.q) }

// At schedules fn at the absolute time t. Scheduling in the past (before
// the current clock) is an error, returned immediately.
func (e *Engine) At(t simtime.Time, fn Event) error {
	if t < e.now {
		return fmt.Errorf("des: schedule at %v before now %v", t, e.now)
	}
	e.seq++
	heap.Push(&e.q, &item{at: t, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn d after the current time.
func (e *Engine) After(d simtime.Duration, fn Event) error {
	return e.At(e.now.Add(d), fn)
}

// Run dispatches events in time order until the queue is empty, advancing
// the clock to each event's time. Events may schedule further events.
func (e *Engine) Run() {
	e.RunUntil(simtime.Time(1<<62 - 1))
}

// RunUntil dispatches events with time <= horizon; later events remain
// queued and the clock stops at the horizon (or the last event, whichever
// is later-bounded).
func (e *Engine) RunUntil(horizon simtime.Time) {
	if e.running {
		panic("des: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.q) > 0 {
		next := e.q[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.q)
		e.now = next.at
		next.fn(e.now)
	}
	if e.now < horizon && len(e.q) == 0 {
		// Clock rests at the last dispatched event; callers who need the
		// horizon reached can read Now() and decide. We deliberately do
		// not jump the clock past the final event.
		return
	}
}
