package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/stats"
)

// Table5Config parameterizes the heat-metric study of Experiment 4: the
// full cross product of the Table 4 parameter values. Empty slices take
// the paper's values.
type Table5Config struct {
	Base        Params
	SRates      []float64 // default {3..8} $/GB·h
	Capacities  []float64 // default {5, 8, 11, 14} GB
	NRates      []float64 // default {300..1000} $/GB
	Alphas      []float64 // default {0.1, 0.271, 0.5, 0.7}
	Parallelism int
}

// CaseResult is the outcome of one configuration under all four metrics.
type CaseResult struct {
	Params     Params
	Phase1Cost float64
	Overflows  int
	// FinalCost[m] is Ψ(S_SORP) under metric m (indices 1..4 used).
	FinalCost [5]float64
	// Resolved is false when phase 1 produced no overflow (the paper's
	// "overflow free schedule at the individual scheduling phase").
	Resolved bool
}

// Table5Result aggregates the study like the paper's Table 5.
type Table5Result struct {
	Cases []CaseResult
	// TotalCases is the number of parameter combinations examined.
	TotalCases int
	// CostAffected counts combinations where overflow resolution changed
	// the schedule cost (the paper's "ΔCost by overflow resolution": 622
	// of 785).
	CostAffected int
	// Best[m] counts cost-affected combinations where metric m achieved
	// the minimum final cost (ties count for every tied metric, which is
	// why the paper's 63% + 70% exceeds 100%).
	Best [5]int
	// Best2or4 counts combinations where Method 2 or Method 4 achieved
	// the minimum (the paper reports 98%).
	Best2or4 int
	// DeltaPct summarizes 100·(Ψ(S_SORP)−Ψ(S))/Ψ(S) over cost-affected
	// cases under Method 4 (the paper: 12% average, 34% worst).
	DeltaPct stats.Summary
}

// BestPct returns Best[m] as a percentage of cost-affected cases.
func (t *Table5Result) BestPct(m sorp.HeatMetric) float64 {
	return stats.Percent(float64(t.Best[m]), float64(t.CostAffected))
}

// Best2or4Pct returns the percentage of cost-affected cases where Method 2
// or Method 4 won.
func (t *Table5Result) Best2or4Pct() float64 {
	return stats.Percent(float64(t.Best2or4), float64(t.CostAffected))
}

func (c Table5Config) withDefaults() Table5Config {
	if len(c.SRates) == 0 {
		c.SRates = SRateSweep
	}
	if len(c.Capacities) == 0 {
		c.Capacities = CapacitySweep
	}
	if len(c.NRates) == 0 {
		c.NRates = NRateSweep
	}
	if len(c.Alphas) == 0 {
		c.Alphas = AlphaSweep
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// metrics under comparison (indices into CaseResult.FinalCost).
var allMetrics = []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost}

// RunTable5 executes the heat-metric study. Phase 1 runs once per
// configuration; each of the four metrics then resolves the same
// integrated schedule.
func RunTable5(cfg Table5Config) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	var ps []Params
	for _, sr := range cfg.SRates {
		for _, cap := range cfg.Capacities {
			for _, nr := range cfg.NRates {
				for _, a := range cfg.Alphas {
					p := cfg.Base
					p.SRateGBHour, p.CapacityGB, p.NRateGB, p.Alpha = sr, cap, nr, a
					ps = append(ps, p.WithDefaults())
				}
			}
		}
	}

	cases := make([]CaseResult, len(ps))
	errs := make([]error, len(ps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for i := range ps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cases[i], errs[i] = runCase(ps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Table5Result{Cases: cases, TotalCases: len(cases)}
	var deltas []float64
	const relEps = 1e-9
	for _, c := range cases {
		if !c.Resolved {
			continue
		}
		affected := false
		minCost := math.Inf(1)
		for _, m := range allMetrics {
			if math.Abs(c.FinalCost[m]-c.Phase1Cost) > relEps*c.Phase1Cost {
				affected = true
			}
			if c.FinalCost[m] < minCost {
				minCost = c.FinalCost[m]
			}
		}
		if !affected {
			continue
		}
		res.CostAffected++
		wins := [5]bool{}
		for _, m := range allMetrics {
			if c.FinalCost[m] <= minCost*(1+relEps) {
				res.Best[m]++
				wins[m] = true
			}
		}
		if wins[sorp.PeriodPerCost] || wins[sorp.SpacePerCost] {
			res.Best2or4++
		}
		deltas = append(deltas, stats.Percent(c.FinalCost[sorp.SpacePerCost]-c.Phase1Cost, c.Phase1Cost))
	}
	res.DeltaPct = stats.Summarize(deltas)
	return res, nil
}

func runCase(p Params) (CaseResult, error) {
	rig, err := Build(p)
	if err != nil {
		return CaseResult{}, err
	}
	raw, err := scheduler.Run(rig.Model, rig.Requests, scheduler.Config{
		Policy:         p.Policy,
		SkipResolution: true,
	})
	if err != nil {
		return CaseResult{}, fmt.Errorf("experiment: table5 %v: %w", p, err)
	}
	out := CaseResult{
		Params:     p,
		Phase1Cost: float64(raw.Phase1Cost),
		Overflows:  raw.Overflows,
		Resolved:   raw.Overflows > 0,
	}
	if !out.Resolved {
		for _, m := range allMetrics {
			out.FinalCost[m] = out.Phase1Cost
		}
		return out, nil
	}
	parts := rig.Requests.ByVideo()
	for _, m := range allMetrics {
		r, err := sorp.Resolve(rig.Model, raw.Schedule, parts, sorp.Options{Metric: m, Policy: p.Policy})
		if err != nil {
			return CaseResult{}, fmt.Errorf("experiment: table5 %v metric %v: %w", p, m, err)
		}
		out.FinalCost[m] = float64(r.CostAfter)
	}
	return out, nil
}
