// Package report renders experiment output as aligned ASCII tables and CSV,
// the formats the command-line tools emit for each regenerated figure and
// table of the paper.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/sorp"
)

// WriteFigureTable renders a figure as an aligned text table: one row per
// x value, one column per series.
func WriteFigureTable(w io.Writer, fig *experiment.Figure) error {
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", fig.ID)
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	fmt.Fprintf(&b, "y: %s\n", fig.YLabel)

	headers := make([]string, 0, len(fig.Series)+1)
	headers = append(headers, fig.XLabel)
	for _, s := range fig.Series {
		headers = append(headers, s.Name)
	}
	rows := [][]string{headers}
	n := fig.Series[0].Len()
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(fig.Series[0].Points[i].X))
		for _, s := range fig.Series {
			if i < s.Len() {
				row = append(row, fmt.Sprintf("%.0f", s.Points[i].Y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFigureCSV renders a figure as CSV with an x column and one column
// per series.
func WriteFigureCSV(w io.Writer, fig *experiment.Figure) error {
	var b strings.Builder
	cols := []string{csvQuote(fig.XLabel)}
	for _, s := range fig.Series {
		cols = append(cols, csvQuote(s.Name))
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	if len(fig.Series) == 0 {
		_, err := io.WriteString(w, b.String())
		return err
	}
	n := fig.Series[0].Len()
	for i := 0; i < n; i++ {
		row := []string{trimFloat(fig.Series[0].Points[i].X)}
		for _, s := range fig.Series {
			if i < s.Len() {
				row = append(row, strconv.FormatFloat(s.Points[i].Y, 'f', 2, 64))
			} else {
				row = append(row, "")
			}
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTable5 renders the heat-metric study in the shape of the paper's
// Table 5, followed by the §5.5 cost-increase statistics.
func WriteTable5(w io.Writer, t *experiment.Table5Result) error {
	var b strings.Builder
	b.WriteString("TABLE 5 — Performance of each heat metric\n")
	rows := [][]string{
		{"Total number of cases", strconv.Itoa(t.TotalCases)},
		{"ΔCost by overflow resolution", strconv.Itoa(t.CostAffected)},
		{"Method 1 (period, Eq. 8)", bestCell(t, sorp.Period)},
		{"Method 2 (period/cost, Eq. 9)", bestCell(t, sorp.PeriodPerCost)},
		{"Method 3 (space, Eq. 10)", bestCell(t, sorp.Space)},
		{"Method 4 (space/cost, Eq. 11)", bestCell(t, sorp.SpacePerCost)},
		{"Method 2 or Method 4", fmt.Sprintf("%d out of %d (%.0f%%)", t.Best2or4, t.CostAffected, t.Best2or4Pct())},
	}
	writeAligned(&b, rows)
	fmt.Fprintf(&b, "\nCost increase by overflow resolution (Method 4): avg %.1f%%, worst %.1f%% (paper: 12%% avg, 34%% worst)\n",
		t.DeltaPct.Mean, t.DeltaPct.Max)
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteResults renders raw per-configuration results as CSV for further
// analysis.
func WriteResults(w io.Writer, rs []experiment.Result) error {
	var b strings.Builder
	b.WriteString("srate_gbh,nrate_gb,capacity_gb,alpha,requests,phase1_cost,final_cost,direct_cost,overflows,victims,delta_pct,savings_pct\n")
	for _, r := range rs {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%d,%.2f,%.2f,%.2f,%d,%d,%.2f,%.2f\n",
			r.Params.SRateGBHour, r.Params.NRateGB, r.Params.CapacityGB, r.Params.Alpha,
			r.Requests, float64(r.Phase1Cost), float64(r.FinalCost), float64(r.DirectCost),
			r.Overflows, r.Victims, r.DeltaPct(), r.SavingsPct())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func bestCell(t *experiment.Table5Result, m sorp.HeatMetric) string {
	return fmt.Sprintf("%d out of %d (%.0f%%)", t.Best[m], t.CostAffected, t.BestPct(m))
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if w := displayWidth(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			b.WriteString(cell)
			if i < len(row)-1 {
				for pad := displayWidth(cell); pad < widths[i]+2; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
}

// displayWidth counts runes, which is adequate for our ASCII-plus-Δ output.
func displayWidth(s string) int { return len([]rune(s)) }

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteFigureMarkdown renders a figure as a GitHub-flavored markdown table,
// the format EXPERIMENTS.md embeds.
func WriteFigureMarkdown(w io.Writer, fig *experiment.Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", strings.ToUpper(fig.ID), fig.Title)
	if len(fig.Series) == 0 {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	b.WriteString("| " + fig.XLabel)
	for _, s := range fig.Series {
		b.WriteString(" | " + s.Name)
	}
	b.WriteString(" |\n|")
	for i := 0; i <= len(fig.Series); i++ {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	n := fig.Series[0].Len()
	for i := 0; i < n; i++ {
		b.WriteString("| " + trimFloat(fig.Series[0].Points[i].X))
		for _, s := range fig.Series {
			if i < s.Len() {
				fmt.Fprintf(&b, " | %s", humanMoney(s.Points[i].Y))
			} else {
				b.WriteString(" | -")
			}
		}
		b.WriteString(" |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// humanMoney renders a cost with thousands separators for markdown tables.
func humanMoney(v float64) string {
	s := strconv.FormatFloat(v, 'f', 0, 64)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}

// WriteTable5CSV renders the heat-metric study's per-case details as CSV:
// one row per parameter combination with the final cost under each metric.
func WriteTable5CSV(w io.Writer, t *experiment.Table5Result) error {
	var b strings.Builder
	b.WriteString("srate_gbh,capacity_gb,nrate_gb,alpha,overflows,phase1_cost,final_m1,final_m2,final_m3,final_m4\n")
	for _, c := range t.Cases {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%d,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			c.Params.SRateGBHour, c.Params.CapacityGB, c.Params.NRateGB, c.Params.Alpha,
			c.Overflows, c.Phase1Cost,
			c.FinalCost[sorp.Period], c.FinalCost[sorp.PeriodPerCost],
			c.FinalCost[sorp.Space], c.FinalCost[sorp.SpacePerCost])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
