// Package analysis derives operator-facing statistics from a service
// schedule: cache effectiveness, per-storage and per-title breakdowns, and
// network volume — the numbers a provider would watch when tuning the
// paper's system (how much the intermediate storages actually shave off
// the warehouse's egress, and where).
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// NodeStats aggregates one intermediate storage's activity.
type NodeStats struct {
	Node        topology.NodeID
	Name        string
	Copies      int     // residencies hosted
	Served      int     // deliveries supplied from those copies
	PeakBytes   float64 // peak reserved space
	ByteSeconds float64 // integrated reserved space
	StorageCost units.Money
}

// VideoStats aggregates one title's service.
type VideoStats struct {
	Video      media.VideoID
	Requests   int
	CacheHits  int // requests served from a cached copy
	Copies     int
	TotalCost  units.Money
	DirectCost units.Money // what all-direct service would have cost
}

// Savings returns the title's saving versus all-direct service.
func (v VideoStats) Savings() units.Money { return v.DirectCost - v.TotalCost }

// Report is the full analysis of one schedule.
type Report struct {
	Requests     int
	CacheHits    int // deliveries supplied by a cached copy
	LocalHits    int // zero-hop deliveries (copy at the user's own storage)
	WarehouseHit int // deliveries streamed from the warehouse
	Copies       int
	// PrePlacedCopies counts the standing copies among Copies.
	PrePlacedCopies int
	StreamBytes     units.Bytes // network volume actually scheduled
	DirectBytes     units.Bytes // network volume all-direct service would move
	TotalCost       units.Money
	StorageCost     units.Money
	NetworkCost     units.Money
	DirectCost      units.Money
	Nodes           []NodeStats  // storages with any activity, busiest first
	Videos          []VideoStats // titles, costliest first
}

// HitRate returns the fraction of requests served from cached copies.
func (r *Report) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Requests)
}

// NetworkSavings returns the network volume avoided versus all-direct
// service.
func (r *Report) NetworkSavings() units.Bytes { return r.DirectBytes - r.StreamBytes }

// CostSavings returns the money saved versus all-direct service.
func (r *Report) CostSavings() units.Money { return r.DirectCost - r.TotalCost }

// Summarize analyses a schedule under the model's rates.
func Summarize(m *cost.Model, s *schedule.Schedule) *Report {
	topo := m.Book().Topology()
	rep := &Report{}
	perNode := map[topology.NodeID]*NodeStats{}
	nodeStat := func(n topology.NodeID) *NodeStats {
		st := perNode[n]
		if st == nil {
			st = &NodeStats{Node: n, Name: topo.Node(n).Name}
			perNode[n] = st
		}
		return st
	}

	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		v := m.Catalog().Video(vid)
		vs := VideoStats{Video: vid, Requests: len(fs.Deliveries), Copies: len(fs.Residencies)}
		for _, d := range fs.Deliveries {
			rep.Requests++
			rep.StreamBytes += units.Bytes(int64(v.StreamBytes()) * int64(d.Route.Hops()))
			if d.SourceResidency != schedule.NoResidency {
				rep.CacheHits++
				vs.CacheHits++
				nodeStat(d.Src()).Served++
				if d.Route.Hops() == 0 {
					rep.LocalHits++
				}
			} else {
				rep.WarehouseHit++
			}
			vs.TotalCost += m.DeliveryCost(d)
			vs.DirectCost += m.TransferCost(vid, topo.Warehouse(), d.Dst())
			rep.DirectBytes += hopVolume(m, vid, topo.Warehouse(), d.Dst())
		}
		for _, c := range fs.Residencies {
			rep.Copies++
			st := nodeStat(c.Loc)
			st.Copies++
			cCost := m.ResidencyCost(c)
			st.StorageCost += cCost
			vs.TotalCost += cCost
			if c.FedBy == schedule.PrePlacedFeed {
				rep.PrePlacedCopies++
				vs.TotalCost += m.PrePlacementCost(c)
			}
		}
		rep.Videos = append(rep.Videos, vs)
	}
	bd := m.CostBreakdown(s)
	rep.StorageCost, rep.NetworkCost = bd.Storage, bd.Network
	rep.TotalCost = bd.Total()
	for _, vs := range rep.Videos {
		rep.DirectCost += vs.DirectCost
	}

	ledger := occupancy.FromSchedule(topo, m.Catalog(), s)
	for n, st := range perNode {
		peak, _ := ledger.Peak(n)
		st.PeakBytes = peak
		// Integrate reserved space: sum the residencies' own integrals.
		for _, fs := range s.Files {
			v := m.Catalog().Video(fs.Video)
			for _, c := range fs.Residencies {
				if c.Loc == n {
					st.ByteSeconds += c.TotalSpaceIntegral(v.Size.Float(), v.Playback)
				}
			}
		}
		rep.Nodes = append(rep.Nodes, *st)
	}
	sort.Slice(rep.Nodes, func(i, j int) bool {
		if rep.Nodes[i].Served != rep.Nodes[j].Served {
			return rep.Nodes[i].Served > rep.Nodes[j].Served
		}
		return rep.Nodes[i].Node < rep.Nodes[j].Node
	})
	sort.Slice(rep.Videos, func(i, j int) bool {
		if rep.Videos[i].TotalCost != rep.Videos[j].TotalCost {
			return rep.Videos[i].TotalCost > rep.Videos[j].TotalCost
		}
		return rep.Videos[i].Video < rep.Videos[j].Video
	})
	return rep
}

// hopVolume returns the stream volume × cheapest-route hop count from src
// to dst for the title.
func hopVolume(m *cost.Model, vid media.VideoID, src, dst topology.NodeID) units.Bytes {
	r, err := m.Table().Route(src, dst)
	if err != nil {
		return 0
	}
	v := m.Catalog().Video(vid)
	return units.Bytes(int64(v.StreamBytes()) * int64(r.Hops()))
}

// Write renders the report as a human-readable block.
func (r *Report) Write(w io.Writer, topN int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "requests        %d  (cache hits %d = %.0f%%, local hits %d, warehouse %d)\n",
		r.Requests, r.CacheHits, 100*r.HitRate(), r.LocalHits, r.WarehouseHit)
	fmt.Fprintf(&b, "cached copies   %d\n", r.Copies)
	fmt.Fprintf(&b, "network volume  %v (all-direct would be %v; saved %v)\n",
		r.StreamBytes, r.DirectBytes, r.NetworkSavings())
	fmt.Fprintf(&b, "total cost      %v = storage %v + network %v\n", r.TotalCost, r.StorageCost, r.NetworkCost)
	fmt.Fprintf(&b, "vs all-direct   %v (saved %v)\n", r.DirectCost, r.CostSavings())
	if topN > 0 && len(r.Nodes) > 0 {
		b.WriteString("busiest storages:\n")
		for i, st := range r.Nodes {
			if i >= topN {
				break
			}
			fmt.Fprintf(&b, "  %-8s %2d copies, %3d served, peak %.2f GB, cost %v\n",
				st.Name, st.Copies, st.Served, st.PeakBytes/1e9, st.StorageCost)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
