// Command vspserve runs the Video-On-Reservation scheduling service over
// HTTP for a fixed infrastructure. It shuts down gracefully on SIGINT or
// SIGTERM, draining in-flight requests for up to 10 seconds.
//
// With -data-dir the rolling-horizon reservation intake is durable: every
// accepted reservation and committed epoch is journaled to a write-ahead
// log (fsync policy per -fsync) and compacted into snapshots, and a
// restart recovers the committed schedule — re-verified by the audit
// bundle — instead of losing it.
//
// With -replicate-from the node runs as a warm standby: it ships the
// primary's WAL into its own (ideally durable) horizon service, answers
// 503 on GET /readyz until caught up, and can be promoted to primary with
// POST /v1/replication/promote when the primary fails. Until promoted it
// rejects stateful intake with the stale-leadership error.
//
// Usage:
//
//	vspserve -topo topo.json -catalog catalog.json -srate 5 -nrate 500 \
//	         -addr :8080 -data-dir /var/lib/vsp -fsync always
//
// then:
//
//	curl -s localhost:8080/v1/topology
//	curl -s -X POST localhost:8080/v1/schedule \
//	     -d '{"requests":[{"user":0,"video":3,"start":3600}]}'
//
// Standby for the node above (same topology and catalog):
//
//	vspserve -topo topo.json -catalog catalog.json -addr :8081 \
//	         -data-dir /var/lib/vsp-standby \
//	         -replicate-from http://localhost:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/vodsim/vsp/internal/chaos"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/wal"
)

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

func main() {
	var (
		topoPath    = flag.String("topo", "", "topology JSON (required)")
		catPath     = flag.String("catalog", "", "catalog JSON (required)")
		srate       = flag.Float64("srate", 5, "storage charging rate ($/GB·hour)")
		nrate       = flag.Float64("nrate", 500, "network charging rate ($/GB)")
		addr        = flag.String("addr", ":8080", "listen address")
		idleTimeout = flag.Duration("idle-timeout", 120*time.Second, "keep-alive connection idle timeout")
		reqTimeout  = flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handling budget (503 when exceeded)")
		workers     = flag.Int("workers", 0, "scheduling worker pool size per request (0 = GOMAXPROCS, 1 = sequential; schedules are identical for any value)")
		dataDir     = flag.String("data-dir", "", "durable state directory for the reservation intake (empty = in-memory, state lost on restart)")
		fsync       = flag.String("fsync", "always", "journal fsync policy: always (no acknowledged reservation ever lost), interval, or never")
		fsyncEvery  = flag.Duration("fsync-interval", wal.DefaultSyncEvery, "max sync lag under -fsync interval")
		snapEvery   = flag.Int("snapshot-every", horizon.DefaultSnapshotEvery, "journal compaction period in committed epochs (negative disables snapshots)")
		epochReqs   = flag.Int("epoch-requests", 0, "report an epoch due after this many pending reservations (0 = no intake trigger); the intake ack carries epoch_due so clients like vspload or a vspgateway know when to advance")
		maxInFlight = flag.Int("max-in-flight", server.DefaultMaxInFlight, "admission-control bound on concurrent requests; excess load is shed with 429 + Retry-After (negative disables)")
		role        = flag.String("role", "primary", "serving role: primary or follower (forced to follower by -replicate-from)")
		shardID     = flag.String("shard-id", "", "shard label reported in the /v1/stats shard block when this node serves behind a vspgateway tier")
		replFrom    = flag.String("replicate-from", "", "primary base URL to ship the WAL from; makes this node a warm standby")
		replEvery   = flag.Duration("replicate-every", 0, "idle poll period of the WAL shipper (0 = default; a backlog drains continuously)")
		chaosSpec   = flag.String("chaos", "", "fault-injection spec wrapped around the HTTP surface, e.g. 'latency=20ms..80ms;err=0.2:503' (see internal/chaos.ParseSpec; testing only)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for -chaos fault decisions (same seed + same traffic = same faults)")
	)
	flag.Parse()
	if *topoPath == "" || *catPath == "" {
		fmt.Fprintln(os.Stderr, "vspserve: -topo and -catalog are required")
		os.Exit(1)
	}
	nodeRole, err := replica.ParseRole(*role)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	if nodeRole == replica.RolePrimary && *replFrom != "" {
		// Not an error worth dying over, but worth being explicit about:
		// shipping another node's WAL makes this node a follower.
		nodeRole = replica.RoleFollower
		log.Printf("vspserve: -replicate-from set; running as follower of %s", *replFrom)
	}
	fsyncPolicy, err := wal.ParseFsyncPolicy(*fsync)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	topo, err := cli.LoadTopology(*topoPath)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	cat, err := cli.LoadCatalog(*catPath)
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	model := cli.BuildModel(topo, cat, *srate, *nrate)
	api, err := server.NewWithOptions(model, server.Options{
		RequestTimeout: *reqTimeout,
		Workers:        *workers,
		DataDir:        *dataDir,
		MaxInFlight:    *maxInFlight,
		Role:           nodeRole,
		ShardID:        *shardID,
		ReplicateFrom:  *replFrom,
		ReplicateEvery: *replEvery,
		Horizon: horizon.Config{
			Workers:       *workers,
			Fsync:         fsyncPolicy,
			FsyncInterval: *fsyncEvery,
			SnapshotEvery: *snapEvery,
			EpochRequests: *epochReqs,
		},
	})
	if err != nil {
		log.Fatalf("vspserve: %v", err)
	}
	if *dataDir != "" {
		if st := api.Recovery(); st.Recovered {
			log.Printf("vspserve: recovered durable state from %s (snapshot=%v, replayed %d submits + %d advances)",
				*dataDir, st.SnapshotLoaded, st.ReplayedSubmits, st.ReplayedAdvances)
		} else {
			log.Printf("vspserve: durable intake journaling to %s (fsync=%s)", *dataDir, fsyncPolicy)
		}
		if st := api.Recovery(); st.TailTruncated {
			// A torn tail means the process died mid-append; the discarded
			// suffix was never acknowledged, so no accepted reservation was
			// lost — but the operator should know the crash was mid-write.
			// The count is also exported as recovery.tail_truncations in
			// GET /v1/stats.
			log.Printf("vspserve: WARNING: journal tail was torn mid-record and truncated on recovery (%d truncation(s) this recovery); the partial record was never acknowledged",
				st.TailTruncations)
		}
	}
	var handler http.Handler = api
	if *chaosSpec != "" {
		rules, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatalf("vspserve: -chaos: %v", err)
		}
		inj := chaos.New(*chaosSeed, rules...)
		handler = inj.Middleware(handler)
		log.Printf("vspserve: CHAOS ENABLED — %d fault rule(s), seed %d; this node will misbehave on purpose", len(rules), *chaosSeed)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 120 * time.Second,
		IdleTimeout:  *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replFrom != "" {
		api.StartReplication(ctx)
		log.Printf("vspserve: shipping WAL from %s (GET /readyz reports catch-up; promote with POST /v1/replication/promote)", *replFrom)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("vspserve: %d storages, %d users, %d titles; listening on %s",
		topo.NumStorages(), topo.NumUsers(), cat.Len(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("vspserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		log.Printf("vspserve: shutting down, draining for up to %v", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("vspserve: drain incomplete: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("vspserve: %v", err)
		}
		if err := api.Close(); err != nil {
			log.Printf("vspserve: journal close: %v", err)
		}
		log.Print("vspserve: stopped")
	}
}
