// Metro-VOD: the paper's motivating scenario at full scale. A metropolitan
// provider with one video warehouse and 19 neighborhood storages takes an
// evening's worth of reservations (190 subscribers, Zipf-skewed picks with
// the Dan & Sitaram video-rental calibration α = 0.271) and schedules them
// as a batch, then executes the schedule on the event simulator and prints
// an operator's report: costs, savings over naive delivery, cache activity
// and the busiest links.
package main

import (
	"fmt"
	"log"
	"sort"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.PaperTopology(vsp.GB(5)) // 20 nodes, 10 users per neighborhood
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 500, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(5), vsp.PerGB(500))
	if err != nil {
		log.Fatal(err)
	}

	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{
		Alpha:   0.271,
		Window:  12 * vsp.Hour,
		Arrival: vsp.EveningPeakArrival,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{Metric: vsp.SpacePerCost})
	if err != nil {
		log.Fatal(err)
	}
	direct, err := sys.ScheduleDirect(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reservations        %d over %d titles\n", len(reqs), len(reqs.ByVideo()))
	fmt.Printf("phase-1 cost        %v\n", out.Phase1Cost)
	fmt.Printf("overflows detected  %d (resolved via %d reschedules)\n", out.Overflows, len(out.Victims))
	fmt.Printf("final cost          %v\n", out.FinalCost)
	fmt.Printf("direct-only cost    %v\n", direct.FinalCost)
	fmt.Printf("savings             %.1f%%\n",
		100*float64(direct.FinalCost-out.FinalCost)/float64(direct.FinalCost))

	// Cache utilization per storage.
	type siteStat struct {
		name   string
		copies int
		served int
	}
	bySite := map[string]*siteStat{}
	for _, fs := range out.Schedule.Files {
		for _, c := range fs.Residencies {
			name := topo.Node(c.Loc).Name
			st := bySite[name]
			if st == nil {
				st = &siteStat{name: name}
				bySite[name] = st
			}
			st.copies++
			st.served += len(c.Services)
		}
	}
	sites := make([]*siteStat, 0, len(bySite))
	for _, st := range bySite {
		sites = append(sites, st)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].served > sites[j].served })
	fmt.Println("\nbusiest caches:")
	for i, st := range sites {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-6s %2d cached copies serving %2d requests\n", st.name, st.copies, st.served)
	}

	// Execute and report the network's hot links.
	rep := sys.Simulate(out.Schedule)
	if !rep.OK() {
		log.Fatalf("simulation violations: %v", rep.Violations)
	}
	sort.Slice(rep.Links, func(i, j int) bool { return rep.Links[i].Bytes > rep.Links[j].Bytes })
	fmt.Println("\nbusiest links:")
	for i, lu := range rep.Links {
		if i >= 5 {
			break
		}
		e := topo.Edge(lu.Edge)
		fmt.Printf("  %s--%s  %v, peak %d concurrent streams (%v)\n",
			topo.Node(e.A).Name, topo.Node(e.B).Name, lu.Bytes, lu.PeakStreams, lu.PeakRate)
	}
	fmt.Printf("\nsimulated total cost %v (matches analytic: %v)\n",
		rep.TotalCost(), rep.TotalCost().ApproxEqual(out.FinalCost, 1e-3))
}
