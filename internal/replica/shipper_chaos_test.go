package replica_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/chaos"
	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/replica"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/wal"
)

// The shipper under a chaotic replication link: a flapping partition,
// torn WAL-fetch bodies, and jittery latency, with a poller restart in
// the middle. The poller must keep making progress through the fault
// windows, resume from AppliedSeq after the restart (never from zero),
// and converge with every record applied exactly once.
func TestShipperSurvivesFlappingChaosAndResumes(t *testing.T) {
	r, err := experiment.Build(failoverParams())
	if err != nil {
		t.Fatal(err)
	}
	ops := buildOps(r, 3)
	want := referenceRun(t, r, ops)
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}

	primary, err := server.NewWithOptions(r.Model, server.Options{DataDir: t.TempDir(), Horizon: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	ts := httptest.NewServer(primary)
	defer ts.Close()
	host := strings.TrimPrefix(ts.URL, "http://")

	// Chaos lives only on the replication path and only for a bounded
	// window, so the final drain is guaranteed a clean link. Within the
	// window: the link flaps at a 50% duty cycle, almost a third of the
	// fetched bodies tear mid-JSON, and everything is a little slow.
	chaosFor := 700 * time.Millisecond
	inj := chaos.New(31,
		chaos.Rule{Host: host, Path: "/v1/replication/wal", Until: chaosFor,
			Period: 40 * time.Millisecond, Duty: 0.5, Fault: chaos.Fault{Drop: 1}},
		chaos.Rule{Host: host, Path: "/v1/replication/wal", Until: chaosFor,
			Fault: chaos.Fault{CutProb: 0.3, CutAfter: 20}},
		chaos.Rule{Host: host, Path: "/v1/replication/wal", Until: chaosFor,
			Fault: chaos.Fault{LatencyMax: 2 * time.Millisecond}},
	)
	chaosClient := &http.Client{Transport: &chaos.Transport{Injector: inj}}
	retry := retryhttp.Options{
		Client:      chaosClient,
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		MaxElapsed:  50 * time.Millisecond,
	}

	fsvc, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fsvc.Close()
	lead := replica.NewLeadership(replica.RoleFollower, 0)
	sh1 := replica.NewShipper(fsvc, lead, replica.ShipperConfig{
		Source: ts.URL, Interval: 2 * time.Millisecond, Retry: retry,
	})
	ctx := context.Background()
	runCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() { defer close(done); sh1.Run(runCtx) }()

	// First half of the stream arrives while the link is misbehaving.
	half := len(ops) / 2
	for _, o := range ops[:half] {
		driveHTTP(t, ts.URL, o)
	}
	// The flap's up-phases must let some records through before the
	// poller "process" restarts.
	progress := time.Now().Add(10 * time.Second)
	for fsvc.AppliedSeq() == 0 {
		if time.Now().After(progress) {
			t.Fatalf("no replication progress through the flapping link: %+v, chaos %+v",
				sh1.Status(), inj.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	// Restart: a fresh shipper over the same service must resume from
	// the applied sequence, not refetch from zero.
	resumeSeq := fsvc.AppliedSeq()
	rec := &recordingRT{base: &chaos.Transport{Injector: inj}}
	sh2 := replica.NewShipper(fsvc, lead, replica.ShipperConfig{
		Source:   ts.URL,
		Interval: 2 * time.Millisecond,
		Retry: retryhttp.Options{
			Client:      &http.Client{Transport: rec},
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			MaxDelay:    2 * time.Millisecond,
			MaxElapsed:  50 * time.Millisecond,
		},
	})
	runCtx2, cancel2 := context.WithCancel(ctx)
	done2 := make(chan struct{})
	go func() { defer close(done2); sh2.Run(runCtx2) }()

	for _, o := range ops[half:] {
		driveHTTP(t, ts.URL, o)
	}

	// Let the chaos window expire fully, stop the background poller, and
	// drain over the now-clean link.
	if remaining := chaosFor - inj.Elapsed(); remaining > 0 {
		time.Sleep(remaining + 50*time.Millisecond)
	}
	cancel2()
	<-done2
	if err := sh2.Drain(ctx); err != nil {
		t.Fatalf("post-chaos drain: %v", err)
	}

	// No gaps: every op applied, the follower is caught up.
	if got := fsvc.AppliedSeq(); got != uint64(len(ops)) {
		t.Fatalf("applied seq %d, want %d", got, len(ops))
	}
	st := sh2.Status()
	if !st.Synced || !st.CaughtUp || st.Lag != 0 {
		t.Fatalf("not caught up after chaos cleared: %+v", st)
	}
	// No duplicates: the two pollers' apply counts partition the stream
	// exactly — torn and duplicated deliveries were all skipped by seq.
	applied := sh1.Status().RecordsApplied + st.RecordsApplied
	if applied != uint64(len(ops)) {
		t.Fatalf("records applied %d across both pollers, want exactly %d", applied, len(ops))
	}

	// The restarted poller's first fetch resumed after resumeSeq.
	rec.mu.Lock()
	urls := append([]string(nil), rec.urls...)
	rec.mu.Unlock()
	if len(urls) == 0 {
		t.Fatal("restarted shipper never fetched")
	}
	if !strings.Contains(urls[0], fmt.Sprintf("after=%d&", resumeSeq)) {
		t.Fatalf("restarted shipper resumed from %q, want after=%d", urls[0], resumeSeq)
	}
	if resumeSeq > 0 {
		for _, u := range urls {
			if strings.Contains(u, "after=0&") {
				t.Fatalf("restarted shipper refetched from zero: %q", u)
			}
		}
	}

	// The replicated state matches an uninterrupted run byte-for-byte,
	// and the chaos layer actually exercised its fault modes.
	if got := fingerprint(t, fsvc); got != want {
		t.Errorf("chaos-replicated state differs from uninterrupted run:\n got %.200s...\nwant %.200s...", got, want)
	}
	if s := inj.Stats(); s.Dropped == 0 {
		t.Errorf("flapping rule never dropped: %+v", s)
	}
}
