// Package ivs implements the Individual Video Scheduling phase of the
// paper's two-phase heuristic (§3.2): the greedy find_video_schedule that
// arranges the deliveries and residencies of one file's request set,
// serving requests chronologically and choosing for each the supply point
// with minimum incremental cost.
//
// The key mechanism is the tentative cache: the storage cost of a residency
// (Eq. 2–3) is zero at span Δ = 0, so whenever a stream is scheduled the
// greedy opens free zero-span residencies at every intermediate storage the
// stream touches. Later requests may then be served by extending one of
// those copies — paying the marginal storage cost Ψc(Δ′) − Ψc(Δ) plus the
// remaining network transfer — or directly from the warehouse, whichever is
// cheaper. Residencies that never serve anyone are pruned afterwards. This
// is exactly the paper's step "(1) extend the resident period, (2)
// introduce another intermediate storage, or (3) service from VW", and it
// reproduces the paper's Fig. 2 example (schedule S2) to the cent.
//
// The same greedy, parameterized with capacity constraints and a banned
// (interval, storage) pair, is the Rejective Greedy of phase 2 (§4.4).
package ivs

import (
	"fmt"
	"slices"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Policy selects where tentative caches are opened.
type Policy int

const (
	// CacheOnRoute opens a tentative residency at every intermediate
	// storage a scheduled stream touches (destination included). This is
	// the default and the paper-faithful behaviour: any storage a stream
	// passes can copy its blocks.
	CacheOnRoute Policy = iota
	// CacheAtDestination opens a tentative residency only at the stream's
	// destination storage. An ablation of the en-route caching mechanism.
	CacheAtDestination
	// NoCaching never caches: every request is served by a direct stream
	// from the warehouse. This is the paper's "network only system"
	// baseline (Figs. 5 and 7).
	NoCaching
)

func (p Policy) String() string {
	switch p {
	case CacheOnRoute:
		return "cache-on-route"
	case CacheAtDestination:
		return "cache-at-destination"
	case NoCaching:
		return "no-caching"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures one ScheduleFile run.
type Options struct {
	// Policy selects the caching behaviour (default CacheOnRoute).
	Policy Policy
	// Ledger, when non-nil, makes the greedy rejective (paper §4.4): a
	// copy is never placed or extended beyond what the storages' remaining
	// capacity admits. The ledger must hold the residencies of all OTHER
	// files; this file's own copies are registered into it as scheduling
	// proceeds, so on return the ledger reflects the produced schedule.
	Ledger *occupancy.Ledger
	// Banned lists (interval, storage) pairs the file must not occupy,
	// the constraint imposed on the overflow victim (paper §4.2).
	Banned []occupancy.Banned
	// Seeds are pre-placed standing copies of this video (strategic
	// replication): already paid for over their whole span, so serving
	// from one costs only the remaining network transfer. Seeds are
	// never pruned, never extended, and exempt from Banned (they are
	// placed infrastructure, not a scheduling choice).
	Seeds []schedule.Residency
	// Frozen, when non-nil, is the immutable prefix of this file's
	// schedule committed by earlier epochs of a rolling-horizon run (see
	// internal/horizon). ScheduleFile starts from a deep copy of it:
	// frozen deliveries are carried through untouched, and frozen
	// residencies remain in the candidate pool as free cache-extension
	// sources — their committed span is a sunk cost, so serving a new
	// request from one is priced at the marginal ExtendCost plus the
	// remaining transfer, exactly like any live copy. Frozen records are
	// never pruned and never shrunk; new records are appended after the
	// prefix so frozen records keep their indices. Mutually exclusive
	// with Seeds (a committed prefix already carries its seeds).
	Frozen *schedule.FileSchedule

	// frozenRes is the number of leading residencies that belong to the
	// frozen prefix, set internally by ScheduleFile.
	frozenRes int
}

// moneyEps breaks cost ties deterministically: candidates within this
// amount are considered equal and the earlier one wins.
const moneyEps = 1e-9

// copyKey identifies a residency by (node, load time) for duplicate
// suppression: a new tentative copy with the identical key could never
// improve on the existing one, since extension cost depends only on the
// load time and the location. A node MAY hold several copies with
// different load times: a fresh copy loaded by a later stream offers
// cheaper short-residency extensions than an old copy whose span has
// already grown long.
//
// The set is maintained incrementally by ScheduleFile — residencies are
// only ever appended during the greedy, so membership never goes stale —
// replacing a per-candidate linear scan over all residencies that made
// ScheduleFile quadratic in request count on long-route topologies.
type copyKey struct {
	loc  topology.NodeID
	load simtime.Time
}

// ScheduleFile computes the schedule S_i for one file's request set. The
// requests must all name the given video; they are served in chronological
// order (the paper numbers users by service start time). The returned
// schedule is pruned: every residency serves at least one delivery.
func ScheduleFile(m *cost.Model, video media.VideoID, reqs []workload.Request, opts Options) (*schedule.FileSchedule, error) {
	topo := m.Book().Topology()
	v := m.Catalog().Video(video)
	stream := v.StreamBytes().Float()
	ordered := append([]workload.Request(nil), reqs...)
	workload.SortChronological(ordered)

	fs := &schedule.FileSchedule{Video: video}
	if opts.Frozen != nil {
		if len(opts.Seeds) > 0 {
			return nil, fmt.Errorf("ivs: Frozen and Seeds are mutually exclusive")
		}
		if opts.Frozen.Video != video {
			return nil, fmt.Errorf("ivs: frozen prefix for video %d in schedule for video %d", opts.Frozen.Video, video)
		}
		pre := opts.Frozen.Clone()
		fs.Deliveries = pre.Deliveries
		fs.Residencies = pre.Residencies
		opts.frozenRes = len(fs.Residencies)
		if opts.Ledger != nil {
			for j, c := range fs.Residencies {
				opts.Ledger.Add(occupancy.Ref{Video: video, Index: j}, c)
			}
		}
	}
	for _, seed := range opts.Seeds {
		if seed.Video != video {
			return nil, fmt.Errorf("ivs: seed for video %d in schedule for video %d", seed.Video, video)
		}
		if seed.FedBy != schedule.PrePlacedFeed {
			return nil, fmt.Errorf("ivs: seed at node %d is not marked pre-placed", seed.Loc)
		}
		seed.Services = nil
		fs.Residencies = append(fs.Residencies, seed)
		if opts.Ledger != nil {
			opts.Ledger.Add(occupancy.Ref{Video: video, Index: len(fs.Residencies) - 1}, seed)
		}
	}
	// One delivery per request, and rarely more than one tentative opened
	// per delivery: sizing the slices up front keeps the serve loop's
	// appends from repeatedly regrowing them.
	fs.Deliveries = slices.Grow(fs.Deliveries, len(ordered))
	fs.Residencies = slices.Grow(fs.Residencies, 2*len(ordered))
	seen := make(map[copyKey]struct{}, len(fs.Residencies)+len(ordered))
	for _, c := range fs.Residencies {
		seen[copyKey{c.Loc, c.Load}] = struct{}{}
	}
	// oldCosts[j] caches fs.Residencies[j]'s current span cost — the
	// subtrahend of every candidate price (cost.CandidateCost). Maintained
	// on extension and on tentative open, it halves the SpanCost work in
	// the candidate loop.
	oldCosts := make([]units.Money, len(fs.Residencies), cap(fs.Residencies))
	for j := range fs.Residencies {
		c := &fs.Residencies[j]
		oldCosts[j] = cost.SpanCost(m.Book().SRate(c.Loc), v.Size, v.Playback, c.Span())
	}
	for _, r := range ordered {
		if r.Video != video {
			return nil, fmt.Errorf("ivs: request for video %d in batch for video %d", r.Video, video)
		}
		if int(r.User) < 0 || int(r.User) >= topo.NumUsers() {
			return nil, fmt.Errorf("ivs: unknown user %d", r.User)
		}
		if err := serveOne(m, v, stream, fs, r, opts, seen, &oldCosts); err != nil {
			return nil, err
		}
	}
	prune(fs, video, opts.Ledger, opts.frozenRes)
	return fs, nil
}

// serveOne schedules request r given the partial schedule fs, choosing the
// minimum-incremental-cost supply point (paper §3.2 steps 2–3). seen is
// the incremental (node, load) index of fs.Residencies; stream is the
// video's precomputed StreamBytes().Float(), hoisted out of the candidate
// loop (every candidate is priced, so the per-candidate work is pure rate
// arithmetic).
func serveOne(m *cost.Model, v media.Video, stream float64, fs *schedule.FileSchedule, r workload.Request, opts Options, seen map[copyKey]struct{}, oldCosts *[]units.Money) error {
	topo := m.Book().Topology()
	dst := topo.User(r.User).Local

	// Candidate 0: direct from the warehouse (always feasible — the
	// warehouse stores everything and a direct stream uses no storage).
	bestSrc := topo.Warehouse()
	bestRes := schedule.NoResidency
	bestCost := m.StreamCost(stream, topo.Warehouse(), dst)

	for j := range fs.Residencies {
		c := &fs.Residencies[j]
		if c.Load > r.Start {
			continue // copy does not exist yet at service time
		}
		if c.FedBy == schedule.PrePlacedFeed {
			// Standing copy: usable within its paid-for span at zero
			// marginal storage cost regardless of the caching policy
			// (it is placed infrastructure, not a scheduling choice);
			// never extended, banned or capacity-checked.
			if r.Start > c.LastService {
				continue
			}
			candCost := m.StreamCost(stream, c.Loc, dst)
			if candCost < bestCost-moneyEps {
				bestCost = candCost
				bestSrc = c.Loc
				bestRes = j
			}
			continue
		}
		if opts.Policy == NoCaching {
			continue // dynamic copies disabled
		}
		// Price first: the capacity and ban checks are the expensive
		// part, and only candidates that would win need them. A request
		// falling inside the copy's committed span (possible when the
		// copy is a frozen-prefix record from an earlier epoch) extends
		// nothing and pays zero marginal storage.
		newLast := simtime.Max(c.LastService, r.Start)
		candCost := m.CandidateCost(&v, stream, (*oldCosts)[j], c, newLast, dst)
		if candCost >= bestCost-moneyEps {
			continue
		}
		extended := *c
		extended.LastService = newLast
		if violatesAny(extended, v.Playback, opts.Banned) {
			continue
		}
		if opts.Ledger != nil {
			ref := occupancy.Ref{Video: v.ID, Index: j}
			if !opts.Ledger.CanFitExcluding(extended, &ref) {
				continue
			}
		}
		bestCost = candCost
		bestSrc = c.Loc
		bestRes = j
	}

	route, err := m.Table().Route(bestSrc, dst)
	if err != nil {
		return fmt.Errorf("ivs: %w", err)
	}
	di := len(fs.Deliveries)
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: v.ID, User: r.User, Start: r.Start,
		Route: route, SourceResidency: bestRes,
	})

	if bestRes != schedule.NoResidency {
		c := &fs.Residencies[bestRes]
		c.Services = append(c.Services, di)
		if r.Start > c.LastService {
			c.LastService = r.Start
			(*oldCosts)[bestRes] = cost.SpanCost(m.Book().SRate(c.Loc), v.Size, v.Playback, c.Span())
		}
		if opts.Ledger != nil {
			// Tentatives are not registered at open time (they occupy
			// nothing — see openTentative), so the first extension of one
			// installs it here instead of updating it.
			ref := occupancy.Ref{Video: v.ID, Index: bestRes}
			if !opts.Ledger.Update(ref, *c) {
				opts.Ledger.Add(ref, *c)
			}
		}
	}

	openTentative(m, v, fs, di, opts, seen, oldCosts)
	return nil
}

// openTentative opens zero-span residencies along the new delivery's route
// per the caching policy. Zero-span copies cost nothing and occupy nothing,
// so they are free options for later requests; unused ones are pruned.
func openTentative(m *cost.Model, v media.Video, fs *schedule.FileSchedule, di int, opts Options, seen map[copyKey]struct{}, oldCosts *[]units.Money) {
	if opts.Policy == NoCaching {
		return
	}
	topo := m.Book().Topology()
	d := fs.Deliveries[di]
	for _, node := range d.Route {
		if node == d.Src() {
			continue // the source already holds the file
		}
		if opts.Policy == CacheAtDestination && node != d.Dst() {
			continue
		}
		if topo.Node(node).Kind != topology.KindStorage {
			continue
		}
		key := copyKey{node, d.Start}
		if _, dup := seen[key]; dup {
			continue
		}
		cand := schedule.Residency{
			Video: v.ID, Loc: node, Src: d.Src(),
			Load: d.Start, LastService: d.Start, FedBy: di,
		}
		if violatesAny(cand, v.Playback, opts.Banned) {
			continue
		}
		fs.Residencies = append(fs.Residencies, cand)
		*oldCosts = append(*oldCosts, 0) // zero span: SpanCost is exactly 0
		seen[key] = struct{}{}
		// The ledger is deliberately NOT told about the tentative: a
		// zero-span copy peaks at γ=0 and occupies nothing, so registering
		// it would change no query answer while costing an entry append on
		// every route node of every request. serveOne installs the copy on
		// its first extension; unused tentatives never reach the ledger at
		// all.
	}
}

func violatesAny(c schedule.Residency, playback simtime.Duration, banned []occupancy.Banned) bool {
	for _, bn := range banned {
		if bn.Violates(c, playback) {
			return true
		}
	}
	return false
}

// prune removes residencies that serve no deliveries, remapping the
// surviving indices in Deliveries and the ledger. Pre-placed standing
// copies survive even when unused: their cost is already committed and
// the schedule must account for it truthfully. The same goes for the
// first frozen residencies of a rolling-horizon prefix: they are
// committed history, not tentative options (and since they lead the
// slice, keeping them preserves their indices).
func prune(fs *schedule.FileSchedule, video media.VideoID, ledger *occupancy.Ledger, frozen int) {
	remap := make([]int, len(fs.Residencies))
	kept := fs.Residencies[:0]
	for j := range fs.Residencies {
		if j >= frozen && len(fs.Residencies[j].Services) == 0 && fs.Residencies[j].FedBy != schedule.PrePlacedFeed {
			remap[j] = -1
			continue
		}
		remap[j] = len(kept)
		kept = append(kept, fs.Residencies[j])
	}
	fs.Residencies = kept
	for i := range fs.Deliveries {
		if sr := fs.Deliveries[i].SourceResidency; sr != schedule.NoResidency {
			fs.Deliveries[i].SourceResidency = remap[sr]
		}
	}
	if ledger != nil {
		ledger.RemoveVideo(video)
		for j, c := range fs.Residencies {
			ledger.Add(occupancy.Ref{Video: video, Index: j}, c)
		}
	}
}

// Direct returns the no-caching baseline schedule for one file: every
// request served by a direct warehouse stream (the "network only system").
func Direct(m *cost.Model, video media.VideoID, reqs []workload.Request) (*schedule.FileSchedule, error) {
	return ScheduleFile(m, video, reqs, Options{Policy: NoCaching})
}

// Cost is a convenience wrapper returning Ψ(S_i) for a file schedule,
// guarding against the NaN/Inf poisoning that would silently corrupt
// greedy comparisons.
func Cost(m *cost.Model, fs *schedule.FileSchedule) (units.Money, error) {
	c := m.FileCost(fs)
	if !c.IsFinite() || c < 0 {
		return 0, fmt.Errorf("ivs: non-finite or negative schedule cost %v", c)
	}
	return c, nil
}
