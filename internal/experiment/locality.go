package experiment

import (
	"fmt"

	"github.com/vodsim/vsp/internal/stats"
)

// LocalitySweep holds the x values for FigLocality.
var LocalitySweep = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// FigLocality is an extension sweep over regional taste variation
// (workload.Config.Locality): 0 means every neighborhood shares the global
// Zipf ranking, 1 means each neighborhood permutes it independently.
// Shared rankings let one cached copy at a hub serve several neighborhoods;
// decorrelated tastes fragment that sharing, so total cost rises with
// locality while the no-cache baseline stays flat.
func FigLocality(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	fig := &Figure{
		ID:     "fig-locality",
		Title:  "Regional taste variation vs total service cost (extension)",
		XLabel: "locality (0 = shared ranking, 1 = independent per neighborhood)",
		YLabel: "total service cost ($)",
	}
	var ps []Params
	for _, loc := range LocalitySweep {
		p := base
		p.Locality = loc
		ps = append(ps, p)
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	with := stats.Series{Name: fmt.Sprintf("two-phase scheduler (alpha=%g)", base.Alpha)}
	direct := stats.Series{Name: "direct only"}
	for i, loc := range LocalitySweep {
		with.Add(loc, float64(results[i].FinalCost))
		direct.Add(loc, float64(results[i].DirectCost))
	}
	fig.Series = append(fig.Series, with, direct)
	return fig, nil
}
