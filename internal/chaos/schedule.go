package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// RandomRules builds a reproducible chaos schedule for a soak run: for
// each host it lays down a few randomized fault episodes — gray
// latency, full partitions, flapping links, 5xx bursts, and torn plan
// reads — all inside [0, dur), so the system is guaranteed fault-free
// once dur has elapsed. The same seed always yields the same schedule.
//
// Body cuts are scoped to the read-only /v1/plan path: truncating a
// write's response would leave the caller unable to tell whether the
// write committed, and the soak's exactly-once invariant needs every
// injected write failure to be unambiguous.
func RandomRules(seed int64, hosts []string, dur time.Duration) []Rule {
	rnd := rand.New(rand.NewSource(seed))
	var rules []Rule
	window := func() (from, until time.Duration) {
		from = time.Duration(rnd.Int63n(int64(dur * 6 / 10)))
		length := dur/10 + time.Duration(rnd.Int63n(int64(dur*3/10)))
		until = from + length
		if until > dur {
			until = dur
		}
		return from, until
	}
	for _, h := range hosts {
		n := 2 + rnd.Intn(3)
		for i := 0; i < n; i++ {
			from, until := window()
			r := Rule{Host: h, From: from, Until: until}
			switch rnd.Intn(5) {
			case 0: // gray latency
				r.Fault = Fault{
					LatencyMin: 20 * time.Millisecond,
					LatencyMax: 120 * time.Millisecond,
				}
			case 1: // hard partition
				r.Fault = Fault{Drop: 1}
			case 2: // flapping link
				r.Period = time.Duration(40+rnd.Intn(120)) * time.Millisecond
				r.Duty = 0.3 + 0.4*rnd.Float64()
				r.Phase = time.Duration(rnd.Int63n(int64(r.Period)))
				r.Fault = Fault{Drop: 1}
			case 3: // 5xx burst
				r.Fault = Fault{ErrProb: 0.5 + 0.4*rnd.Float64(), Code: 503}
			case 4: // torn plan reads
				r.Path = "/v1/plan"
				r.Fault = Fault{CutProb: 0.6, CutAfter: 1 + rnd.Intn(64)}
			}
			rules = append(rules, r)
		}
	}
	return rules
}

// ParseSpec parses a compact rule grammar for command-line use, e.g.
// with vspserve -chaos. Rules are ';'-separated; each rule is a
// ','-separated list of key=value fields:
//
//	host=H          exact target host (default: any)
//	path=P          path prefix (default: any)
//	from=DUR        window start (Go duration, default 0)
//	until=DUR       window end (default: forever)
//	period=DUR      flap period (default: no flapping)
//	duty=F          active fraction of each period
//	phase=DUR       offset into the flap period
//	latency=A..B    added delay drawn from [A, B] (or latency=A fixed)
//	drop=P          connection-drop probability
//	err=P[:CODE]    synthesized error probability (default code 503)
//	cut=P[:BYTES]   response-cut probability, keeping BYTES bytes
//
// Example: "latency=50ms..200ms,from=10s,until=30s;err=0.3:502,period=2s,duty=0.5".
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: rule %q: %w", part, err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: empty spec")
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return r, fmt.Errorf("field %q: want key=value", field)
		}
		var err error
		switch key {
		case "host":
			r.Host = val
		case "path":
			r.Path = val
		case "from":
			r.From, err = time.ParseDuration(val)
		case "until":
			r.Until, err = time.ParseDuration(val)
		case "period":
			r.Period, err = time.ParseDuration(val)
		case "duty":
			r.Duty, err = strconv.ParseFloat(val, 64)
		case "phase":
			r.Phase, err = time.ParseDuration(val)
		case "latency":
			lo, hi, ranged := strings.Cut(val, "..")
			r.Fault.LatencyMin, err = time.ParseDuration(lo)
			if err == nil {
				if ranged {
					r.Fault.LatencyMax, err = time.ParseDuration(hi)
				} else {
					r.Fault.LatencyMax = r.Fault.LatencyMin
				}
			}
		case "drop":
			r.Fault.Drop, err = strconv.ParseFloat(val, 64)
		case "err":
			p, code, hasCode := strings.Cut(val, ":")
			r.Fault.ErrProb, err = strconv.ParseFloat(p, 64)
			if err == nil && hasCode {
				r.Fault.Code, err = strconv.Atoi(code)
			}
		case "cut":
			p, bytes, hasBytes := strings.Cut(val, ":")
			r.Fault.CutProb, err = strconv.ParseFloat(p, 64)
			if err == nil && hasBytes {
				r.Fault.CutAfter, err = strconv.Atoi(bytes)
			}
		default:
			return r, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return r, fmt.Errorf("field %q: %w", field, err)
		}
	}
	if r.Period > 0 && (r.Duty <= 0 || r.Duty > 1) {
		return r, fmt.Errorf("flapping rule needs duty in (0, 1]")
	}
	return r, nil
}
