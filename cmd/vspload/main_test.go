package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// Smoke: generate a small pattern trace to disk, replay it against an
// in-process vspserve, and check the JSON result lands. This is the
// CI short-mode equivalent of `make load-demo`.
func TestSmokeAgainstServer(t *testing.T) {
	rig, err := experiment.Build(experiment.Params{
		Storages: 3, UsersPerStorage: 2, Titles: 8,
		CapacityGB: 4, RequestsPerUser: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewWithOptions(rig.Model, server.Options{
		Horizon: horizon.Config{EpochRequests: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	outPath := filepath.Join(dir, "load.json")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	tw := workload.NewJSONLTraceWriter(f)
	p := workload.Pattern{
		Base:     workload.Config{Seed: 3},
		Requests: 60,
		Span:     4 * simtime.Hour,
	}
	if err := p.Stream(rig.Topo, rig.Catalog, tw.Write); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	err = run(options{
		target:          ts.URL,
		tracePath:       tracePath,
		concurrency:     4,
		advanceLagHours: 1,
		outPath:         outPath,
		quiet:           true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var res struct {
		Submitted int `json:"submitted"`
		Accepted  int `json:"accepted"`
		Submit    struct {
			N int `json:"n"`
		} `json:"submit_latency"`
	}
	b, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 60 || res.Accepted == 0 || res.Submit.N != 60 {
		t.Fatalf("result file: %+v", res)
	}
}

// Named results merge into an array: legacy single-object files are
// wrapped, same-name entries are replaced in place, foreign entries
// survive untouched.
func TestMergeNamed(t *testing.T) {
	entry := func(name string, p99 int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"name":%q,"p99":%d}`, name, p99))
	}
	parse := func(t *testing.T, b []byte) []map[string]any {
		t.Helper()
		var out []map[string]any
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("merged output not a JSON array: %v\n%s", err, b)
		}
		return out
	}

	// Empty file: a fresh one-element array.
	b, err := mergeNamed(nil, "a", entry("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := parse(t, b); len(got) != 1 || got[0]["name"] != "a" {
		t.Fatalf("fresh merge: %s", b)
	}

	// Legacy single object: wrapped as the first element, new entry after.
	legacy := []byte(`{"target":"http://old","submitted":9}`)
	b, err = mergeNamed(legacy, "a", entry("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	got := parse(t, b)
	if len(got) != 2 || got[0]["target"] != "http://old" || got[1]["name"] != "a" {
		t.Fatalf("legacy wrap: %s", b)
	}

	// Same-name entry replaced in place; the unnamed legacy entry and the
	// other named entry pass through.
	b2, err := mergeNamed(b, "a", entry("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	got = parse(t, b2)
	if len(got) != 2 || got[1]["p99"] != float64(2) {
		t.Fatalf("replace in place: %s", b2)
	}

	// A different name appends.
	b3, err := mergeNamed(b2, "b", entry("b", 3))
	if err != nil {
		t.Fatal(err)
	}
	if got = parse(t, b3); len(got) != 3 || got[2]["name"] != "b" {
		t.Fatalf("append: %s", b3)
	}

	// Garbage in the existing file is an error, not silent data loss.
	if _, err := mergeNamed([]byte("not json"), "a", entry("a", 1)); err == nil {
		t.Fatal("garbage existing file accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Fatal("missing -target/-trace accepted")
	}
	if err := run(options{target: "http://x", tracePath: "nope.csv"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
	dir := t.TempDir()
	p := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(p, []byte("user,video,start_seconds\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{target: "http://x", tracePath: p, format: "parquet"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
