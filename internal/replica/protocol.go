package replica

import (
	"fmt"

	"github.com/vodsim/vsp/internal/wal"
)

// Wire protocol. The follower GETs
//
//	/v1/replication/wal?after=<seq>&epoch=<observed leader epoch>&max=<n>
//
// from the primary and receives a Batch. The epoch parameter is the
// fencing token: a primary that sees a request carrying a *higher* epoch
// has provably been superseded and demotes itself before rejecting the
// request; a node that is not primary rejects with the stale-leadership
// error and its current epoch, which the follower observes. Records are
// shipped with their WAL CRCs and re-verified before apply, so transport
// corruption is caught by the same checksum that guards the disk format.

// Record is one shipped journal record.
type Record struct {
	Seq uint64 `json:"seq"`
	// CRC is the record's WAL checksum (CRC-32 IEEE over seq + payload).
	CRC uint32 `json:"crc"`
	// Payload is the journaled operation (base64 in JSON transit).
	Payload []byte `json:"payload"`
}

// FromWAL frames a decoded WAL record for shipping.
func FromWAL(rec wal.Record) Record {
	return Record{Seq: rec.Seq, CRC: wal.Checksum(rec.Seq, rec.Payload), Payload: rec.Payload}
}

// Verify checks the record's checksum, catching corruption introduced in
// transit (or a disagreeing implementation) before the record can reach
// the applier.
func (r Record) Verify() error {
	if got := wal.Checksum(r.Seq, r.Payload); got != r.CRC {
		return fmt.Errorf("replica: record seq %d checksum mismatch (shipped %08x, computed %08x)", r.Seq, r.CRC, got)
	}
	return nil
}

// Batch is one replication response.
type Batch struct {
	// LeaderEpoch is the primary's leadership epoch; the follower adopts
	// it (Observe) so a later promotion supersedes it correctly.
	LeaderEpoch uint64 `json:"leader_epoch"`
	// LastSeq is the primary's latest journaled sequence.
	LastSeq uint64 `json:"last_seq"`
	// Records are the journal records after the requested sequence, in
	// order. Empty when the follower is caught up or a snapshot is sent.
	Records []Record `json:"records,omitempty"`
	// Snapshot, when non-empty, is a full-state snapshot at SnapshotSeq;
	// the primary sends it when the requested records were already
	// compacted away.
	Snapshot    []byte `json:"snapshot,omitempty"`
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
}

// Status is a node's replication status, served on the status endpoint
// and folded into /v1/stats and /readyz.
type Status struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the local service's applied journal sequence.
	AppliedSeq uint64 `json:"applied_seq"`
	// Source is the primary URL a follower ships from (empty on primaries
	// and detached followers).
	Source string `json:"source,omitempty"`
	// PrimaryLastSeq is the primary's LastSeq at the latest successful
	// poll; Lag is PrimaryLastSeq - AppliedSeq at that instant.
	PrimaryLastSeq uint64 `json:"primary_last_seq,omitempty"`
	Lag            uint64 `json:"lag"`
	// Synced reports that at least one poll succeeded; CaughtUp that the
	// latest successful poll left no lag. A follower is serviceable —
	// promotable, and ready per /readyz — only when both hold.
	Synced   bool `json:"synced"`
	CaughtUp bool `json:"caught_up"`
	// SnapshotsInstalled counts full-state snapshot installs (vs record
	// replay); RecordsApplied counts applied records.
	RecordsApplied     uint64 `json:"records_applied"`
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
	// LastError is the most recent poll failure (cleared on success).
	LastError string `json:"last_error,omitempty"`
}
