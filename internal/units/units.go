// Package units defines the physical quantities the cost model is built
// from: data sizes, bandwidths and money. Keeping them as distinct types
// prevents the classic unit mix-ups (bytes vs bits, $/byte vs $/(byte·s))
// that plague charging-rate arithmetic.
package units

import (
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/simtime"
)

// Bytes is a data size in bytes.
type Bytes int64

// Common sizes. The paper quotes decimal units (2.5 GB video files), so
// these are SI powers of 1000, not binary powers of 1024.
const (
	KB Bytes = 1000
	MB Bytes = 1000 * KB
	GB Bytes = 1000 * MB
	TB Bytes = 1000 * GB
)

// GBf constructs a size from a (possibly fractional) number of gigabytes.
func GBf(gb float64) Bytes { return Bytes(math.Round(gb * float64(GB))) }

// Float returns the size as a float64 number of bytes.
func (b Bytes) Float() float64 { return float64(b) }

// GBytes returns the size in gigabytes.
func (b Bytes) GBytes() float64 { return float64(b) / float64(GB) }

// String formats the size with a human-readable SI suffix.
func (b Bytes) String() string {
	v := float64(b)
	neg := v < 0
	if neg {
		v = -v
	}
	sign := ""
	if neg {
		sign = "-"
	}
	switch {
	case v >= float64(TB):
		return fmt.Sprintf("%s%.2fTB", sign, v/float64(TB))
	case v >= float64(GB):
		return fmt.Sprintf("%s%.2fGB", sign, v/float64(GB))
	case v >= float64(MB):
		return fmt.Sprintf("%s%.2fMB", sign, v/float64(MB))
	case v >= float64(KB):
		return fmt.Sprintf("%s%.2fKB", sign, v/float64(KB))
	default:
		return fmt.Sprintf("%s%dB", sign, int64(v))
	}
}

// BytesPerSec is a bandwidth in bytes per second.
type BytesPerSec float64

// Mbps constructs a bandwidth from megabits per second, the unit the paper
// uses for stream reservations (e.g. 6 Mbps per MPEG-2 stream).
func Mbps(mbit float64) BytesPerSec { return BytesPerSec(mbit * 1e6 / 8) }

// Mbit returns the bandwidth in megabits per second.
func (r BytesPerSec) Mbit() float64 { return float64(r) * 8 / 1e6 }

// Over returns the number of bytes transferred at rate r for duration d.
func (r BytesPerSec) Over(d simtime.Duration) Bytes {
	return Bytes(math.Round(float64(r) * d.Seconds()))
}

// String formats the bandwidth in Mbps.
func (r BytesPerSec) String() string { return fmt.Sprintf("%.2fMbps", r.Mbit()) }

// Money is an amount in the charging system's currency. The paper uses an
// "arbitrary charging system" whose values stand in for dollars; we keep a
// float64 because costs are sums of products of rates and byte·seconds.
type Money float64

// Cents constructs money from a number of cents.
func Cents(c float64) Money { return Money(c / 100) }

// IsFinite reports whether the amount is a normal number (not NaN/Inf).
func (m Money) IsFinite() bool { return !math.IsNaN(float64(m)) && !math.IsInf(float64(m), 0) }

// String formats the amount as dollars with 4 decimal places (charging-rate
// products are routinely fractional cents).
func (m Money) String() string { return fmt.Sprintf("$%.4f", float64(m)) }

// ApproxEqual reports whether two amounts differ by less than tol.
func (m Money) ApproxEqual(other Money, tol float64) bool {
	return math.Abs(float64(m-other)) < tol
}
