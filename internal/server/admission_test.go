package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/workload"
)

// The limiter's contract, tested against a handler we can hold open
// deterministically: with 1 slot and no queue, a second concurrent
// request is shed immediately with 429 + Retry-After while the first
// completes normally.
func TestLimiterShedsAtSaturation(t *testing.T) {
	lim := newLimiter(1, 0, time.Second)
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	h := lim.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	firstStatus := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/work")
		if err != nil {
			firstStatus <- 0
			return
		}
		resp.Body.Close()
		firstStatus <- resp.StatusCode
	}()
	<-entered // the slot is now provably held

	resp, err := http.Get(ts.URL + "/work")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("shed reply Retry-After = %q, want a positive integer", ra)
	}
	if lim.Shed() != 1 {
		t.Fatalf("shed counter = %d, want 1", lim.Shed())
	}

	close(release)
	wg.Wait()
	if got := <-firstStatus; got != http.StatusOK {
		t.Fatalf("in-flight request completed with %d, want 200", got)
	}
}

// A queued request gets the slot when it frees within the wait budget,
// and is shed when it does not.
func TestLimiterQueue(t *testing.T) {
	t.Run("admitted-when-slot-frees", func(t *testing.T) {
		lim := newLimiter(1, 1, 5*time.Second)
		release := make(chan struct{})
		entered := make(chan struct{}, 2)
		h := lim.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			entered <- struct{}{}
			if r.URL.Path == "/slow" {
				<-release
			}
			w.WriteHeader(http.StatusOK)
		}))
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)

		go http.Get(ts.URL + "/slow")
		<-entered

		done := make(chan int, 1)
		go func() {
			resp, err := http.Get(ts.URL + "/fast")
			if err != nil {
				done <- 0
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		// Give the second request time to park in the queue, then free
		// the slot; the queued request must be admitted, not shed.
		time.Sleep(50 * time.Millisecond)
		close(release)
		if got := <-done; got != http.StatusOK {
			t.Fatalf("queued request: status %d, want 200", got)
		}
		if lim.Shed() != 0 {
			t.Fatalf("shed counter = %d, want 0", lim.Shed())
		}
	})

	t.Run("shed-after-wait", func(t *testing.T) {
		lim := newLimiter(1, 1, 20*time.Millisecond)
		release := make(chan struct{})
		defer close(release)
		entered := make(chan struct{}, 1)
		h := lim.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			entered <- struct{}{}
			<-release
		}))
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)

		go http.Get(ts.URL + "/slow")
		<-entered
		resp, err := http.Get(ts.URL + "/fast")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("wait-expired request: status %d, want 429", resp.StatusCode)
		}
	})
}

// End to end through the real server: hold the single admission slot with
// a blocking request, then hit a real API endpoint. It must be shed with
// 429 + Retry-After while the in-flight request completes, the shed count
// must surface on /v1/stats, and /healthz must answer throughout.
func TestServerOverloadSheds(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, f, Options{MaxInFlight: 1, MaxQueue: -1, QueueWait: 10 * time.Millisecond})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	slowStatus := make(chan int, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/slow")
		if err != nil {
			slowStatus <- 0
			return
		}
		resp.Body.Close()
		slowStatus <- resp.StatusCode
	}()
	<-entered // the only slot is now provably held

	resp := postJSON(t, ts.URL+"/v1/schedule", ScheduleRequest{Requests: f.Requests})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated schedule request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed schedule request missing Retry-After")
	}

	// Liveness must bypass admission control at saturation.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz at saturation: %d", hresp.StatusCode)
	}

	close(release)
	wg.Wait()
	if got := <-slowStatus; got != http.StatusOK {
		t.Fatalf("in-flight request completed with %d, want 200", got)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, sresp)
	if stats.Overload.Shed != 1 {
		t.Errorf("stats shed = %d, want 1", stats.Overload.Shed)
	}
	if stats.Overload.MaxInFlight != 1 {
		t.Errorf("stats max_in_flight = %d, want 1", stats.Overload.MaxInFlight)
	}
}

// /healthz must answer while every slot is provably held.
func TestHealthzBypassesLimiter(t *testing.T) {
	lim := newLimiter(1, 0, time.Second)
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{}, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	mux.HandleFunc("GET /work", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	ts := httptest.NewServer(lim.wrap(mux))
	t.Cleanup(ts.Close)

	go http.Get(ts.URL + "/work")
	<-entered
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz at saturation: %d", resp.StatusCode)
	}
}

// Durable server lifecycle: reservations and epochs survive a restart,
// and the stats endpoint reports horizon state and recovery counters.
func TestServerDurableRestart(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := Options{DataDir: dir}

	srv1, err := NewWithOptions(f.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1)
	for _, q := range f.Requests {
		resp := postJSON(t, ts1.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reservation: %d", resp.StatusCode)
		}
	}
	resp := postJSON(t, ts1.URL+"/v1/advance", AdvanceRequest{To: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %d", resp.StatusCode)
	}
	planResp, err := http.Get(ts1.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	before := decode[PlanResponse](t, planResp)
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := NewWithOptions(f.Model, opts)
	if err != nil {
		t.Fatalf("restart on %s: %v", dir, err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)

	planResp2, err := http.Get(ts2.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	after := decode[PlanResponse](t, planResp2)
	if after.Epoch != before.Epoch || after.Cost != before.Cost ||
		len(after.Schedule.Files) != len(before.Schedule.Files) {
		t.Fatalf("plan did not survive restart:\nbefore %+v\nafter  %+v", before, after)
	}

	statsResp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[StatsResponse](t, statsResp)
	if !stats.Recovery.Recovered {
		t.Errorf("stats recovery does not report the restart: %+v", stats.Recovery)
	}
	if !stats.Horizon.Durable || stats.Horizon.Epoch != before.Epoch {
		t.Errorf("stats horizon wrong after restart: %+v", stats.Horizon)
	}

	// The recovered service keeps accepting and planning.
	q := workload.Request{User: f.Requests[0].User, Video: f.Requests[0].Video, Start: f.Requests[0].Start + 7200}
	r2 := postJSON(t, ts2.URL+"/v1/reservations", ReservationRequest{User: q.User, Video: q.Video, Start: q.Start})
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-recovery reservation: %d", r2.StatusCode)
	}
}
