// Package wal implements the write-ahead log the durable horizon service
// journals through: an append-only file of length-prefixed,
// CRC32-checksummed records, plus an atomically-replaced snapshot file
// that compacts the log.
//
// On-disk layout of a log file:
//
//	| magic "VSPWAL1\n" (8 bytes) |
//	| record | record | ... |
//
// and of one record:
//
//	| len uint32 LE | crc uint32 LE | seq uint64 LE | payload (len bytes) |
//
// where crc is CRC-32 (IEEE) over the little-endian seq followed by the
// payload, and seq is a strictly increasing record sequence number that
// survives log compaction (the snapshot stores the sequence it covers, so
// a crash between snapshot publication and log truncation only leaves
// records the next recovery provably skips).
//
// The reader distinguishes two failure classes, which matters for crash
// recovery: a *truncated tail* (the file ends mid-record — the expected
// result of a crash between write and sync) is tolerated, the torn bytes
// are discarded and the log reopened for appending; *corruption* (a CRC
// mismatch, an impossible record length, a sequence regression, a foreign
// magic) is never silently repaired — the open fails and an operator must
// intervene, because replaying around damaged history could re-derive a
// schedule that disagrees with what was promised to users.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// logMagic begins every log file; a file that starts differently was not
// written by this package and is rejected rather than replayed.
const logMagic = "VSPWAL1\n"

// recordHeaderSize is len + crc + seq.
const recordHeaderSize = 4 + 4 + 8

// MaxRecordBytes caps a single record's payload. A legitimate writer
// never comes near it; a longer declared length is read as corruption
// (most likely a damaged length field), not as an instruction to wait
// for 4 GiB of payload.
const MaxRecordBytes = 64 << 20

// FsyncPolicy selects when appends are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost, at the price of one fsync per operation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per Options.SyncEvery: a crash
	// loses at most the last interval's records, amortizing the fsync.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system: fastest, and a
	// crash may lose everything since the last incidental flush.
	FsyncNever
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the flag spelling ("always", "interval",
// "never").
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// DefaultSyncEvery is the FsyncInterval flush period when
// Options.SyncEvery is zero.
const DefaultSyncEvery = 100 * time.Millisecond

// Options configures a Log.
type Options struct {
	// Fsync is the flush policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SyncEvery bounds the sync lag under FsyncInterval (default
	// DefaultSyncEvery); ignored by the other policies.
	SyncEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	return o
}

// Record is one decoded log entry.
type Record struct {
	// Seq is the record's sequence number, strictly increasing across
	// the life of the log (compaction does not reset it).
	Seq uint64
	// Payload is the application data, owned by the caller.
	Payload []byte
}

// Tail describes how a decoded byte stream ended.
type Tail int

const (
	// TailClean: the stream ends exactly on a record boundary.
	TailClean Tail = iota
	// TailTruncated: the stream ends mid-record — the signature of a
	// crash between write and sync. The complete prefix is valid; the
	// torn bytes carry no acknowledged data and are safe to discard.
	TailTruncated
	// TailCorrupt: a structurally complete record failed its checksum,
	// declared an impossible length, or regressed the sequence — damage,
	// not a torn write. Decoded records up to the damage are returned,
	// but recovery must not proceed past it silently.
	TailCorrupt
)

// String names the disposition.
func (t Tail) String() string {
	switch t {
	case TailClean:
		return "clean"
	case TailTruncated:
		return "truncated"
	case TailCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Tail(%d)", int(t))
}

// ErrCorrupt is wrapped by every corruption error DecodeAll and Open
// report, so callers can distinguish damage from I/O failures.
var ErrCorrupt = errors.New("wal: corrupt log")

// DecodeAll decodes a complete log byte stream (including the file
// magic). It never panics on any input. The returned records are the
// valid prefix; Tail reports how the stream ended, and err is non-nil
// exactly when the tail is corrupt.
func DecodeAll(data []byte) ([]Record, Tail, error) {
	recs, tail, _, err := decode(data)
	return recs, tail, err
}

// decode additionally returns the byte length of the valid prefix
// (magic + complete records), which Open uses to truncate a torn tail.
func decode(data []byte) (recs []Record, tail Tail, validLen int64, err error) {
	if len(data) == 0 {
		return nil, TailClean, 0, nil
	}
	if len(data) < len(logMagic) {
		if string(data) == logMagic[:len(data)] {
			// A crash can tear even the header write of a brand-new log.
			return nil, TailTruncated, 0, nil
		}
		return nil, TailCorrupt, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if string(data[:len(logMagic)]) != logMagic {
		return nil, TailCorrupt, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	off := int64(len(logMagic))
	var prevSeq uint64
	for {
		rem := data[off:]
		if len(rem) == 0 {
			return recs, TailClean, off, nil
		}
		if len(rem) < recordHeaderSize {
			return recs, TailTruncated, off, nil
		}
		ln := binary.LittleEndian.Uint32(rem[0:4])
		crc := binary.LittleEndian.Uint32(rem[4:8])
		seq := binary.LittleEndian.Uint64(rem[8:16])
		if ln > MaxRecordBytes {
			return recs, TailCorrupt, off, fmt.Errorf("%w: record %d declares %d-byte payload (cap %d)",
				ErrCorrupt, len(recs), ln, MaxRecordBytes)
		}
		if int64(len(rem)) < recordHeaderSize+int64(ln) {
			return recs, TailTruncated, off, nil
		}
		payload := rem[recordHeaderSize : recordHeaderSize+int64(ln)]
		if got := checksum(seq, payload); got != crc {
			return recs, TailCorrupt, off, fmt.Errorf("%w: record %d checksum mismatch (stored %08x, computed %08x)",
				ErrCorrupt, len(recs), crc, got)
		}
		if seq <= prevSeq {
			return recs, TailCorrupt, off, fmt.Errorf("%w: record %d sequence %d does not advance past %d",
				ErrCorrupt, len(recs), seq, prevSeq)
		}
		prevSeq = seq
		recs = append(recs, Record{Seq: seq, Payload: append([]byte(nil), payload...)})
		off += recordHeaderSize + int64(ln)
	}
}

func checksum(seq uint64, payload []byte) uint32 {
	var sb [8]byte
	binary.LittleEndian.PutUint64(sb[:], seq)
	h := crc32.NewIEEE()
	h.Write(sb[:])
	h.Write(payload)
	return h.Sum32()
}

// encodeRecord frames one record.
func encodeRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], checksum(seq, payload))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[recordHeaderSize:], payload)
	return buf
}

// Log is an open write-ahead log. It is not safe for concurrent use; the
// horizon service serializes access under its own mutex.
type Log struct {
	f        *os.File
	path     string
	opts     Options
	nextSeq  uint64
	lastSync time.Time
}

// Open opens (creating if absent) the log at path, decodes and returns
// every complete record for replay, and truncates a torn tail in place so
// the log is append-ready. A corrupt log fails the open with an error
// wrapping ErrCorrupt.
func Open(path string, opts Options) (*Log, []Record, Tail, error) {
	opts = opts.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, TailClean, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, TailClean, fmt.Errorf("wal: read %s: %w", path, err)
	}
	recs, tail, validLen, derr := decode(data)
	if tail == TailCorrupt {
		f.Close()
		return nil, recs, tail, fmt.Errorf("wal: %s: %w", path, derr)
	}
	l := &Log{f: f, path: path, opts: opts, nextSeq: 1, lastSync: time.Now()}
	if len(recs) > 0 {
		l.nextSeq = recs[len(recs)-1].Seq + 1
	}
	if len(data) == 0 {
		// Brand-new log: publish the header before any record.
		if _, err := f.Write([]byte(logMagic)); err != nil {
			f.Close()
			return nil, nil, tail, fmt.Errorf("wal: write header: %w", err)
		}
		if err := l.Sync(); err != nil {
			f.Close()
			return nil, nil, tail, err
		}
	} else if tail == TailTruncated {
		// Discard the torn record: validLen covers magic + whole records.
		// A torn header (validLen 0) is re-written from scratch.
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, recs, tail, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, recs, tail, fmt.Errorf("wal: seek %s: %w", path, err)
		}
		if validLen == 0 {
			if _, err := f.Write([]byte(logMagic)); err != nil {
				f.Close()
				return nil, recs, tail, fmt.Errorf("wal: rewrite header: %w", err)
			}
		}
		if err := l.Sync(); err != nil {
			f.Close()
			return nil, recs, tail, err
		}
	} else {
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, recs, tail, fmt.Errorf("wal: seek %s: %w", path, err)
		}
	}
	return l, recs, tail, nil
}

// Append journals one payload and returns its sequence number. The
// record is on stable storage when Append returns iff the policy is
// FsyncAlways (or the interval elapsed under FsyncInterval).
func (l *Log) Append(payload []byte) (uint64, error) {
	if int64(len(payload)) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: %d-byte payload exceeds record cap %d", len(payload), int64(MaxRecordBytes))
	}
	seq := l.nextSeq
	if _, err := l.f.Write(encodeRecord(seq, payload)); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.nextSeq++
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.Sync(); err != nil {
			return 0, err
		}
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.Sync(); err != nil {
				return 0, err
			}
		}
	}
	return seq, nil
}

// Sync flushes the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.lastSync = time.Now()
	return nil
}

// Reset empties the log after a snapshot has been published, keeping the
// sequence counter monotonic so pre-snapshot records that survive a crash
// between snapshot and reset are recognizably stale.
func (l *Log) Reset() error {
	if err := l.f.Truncate(int64(len(logMagic))); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	return l.Sync()
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// EnsureSeqAbove bumps the sequence counter past seq; recovery calls it
// with the snapshot's sequence so appends never reuse a covered number.
func (l *Log) EnsureSeqAbove(seq uint64) {
	if l.nextSeq <= seq {
		l.nextSeq = seq + 1
	}
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	serr := l.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}
