package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/vodsim/vsp/internal/horizon
cpu: Example CPU
BenchmarkHorizonAdvance-8             36          31018870 ns/op        14074702 B/op     135689 allocs/op
BenchmarkFullResolve-8                 1        3638931633 ns/op       1604029008 B/op  15832805 allocs/op
PASS
ok      github.com/vodsim/vsp/internal/horizon  5.812s
pkg: github.com/vodsim/vsp/internal/scheduler
BenchmarkSchedule-8                    3         400123456 ns/op
BenchmarkSchedulePhase1                5         100000000 ns/op
BenchmarkSchedulePhase1-4             18          28000000 ns/op
PASS
ok      github.com/vodsim/vsp/internal/scheduler        2.101s
`

func TestParse(t *testing.T) {
	rep, err := parseWithCPU(strings.NewReader(sample), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	adv := rep.Benchmarks[0]
	if adv.Name != "BenchmarkHorizonAdvance" || adv.Iterations != 36 || adv.CPU != 8 {
		t.Fatalf("first benchmark: %+v", adv)
	}
	if adv.NsPerOp != 31018870 || adv.BytesPerOp != 14074702 || adv.AllocsPerOp != 135689 {
		t.Fatalf("metrics: %+v", adv)
	}
	// BenchmarkSchedule ran without -benchmem: alloc fields stay zero.
	sched := rep.Benchmarks[2]
	if sched.Name != "BenchmarkSchedule" || sched.BytesPerOp != 0 || sched.AllocsPerOp != 0 {
		t.Fatalf("schedule benchmark: %+v", sched)
	}
	// A suffix-free line (GOMAXPROCS=1 run) parses with CPU 0; the -cpu 4
	// run of the same benchmark keeps the same name with CPU 4.
	p1 := rep.Benchmarks[3]
	if p1.Name != "BenchmarkSchedulePhase1" || p1.CPU != 0 {
		t.Fatalf("phase-1 sequential benchmark: %+v", p1)
	}
	if got := rep.Benchmarks[4]; got.Name != "BenchmarkSchedulePhase1" || got.CPU != 4 {
		t.Fatalf("phase-1 parallel benchmark: %+v", got)
	}
	want := 3638931633.0 / 31018870.0
	if math.Abs(rep.HorizonSpeedup-want) > 1e-9 {
		t.Fatalf("speedup = %v, want %v", rep.HorizonSpeedup, want)
	}
	if wantP1 := 100000000.0 / 28000000.0; math.Abs(rep.Phase1ParallelSpeedup-wantP1) > 1e-9 {
		t.Fatalf("phase-1 speedup = %v, want %v", rep.Phase1ParallelSpeedup, wantP1)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Fatalf("environment fields missing: %+v", rep)
	}
	if rep.NumCPU != 8 {
		t.Fatalf("num_cpu = %d, want 8", rep.NumCPU)
	}
	if rep.ParallelNote != "" {
		t.Fatalf("multi-core report flagged: %q", rep.ParallelNote)
	}
}

// Regression: on a 1-core host (the CI container), a -cpu 1,4 run of
// BenchmarkSchedulePhase1 timeslices one hardware thread and the derived
// "speedup" (0.37–0.57 in past committed reports) is pure noise that
// reads as a parallelism regression. The parallel ratios must be
// omitted — and the omission explained — while the horizon ratio, which
// compares two algorithms at one GOMAXPROCS, survives.
func TestParallelSpeedupsOmittedOnSingleCore(t *testing.T) {
	rep, err := parseWithCPU(strings.NewReader(sample), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1ParallelSpeedup != 0 {
		t.Fatalf("phase-1 speedup %v recorded on a 1-core host", rep.Phase1ParallelSpeedup)
	}
	if rep.GatewaySubmitSpeedup != 0 {
		t.Fatalf("gateway speedup %v recorded on a 1-core host", rep.GatewaySubmitSpeedup)
	}
	if rep.ParallelNote == "" {
		t.Fatal("omission not explained in parallel_speedup_note")
	}
	if rep.NumCPU != 1 {
		t.Fatalf("num_cpu = %d, want 1", rep.NumCPU)
	}
	// The same-GOMAXPROCS algorithmic ratio is still valid on one core.
	if want := 3638931633.0 / 31018870.0; math.Abs(rep.HorizonSpeedup-want) > 1e-9 {
		t.Fatalf("horizon speedup = %v, want %v", rep.HorizonSpeedup, want)
	}
}

func TestGatewaySpeedupOnMultiCore(t *testing.T) {
	const in = `BenchmarkGatewaySubmit1Server-4     100      4000000 ns/op
BenchmarkGatewaySubmit3Shards-4     300      1000000 ns/op
PASS
`
	rep, err := parseWithCPU(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4.0; math.Abs(rep.GatewaySubmitSpeedup-want) > 1e-9 {
		t.Fatalf("gateway speedup = %v, want %v", rep.GatewaySubmitSpeedup, want)
	}
}

// Regression: with -count>1 the same (name, cpu) configuration repeats,
// and with -cpu 1,4 one name spans two configurations. Keying by name
// alone let a later line clobber an earlier one and paired the speedup
// from whichever lines happened to survive. The ratio must come from the
// fastest run of each matched (name, cpu) pair.
func TestPhase1SpeedupFromMatchedPair(t *testing.T) {
	const in = `goos: linux
BenchmarkSchedulePhase1               5         100000000 ns/op
BenchmarkSchedulePhase1-4            18          25000000 ns/op
BenchmarkSchedulePhase1               5         110000000 ns/op
BenchmarkSchedulePhase1-4            16          26000000 ns/op
PASS
`
	rep, err := parseWithCPU(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want all 4 kept", len(rep.Benchmarks))
	}
	// Fastest cpu=1 run (100ms) over fastest cpu=4 run (25ms): exactly 4.
	if want := 4.0; math.Abs(rep.Phase1ParallelSpeedup-want) > 1e-9 {
		t.Fatalf("phase-1 speedup = %v, want %v", rep.Phase1ParallelSpeedup, want)
	}
}

// A parallel-only input (no cpu=1 leg) has no matched pair: emitting a
// speedup would be fabricating the sequential baseline.
func TestPhase1SpeedupNeedsBothLegs(t *testing.T) {
	const in = `BenchmarkSchedulePhase1-4            18          25000000 ns/op
PASS
`
	rep, err := parseWithCPU(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phase1ParallelSpeedup != 0 {
		t.Fatalf("speedup %v derived without a sequential leg", rep.Phase1ParallelSpeedup)
	}
}

// The horizon ratio must also pair at one GOMAXPROCS: given FullResolve
// at cpus 1 and 8 but HorizonAdvance only at 8, the cpu-8 pair is the
// match — mixing the cpu-1 FullResolve in would inflate the ratio.
func TestHorizonSpeedupMatchesCPU(t *testing.T) {
	const in = `BenchmarkHorizonAdvance-8             36          31000000 ns/op
BenchmarkFullResolve                   1        9000000000 ns/op
BenchmarkFullResolve-8                 1        3100000000 ns/op
PASS
`
	rep, err := parseWithCPU(strings.NewReader(in), 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := 100.0; math.Abs(rep.HorizonSpeedup-want) > 1e-9 {
		t.Fatalf("horizon speedup = %v, want %v (the cpu-8 pair)", rep.HorizonSpeedup, want)
	}
}

// The -check mode compares only configurations both reports measured,
// judges each by the fastest run, and flags ratios beyond the limit.
func TestCompareFlagsRegression(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSchedule", NsPerOp: 100e6},
		{Name: "BenchmarkSchedulePhase1", NsPerOp: 1e6, CPU: 4},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSchedule", NsPerOp: 350e6}, // 3.5x: regression
		{Name: "BenchmarkSchedule", NsPerOp: 150e6}, // fastest of -count runs: 1.5x, fine
		{Name: "BenchmarkOnlyHere", NsPerOp: 1},     // no baseline: ignored
	}}
	lines, err := compare(base, cur, 2)
	if err != nil {
		t.Fatalf("fastest run within limit still failed: %v\n%s", err, strings.Join(lines, "\n"))
	}
	cur.Benchmarks[1].NsPerOp = 250e6 // now even the best run is 2.5x
	if _, err := compare(base, cur, 2); err == nil {
		t.Fatal("2.5x regression passed a 2x limit")
	}
	// A smoke run that matches nothing in the baseline must fail loudly
	// rather than vacuously pass.
	if _, err := compare(base, &Report{Benchmarks: []Benchmark{{Name: "BenchmarkOnlyHere", NsPerOp: 1}}}, 2); err == nil {
		t.Fatal("disjoint benchmark sets compared as success")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  pkg 0.1s\n")); err == nil {
		t.Fatal("input without benchmark lines must fail")
	}
}

func TestParseLineMalformedCount(t *testing.T) {
	if _, _, err := parseLine("BenchmarkX-8  notanint  12 ns/op"); err == nil {
		t.Fatal("malformed iteration count must fail")
	}
}
