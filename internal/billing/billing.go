// Package billing attributes a schedule's total cost Ψ(S) to the
// individual reservations it serves. The paper motivates cost modeling
// with the operator's pricing problem (§1.2 cites the network-pricing
// literature; §2.2: "how much user has to pay for the service?"); this
// package answers it with an exact marginal attribution:
//
//   - every delivery's network cost is billed to its own request;
//   - every residency's storage cost is split across the services reading
//     it by marginal extension: served chronologically, service k pays
//     Ψc(Δ_k) − Ψc(Δ_{k−1}) where Δ_k is the caching span after its
//     service. The increments telescope to the residency's full cost, so
//     the statement always sums to Ψ(S) exactly.
//
// Marginal attribution mirrors the greedy's own decision rule — each user
// pays exactly the extension cost their service added — so a user is never
// billed more than the direct-from-warehouse stream they would otherwise
// have received (the greedy only chose the cached source because it was
// cheaper).
package billing

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Line is one reservation's invoice.
type Line struct {
	User    topology.UserID
	Video   media.VideoID
	Start   simtime.Time
	Network units.Money
	Storage units.Money
}

// Total returns the line's charge.
func (l Line) Total() units.Money { return l.Network + l.Storage }

// Statement is the full billing run over one schedule.
type Statement struct {
	Lines   []Line
	Network units.Money
	Storage units.Money
	// Infrastructure is the operator-borne cost of pre-placed standing
	// copies (bulk pre-loads plus their full-span storage bookings). Users
	// reading a standing copy pay zero marginal storage — the copy was
	// bought up front.
	Infrastructure units.Money
}

// Total returns the statement's grand total (equal to Ψ(S)).
func (s *Statement) Total() units.Money { return s.Network + s.Storage + s.Infrastructure }

// Attribute bills the schedule's cost to its reservations.
func Attribute(m *cost.Model, s *schedule.Schedule) (*Statement, error) {
	st := &Statement{}
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		v := m.Catalog().Video(vid)
		lines := make([]Line, len(fs.Deliveries))
		for i, d := range fs.Deliveries {
			lines[i] = Line{
				User:    d.User,
				Video:   vid,
				Start:   d.Start,
				Network: m.DeliveryCost(d),
			}
			st.Network += lines[i].Network
		}
		for j, c := range fs.Residencies {
			if c.FedBy == schedule.PrePlacedFeed {
				// Standing copy: operator-borne, already committed before
				// the cycle. Its readers pay zero marginal storage.
				st.Infrastructure += m.ResidencyCost(c) + m.PrePlacementCost(c)
				continue
			}
			if len(c.Services) == 0 {
				return nil, fmt.Errorf("billing: residency %d of video %d serves nobody", j, vid)
			}
			// Marginal split: services in chronological order; each pays
			// the span-cost increment its service caused.
			order := append([]int(nil), c.Services...)
			sort.Slice(order, func(a, b int) bool {
				da, db := fs.Deliveries[order[a]], fs.Deliveries[order[b]]
				if da.Start != db.Start {
					return da.Start < db.Start
				}
				return order[a] < order[b]
			})
			srate := m.Book().SRate(c.Loc)
			prev := simtime.Duration(0)
			prevCost := units.Money(0)
			for _, di := range order {
				if di < 0 || di >= len(fs.Deliveries) {
					return nil, fmt.Errorf("billing: residency %d of video %d lists unknown service %d", j, vid, di)
				}
				span := fs.Deliveries[di].Start.Sub(c.Load)
				if span < prev {
					span = prev
				}
				cCost := cost.SpanCost(srate, v.Size, v.Playback, span)
				lines[di].Storage += cCost - prevCost
				st.Storage += cCost - prevCost
				prev, prevCost = span, cCost
			}
			// Telescoped total must equal the residency's booked cost; a
			// mismatch means the schedule's LastService is inconsistent.
			if booked := m.ResidencyCost(c); !prevCost.ApproxEqual(booked, 1e-6*(1+float64(booked))) {
				return nil, fmt.Errorf("billing: residency %d of video %d attribution %v != booked %v",
					j, vid, prevCost, booked)
			}
		}
		st.Lines = append(st.Lines, lines...)
	}
	sort.Slice(st.Lines, func(a, b int) bool {
		if st.Lines[a].Start != st.Lines[b].Start {
			return st.Lines[a].Start < st.Lines[b].Start
		}
		return st.Lines[a].User < st.Lines[b].User
	})
	return st, nil
}

// Write renders the statement as an aligned text invoice.
func (s *Statement) Write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-10s %-14s %-14s %s\n", "user", "video", "start", "network", "storage", "total")
	for _, l := range s.Lines {
		fmt.Fprintf(&b, "%-6d %-6d %-10s %-14s %-14s %s\n",
			l.User, l.Video, l.Start, l.Network, l.Storage, l.Total())
	}
	if s.Infrastructure != 0 {
		fmt.Fprintf(&b, "INFRA  pre-placed copies (operator-borne): %v\n", s.Infrastructure)
	}
	fmt.Fprintf(&b, "TOTAL  network %v + storage %v + infra %v = %v\n",
		s.Network, s.Storage, s.Infrastructure, s.Total())
	_, err := io.WriteString(w, b.String())
	return err
}
