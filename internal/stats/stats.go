// Package stats provides the small descriptive-statistics toolkit the
// experiment harness uses to aggregate sweep results into the series and
// tables the paper reports, plus the nearest-rank percentile summaries
// the load harnesses report latencies with.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is one (x, y) sample of a sweep series.
type Point struct {
	X float64
	Y float64
}

// Series is a named, ordered collection of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Ys returns the y values in order.
func (s *Series) Ys() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Y
	}
	return out
}

// SortByX orders the samples by x.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// Monotone reports whether the y values are non-decreasing (dir > 0) or
// non-increasing (dir < 0) within a relative tolerance tol.
func (s *Series) Monotone(dir int, tol float64) bool {
	for i := 1; i < len(s.Points); i++ {
		prev, cur := s.Points[i-1].Y, s.Points[i].Y
		slack := tol * math.Max(math.Abs(prev), math.Abs(cur))
		if dir > 0 && cur < prev-slack {
			return false
		}
		if dir < 0 && cur > prev+slack {
			return false
		}
	}
	return true
}

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Sum  float64
	Std  float64
}

// Summarize computes the summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g std=%.4g", s.N, s.Mean, s.Min, s.Max, s.Std)
}

// NearestRank returns the 0-based index of the p-th percentile of a
// sorted sample of size n under the nearest-rank definition:
// ceil(n·p/100) − 1, clamped to [0, n−1]. Note the −1: the naive
// n·p/100 indexes one rank too high (the p50 of 100 samples is the
// 50th sorted value, index 49, not the 51st).
func NearestRank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	i := int(math.Ceil(float64(n)*p/100)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Percentile returns the p-th percentile of xs, which must be sorted
// ascending, under the nearest-rank definition. An empty sample yields 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[NearestRank(len(sorted), p)]
}

// LatencySummary condenses round-trip duration samples the way the load
// harnesses report them. Percentiles are exact nearest-rank values over
// the full sorted sample set — no sketching.
type LatencySummary struct {
	N    int           `json:"n"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`
	Mean time.Duration `json:"mean_ns"`
}

// SummarizeLatency computes the summary of samples, sorting the slice in
// place. An empty sample yields zeros.
func SummarizeLatency(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	n := len(samples)
	return LatencySummary{
		N:    n,
		P50:  samples[NearestRank(n, 50)],
		P95:  samples[NearestRank(n, 95)],
		P99:  samples[NearestRank(n, 99)],
		Max:  samples[n-1],
		Mean: sum / time.Duration(n),
	}
}

// Percent returns 100·a/b, or 0 when b is 0.
func Percent(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
