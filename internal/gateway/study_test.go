package gateway_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// The placement policy study: all three policies drive the same seeded,
// regionally-skewed workload through identical 3-shard tiers and the
// shed (429) counts are compared.
//
// The collision source is epoch management itself. Each shard runs with
// two admission slots and no wait queue — one slot's worth of headroom
// for the scheduler, one for intake — and the gateway auto-closes a
// shard's epoch when its trigger fires, so for the length of a scheduler
// run an advance occupies one of the two slots. Locality pins each
// region's worker to its own shard: a shard's intake is then one
// sequential stream plus its own advance, which fits the two slots
// exactly, so locality never sheds. Least-loaded sees the in-flight
// advance in the live Outstanding counter and steers around it. Only
// round-robin keeps routing everyone into the advancing shard — a third
// request stacked onto (advance + in-flight submit) is shed with 429.
const studyShards = 3

func studyRig(t *testing.T) *experiment.Rig {
	t.Helper()
	// Sized so an epoch close is real work: a deep request stream makes
	// each advance hold an admission slot for a measurable scheduler run,
	// which is the window reservations collide with.
	// Locality 0.8 gives the regionally skewed demand the study needs:
	// each neighborhood's Zipf ranking is permuted per storage, so every
	// region hammers its own hot slice of the catalog.
	r, err := experiment.Build(experiment.Params{
		Storages: 6, UsersPerStorage: 4, Titles: 30,
		CapacityGB: 6, RequestsPerUser: 40, Seed: 11, Locality: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

type policyRun struct {
	stats gateway.StatsResponse
	adv   gateway.AdvanceResponse
}

func TestPlacementPolicyStudy(t *testing.T) {
	// The harness is in-process, so placement, workers, and shard
	// schedulers share the runtime. On a single-CPU host a CPU-bound
	// epoch close below Go's ~10ms async-preemption threshold runs to
	// completion before any worker goroutine is scheduled again — no
	// request can ever arrive while the slot is held, and the tier looks
	// contention-free no matter the policy. Widening GOMAXPROCS lets the
	// kernel timeslice the advance against the workers, restoring the
	// overlap a real multi-host deployment has.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rig := studyRig(t)
	regions := gateway.UserRegions(rig.Topo, studyShards)

	reqs := append(workload.Set(nil), rig.Requests...)
	lo, hi := reqs.Window()

	// Partition into per-region worker streams, sliced into arrival waves.
	// Workers barrier between waves, so no straggler is ever more than one
	// wave behind — which is why AdvanceLag = one wave width guarantees
	// zero late arrivals.
	const waves = 6
	width := hi.Sub(lo)/waves + 1
	byWave := make([][][]workload.Request, studyShards)
	for reg := range byWave {
		byWave[reg] = make([][]workload.Request, waves)
	}
	for _, q := range reqs {
		w := int(q.Start.Sub(lo) / width)
		if w >= waves {
			w = waves - 1
		}
		reg := regions[q.User]
		byWave[reg][w] = append(byWave[reg][w], q)
	}
	for reg := range byWave {
		for w := range byWave[reg] {
			workload.SortChronological(byWave[reg][w])
		}
	}

	shed := make(map[string]uint64)
	for _, policy := range []string{"round-robin", "least-loaded", "locality"} {
		run := runPolicy(t, rig, policy, byWave, width, hi)
		shed[policy] = run.stats.Shed
		routed := ""
		advances, advMS := uint64(0), int64(0)
		for _, row := range run.stats.Shards {
			routed += fmt.Sprintf(" %s=%d", row.ID, row.Routed)
			advances += row.Advances
			advMS += row.AdvanceMS
		}
		avg := float64(0)
		if advances > 0 {
			avg = float64(advMS) / float64(advances)
		}
		t.Logf("%-12s shed=%-4d routed:%s  advances=%d avg_advance=%.1fms final_epoch_lag=%dms",
			policy, run.stats.Shed, routed, advances, avg, run.adv.LagMS)
	}

	if shed["round-robin"] == 0 {
		t.Fatal("round-robin shed nothing — the study applied no overload pressure, so the comparison is vacuous")
	}
	if shed["least-loaded"] >= shed["round-robin"] {
		t.Errorf("least-loaded shed %d >= round-robin %d; live-counter routing should avoid advancing shards",
			shed["least-loaded"], shed["round-robin"])
	}
	if shed["locality"] >= shed["round-robin"] {
		t.Errorf("locality shed %d >= round-robin %d; region pinning should avoid cross-worker collisions",
			shed["locality"], shed["round-robin"])
	}
}

// runPolicy drives the skewed workload through a fresh 3-shard tier
// under one placement policy and returns the gateway's final view.
func runPolicy(t *testing.T, rig *experiment.Rig, policyName string, byWave [][][]workload.Request, width simtime.Duration, end simtime.Time) policyRun {
	t.Helper()
	var shards []gateway.ShardConfig
	for i := 0; i < studyShards; i++ {
		url, _, _ := startShard(t, rig, server.Options{
			MaxInFlight: 2, MaxQueue: -1,
			Horizon: horizon.Config{EpochRequests: 8},
		})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
	}
	policy, err := gateway.ParsePlacement(policyName)
	if err != nil {
		t.Fatal(err)
	}
	_, base := startGateway(t, gateway.Config{
		Shards: shards,
		Policy: policy,
		Topo:   rig.Topo,
		// The gateway absorbs shard 429s: it spins against the chosen shard
		// on a sub-millisecond cadence until the advance releases the slot.
		// Every rejected attempt counts in the shard's shed total — the
		// study's measure of how often a policy routed into a busy shard.
		Retry:       retryhttp.Options{MaxAttempts: 500, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond},
		AutoAdvance: true,
		AdvanceLag:  width,
	})

	workerRetry := retryhttp.Options{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	ctx := context.Background()
	for w := range byWave[0] {
		var wg sync.WaitGroup
		errc := make(chan error, studyShards)
		for reg := 0; reg < studyShards; reg++ {
			batch := byWave[reg][w]
			if len(batch) == 0 {
				continue
			}
			wg.Add(1)
			go func(batch []workload.Request) {
				defer wg.Done()
				for _, q := range batch {
					at := q.Start
					err := retryhttp.PostJSON(ctx, workerRetry, base+"/v1/reservations",
						server.ReservationRequest{User: q.User, Video: q.Video, Start: q.Start, At: &at}, nil)
					if err != nil {
						select {
						case errc <- fmt.Errorf("submit (user %d, %v): %w", q.User, q.Start, err):
						default:
						}
						return
					}
				}
			}(batch)
		}
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatalf("%s wave %d: %v", policyName, w, err)
		default:
		}
	}

	// Close the tail: one broadcast advance past every start commits all
	// remaining pending reservations on every shard.
	var run policyRun
	if err := retryhttp.PostJSON(ctx, workerRetry, base+"/v1/advance",
		server.AdvanceRequest{To: end.Add(simtime.Hour)}, &run.adv); err != nil {
		t.Fatalf("%s: final advance: %v", policyName, err)
	}
	var plan gateway.PlanResponse
	if err := retryhttp.GetJSON(ctx, workerRetry, base+"/v1/plan", &plan); err != nil {
		t.Fatalf("%s: plan: %v", policyName, err)
	}
	if plan.Pending != 0 {
		t.Fatalf("%s: %d reservations still pending after the final advance", policyName, plan.Pending)
	}
	if err := retryhttp.GetJSON(ctx, workerRetry, base+"/v1/stats", &run.stats); err != nil {
		t.Fatalf("%s: stats: %v", policyName, err)
	}
	return run
}
