// Package vsp is a Go implementation of the distributed Video-On-Reservation
// service paradigm of Won & Srivastava, "Distributed Service Paradigm for
// Remote Video Retrieval Request" (HPDC 1997).
//
// The library models a video warehouse, intermediate storages and a priced
// network; maps service schedules to a monetary cost (storage byte·seconds
// plus network bytes, Eqs. 1–4 of the paper); and computes low-cost
// schedules with the paper's two-phase heuristic: greedy per-file
// scheduling followed by heat-ranked storage-overflow resolution. An
// event-driven simulator executes schedules and independently verifies
// feasibility and cost. See the examples directory for end-to-end usage.
//
// The root package is a façade: it re-exports the library's types and wires
// the common flows together. The heavy lifting lives in internal packages
// (topology, pricing, routing, media, workload, schedule, cost, occupancy,
// ivs, sorp, scheduler, vodsim, bandwidth, experiment).
package vsp

import (
	"github.com/vodsim/vsp/internal/analysis"
	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/bandwidth"
	"github.com/vodsim/vsp/internal/billing"
	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/loadgen"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/online"
	"github.com/vodsim/vsp/internal/placement"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/repair"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// Core model types.
type (
	// Topology is the service network: one warehouse, intermediate
	// storages, links and attached users.
	Topology = topology.Topology
	// TopologyBuilder assembles a Topology node by node.
	TopologyBuilder = topology.Builder
	// TopologySpec is the JSON-serializable form of a Topology.
	TopologySpec = topology.Spec
	// GenConfig parameterizes the topology generators.
	GenConfig = topology.GenConfig
	// NodeID identifies a storage node.
	NodeID = topology.NodeID
	// UserID identifies a subscriber.
	UserID = topology.UserID

	// Catalog is the warehouse's title list.
	Catalog = media.Catalog
	// Video is one title.
	Video = media.Video
	// VideoID identifies a title.
	VideoID = media.VideoID
	// CatalogConfig parameterizes synthetic catalog generation.
	CatalogConfig = media.GenConfig

	// Request is one reservation (user, video, start time).
	Request = workload.Request
	// RequestSet is a reservation batch for one scheduling cycle.
	RequestSet = workload.Set
	// WorkloadConfig parameterizes request-batch generation.
	WorkloadConfig = workload.Config
	// Arrival selects the request start-time process.
	Arrival = workload.Arrival

	// WorkloadPattern composes structured demand — diurnal cycle,
	// premiere flash crowds, rate windows, rank drift, catalog churn and
	// regional cohorts — into a chronological streaming trace
	// (DESIGN.md §14).
	WorkloadPattern = workload.Pattern
	// Diurnal shapes the daily demand cycle of a WorkloadPattern.
	Diurnal = workload.Diurnal
	// FlashCrowd is one premiere rate bump of a WorkloadPattern.
	FlashCrowd = workload.Flash
	// RateWindow scales a WorkloadPattern's rate over an interval.
	RateWindow = workload.Window
	// TraceWriter streams reservation requests out (CSV or JSONL).
	TraceWriter = workload.TraceWriter
	// TraceReader streams reservation requests in, validating each.
	TraceReader = workload.TraceReader

	// Schedule is a complete service schedule (deliveries + residencies).
	Schedule = schedule.Schedule
	// FileSchedule is the schedule of a single title.
	FileSchedule = schedule.FileSchedule
	// Delivery is one network stream record.
	Delivery = schedule.Delivery
	// Residency is one cached-copy record.
	Residency = schedule.Residency

	// Outcome reports a scheduling run (costs, overflows, victims).
	Outcome = scheduler.Outcome
	// SchedulerConfig selects the scheduler's policies.
	SchedulerConfig = scheduler.Config
	// HeatMetric selects the overflow victim-ranking criterion.
	HeatMetric = sorp.HeatMetric
	// CachePolicy selects where streams open tentative caches.
	CachePolicy = ivs.Policy

	// Overflow is a storage over-commit situation.
	Overflow = occupancy.Overflow
	// SimReport is the event simulator's execution report.
	SimReport = vodsim.Report
	// LinkCapacities caps link bandwidth for the feasibility extension.
	LinkCapacities = bandwidth.Capacities
	// BandwidthResult reports a bandwidth-resolution pass.
	BandwidthResult = bandwidth.Result
	// NodeCapacities caps storage I/O bandwidth.
	NodeCapacities = bandwidth.NodeCaps
	// NodeBandwidthResult reports a storage-I/O resolution pass.
	NodeBandwidthResult = bandwidth.NodeResult
	// AnalysisReport holds cache-effectiveness statistics of a schedule.
	AnalysisReport = analysis.Report
	// OnlineResult reports a run of the reactive online baseline.
	OnlineResult = online.Result
	// BillingStatement attributes a schedule's cost to its reservations.
	BillingStatement = billing.Statement
	// BillingLine is one reservation's invoice.
	BillingLine = billing.Line
	// PlacementPlan is a strategic-replication plan of standing copies.
	PlacementPlan = placement.Plan
	// PlacementConfig parameterizes the placement planner.
	PlacementConfig = placement.Config
	// AuditReport collects the findings of System.Audit.
	AuditReport = audit.Report

	// Horizon is a rolling-horizon intake service: it accepts a stream of
	// reservations, groups them into epochs, and incrementally extends a
	// committed schedule at each epoch boundary. Open one with
	// System.OpenHorizon.
	Horizon = horizon.Service
	// HorizonConfig parameterizes a Horizon (caching policy, heat metric,
	// epoch triggers, worker-pool width).
	HorizonConfig = horizon.Config
	// HorizonAck acknowledges one accepted reservation.
	HorizonAck = horizon.Ack
	// HorizonTrigger names the condition that closed an epoch.
	HorizonTrigger = horizon.Trigger
	// EpochResult reports one committed epoch of a Horizon.
	EpochResult = horizon.EpochResult
	// HorizonRecoveryStats reports what System.OpenDurableHorizon found
	// on disk: whether state was recovered, from snapshot or journal
	// replay, and whether a torn final record was truncated.
	HorizonRecoveryStats = horizon.RecoveryStats
	// FsyncPolicy selects how eagerly the durable horizon's write-ahead
	// log is synced to stable storage (see HorizonConfig.Fsync).
	FsyncPolicy = wal.FsyncPolicy

	// FaultScenario is a set of timed infrastructure failures to inject
	// into a schedule execution.
	FaultScenario = faults.Scenario
	// Fault is one timed failure window (node outage, link down, or
	// warehouse brown-out).
	Fault = faults.Fault
	// FaultKind enumerates the failure classes.
	FaultKind = faults.Kind
	// FaultGenConfig parameterizes random fault-scenario generation.
	FaultGenConfig = faults.GenConfig
	// RepairPolicy selects the failure-aware repair strategy.
	RepairPolicy = repair.Policy
	// RepairOptions configures System.Repair.
	RepairOptions = repair.Options
	// RepairResult reports a repair run: the repaired schedule, what was
	// saved, what was lost, and the cost delta vs. the fault-free Ψ(S).
	RepairResult = repair.Result

	// Money is an amount in the charging system's currency.
	Money = units.Money
	// Bytes is a data size.
	Bytes = units.Bytes
	// BytesPerSec is a bandwidth.
	BytesPerSec = units.BytesPerSec
	// Time is an instant in the scheduling cycle (seconds).
	Time = simtime.Time
	// Duration is a span of simulated time (seconds).
	Duration = simtime.Duration

	// SRate is a storage charging rate in $/(byte·second).
	SRate = pricing.SRate
	// NRate is a network charging rate in $/byte.
	NRate = pricing.NRate

	// ExperimentParams is one configuration of the paper's evaluation.
	ExperimentParams = experiment.Params
	// ExperimentResult is the outcome of one configuration.
	ExperimentResult = experiment.Result
	// Figure is a regenerated paper figure.
	Figure = experiment.Figure

	// Gateway is the sharded-intake routing tier: one HTTP front end
	// spreading reservation traffic across several horizon shards while
	// presenting the single-server surface (see cmd/vspgateway).
	Gateway = gateway.Gateway
	// GatewayConfig parameterizes a Gateway (shards, placement policy,
	// stats polling, auto-advance).
	GatewayConfig = gateway.Config
	// GatewayShard declares one shard: a primary base URL and an
	// optional warm standby the gateway may promote on primary failure.
	GatewayShard = gateway.ShardConfig
	// Placement decides which shard serves a reservation.
	Placement = gateway.Placement
)

// Heat metrics (paper Eqs. 8–11).
const (
	Period        = sorp.Period
	PeriodPerCost = sorp.PeriodPerCost
	Space         = sorp.Space
	SpacePerCost  = sorp.SpacePerCost
)

// Caching policies.
const (
	CacheOnRoute       = ivs.CacheOnRoute
	CacheAtDestination = ivs.CacheAtDestination
	NoCaching          = ivs.NoCaching
)

// Fault kinds.
const (
	NodeOutage = faults.NodeOutage
	LinkDown   = faults.LinkDown
	VWBrownout = faults.VWBrownout
)

// Repair policies.
const (
	RepairReroute  = repair.Reroute
	RepairVWDirect = repair.VWDirect
)

// Arrival processes.
const (
	UniformArrival     = workload.Uniform
	EveningPeakArrival = workload.EveningPeak
	SlottedArrival     = workload.Slotted
)

// Epoch triggers reported by Horizon.Submit.
const (
	TriggerRequests = horizon.TriggerRequests
	TriggerBytes    = horizon.TriggerBytes
	TriggerTick     = horizon.TriggerTick
)

// Journal fsync policies for System.OpenDurableHorizon. FsyncAlways never
// loses an acknowledged reservation; FsyncOnInterval bounds loss to the
// configured sync lag; FsyncNever leaves syncing to the OS.
const (
	FsyncAlways     = wal.FsyncAlways
	FsyncOnInterval = wal.FsyncInterval
	FsyncNever      = wal.FsyncNever
)

// ErrLateArrival is returned by Horizon.Submit for a reservation whose
// start time already lies inside the frozen window.
var ErrLateArrival = horizon.ErrLateArrival

// Convenient size, time and rate constructors.
var (
	// GB constructs sizes from gigabytes (fractional allowed).
	GB = units.GBf
	// Mbps constructs bandwidths from megabits per second.
	Mbps = units.Mbps
	// PerGB converts a quoted $/GB network rate to the internal unit.
	PerGB = pricing.PerGB
	// PerGBSec converts a quoted $/(GB·s) storage rate.
	PerGBSec = pricing.PerGBSec
)

// Time units.
const (
	Second = simtime.Second
	Minute = simtime.Minute
	Hour   = simtime.Hour
	Day    = simtime.Day
)

// PerGBHour converts a quoted $/(GB·hour) storage rate — the calibration
// the paper's figures imply — to the internal $/(byte·s) unit.
func PerGBHour(v float64) SRate { return SRate(v / (1e9 * 3600)) }

// NewTopology returns a builder for a custom topology.
func NewTopology() *TopologyBuilder { return topology.NewBuilder() }

// Topology generators.
var (
	StarTopology   = topology.Star
	ChainTopology  = topology.Chain
	TreeTopology   = topology.Tree
	RingTopology   = topology.Ring
	MetroTopology  = topology.Metro
	PaperTopology  = topology.Paper
	RandomTopology = topology.Random
	DecodeTopology = topology.Decode
)

// Catalog constructors.
var (
	UniformCatalog  = media.Uniform
	GenerateCatalog = media.Generate
	NewCatalog      = media.NewCatalog
)

// GenerateWorkload draws a reservation batch for the topology's users.
var GenerateWorkload = workload.Generate

// Reservation trace I/O (CSV: user,video,start_seconds).
var (
	ReadTrace  = workload.ReadCSV
	WriteTrace = workload.WriteCSV
)

// Streaming trace pipeline: pattern generation and the record-at-a-time
// writer/reader pair behind it (CSV and JSONL), plus the closed-loop
// HTTP load harness that replays traces against vspserve/vspgateway
// (see cmd/vspgen -kind trace and cmd/vspload).
var (
	GeneratePatternWorkload = workload.GeneratePattern
	NewPatternReader        = workload.NewPatternReader
	NewCSVTraceWriter       = workload.NewCSVTraceWriter
	NewCSVTraceReader       = workload.NewCSVTraceReader
	NewJSONLTraceWriter     = workload.NewJSONLTraceWriter
	NewJSONLTraceReader     = workload.NewJSONLTraceReader
	ReadAllTrace            = workload.ReadAllTrace
	RunLoad                 = loadgen.Run
)

// Load-harness configuration and result (internal/loadgen).
type (
	LoadConfig = loadgen.Config
	LoadResult = loadgen.Result
)

// Sharded intake tier: the gateway constructor, the placement policies
// it routes by, and the cross-shard plan merge (DESIGN.md §13).
var (
	NewGateway           = gateway.New
	ParsePlacement       = gateway.ParsePlacement
	RoundRobinPlacement  = gateway.RoundRobin
	LeastLoadedPlacement = gateway.LeastLoaded
	LocalityPlacement    = gateway.Locality
	HashPlacement        = gateway.Hash
	MergeSchedules       = gateway.MergeSchedules
)

// Experiment entry points (see EXPERIMENTS.md).
var (
	RunExperiment  = experiment.RunOne
	RunExperiments = experiment.RunMany
	Figure5        = experiment.Fig5
	Figure6        = experiment.Fig6
	Figure7        = experiment.Fig7
	Figure8        = experiment.Fig8
	Figure9        = experiment.Fig9
	FigureOnline   = experiment.FigOnline
	RunTable5      = experiment.RunTable5
)
