package cost

import (
	"testing"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// TestFlatEndToEndPricing exercises the paper's end-to-end charging basis
// (§2.2.2): the operator quotes one flat rate per stream regardless of
// route length. Under flat pricing a remote cache saves nothing on the
// network (every remote stream costs the same), so only a LOCAL copy
// (zero-hop service) reduces network cost.
func TestFlatEndToEndPricing(t *testing.T) {
	m, topo := fig2(t)
	book := m.Book()
	book.SetMode(pricing.EndToEnd)
	flat := pricing.PerGB(100)
	for _, a := range topo.Nodes() {
		for _, b := range topo.Nodes() {
			if a.ID != b.ID {
				book.SetEndToEnd(a.ID, b.ID, flat)
			}
		}
	}
	vw := topo.Warehouse()
	is1, _ := topo.Lookup("IS1")
	is2, _ := topo.Lookup("IS2")

	delivery := func(src, dst topology.NodeID) schedule.Delivery {
		r, err := m.Table().Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		return schedule.Delivery{Video: 0, User: 0, Start: 0, Route: r, SourceResidency: schedule.NoResidency}
	}

	long := m.DeliveryCost(delivery(vw, is2))   // 2 hops
	short := m.DeliveryCost(delivery(is1, is2)) // 1 hop
	if long != short {
		t.Errorf("flat pricing must ignore distance: %v vs %v", long, short)
	}
	want := units.Money(4.05e9 * float64(flat))
	if !long.ApproxEqual(want, 1e-6) {
		t.Errorf("flat stream cost = %v, want %v", long, want)
	}
	// Local (zero-hop) service is free: src == dst has no override and the
	// cheapest self-route rate is zero.
	if local := m.DeliveryCost(delivery(is2, is2)); local != 0 {
		t.Errorf("local service cost = %v, want 0", local)
	}
	// Back to per-hop: distance matters again.
	book.SetMode(pricing.PerHop)
	if m.DeliveryCost(delivery(vw, is2)) == m.DeliveryCost(delivery(is1, is2)) {
		t.Error("per-hop pricing must distinguish distance")
	}
}
