package horizon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"github.com/vodsim/vsp/internal/wal"
)

// Replication: a warm standby reconstructs the primary's state by
// applying the primary's journal records, in sequence order, through the
// same deterministic replay path Recover uses. The applier is idempotent
// by sequence number (a duplicated delivery is skipped) and refuses
// gaps, so shipping may resume from any acknowledged sequence and may
// deliver a record any number of times without diverging the state.
//
// A durable follower re-journals every applied record to its own data
// directory. Because Submit and Advance each journal exactly one record
// and the sequence counter starts at 1, the follower's own journal
// assigns the same sequence numbers the primary did — a follower restart
// therefore recovers its applied position (AppliedSeq) with plain
// Recover and resumes shipping from there instead of from zero.

// ErrNotDurable is returned by TailAfter on an in-memory service: only a
// journaled primary has a WAL to ship.
var ErrNotDurable = errors.New("horizon: service has no journal (in-memory)")

// ReplicationTail is one shipper round's worth of journal, assembled by
// the primary. Either Records carries the journal records directly after
// the requested sequence, or — when compaction has already folded those
// records into a snapshot — Snapshot carries the full state at
// SnapshotSeq and the follower installs it instead of replaying.
type ReplicationTail struct {
	// Records are journal records in sequence order, all with Seq greater
	// than the requested resume point.
	Records []wal.Record
	// Snapshot, when non-nil, is the full-state payload at SnapshotSeq
	// (the same persistentState layout Recover loads from disk).
	Snapshot    []byte
	SnapshotSeq uint64
	// LastSeq is the primary's latest journaled sequence, letting the
	// follower compute its replication lag.
	LastSeq uint64
}

// AppliedSeq returns the latest journal sequence this service has
// durably applied: on a primary, the last sequence it journaled; on a
// follower, the last replicated record it applied. Shipping resumes
// from the next sequence.
func (s *Service) AppliedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// TailAfter assembles the replication records following the given
// sequence, reading the journal back from disk under the service lock
// (appends are serialized under the same lock, so the read observes
// whole records only). maxRecords caps the batch; 0 means no cap. When
// the journal has been compacted past after+1 the full live state is
// returned as a snapshot instead — byte-identical to what a crash
// recovery at this instant would reload.
func (s *Service) TailAfter(after uint64, maxRecords int) (*ReplicationTail, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil, ErrNotDurable
	}
	tail := &ReplicationTail{LastSeq: s.lastSeq}
	if after >= s.lastSeq {
		return tail, nil // follower is caught up
	}
	recs, _, err := wal.ReadLogAfter(filepath.Join(s.dir, LogName), after)
	if err != nil {
		return nil, fmt.Errorf("horizon: read journal tail: %w", err)
	}
	if len(recs) == 0 || recs[0].Seq != after+1 {
		// The records right after the resume point were compacted into a
		// snapshot. Ship the live state instead of the unreachable diff.
		blob, err := json.Marshal(s.stateLocked())
		if err != nil {
			return nil, fmt.Errorf("horizon: snapshot state: %w", err)
		}
		tail.Snapshot = blob
		tail.SnapshotSeq = s.lastSeq
		return tail, nil
	}
	if maxRecords > 0 && len(recs) > maxRecords {
		recs = recs[:maxRecords]
	}
	tail.Records = recs
	return tail, nil
}

// ApplyReplicated applies one shipped journal record. It returns
// (false, nil) for a record at or before the applied sequence — a
// duplicated delivery, skipped idempotently — and an error for a gap:
// records must arrive in sequence order. On a durable follower the
// record is re-journaled by the apply itself (Submit/Advance journal
// exactly as they do on the primary), and the assigned sequence is
// verified to match the shipped one so a divergent journal is caught
// immediately rather than at the next failover.
func (s *Service) ApplyReplicated(ctx context.Context, rec wal.Record) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec.Seq <= s.lastSeq {
		return false, nil // duplicate delivery; already applied
	}
	if rec.Seq != s.lastSeq+1 {
		return false, fmt.Errorf("horizon: replication gap: record seq %d after applied seq %d", rec.Seq, s.lastSeq)
	}
	if op, err := s.applyPayloadLocked(ctx, rec.Payload); err != nil {
		return false, fmt.Errorf("horizon: replicated record seq %d (%s): %w", rec.Seq, op.Op, err)
	}
	if s.journal != nil {
		if s.lastSeq != rec.Seq {
			return false, fmt.Errorf("horizon: journal diverged: applied record seq %d journaled as %d", rec.Seq, s.lastSeq)
		}
	} else {
		s.lastSeq = rec.Seq
	}
	return true, nil
}

// InstallSnapshot replaces the service state with a shipped full-state
// snapshot — the path a fresh or far-behind follower takes when the
// primary has compacted the records it would otherwise replay. The
// state is audited before it is adopted (exactly like Recover's
// re-verification), and on a durable follower it is persisted as the
// local snapshot with the journal reset, so a restart recovers to the
// same sequence. A snapshot that does not advance past the applied
// sequence is rejected.
func (s *Service) InstallSnapshot(seq uint64, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq <= s.lastSeq {
		return fmt.Errorf("horizon: snapshot seq %d does not advance past applied seq %d", seq, s.lastSeq)
	}
	// Stage into a scratch service first: an undecodable or audit-failing
	// snapshot must leave the live state untouched.
	scratch := New(s.m, s.cfg)
	if err := scratch.loadState(state); err != nil {
		return fmt.Errorf("horizon: snapshot state: %w", err)
	}
	if err := scratch.verifyCommittedLocked(); err != nil {
		return fmt.Errorf("horizon: snapshot state fails audit: %w", err)
	}
	if s.journal != nil {
		// Persist before adopting: if the snapshot cannot be made durable
		// the install fails whole, so a restart never recovers a journal
		// that contradicts the in-memory state.
		if err := wal.WriteSnapshot(s.dir, seq, state); err != nil {
			s.recovery.SnapshotFailures++
			return fmt.Errorf("horizon: persist installed snapshot: %w", err)
		}
		if err := s.journal.Reset(); err != nil {
			return fmt.Errorf("horizon: reset journal after snapshot install: %w", err)
		}
		s.journal.EnsureSeqAbove(seq)
	}
	if err := s.loadState(state); err != nil {
		return fmt.Errorf("horizon: snapshot state: %w", err)
	}
	s.lastSeq = seq
	s.recovery.SnapshotLoaded = true
	return nil
}
