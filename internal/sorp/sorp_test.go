package sorp

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// tightRig builds a scenario engineered to overflow: a chain VW - IS1 with
// IS1 sized for ONE 2.5 GB copy, two distinct titles requested by two users
// each at overlapping times. Phase 1 caches both titles at IS1 (it assumes
// unbounded capacity), which over-commits IS1.
func tightRig(t *testing.T) (*cost.Model, *topology.Topology, workload.Set) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 3*units.GB) // fits one 2.5 GB copy, not two
	b.Connect(vw, is1)
	b.AttachUsers(is1, 4)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, 0, testutil.CentsPerMbit(0.2))
	if err := book.SetSRate(is1, testutil.PerGBHour(1)); err != nil {
		t.Fatal(err)
	}
	table := routing.NewTable(book)
	m := cost.NewModel(book, table, cat)

	us := topo.UsersAt(is1)
	h := simtime.Time(simtime.Hour)
	reqs := workload.Set{
		{User: us[0], Video: 0, Start: 0},
		{User: us[1], Video: 0, Start: 4 * h},
		{User: us[2], Video: 1, Start: 1 * h},
		{User: us[3], Video: 1, Start: 5 * h},
	}
	return m, topo, reqs
}

func phase1(t *testing.T, m *cost.Model, reqs workload.Set) *schedule.Schedule {
	t.Helper()
	s := schedule.New()
	for vid, rs := range reqs.ByVideo() {
		fs, err := ivs.ScheduleFile(m, vid, rs, ivs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Put(fs)
	}
	return s
}

func TestPhase1OverCommitsTightStorage(t *testing.T) {
	m, topo, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	ledger := occupancy.FromSchedule(topo, m.Catalog(), s)
	ovs := ledger.AllOverflows()
	if len(ovs) == 0 {
		t.Fatal("expected phase 1 to overflow the 3 GB storage with two cached titles")
	}
}

func TestResolveEliminatesOverflows(t *testing.T) {
	m, topo, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	for _, metric := range []HeatMetric{Period, PeriodPerCost, Space, SpacePerCost} {
		t.Run(metric.String(), func(t *testing.T) {
			res, err := Resolve(m, s, reqs.ByVideo(), Options{Metric: metric})
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			ledger := occupancy.FromSchedule(topo, m.Catalog(), res.Schedule)
			if ovs := ledger.AllOverflows(); len(ovs) != 0 {
				t.Fatalf("overflows remain: %v", ovs)
			}
			if err := res.Schedule.Validate(topo, m.Catalog(), reqs); err != nil {
				t.Fatalf("resolved schedule invalid: %v", err)
			}
			if res.InitialOverflows == 0 {
				t.Error("InitialOverflows = 0, expected > 0")
			}
			if len(res.Victims) == 0 {
				t.Error("no victims recorded")
			}
			if res.CostAfter < res.CostBefore {
				// Possible in principle (greedy phase 1 is not optimal)
				// but on this rig rescheduling must cost extra.
				t.Errorf("cost decreased: %v -> %v", res.CostBefore, res.CostAfter)
			}
			if res.Delta() != res.CostAfter-res.CostBefore {
				t.Error("Delta inconsistent")
			}
		})
	}
}

func TestResolveInputUnmodified(t *testing.T) {
	m, _, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	before := m.ScheduleCost(s)
	nres := s.NumResidencies()
	if _, err := Resolve(m, s, reqs.ByVideo(), Options{}); err != nil {
		t.Fatal(err)
	}
	if m.ScheduleCost(s) != before || s.NumResidencies() != nres {
		t.Error("Resolve modified its input schedule")
	}
}

func TestResolveNoopWithoutOverflow(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	s := phase1(t, f.Model, f.Requests)
	res, err := Resolve(f.Model, s, f.Requests.ByVideo(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialOverflows != 0 || len(res.Victims) != 0 {
		t.Errorf("unexpected resolution activity: %+v", res)
	}
	if res.CostAfter != res.CostBefore {
		t.Error("cost changed without overflows")
	}
}

func TestResolveRequestMismatch(t *testing.T) {
	m, _, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	bad := reqs.ByVideo()
	bad[0] = bad[0][:1] // drop a request for video 0
	if _, err := Resolve(m, s, bad, Options{}); err == nil {
		t.Error("expected error for request/schedule mismatch")
	}
}

func TestResolveMaxIterations(t *testing.T) {
	m, _, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	// One iteration is enough on this rig; but force an absurdly small cap
	// of... 1 should still succeed or fail gracefully. Use a run with cap 1
	// and accept either outcome, then cap 100 must succeed.
	if _, err := Resolve(m, s, reqs.ByVideo(), Options{MaxIterations: 100}); err != nil {
		t.Fatalf("Resolve with generous cap: %v", err)
	}
}

func TestVictimAvoidsBannedWindow(t *testing.T) {
	m, topo, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	res, err := Resolve(m, s, reqs.ByVideo(), Options{Metric: SpacePerCost})
	if err != nil {
		t.Fatal(err)
	}
	// The victim's new schedule must not occupy the banned window.
	for _, v := range res.Victims {
		fs := res.Schedule.File(v.Video)
		playback := m.Catalog().Video(v.Video).Playback
		for _, c := range fs.Residencies {
			bn := occupancy.Banned{Node: v.Node, Interval: v.Window}
			if bn.Violates(c, playback) {
				t.Errorf("victim %d re-cached into banned window %v at node %d", v.Video, v.Window, v.Node)
			}
		}
	}
	if topo.NumNodes() == 0 {
		t.Fatal("sanity")
	}
}

func TestComputeHeatMetrics(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	m := f.Model
	P := m.Catalog().Video(0).Playback
	ci := schedule.Residency{
		Video: 0, Loc: f.IS1, Src: f.VW,
		Load: 0, LastService: simtime.Time(2 * P),
	}
	of := occupancy.Overflow{
		Node:     f.IS1,
		Interval: simtime.NewInterval(simtime.Time(P), simtime.Time(3*P)),
	}
	// Improved window: [max(P, 0), min(3P, 2P+P)] = [P, 3P], X = 2P.
	x := computeHeat(m, ci, of, units.Money(10), Period)
	if math.Abs(x-2*P.Seconds()) > 1e-9 {
		t.Errorf("Period heat = %g, want %g", x, 2*P.Seconds())
	}
	x2 := computeHeat(m, ci, of, units.Money(10), PeriodPerCost)
	if math.Abs(x2-x/10) > 1e-9 {
		t.Errorf("PeriodPerCost heat = %g, want %g", x2, x/10)
	}
	s3 := computeHeat(m, ci, of, units.Money(10), Space)
	// Space over [P, 3P]: plateau [P, 2P] full size + decay [2P, 3P] half:
	// size·P + size·P/2.
	size := m.Catalog().Video(0).Size.Float()
	want := size*P.Seconds() + size*P.Seconds()/2
	if math.Abs(s3-want) > 1 {
		t.Errorf("Space heat = %g, want %g", s3, want)
	}
	s4 := computeHeat(m, ci, of, units.Money(10), SpacePerCost)
	if math.Abs(s4-s3/10) > 1e-6 {
		t.Errorf("SpacePerCost heat = %g", s4)
	}
	// Non-positive overhead => infinite heat for per-cost metrics.
	if !math.IsInf(computeHeat(m, ci, of, 0, SpacePerCost), 1) {
		t.Error("zero overhead must be infinitely hot")
	}
	if !math.IsInf(computeHeat(m, ci, of, units.Money(-5), PeriodPerCost), 1) {
		t.Error("negative overhead must be infinitely hot")
	}
	// Disjoint overflow window: zero heat.
	far := occupancy.Overflow{Node: f.IS1, Interval: simtime.NewInterval(simtime.Time(10*P), simtime.Time(11*P))}
	if h := computeHeat(m, ci, far, units.Money(10), Period); h != 0 {
		t.Errorf("disjoint heat = %g, want 0", h)
	}
}

// TestComputeHeatZeroImprovementNotInfinite is the regression test for the
// free-but-useless candidate bug: a residency whose improved window is
// disjoint from the overflow (X = 0, ΔS = 0) combined with a non-positive
// overhead used to hit the 0/overhead branch of the per-cost metrics and
// come back +Inf — outranking every genuine victim while shrinking nothing.
// Zero improvement must clamp heat to 0 for every metric and any overhead.
func TestComputeHeatZeroImprovementNotInfinite(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	m := f.Model
	P := m.Catalog().Video(0).Playback
	ci := schedule.Residency{
		Video: 0, Loc: f.IS1, Src: f.VW,
		Load: 0, LastService: simtime.Time(2 * P),
	}
	// Overflow window entirely after the residency's presence: improvement 0.
	far := occupancy.Overflow{
		Node:     f.IS1,
		Interval: simtime.NewInterval(simtime.Time(10*P), simtime.Time(11*P)),
	}
	for _, metric := range []HeatMetric{Period, PeriodPerCost, Space, SpacePerCost} {
		for _, overhead := range []units.Money{-5, 0, 10} {
			h := computeHeat(m, ci, far, overhead, metric)
			if h != 0 {
				t.Errorf("%v heat with overhead %v = %g, want 0 (zero improvement)",
					metric, overhead, h)
			}
		}
	}
}

// TestIterationBoundTracksLiveSchedule is the regression test for the
// frozen-bound bug: the default safety valve used to be computed once from
// the INPUT schedule's residency count, but rescheduling a victim may grow
// residencies (the rejective greedy spreads copies across storages), so a
// legitimately convergent run could trip the stale bound. The default must
// follow the live schedule and the request total.
func TestIterationBoundTracksLiveSchedule(t *testing.T) {
	m, _, reqs := tightRig(t)
	s := phase1(t, m, reqs)
	nreq := len(reqs)

	// An explicit cap always wins, regardless of schedule size.
	if got := iterationBound(7, s, nreq); got != 7 {
		t.Errorf("configured bound = %d, want 7", got)
	}
	before := iterationBound(0, s, nreq)
	if want := 10 * (s.NumResidencies() + nreq + 1); before != want {
		t.Errorf("default bound = %d, want %d", before, want)
	}

	// Grow the live schedule the way a reschedule does and the default
	// bound must grow with it.
	grown := s.Clone()
	fs := grown.File(0)
	fs.Residencies = append(fs.Residencies, schedule.Residency{
		Video: 0, Loc: fs.Residencies[0].Loc, Src: fs.Residencies[0].Src,
		Load: simtime.Time(20 * simtime.Hour), LastService: simtime.Time(21 * simtime.Hour),
	})
	after := iterationBound(0, grown, nreq)
	if after <= before {
		t.Errorf("default bound did not track live schedule: %d -> %d", before, after)
	}
}

// TestResolveDefaultBoundSurvivesResidencyGrowth runs resolution with the
// default (unset) MaxIterations on rigs tight enough that victims get
// re-spread into more residencies than phase 1 produced; the run must
// converge, not trip the safety valve.
func TestResolveDefaultBoundSurvivesResidencyGrowth(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, pricing.PerGBSec(5), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.New()
	for vid, rs := range reqs.ByVideo() {
		fs, err := ivs.ScheduleFile(rig.Model, vid, rs, ivs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Put(fs)
	}
	res, err := Resolve(rig.Model, s, reqs.ByVideo(), Options{})
	if err != nil {
		t.Fatalf("Resolve with default bound: %v", err)
	}
	ledger := occupancy.FromSchedule(rig.Topo, rig.Catalog, res.Schedule)
	if ovs := ledger.AllOverflows(); len(ovs) != 0 {
		t.Fatalf("%d overflows remain", len(ovs))
	}
}

func TestHeatMetricString(t *testing.T) {
	names := map[HeatMetric]string{
		Period: "period", PeriodPerCost: "period-per-cost",
		Space: "space", SpacePerCost: "space-per-cost",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if HeatMetric(0).String() != "HeatMetric(0)" {
		t.Error("unknown metric string")
	}
}

// TestResolveManyFilesTightStorage is an integration-scale stress: several
// titles, several neighborhoods, capacities sized to force multiple
// overflows, all four metrics must fully resolve.
func TestResolveManyFilesTightStorage(t *testing.T) {
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, pricing.PerGBSec(5), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	s := schedule.New()
	for vid, rs := range reqs.ByVideo() {
		fs, err := ivs.ScheduleFile(rig.Model, vid, rs, ivs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.Put(fs)
	}
	for _, metric := range []HeatMetric{Period, PeriodPerCost, Space, SpacePerCost} {
		res, err := Resolve(rig.Model, s, reqs.ByVideo(), Options{Metric: metric})
		if err != nil {
			t.Fatalf("%v: %v", metric, err)
		}
		ledger := occupancy.FromSchedule(rig.Topo, rig.Catalog, res.Schedule)
		if ovs := ledger.AllOverflows(); len(ovs) != 0 {
			t.Fatalf("%v: %d overflows remain", metric, len(ovs))
		}
		if err := res.Schedule.Validate(rig.Topo, rig.Catalog, reqs); err != nil {
			t.Fatalf("%v: invalid schedule: %v", metric, err)
		}
	}
}

// TestResolveWithImmovableSeeds exercises the strategic-replication path:
// a standing copy occupies most of a tight storage, phase 1 over-commits
// it with dynamic copies, and resolution must strip ONLY the dynamic
// copies — the seed survives and the schedule ends overflow-free.
func TestResolveWithImmovableSeeds(t *testing.T) {
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 4*units.GB) // seed (2.5 GB) + <2.5 GB headroom
	b.Connect(vw, is1)
	b.AttachUsers(is1, 4)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(1), testutil.CentsPerMbit(0.2))
	m := cost.NewModel(book, routing.NewTable(book), cat)

	seed := schedule.Residency{
		Video: 0, Loc: is1, Src: vw,
		Load: 0, LastService: simtime.Time(12 * simtime.Hour),
		FedBy: schedule.PrePlacedFeed,
	}
	seeds := map[media.VideoID][]schedule.Residency{0: {seed}}

	us := topo.UsersAt(is1)
	h := simtime.Time(simtime.Hour)
	reqs := workload.Set{
		{User: us[0], Video: 0, Start: 1 * h}, // served from the seed
		{User: us[1], Video: 0, Start: 5 * h},
		{User: us[2], Video: 1, Start: 1 * h}, // wants a dynamic copy: overflows
		{User: us[3], Video: 1, Start: 5 * h},
	}
	s := schedule.New()
	for vid, rs := range reqs.ByVideo() {
		fs, err := ivs.ScheduleFile(m, vid, rs, ivs.Options{Seeds: seeds[vid]})
		if err != nil {
			t.Fatal(err)
		}
		s.Put(fs)
	}
	ledger := occupancy.FromSchedule(topo, cat, s)
	if len(ledger.AllOverflows()) == 0 {
		t.Skip("phase 1 did not overflow; adjust rig")
	}
	res, err := Resolve(m, s, reqs.ByVideo(), Options{Seeds: seeds})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	after := occupancy.FromSchedule(topo, cat, res.Schedule)
	if ovs := after.AllOverflows(); len(ovs) != 0 {
		t.Fatalf("overflows remain: %v", ovs)
	}
	if err := res.Schedule.Validate(topo, cat, reqs); err != nil {
		t.Fatalf("resolved schedule invalid: %v", err)
	}
	// The seed survived and still serves video 0.
	fs0 := res.Schedule.File(0)
	foundSeed := false
	for _, c := range fs0.Residencies {
		if c.FedBy == schedule.PrePlacedFeed {
			foundSeed = true
			if len(c.Services) == 0 {
				t.Error("seed lost its services during resolution")
			}
		}
	}
	if !foundSeed {
		t.Error("resolution stripped the immovable seed")
	}
	// No victim record names a pre-placed copy's video-0 residency as the
	// removed entity in a way that dropped it; video 1 must have been the
	// victim (its dynamic copy cannot coexist with the seed).
	if len(res.Victims) == 0 {
		t.Fatal("no victims recorded")
	}
	for _, v := range res.Victims {
		if v.Video != 1 {
			t.Errorf("unexpected victim video %d", v.Video)
		}
	}
}
