package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/vodsim/vsp/internal/units"
)

// Spec is the serializable description of a topology, suitable for JSON
// configuration files consumed by the command-line tools.
type Spec struct {
	Warehouse string        `json:"warehouse"`
	Storages  []StorageSpec `json:"storages"`
	Links     [][2]string   `json:"links"`
}

// StorageSpec describes one intermediate storage in a Spec.
type StorageSpec struct {
	Name     string      `json:"name"`
	Capacity units.Bytes `json:"capacity_bytes"`
	Users    int         `json:"users"`
}

// ToSpec converts a topology to its serializable form.
func (t *Topology) ToSpec() Spec {
	s := Spec{Warehouse: t.Node(t.warehouse).Name}
	for _, n := range t.nodes {
		if n.Kind != KindStorage {
			continue
		}
		s.Storages = append(s.Storages, StorageSpec{
			Name:     n.Name,
			Capacity: n.Capacity,
			Users:    len(t.UsersAt(n.ID)),
		})
	}
	for _, e := range t.edges {
		s.Links = append(s.Links, [2]string{t.Node(e.A).Name, t.Node(e.B).Name})
	}
	return s
}

// FromSpec builds a topology from its serializable form.
func FromSpec(s Spec) (*Topology, error) {
	b := NewBuilder()
	if s.Warehouse == "" {
		s.Warehouse = "VW"
	}
	b.Warehouse(s.Warehouse)
	for _, st := range s.Storages {
		id := b.Storage(st.Name, st.Capacity)
		if st.Users > 0 {
			b.AttachUsers(id, st.Users)
		}
	}
	for _, l := range s.Links {
		a, ok := b.names[l[0]]
		if !ok {
			return nil, fmt.Errorf("topology spec: link references unknown node %q", l[0])
		}
		c, ok := b.names[l[1]]
		if !ok {
			return nil, fmt.Errorf("topology spec: link references unknown node %q", l[1])
		}
		b.Connect(a, c)
	}
	return b.Build()
}

// MarshalJSON encodes the topology as its Spec.
func (t *Topology) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.ToSpec())
}

// Decode reads a JSON Spec and builds the topology.
func Decode(r io.Reader) (*Topology, error) {
	var s Spec
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	return FromSpec(s)
}

// Encode writes the topology as indented JSON.
func (t *Topology) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.ToSpec())
}

// DOT renders the topology in Graphviz DOT format for visual inspection.
// Warehouse is drawn as a box; storages are ellipses annotated with their
// capacity and user count.
func (t *Topology) DOT() string {
	var sb strings.Builder
	sb.WriteString("graph topology {\n")
	names := make([]string, len(t.nodes))
	for _, n := range t.nodes {
		names[n.ID] = n.Name
	}
	ordered := append([]Node(nil), t.nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, n := range ordered {
		switch n.Kind {
		case KindWarehouse:
			fmt.Fprintf(&sb, "  %q [shape=box,label=%q];\n", n.Name, n.Name)
		default:
			label := fmt.Sprintf("%s\\n%s, %d users", n.Name, n.Capacity, len(t.UsersAt(n.ID)))
			fmt.Fprintf(&sb, "  %q [label=%q];\n", n.Name, label)
		}
	}
	for _, e := range t.edges {
		fmt.Fprintf(&sb, "  %q -- %q;\n", names[e.A], names[e.B])
	}
	sb.WriteString("}\n")
	return sb.String()
}
