package horizon_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/workload"
)

func rig(t *testing.T, p experiment.Params) *experiment.Rig {
	t.Helper()
	r, err := experiment.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// smallParams is tight enough to force SORP activity, so the property tests
// exercise the resolution path, not only the greedy.
func smallParams() experiment.Params {
	return experiment.Params{
		Storages:        6,
		UsersPerStorage: 5,
		Titles:          25,
		CapacityGB:      2,
		Seed:            42,
	}
}

// With every reservation submitted in epoch 0 and the horizon left at zero,
// nothing freezes and the incremental pipeline must be byte-identical to
// the one-shot scheduler: same record set, same Ψ(S).
func TestEpochZeroByteIdentity(t *testing.T) {
	r := rig(t, smallParams())

	svc := horizon.New(r.Model, horizon.Config{})
	for _, req := range r.Requests {
		if _, err := svc.Submit(0, req); err != nil {
			t.Fatalf("submit %+v: %v", req, err)
		}
	}
	res, err := svc.Advance(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}

	out, err := scheduler.Schedule(context.Background(), r.Model, r.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}

	if res.Cost != out.FinalCost {
		t.Errorf("incremental cost %v, one-shot cost %v", res.Cost, out.FinalCost)
	}
	got, want := svc.Committed(), out.Schedule
	if !reflect.DeepEqual(got, want) {
		for _, vid := range want.VideoIDs() {
			if !reflect.DeepEqual(got.File(vid), want.File(vid)) {
				t.Fatalf("video %d differs:\nincremental %+v\none-shot    %+v", vid, got.File(vid), want.File(vid))
			}
		}
		t.Fatalf("schedules differ structurally: got %d files, want %d", len(got.Files), len(want.Files))
	}
	if res.Admitted != len(r.Requests) || res.Replanned != 0 || res.FrozenDeliveries != 0 {
		t.Errorf("epoch-0 result bookkeeping off: %+v", res)
	}
}

// frozenSnapshot captures, per video, the records that must survive the
// next Advance untouched: deliveries starting before the horizon and
// residencies loaded before it (with span clamped to their frozen readers).
type frozenSnapshot struct {
	deliveries  map[int][]schedule.Delivery
	residencies map[int][]schedule.Residency
	services    map[int][][]int // frozen reader sets per residency
}

func snapshotFrozen(s *schedule.Schedule, h simtime.Time) frozenSnapshot {
	snap := frozenSnapshot{
		deliveries:  make(map[int][]schedule.Delivery),
		residencies: make(map[int][]schedule.Residency),
		services:    make(map[int][][]int),
	}
	for _, vid := range s.VideoIDs() {
		fs := s.File(vid)
		var ds []schedule.Delivery
		for _, d := range fs.Deliveries {
			if d.Start >= h {
				break
			}
			ds = append(ds, d)
		}
		var cs []schedule.Residency
		var svs [][]int
		for _, c := range fs.Residencies {
			if c.Load >= h {
				break
			}
			var kept []int
			for _, di := range c.Services {
				if di < len(ds) {
					kept = append(kept, di)
				}
			}
			cs = append(cs, c)
			svs = append(svs, kept)
		}
		snap.deliveries[int(vid)] = ds
		snap.residencies[int(vid)] = cs
		snap.services[int(vid)] = svs
	}
	return snap
}

// checkFrozenPreserved asserts the committed schedule still contains every
// frozen record at its original index: deliveries field-identical;
// residencies identical in placement (Video, Loc, Src, Load, FedBy), with
// a span that can only have grown and a reader set that contains every
// frozen reader.
func checkFrozenPreserved(t *testing.T, snap frozenSnapshot, s *schedule.Schedule, h simtime.Time) {
	t.Helper()
	for vid, ds := range snap.deliveries {
		fs := s.File(media.VideoID(vid))
		if fs == nil {
			if len(ds) > 0 || len(snap.residencies[vid]) > 0 {
				t.Fatalf("video %d with frozen records vanished from committed schedule", vid)
			}
			continue
		}
		if len(fs.Deliveries) < len(ds) {
			t.Fatalf("video %d: %d frozen deliveries but only %d committed", vid, len(ds), len(fs.Deliveries))
		}
		for i, d := range ds {
			if !reflect.DeepEqual(fs.Deliveries[i], d) {
				t.Errorf("video %d: frozen delivery %d modified:\nbefore %+v\nafter  %+v", vid, i, d, fs.Deliveries[i])
			}
		}
		cs := snap.residencies[vid]
		if len(fs.Residencies) < len(cs) {
			t.Fatalf("video %d: %d frozen residencies but only %d committed", vid, len(cs), len(fs.Residencies))
		}
		for j, c := range cs {
			got := fs.Residencies[j]
			if got.Video != c.Video || got.Loc != c.Loc || got.Src != c.Src || got.Load != c.Load || got.FedBy != c.FedBy {
				t.Errorf("video %d: frozen residency %d placement modified:\nbefore %+v\nafter  %+v", vid, j, c, got)
			}
			// The span may only grow: clamping drops future readers, and a
			// later extension re-grows it, but it can never undercut the
			// latest frozen reader.
			lo := c.Load
			for _, di := range snap.services[vid][j] {
				if s := snap.deliveries[vid][di].Start; s > lo {
					lo = s
				}
			}
			if got.FedBy != schedule.PrePlacedFeed && got.LastService < lo {
				t.Errorf("video %d: frozen residency %d span shrank below its frozen readers: %v < %v", vid, j, got.LastService, lo)
			}
			have := make(map[int]bool, len(got.Services))
			for _, di := range got.Services {
				have[di] = true
			}
			for _, di := range snap.services[vid][j] {
				if !have[di] {
					t.Errorf("video %d: frozen residency %d lost frozen reader %d", vid, j, di)
				}
			}
		}
	}
	_ = h
}

// A multi-epoch run must never modify a frozen record, never violate IS
// capacity including the frozen occupancy, and must end up serving every
// accepted reservation.
func TestMultiEpochFrozenInvariant(t *testing.T) {
	r := rig(t, smallParams())
	svc := horizon.New(r.Model, horizon.Config{Workers: 4})
	ctx := context.Background()

	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	const epochs = 5
	step := simtime.Duration(int64(window) / epochs)

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)

	next := 0
	for k := 1; k <= epochs; k++ {
		h := simtime.Time(int64(step) * int64(k))
		// Arrivals for epoch k: reservations starting before the NEXT
		// horizon, submitted while the current horizon still admits them.
		for next < len(reqs) && reqs[next].Start < h.Add(step) {
			if _, err := svc.Submit(reqs[next].Start, reqs[next]); err != nil {
				t.Fatalf("submit %+v at epoch %d: %v", reqs[next], k, err)
			}
			next++
		}
		snap := snapshotFrozen(svc.Committed(), h)
		res, err := svc.Advance(ctx, h)
		if err != nil {
			t.Fatalf("advance to %v: %v", h, err)
		}
		committed := svc.Committed()
		checkFrozenPreserved(t, snap, committed, h)

		ledger := occupancy.FromSchedule(r.Topo, r.Catalog, committed)
		if ovs := ledger.AllOverflows(); len(ovs) > 0 {
			t.Fatalf("epoch %d: %d capacity overflows in committed schedule, first %+v", k, len(ovs), ovs[0])
		}
		if res.Horizon != h {
			t.Errorf("epoch %d: result horizon %v, want %v", k, res.Horizon, h)
		}
	}
	if next != len(reqs) {
		t.Fatalf("replay bug: %d of %d requests submitted", next, len(reqs))
	}
	if err := svc.Committed().Validate(r.Topo, r.Catalog, svc.Accepted()); err != nil {
		t.Fatalf("final committed schedule invalid: %v", err)
	}
	if got, want := len(svc.Accepted()), len(reqs); got != want {
		t.Fatalf("accepted %d of %d reservations", got, want)
	}
}

func TestLateArrivalRejected(t *testing.T) {
	r := rig(t, smallParams())
	svc := horizon.New(r.Model, horizon.Config{})
	ctx := context.Background()

	if _, err := svc.Submit(0, r.Requests[0]); err != nil {
		t.Fatal(err)
	}
	h := simtime.Time(6 * int64(simtime.Hour))
	if _, err := svc.Advance(ctx, h); err != nil {
		t.Fatal(err)
	}

	late := workload.Request{User: r.Requests[0].User, Video: r.Requests[0].Video, Start: h - 1}
	if _, err := svc.Submit(h, late); !errors.Is(err, horizon.ErrLateArrival) {
		t.Fatalf("late arrival got error %v, want ErrLateArrival", err)
	}
	// Exactly at the horizon is still schedulable.
	onTime := workload.Request{User: late.User, Video: late.Video, Start: h}
	if _, err := svc.Submit(h, onTime); err != nil {
		t.Fatalf("reservation at the horizon rejected: %v", err)
	}
	if _, err := svc.Advance(ctx, h-1); err == nil {
		t.Fatal("moving the horizon backwards must fail")
	}
}

func TestEpochTriggers(t *testing.T) {
	r := rig(t, smallParams())
	mkReq := func(i int) workload.Request {
		return workload.Request{User: r.Requests[i].User, Video: r.Requests[i].Video, Start: r.Requests[i].Start}
	}

	t.Run("requests", func(t *testing.T) {
		svc := horizon.New(r.Model, horizon.Config{EpochRequests: 3})
		for i := 0; i < 2; i++ {
			ack, err := svc.Submit(0, mkReq(i))
			if err != nil || ack.EpochDue {
				t.Fatalf("submit %d: err=%v due=%v", i, err, ack.EpochDue)
			}
		}
		ack, err := svc.Submit(0, mkReq(2))
		if err != nil {
			t.Fatal(err)
		}
		if !ack.EpochDue || ack.Trigger != horizon.TriggerRequests {
			t.Fatalf("count trigger: %+v", ack)
		}
	})

	t.Run("bytes", func(t *testing.T) {
		vol := r.Catalog.Video(r.Requests[0].Video).StreamBytes().Float()
		svc := horizon.New(r.Model, horizon.Config{EpochBytes: vol + 1})
		ack, err := svc.Submit(0, mkReq(0))
		if err != nil || ack.EpochDue {
			t.Fatalf("first submit: err=%v ack=%+v", err, ack)
		}
		ack, err = svc.Submit(0, mkReq(1))
		if err != nil {
			t.Fatal(err)
		}
		if !ack.EpochDue || ack.Trigger != horizon.TriggerBytes {
			t.Fatalf("bytes trigger: %+v", ack)
		}
	})

	t.Run("tick", func(t *testing.T) {
		svc := horizon.New(r.Model, horizon.Config{EpochTick: simtime.Hour})
		ack, err := svc.Submit(simtime.Time(int64(simtime.Minute)), mkReq(0))
		if err != nil || ack.EpochDue {
			t.Fatalf("early arrival: err=%v ack=%+v", err, ack)
		}
		ack, err = svc.Submit(simtime.Time(int64(simtime.Hour)), mkReq(1))
		if err != nil {
			t.Fatal(err)
		}
		if !ack.EpochDue || ack.Trigger != horizon.TriggerTick {
			t.Fatalf("tick trigger: %+v", ack)
		}
	})
}

// The worker-pool fan-out must not affect the result: phase 1 is
// deterministic per file, so 1 worker and many workers must produce the
// same committed schedule.
func TestWorkerPoolDeterminism(t *testing.T) {
	for _, seed := range []int64{5, 42, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			p := smallParams()
			p.Seed = seed
			r := rig(t, p)
			run := func(workers int) string {
				svc := horizon.New(r.Model, horizon.Config{Workers: workers})
				for _, req := range r.Requests {
					if _, err := svc.Submit(0, req); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := svc.Advance(context.Background(), 0); err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(svc.Committed())
				if err != nil {
					t.Fatal(err)
				}
				return string(blob)
			}
			// Byte-identical, not merely structurally equal: both the
			// phase-1 fan-out and the SORP candidate evaluation now run on
			// the shared pool, and the committed schedule must not betray
			// the worker count.
			want := run(1)
			for _, workers := range []int{0, 2, 8} {
				if got := run(workers); got != want {
					t.Errorf("Workers=%d committed schedule differs from sequential run", workers)
				}
			}
		})
	}
}

// A file whose requests all froze must still carry its frozen prefix
// through later epochs, and a cancelled context must abort an Advance.
func TestAdvanceCancelledAndCarryThrough(t *testing.T) {
	r := rig(t, smallParams())
	svc := horizon.New(r.Model, horizon.Config{})
	ctx := context.Background()

	for _, req := range r.Requests {
		if _, err := svc.Submit(0, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Advance(ctx, 0); err != nil {
		t.Fatal(err)
	}
	before := svc.Committed()

	// Freeze everything; no pending work. Every file must survive intact
	// apart from span clamping of copies whose readers all froze.
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	end := simtime.Time(int64(window) * 2)
	if _, err := svc.Advance(ctx, end); err != nil {
		t.Fatal(err)
	}
	after := svc.Committed()
	if got, want := after.NumDeliveries(), before.NumDeliveries(); got != want {
		t.Fatalf("full freeze dropped deliveries: %d -> %d", want, got)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Submit(end, workload.Request{User: 0, Video: 0, Start: end + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Advance(cancelled, end); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled advance returned %v", err)
	}
	// The failed advance must not have corrupted state: retry succeeds.
	if _, err := svc.Advance(ctx, end); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
}

// Frozen residencies must never be chosen as SORP victims; this is
// enforced inside sorp but asserted here end-to-end: epochs with active
// resolution still preserve every frozen record (covered by
// TestMultiEpochFrozenInvariant) and the victim list never names a frozen
// copy's video/window pair that would require tearing one up. The cheap
// direct check: run a tight-capacity multi-epoch workload and let the
// internal validation (overflow re-check + frozen prefix verification in
// splitFile on the NEXT advance) fail the test if resolution misbehaved.
func TestTightCapacityMultiEpoch(t *testing.T) {
	p := smallParams()
	p.CapacityGB = 1.2 // tighter: force heavier SORP involvement
	r := rig(t, p)
	svc := horizon.New(r.Model, horizon.Config{Metric: sorp.SpacePerCost, Policy: ivs.CacheOnRoute})
	ctx := context.Background()

	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	const epochs = 4
	step := simtime.Duration(int64(window) / epochs)

	next := 0
	for k := 1; k <= epochs; k++ {
		h := simtime.Time(int64(step) * int64(k))
		for next < len(reqs) && reqs[next].Start < h.Add(step) {
			if _, err := svc.Submit(reqs[next].Start, reqs[next]); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if _, err := svc.Advance(ctx, h); err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
	}
	if err := svc.Committed().Validate(r.Topo, r.Catalog, svc.Accepted()); err != nil {
		t.Fatal(err)
	}
}
