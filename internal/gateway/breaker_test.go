package gateway

import (
	"testing"
	"time"
)

func testBreaker() *breaker {
	return newBreaker(BreakerConfig{
		Window:      time.Second,
		Buckets:     10,
		MinSamples:  4,
		FailureRate: 0.5,
		SlowCall:    100 * time.Millisecond,
		OpenFor:     time.Second,
	})
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)

	// Below MinSamples nothing trips, however bad the rate.
	b.record(now, 0, true)
	b.record(now, 0, true)
	b.record(now, 0, true)
	if !b.allow(now) {
		t.Fatal("tripped below MinSamples")
	}
	// Fourth sample reaches MinSamples at 100% failure: trip.
	b.record(now, 0, true)
	if b.allow(now) {
		t.Fatal("did not trip at 4/4 failures")
	}
	st := b.status(now)
	if st.State != "open" || st.Ejections != 1 || st.WindowFail != 4 {
		t.Fatalf("status after trip: %+v", st)
	}
}

func TestBreakerHealthyTrafficStaysClosed(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		fail := i%3 == 2 // 33% < the 50% threshold (and no early prefix reaches it)
		b.record(now.Add(time.Duration(i)*time.Millisecond), 0, fail)
	}
	if !b.allow(now.Add(time.Second)) {
		t.Fatal("tripped below the failure-rate threshold")
	}
}

func TestBreakerSlowCallsCountAsBad(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	// Successes, but all slower than SlowCall: the gray failure.
	for i := 0; i < 4; i++ {
		b.record(now, 150*time.Millisecond, false)
	}
	if b.allow(now) {
		t.Fatal("slow successes did not trip the breaker")
	}
}

func TestBreakerWindowAgesOut(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	b.record(now, 0, true)
	b.record(now, 0, true)
	b.record(now, 0, true)
	// The window is 1s; 2s later those failures are stale, so the next
	// failure is 1 of 1 — below MinSamples, no trip.
	later := now.Add(2 * time.Second)
	b.record(later, 0, true)
	if !b.allow(later) {
		t.Fatal("aged-out failures still tripped the breaker")
	}
	if st := b.status(later); st.WindowFail != 1 {
		t.Fatalf("window still holds stale outcomes: %+v", st)
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.record(now, 0, true)
	}
	if b.allow(now) {
		t.Fatal("not open")
	}
	// Cool-off not elapsed: still open, and not viable.
	mid := now.Add(500 * time.Millisecond)
	if b.allow(mid) || b.viable(mid) {
		t.Fatal("admitted before OpenFor elapsed")
	}
	// Past the cool-off: viable (non-mutating) first, then allow admits
	// exactly one probe.
	after := now.Add(1100 * time.Millisecond)
	if !b.viable(after) {
		t.Fatal("not viable after cool-off")
	}
	if st := b.status(after); st.State != "open" {
		t.Fatalf("viable mutated state to %q", st.State)
	}
	if !b.allow(after) {
		t.Fatal("no probe admitted after cool-off")
	}
	if b.allow(after) {
		t.Fatal("second concurrent probe admitted")
	}
	// A failed probe re-opens with a fresh cool-off.
	b.record(after, 0, true)
	if b.allow(after.Add(500 * time.Millisecond)) {
		t.Fatal("admitted during re-opened cool-off")
	}
	if st := b.status(after); st.Ejections != 2 {
		t.Fatalf("ejections = %d, want 2", st.Ejections)
	}
	// Next probe succeeds: closed, window reset.
	again := after.Add(1100 * time.Millisecond)
	if !b.allow(again) {
		t.Fatal("no second probe")
	}
	b.record(again, 0, false)
	st := b.status(again)
	if st.State != "closed" || st.WindowFail != 0 {
		t.Fatalf("after good probe: %+v", st)
	}
	if !b.allow(again) {
		t.Fatal("closed breaker not admitting")
	}
}

func TestBreakerReleaseReturnsProbeSlot(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.record(now, 0, true)
	}
	after := now.Add(1100 * time.Millisecond)
	if !b.allow(after) {
		t.Fatal("no probe admitted")
	}
	// Placement routed elsewhere: the slot comes back for the next call.
	b.release()
	if !b.allow(after) {
		t.Fatal("released probe slot not reusable")
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	if b := newBreaker(BreakerConfig{Disabled: true}); b != nil {
		t.Fatal("disabled config built a breaker")
	}
	var b *breaker
	now := time.Unix(1000, 0)
	if !b.allow(now) || !b.viable(now) {
		t.Fatal("nil breaker must admit everything")
	}
	b.record(now, 0, true) // must not panic
	b.release()
	if b.status(now) != nil {
		t.Fatal("nil breaker reported a status")
	}
}

func TestBreakerLateOutcomesWhileOpenAreDropped(t *testing.T) {
	b := testBreaker()
	now := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		b.record(now, 0, true)
	}
	// Stragglers from before the trip must not disturb the open state
	// or the eventual probe accounting.
	b.record(now.Add(10*time.Millisecond), 0, false)
	b.record(now.Add(20*time.Millisecond), 0, true)
	if st := b.status(now.Add(30 * time.Millisecond)); st.State != "open" || st.Ejections != 1 {
		t.Fatalf("straggler outcomes disturbed the open state: %+v", st)
	}
}
