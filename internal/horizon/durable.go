package horizon

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/wal"
	"github.com/vodsim/vsp/internal/workload"
)

// Durability: a service opened with Recover journals every Submit and
// Advance through a write-ahead log (internal/wal) in its data directory
// and periodically compacts the log into a full-state snapshot. Crash
// recovery loads the snapshot, replays the log's tail — re-running the
// replayed epochs through the same deterministic planner — and refuses to
// serve if the reconstructed committed schedule fails the audit bundle.
// The layout of a data directory:
//
//	<dir>/wal.log    append-only operation journal
//	<dir>/snapshot   atomically-replaced full state (may be absent)

// LogName is the journal's file name inside a data directory.
const LogName = "wal.log"

// Journal operation kinds.
const (
	opSubmit  = "submit"
	opAdvance = "advance"
)

// walOp is one journaled operation. Submit records carry the reservation
// and its arrival instant; advance records carry the new horizon. Replay
// re-executes them in order, which reproduces the committed state because
// both operations are deterministic functions of the state they act on.
type walOp struct {
	Op    string          `json:"op"`
	At    simtime.Time    `json:"at,omitempty"`
	User  topology.UserID `json:"user,omitempty"`
	Video media.VideoID   `json:"video,omitempty"`
	Start simtime.Time    `json:"start,omitempty"`
	To    simtime.Time    `json:"to,omitempty"`
}

// persistentState is the snapshot payload: the full mutable state of a
// Service. The cost model and config are reconstruction parameters, not
// state, and are supplied again at Recover time.
type persistentState struct {
	Horizon      simtime.Time       `json:"horizon"`
	Epoch        int                `json:"epoch"`
	Clock        simtime.Time       `json:"clock"`
	EpochClock   simtime.Time       `json:"epoch_clock"`
	Cost         units.Money        `json:"cost"`
	Committed    *schedule.Schedule `json:"committed"`
	Accepted     workload.Set       `json:"accepted"`
	Pending      workload.Set       `json:"pending"`
	PendingBytes float64            `json:"pending_bytes"`
}

// RecoveryStats reports what a Recover reconstructed, and the durable
// service's ongoing snapshot health.
type RecoveryStats struct {
	// Recovered is true when any prior state was found on disk.
	Recovered bool `json:"recovered"`
	// SnapshotLoaded is true when a snapshot seeded the state.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// ReplayedSubmits and ReplayedAdvances count the journal records
	// re-executed after the snapshot.
	ReplayedSubmits  int `json:"replayed_submits"`
	ReplayedAdvances int `json:"replayed_advances"`
	// TailTruncated is true when the journal ended mid-record (a torn
	// crash write) and the torn bytes were discarded.
	TailTruncated bool `json:"tail_truncated"`
	// TailTruncations counts torn-tail truncations observed when the
	// journal was opened. Operationally it should stay at 0 or 1 per
	// process life; exported so monitoring can see silent torn-tail
	// repair instead of it living only in a startup log line.
	TailTruncations int `json:"tail_truncations"`
	// SnapshotFailures counts snapshot writes that failed since open.
	// The journal is left un-compacted on failure, so durability is
	// unaffected; a growing count means the data directory needs care.
	SnapshotFailures int `json:"snapshot_failures"`
}

// Recover opens a durable rolling-horizon service on dir, creating the
// directory on first use. Prior state is restored from the snapshot plus
// a deterministic replay of the journaled operations after it; the
// recovered committed schedule must pass the full audit bundle
// (validation, capacity, simulation with cost agreement, billing) or
// Recover refuses with an error — a checksum-valid log that replays into
// an inconsistent schedule is treated as damage, not served. The model
// and config must describe the same infrastructure and policies the
// journal was written under.
func Recover(dir string, m *cost.Model, cfg Config) (*Service, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("horizon: data dir: %w", err)
	}
	s := New(m, cfg)

	snapSeq, blob, haveSnap, err := wal.ReadSnapshot(dir)
	if err != nil {
		return nil, fmt.Errorf("horizon: recover %s: %w", dir, err)
	}
	if haveSnap {
		if err := s.loadState(blob); err != nil {
			return nil, fmt.Errorf("horizon: recover %s: snapshot: %w", dir, err)
		}
		s.recovery.SnapshotLoaded = true
	}

	log, recs, tail, err := wal.Open(filepath.Join(dir, LogName), wal.Options{
		Fsync:     s.cfg.Fsync,
		SyncEvery: s.cfg.FsyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("horizon: recover %s: %w", dir, err)
	}
	s.recovery.TailTruncated = tail == wal.TailTruncated
	if s.recovery.TailTruncated {
		s.recovery.TailTruncations++
	}

	// Replay the journal tail through the same applyPayloadLocked entry
	// point the replication applier uses. The journal is attached only
	// afterwards, so replayed operations are not re-journaled and never
	// snapshot.
	s.mu.Lock()
	for i, rec := range recs {
		if rec.Seq <= snapSeq {
			continue // compacted into the snapshot; left by a crash before Reset
		}
		op, err := s.applyPayloadLocked(context.Background(), rec.Payload)
		switch op.Op {
		case opSubmit:
			s.recovery.ReplayedSubmits++
		case opAdvance:
			s.recovery.ReplayedAdvances++
		}
		if err != nil {
			s.mu.Unlock()
			log.Close()
			return nil, fmt.Errorf("horizon: recover %s: replay record %d: %w", dir, i, err)
		}
	}
	s.recovery.Recovered = haveSnap || s.recovery.ReplayedSubmits > 0 || s.recovery.ReplayedAdvances > 0

	// Audit the reconstructed schedule against the reservations it claims
	// to serve. Refusing to start beats serving a committed schedule the
	// infrastructure cannot execute.
	err = s.verifyCommittedLocked()
	s.mu.Unlock()
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("horizon: recover %s: recovered state fails audit: %w", dir, err)
	}

	log.EnsureSeqAbove(snapSeq)
	if len(recs) > 0 {
		log.EnsureSeqAbove(recs[len(recs)-1].Seq)
	}
	s.lastSeq = log.NextSeq() - 1
	s.journal = log
	s.dir = dir
	return s, nil
}

// Recovery returns what Recover reconstructed (zero for in-memory
// services) plus the current snapshot-failure count.
func (s *Service) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// Durable reports whether the service journals to disk.
func (s *Service) Durable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal != nil
}

// Close flushes and closes the journal. The service must not be used
// afterwards. Closing an in-memory service is a no-op.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// applyPayloadLocked decodes one journal payload and re-executes it
// through the ordinary locked intake paths. It is the single replay
// entry point: crash recovery (Recover) and the replication applier
// (ApplyReplicated) both feed records through it, so a follower's state
// is reconstructed by exactly the machinery the primary's recovery is
// already proven on. Callers hold s.mu. The decoded operation is
// returned even on failure so callers can attribute the error.
func (s *Service) applyPayloadLocked(ctx context.Context, payload []byte) (walOp, error) {
	var op walOp
	if err := json.Unmarshal(payload, &op); err != nil {
		return op, fmt.Errorf("undecodable operation: %w", err)
	}
	var err error
	switch op.Op {
	case opSubmit:
		_, err = s.submitLocked(op.At, workload.Request{User: op.User, Video: op.Video, Start: op.Start})
	case opAdvance:
		_, err = s.advanceLocked(ctx, op.To)
	default:
		err = fmt.Errorf("unknown op %q", op.Op)
	}
	if err != nil {
		return op, fmt.Errorf("apply %s: %w", op.Op, err)
	}
	return op, nil
}

// verifyCommittedLocked runs the full audit bundle (validation,
// capacity, simulation with cost agreement, billing) over the committed
// schedule against the reservations it claims to serve — everything
// accepted minus the still-pending intake, which is planned only at the
// next Advance. Callers hold s.mu.
func (s *Service) verifyCommittedLocked() error {
	planned := s.accepted[:len(s.accepted)-len(s.pending)]
	if len(planned) == 0 && len(s.committed.Files) == 0 {
		return nil
	}
	if rep := audit.Run(s.m, s.committed, planned); !rep.OK() {
		return fmt.Errorf("%s (%d finding(s))", rep.Findings[0], len(rep.Findings))
	}
	return nil
}

// VerifyCommitted re-runs the audit bundle over the live committed
// schedule. Failover promotion calls it before a caught-up follower
// starts accepting traffic, mirroring the re-verification Recover
// performs before serving recovered state.
func (s *Service) VerifyCommitted() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyCommittedLocked()
}

// journalOp appends one operation record; callers hold s.mu.
func (s *Service) journalOp(op walOp) error {
	blob, err := json.Marshal(op)
	if err != nil {
		return err
	}
	seq, err := s.journal.Append(blob)
	if err != nil {
		return err
	}
	s.lastSeq = seq
	return nil
}

// maybeSnapshotLocked compacts the journal after an epoch commit when the
// snapshot period has elapsed. A snapshot failure is recorded but not
// fatal: the un-compacted journal still reaches the same state by replay.
func (s *Service) maybeSnapshotLocked() {
	if s.journal == nil {
		return
	}
	every := s.cfg.SnapshotEvery
	if every == 0 {
		every = DefaultSnapshotEvery
	}
	if every < 0 || s.epoch%every != 0 {
		return
	}
	blob, err := json.Marshal(s.stateLocked())
	if err == nil {
		err = wal.WriteSnapshot(s.dir, s.lastSeq, blob)
	}
	if err == nil {
		err = s.journal.Reset()
	}
	if err != nil {
		s.recovery.SnapshotFailures++
	}
}

// stateLocked captures the full mutable state; callers hold s.mu.
func (s *Service) stateLocked() persistentState {
	return persistentState{
		Horizon:      s.horizon,
		Epoch:        s.epoch,
		Clock:        s.clock,
		EpochClock:   s.epochClock,
		Cost:         s.cost,
		Committed:    s.committed,
		Accepted:     s.accepted,
		Pending:      s.pending,
		PendingBytes: s.pendingBytes,
	}
}

// loadState restores a snapshot payload into a freshly built service.
func (s *Service) loadState(blob []byte) error {
	var st persistentState
	if err := json.Unmarshal(blob, &st); err != nil {
		return err
	}
	if st.Committed == nil {
		st.Committed = schedule.New()
	}
	s.horizon = st.Horizon
	s.epoch = st.Epoch
	s.clock = st.Clock
	s.epochClock = st.EpochClock
	s.cost = st.Cost
	s.committed = st.Committed
	s.accepted = st.Accepted
	s.pending = st.Pending
	s.pendingBytes = st.PendingBytes
	return nil
}
