package horizon_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/wal"
)

// shipAll pulls primary's tail into follower until caught up, returning
// the number of records and snapshots applied.
func shipAll(t *testing.T, primary, follower *horizon.Service) (records, snapshots int) {
	t.Helper()
	ctx := context.Background()
	for {
		tail, err := primary.TailAfter(follower.AppliedSeq(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if tail.Snapshot != nil {
			if err := follower.InstallSnapshot(tail.SnapshotSeq, tail.Snapshot); err != nil {
				t.Fatal(err)
			}
			snapshots++
			continue
		}
		if len(tail.Records) == 0 {
			return records, snapshots
		}
		for _, rec := range tail.Records {
			ok, err := follower.ApplyReplicated(ctx, rec)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				records++
			}
		}
	}
}

func TestTailAfterRequiresDurability(t *testing.T) {
	r := rig(t, durableParams())
	svc := horizon.New(r.Model, horizon.Config{})
	if _, err := svc.TailAfter(0, 0); !errors.Is(err, horizon.ErrNotDurable) {
		t.Fatalf("in-memory TailAfter: %v, want ErrNotDurable", err)
	}
}

// A follower fed record-by-record through ApplyReplicated converges to
// the primary's exact state, assigning identical sequence numbers to its
// own journal.
func TestReplicatedApplyConverges(t *testing.T) {
	r := rig(t, durableParams())
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	for _, op := range script(r, 3) {
		applyOp(t, primary, op)
	}
	recs, snaps := shipAll(t, primary, follower)
	if snaps != 0 {
		t.Fatalf("snapshot shipped with compaction disabled (%d)", snaps)
	}
	if recs == 0 {
		t.Fatal("no records shipped")
	}
	if got, want := follower.AppliedSeq(), primary.AppliedSeq(); got != want {
		t.Fatalf("follower applied seq %d, primary %d", got, want)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatalf("replicated state diverged:\n got %.200s...\nwant %.200s...", got, want)
	}
}

// Duplicated deliveries are skipped by sequence; gaps are refused.
func TestApplyReplicatedIdempotencyAndGaps(t *testing.T) {
	r := rig(t, durableParams())
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	follower, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()

	ops := script(r, 3)
	for _, op := range ops {
		applyOp(t, primary, op)
	}
	tail, err := primary.TailAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A gap — record 2 before record 1 — must be refused.
	if _, err := follower.ApplyReplicated(ctx, tail.Records[1]); err == nil {
		t.Fatal("gap accepted")
	} else if !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap refusal does not name the gap: %v", err)
	}

	// Every record applied twice: the duplicate must report not-applied
	// and leave the state identical.
	for _, rec := range tail.Records {
		ok, err := follower.ApplyReplicated(ctx, rec)
		if err != nil || !ok {
			t.Fatalf("first apply of seq %d: ok=%v err=%v", rec.Seq, ok, err)
		}
		before := fingerprint(t, follower)
		ok, err = follower.ApplyReplicated(ctx, rec)
		if err != nil || ok {
			t.Fatalf("duplicate apply of seq %d: ok=%v err=%v, want skipped", rec.Seq, ok, err)
		}
		if after := fingerprint(t, follower); after != before {
			t.Fatalf("duplicate apply of seq %d mutated state", rec.Seq)
		}
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatal("state diverged after duplicated deliveries")
	}
}

// When compaction has folded the requested records into a snapshot, the
// tail arrives as a full-state snapshot instead, and installing it brings
// a fresh follower to the primary's exact state.
func TestSnapshotShippingAfterCompaction(t *testing.T) {
	r := rig(t, durableParams())
	cfg := horizon.Config{SnapshotEvery: 1, Fsync: wal.FsyncNever}
	primary, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	ops := script(r, 3)
	for _, op := range ops {
		applyOp(t, primary, op)
	}
	tail, err := primary.TailAfter(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Snapshot == nil {
		t.Fatal("compacted journal still served records from seq 0")
	}
	if tail.SnapshotSeq != primary.AppliedSeq() {
		t.Fatalf("snapshot at seq %d, primary at %d", tail.SnapshotSeq, primary.AppliedSeq())
	}

	followerDir := t.TempDir()
	follower, err := horizon.Recover(followerDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, snaps := shipAll(t, primary, follower); snaps != 1 {
		t.Fatalf("%d snapshots installed, want 1", snaps)
	}
	if got, want := fingerprint(t, follower), fingerprint(t, primary); got != want {
		t.Fatal("snapshot-installed state diverged from primary")
	}

	// The install is durable: a restart recovers the same state and seq.
	want := fingerprint(t, follower)
	seq := follower.AppliedSeq()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := horizon.Recover(followerDir, r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.AppliedSeq() != seq {
		t.Fatalf("restart lost applied seq: %d, want %d", re.AppliedSeq(), seq)
	}
	if got := fingerprint(t, re); got != want {
		t.Fatal("restart after snapshot install diverged")
	}
}

// A snapshot that does not advance the applied sequence, or whose state
// fails the audit, must be rejected without touching live state.
func TestInstallSnapshotRejections(t *testing.T) {
	r := rig(t, durableParams())
	cfg := horizon.Config{SnapshotEvery: -1, Fsync: wal.FsyncNever}
	primary, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for _, op := range script(r, 2) {
		applyOp(t, primary, op)
	}

	follower, err := horizon.Recover(t.TempDir(), r.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	shipAll(t, primary, follower)
	before := fingerprint(t, follower)

	// Stale: the follower is already past seq 1.
	if err := follower.InstallSnapshot(1, []byte(`{}`)); err == nil {
		t.Fatal("stale snapshot accepted")
	}
	// Undecodable state.
	if err := follower.InstallSnapshot(follower.AppliedSeq()+1, []byte(`{"`)); err == nil {
		t.Fatal("undecodable snapshot accepted")
	}
	if got := fingerprint(t, follower); got != before {
		t.Fatal("rejected snapshot mutated live state")
	}
}
