package wal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/wal"
)

// writeLog appends n records ("payload-1".."payload-n") and returns the
// log path.
func writeLog(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	log, _, _, err := wal.Open(path, wal.Options{Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	for i := 1; i <= n; i++ {
		if _, err := log.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestReadLogAfterResumesMidStream(t *testing.T) {
	path := writeLog(t, 5)
	for after := uint64(0); after <= 5; after++ {
		recs, tail, err := wal.ReadLogAfter(path, after)
		if err != nil || tail != wal.TailClean {
			t.Fatalf("after=%d: tail=%v err=%v", after, tail, err)
		}
		if len(recs) != int(5-after) {
			t.Fatalf("after=%d: got %d records, want %d", after, len(recs), 5-after)
		}
		for i, rec := range recs {
			if want := after + uint64(i) + 1; rec.Seq != want {
				t.Fatalf("after=%d record %d: seq %d, want %d", after, i, rec.Seq, want)
			}
		}
	}
}

// Checksum is the wire-integrity primitive replication re-verifies on
// the follower side: it must bind both the payload and the sequence.
func TestChecksumBindsSeqAndPayload(t *testing.T) {
	sum := wal.Checksum(7, []byte("payload"))
	if sum != wal.Checksum(7, []byte("payload")) {
		t.Fatal("checksum not deterministic")
	}
	if sum == wal.Checksum(8, []byte("payload")) {
		t.Fatal("checksum ignores the sequence number")
	}
	if sum == wal.Checksum(7, []byte("payloae")) {
		t.Fatal("checksum ignores the payload")
	}
}

// A missing log reads as an empty clean one: a fresh primary has nothing
// to ship yet, which is not an error.
func TestReadLogAfterMissingFile(t *testing.T) {
	recs, tail, err := wal.ReadLogAfter(filepath.Join(t.TempDir(), "absent.wal"), 0)
	if err != nil || tail != wal.TailClean || len(recs) != 0 {
		t.Fatalf("missing file: recs=%d tail=%v err=%v, want empty clean", len(recs), tail, err)
	}
}

// A torn tail (crash mid-append) yields the whole-record prefix without
// an error: the torn record was never acknowledged.
func TestReadLogAfterToleratesTornTail(t *testing.T) {
	path := writeLog(t, 3)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, tail, err := wal.ReadLogAfter(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail != wal.TailTruncated || len(recs) != 2 {
		t.Fatalf("torn tail: %d records, tail=%v, want 2 truncated", len(recs), tail)
	}
}

// Mid-log corruption is an error wrapping ErrCorrupt — records past the
// flip must never be served to a follower.
func TestReadLogAfterDetectsCorruption(t *testing.T) {
	path := writeLog(t, 3)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0xFF // inside the final record's payload
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, tail, err := wal.ReadLogAfter(path, 0)
	if !errors.Is(err, wal.ErrCorrupt) || tail != wal.TailCorrupt {
		t.Fatalf("corrupted log: tail=%v err=%v, want ErrCorrupt", tail, err)
	}
	if len(recs) != 0 {
		t.Fatalf("corrupt log served %d records; must serve none", len(recs))
	}
}
