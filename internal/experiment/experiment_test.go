package experiment

import (
	"testing"

	"github.com/vodsim/vsp/internal/sorp"
)

// small returns a scaled-down base configuration that keeps the test suite
// fast while preserving the overflow-rich regime.
func small() Params {
	return Params{Storages: 9, UsersPerStorage: 6, Titles: 60, Seed: 5}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Storages != 19 || p.UsersPerStorage != 10 || p.Titles != 500 {
		t.Errorf("scale defaults: %+v", p)
	}
	if p.CapacityGB != 5 || p.SRateGBHour != 5 || p.NRateGB != 500 {
		t.Errorf("rate defaults: %+v", p)
	}
	if p.Alpha != 0.271 || p.WindowHours != 12 || p.RequestsPerUser != 1 {
		t.Errorf("workload defaults: %+v", p)
	}
	if p.Metric != sorp.SpacePerCost {
		t.Errorf("metric default: %v", p.Metric)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestRateConversions(t *testing.T) {
	p := Params{SRateGBHour: 3600e9, NRateGB: 1e9}.WithDefaults()
	if got := float64(p.SRate()); got != 1 {
		t.Errorf("SRate = %g, want 1 $/byte·s", got)
	}
	if got := float64(p.NRate()); got != 1 {
		t.Errorf("NRate = %g, want 1 $/byte", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(small())
	if err != nil {
		t.Fatal(err)
	}
	if a.Topo.NumEdges() != b.Topo.NumEdges() || len(a.Requests) != len(b.Requests) {
		t.Fatal("Build not deterministic")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatal("request stream not deterministic")
		}
	}
}

func TestRunOne(t *testing.T) {
	r, err := RunOne(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests != 54 {
		t.Errorf("requests = %d, want 54", r.Requests)
	}
	if r.FinalCost <= 0 || r.DirectCost <= 0 {
		t.Error("costs must be positive")
	}
	if float64(r.FinalCost) > float64(r.DirectCost)+1e-6 {
		t.Errorf("final %v exceeds direct %v", r.FinalCost, r.DirectCost)
	}
	if float64(r.Phase1Cost) > float64(r.FinalCost)+1e-6 {
		t.Errorf("phase1 %v exceeds final %v (resolution can only add cost on this rig)", r.Phase1Cost, r.FinalCost)
	}
	if r.SavingsPct() < 0 || r.DeltaPct() < 0 {
		t.Errorf("percentages: savings %g, delta %g", r.SavingsPct(), r.DeltaPct())
	}
}

func TestRunManyMatchesRunOne(t *testing.T) {
	ps := []Params{small(), func() Params { p := small(); p.Alpha = 0.7; return p }()}
	many, err := RunMany(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		one, err := RunOne(p)
		if err != nil {
			t.Fatal(err)
		}
		if many[i].FinalCost != one.FinalCost {
			t.Errorf("config %d: RunMany %v != RunOne %v", i, many[i].FinalCost, one.FinalCost)
		}
	}
}

func TestRunAveraged(t *testing.T) {
	ps := []Params{small()}
	avg, err := RunAveraged(ps, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Manual average over the three decorrelated seeds.
	var want float64
	for r := 0; r < 3; r++ {
		p := small().WithDefaults()
		p.Seed += int64(r) * 104729
		one, err := RunOne(p)
		if err != nil {
			t.Fatal(err)
		}
		want += float64(one.FinalCost)
	}
	want /= 3
	if got := float64(avg[0].FinalCost); got != want {
		t.Errorf("averaged = %g, want %g", got, want)
	}
	// repeats <= 1 falls through to RunMany.
	single, err := RunAveraged(ps, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := RunOne(ps[0])
	if single[0].FinalCost != one.FinalCost {
		t.Error("repeats=1 must match RunOne")
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(small(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 3 srates + baseline", len(fig.Series))
	}
	noIS := fig.Series[3]
	for si, s := range fig.Series {
		if !s.Monotone(+1, 1e-9) {
			t.Errorf("series %q not increasing in nrate", s.Name)
		}
		if si < 3 {
			for i := range s.Points {
				if s.Points[i].Y > noIS.Points[i].Y+1e-6 {
					t.Errorf("series %q above the no-IS baseline at x=%g", s.Name, s.Points[i].X)
				}
			}
		}
	}
	// The IS advantage grows with the network rate (paper §5.2).
	first := noIS.Points[0].Y - fig.Series[0].Points[0].Y
	last := noIS.Points[len(noIS.Points)-1].Y - fig.Series[0].Points[len(noIS.Points)-1].Y
	if last <= first {
		t.Errorf("IS advantage did not grow: first gap %g, last gap %g", first, last)
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(small(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if !s.Monotone(+1, 1e-9) {
			t.Errorf("series %q not increasing in nrate", s.Name)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	fig, err := Fig7(small(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	with, netOnly := fig.Series[0], fig.Series[1]
	// Network-only is flat in srate.
	for i := 1; i < netOnly.Len(); i++ {
		if netOnly.Points[i].Y != netOnly.Points[0].Y {
			t.Error("network-only baseline must not depend on srate")
		}
	}
	// With-IS stays at or below the baseline and rises toward it.
	for i := range with.Points {
		if with.Points[i].Y > netOnly.Points[i].Y+1e-6 {
			t.Errorf("with-IS above network-only at srate=%g", with.Points[i].X)
		}
	}
	if !with.Monotone(+1, 0.02) {
		t.Errorf("with-IS not (approximately) increasing in srate: %v", with.Ys())
	}
	// Saturation: the climb over the last half is smaller than over the
	// first half (paper: "less sensitive ... as the rate increases").
	n := with.Len()
	firstHalf := with.Points[n/2].Y - with.Points[0].Y
	lastHalf := with.Points[n-1].Y - with.Points[n/2].Y
	if lastHalf >= firstHalf {
		t.Errorf("no saturation: first-half climb %g, last-half climb %g", firstHalf, lastHalf)
	}
}

func TestFig9Shape(t *testing.T) {
	fig, err := Fig9(small(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Larger storage is never more expensive, and the gap is larger at
	// high skew (α = 0.1) than at near-uniform (α = 0.9).
	s5, s11 := fig.Series[0], fig.Series[2]
	for i := range s5.Points {
		if s11.Points[i].Y > s5.Points[i].Y+1e-6 {
			t.Errorf("11 GB dearer than 5 GB at alpha=%g", s5.Points[i].X)
		}
	}
	gapSkewed := s5.Points[0].Y - s11.Points[0].Y
	gapUniform := s5.Points[s5.Len()-1].Y - s11.Points[s11.Len()-1].Y
	if gapSkewed <= gapUniform {
		t.Errorf("capacity advantage should shrink with alpha: skewed gap %g, uniform gap %g", gapSkewed, gapUniform)
	}
	// Cost grows as access becomes less biased: compare the ends.
	if s5.Points[s5.Len()-1].Y <= s5.Points[0].Y {
		t.Error("cost did not increase from alpha=0.1 to alpha=0.9")
	}
}

func TestTable5Study(t *testing.T) {
	res, err := RunTable5(Table5Config{
		Base:       small(),
		SRates:     []float64{3, 6},
		Capacities: []float64{4, 8},
		NRates:     []float64{300, 700},
		Alphas:     []float64{0.1, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCases != 16 {
		t.Fatalf("cases = %d, want 16", res.TotalCases)
	}
	if res.CostAffected == 0 {
		t.Fatal("no cost-affected cases; the rig should overflow")
	}
	if res.CostAffected > res.TotalCases {
		t.Error("affected exceeds total")
	}
	for _, m := range allMetrics {
		if res.Best[m] > res.CostAffected {
			t.Errorf("metric %v wins %d of %d", m, res.Best[m], res.CostAffected)
		}
	}
	if res.Best2or4 > res.CostAffected {
		t.Error("2-or-4 wins exceed affected")
	}
	// At least one metric wins every affected case.
	sum := 0
	for _, m := range allMetrics {
		sum += res.Best[m]
	}
	if sum < res.CostAffected {
		t.Error("some affected case has no winning metric")
	}
	if res.DeltaPct.N != res.CostAffected {
		t.Error("delta summary count mismatch")
	}
	if res.DeltaPct.Min < -1e-9 {
		t.Errorf("negative resolution delta %g under Method 4", res.DeltaPct.Min)
	}
	if res.BestPct(sorp.SpacePerCost) < 0 || res.Best2or4Pct() > 100 {
		t.Error("percentage helpers out of range")
	}
	// Unresolved (no-overflow) cases must have all-equal final costs.
	for _, c := range res.Cases {
		if !c.Resolved {
			for _, m := range allMetrics {
				if c.FinalCost[m] != c.Phase1Cost {
					t.Error("unresolved case has diverging costs")
				}
			}
		}
	}
}

func TestFigOnlineShape(t *testing.T) {
	fig, err := FigOnline(small(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	offline, onl, direct := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range offline.Points {
		// Foreknowledge is worth money: offline <= online <= ... online can
		// beat direct or not depending on skew, but offline must beat both.
		if offline.Points[i].Y > onl.Points[i].Y*1.001 {
			t.Errorf("alpha=%g: offline %g worse than online %g",
				offline.Points[i].X, offline.Points[i].Y, onl.Points[i].Y)
		}
		if offline.Points[i].Y > direct.Points[i].Y*1.001 {
			t.Errorf("alpha=%g: offline %g worse than direct %g",
				offline.Points[i].X, offline.Points[i].Y, direct.Points[i].Y)
		}
	}
}

func TestFigReplicationShape(t *testing.T) {
	fig, err := FigReplication(small(), 0.25, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	dynamic, static, direct := fig.Series[0], fig.Series[2], fig.Series[3]
	for i := range dynamic.Points {
		// Dynamic caching dominates both static-only and no caching.
		if dynamic.Points[i].Y > static.Points[i].Y*1.001 {
			t.Errorf("alpha=%g: dynamic %g worse than static %g",
				dynamic.Points[i].X, dynamic.Points[i].Y, static.Points[i].Y)
		}
		if dynamic.Points[i].Y > direct.Points[i].Y*1.001 {
			t.Errorf("alpha=%g: dynamic %g worse than direct %g",
				dynamic.Points[i].X, dynamic.Points[i].Y, direct.Points[i].Y)
		}
		// Static replication beats doing nothing at high skew.
		if i == 0 && static.Points[i].Y >= direct.Points[i].Y {
			t.Errorf("alpha=%g: static %g not cheaper than direct %g",
				static.Points[i].X, static.Points[i].Y, direct.Points[i].Y)
		}
	}
}

func TestFigLocalityShape(t *testing.T) {
	fig, err := FigLocality(small(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	with, direct := fig.Series[0], fig.Series[1]
	// The scheduler never loses to direct at any locality.
	for i := range with.Points {
		if with.Points[i].Y > direct.Points[i].Y*1.001 {
			t.Errorf("locality=%g: scheduler %g worse than direct %g",
				with.Points[i].X, with.Points[i].Y, direct.Points[i].Y)
		}
	}
	// Decorrelated tastes fragment sharing: full locality costs at least
	// as much as a shared ranking (averaged over seeds; generous slack for
	// sampling noise).
	if with.Points[len(with.Points)-1].Y < with.Points[0].Y*0.98 {
		t.Errorf("full locality %g cheaper than shared ranking %g",
			with.Points[len(with.Points)-1].Y, with.Points[0].Y)
	}
}
