// Package simtime provides the simulation clock used throughout the
// scheduler: an integer number of seconds since the start of the scheduling
// cycle, plus interval arithmetic over such times.
//
// The paper's Video-On-Reservation model schedules a batch of requests whose
// start times are known in advance; all times are therefore relative to the
// beginning of the batch window ("cycle"). One-second resolution is ample:
// playback lengths are tens of minutes and charging rates are per second.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in the scheduling cycle, in whole seconds from the
// cycle origin. Negative values are permitted by the arithmetic but are
// rejected by schedule validation.
type Time int64

// Duration is a span of simulated time in whole seconds.
type Duration int64

// Common durations.
const (
	Second Duration = 1
	Minute Duration = 60 * Second
	Hour   Duration = 60 * Minute
	Day    Duration = 24 * Hour
)

// Add returns t shifted forward by d (backward if d is negative).
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// String formats the time as [d.]hh:mm:ss relative to the cycle origin.
func (t Time) String() string {
	neg := t < 0
	v := int64(t)
	if neg {
		v = -v
	}
	d := v / int64(Day)
	v %= int64(Day)
	h := v / int64(Hour)
	v %= int64(Hour)
	m := v / int64(Minute)
	s := v % int64(Minute)
	sign := ""
	if neg {
		sign = "-"
	}
	if d > 0 {
		return fmt.Sprintf("%s%dd%02d:%02d:%02d", sign, d, h, m, s)
	}
	return fmt.Sprintf("%s%02d:%02d:%02d", sign, h, m, s)
}

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Std converts a simulated duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Second }

// String formats the duration compactly, e.g. "1h30m" or "45s".
func (d Duration) String() string {
	neg := d < 0
	v := int64(d)
	if neg {
		v = -v
	}
	h := v / int64(Hour)
	m := (v % int64(Hour)) / int64(Minute)
	s := v % int64(Minute)
	sign := ""
	if neg {
		sign = "-"
	}
	switch {
	case h > 0 && s > 0:
		return fmt.Sprintf("%s%dh%dm%ds", sign, h, m, s)
	case h > 0 && m > 0:
		return fmt.Sprintf("%s%dh%dm", sign, h, m)
	case h > 0:
		return fmt.Sprintf("%s%dh", sign, h)
	case m > 0 && s > 0:
		return fmt.Sprintf("%s%dm%ds", sign, m, s)
	case m > 0:
		return fmt.Sprintf("%s%dm", sign, m)
	default:
		return fmt.Sprintf("%s%ds", sign, s)
	}
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
