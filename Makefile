# Build, test and experiment targets for the vsp repository.

GO ?= go
BIN := bin

.PHONY: all build test vet bench bench-json bench-smoke race soak chaos-soak chaos-bench cover fuzz figures results examples failover-demo sharded-demo load-demo bench-load clean

all: build vet test

build:
	$(GO) build ./...
	mkdir -p $(BIN)
	$(GO) build -o $(BIN)/ ./cmd/...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

soak:
	$(GO) test -tags soak -run TestSoak -v .

# Invariant-checking chaos soak: a paced trace through a 3-shard gateway
# under a seed-deterministic fault schedule (partitions, flapping, gray
# latency, 5xx bursts), asserting exactly-once commits, per-shard audit,
# merged-plan validity, and that no breaker wedges open (see
# internal/gateway/chaos_soak_test.go).
chaos-soak:
	$(GO) test -race -tags chaossoak -run TestChaosSoak -v ./internal/gateway

# Gray-failure benchmark: one shard 2s slow, measured through vspload's
# harness with breakers off and on; records both runs into
# BENCH_load.json (p99 with breakers must be >=5x lower).
chaos-bench:
	CHAOS_BENCH_OUT=$(CURDIR)/BENCH_load.json $(GO) test -tags chaossoak \
		-run TestGrayFailureBreakerBenefit -v -timeout 20m ./internal/gateway

# Short fuzz passes over the parsers that face untrusted bytes: the WAL
# decoder (crash/corruption trichotomy) and the schedule API decoder.
fuzz:
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=10s ./internal/wal
	$(GO) test -fuzz=FuzzScheduleDecode -fuzztime=10s ./internal/server

cover:
	$(GO) test -cover ./internal/... .

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable scheduler benchmark record (ns/op, allocs/op for the
# one-shot solver and the rolling-horizon incremental extension, plus
# their speedup ratio). The later runs exercise the parallel fan-out at
# -cpu 1,4 — both the isolated phase 1 and the full 10k-request solve —
# so benchjson can derive phase1_parallel_speedup from the matched pair,
# and the gateway submit pair at -cpu 4 so it can derive
# gateway_submit_speedup_3shards. Committed as BENCH_scheduler.json.
bench-json:
	( $(GO) test -run='^$$' -bench='BenchmarkSchedule$$|BenchmarkHorizonAdvance$$|BenchmarkFullResolve$$' \
		-benchmem ./internal/scheduler ./internal/horizon ; \
	  $(GO) test -run='^$$' -bench='BenchmarkSchedulePhase1$$' -cpu 1,4 \
		-benchmem ./internal/scheduler ; \
	  $(GO) test -run='^$$' -bench='BenchmarkGatewaySubmit' -cpu 4 \
		-benchmem ./internal/gateway ; \
	  $(GO) test -run='^$$' -bench='BenchmarkSchedule10k$$' -cpu 1,4 -benchtime=1x \
		-timeout=60m -benchmem ./internal/scheduler ) \
		| $(GO) run ./cmd/benchjson -out BENCH_scheduler.json

# Quick regression smoke for CI: a short BenchmarkSchedule run (best of
# 3 single iterations) must stay within 2x of the committed
# BENCH_scheduler.json baseline. Catches order-of-magnitude hot-path
# regressions without the cost or noise-sensitivity of a full bench run.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkSchedule$$' -short -benchtime=1x -count=3 \
		./internal/scheduler \
		| $(GO) run ./cmd/benchjson -check BENCH_scheduler.json -max-ratio 2

# Regenerate every paper figure/table as text (see EXPERIMENTS.md).
results: build
	$(BIN)/vspexp -exp all -scale paper -repeats 3

# Regenerate the figures as SVG charts under figures/.
figures: build
	mkdir -p figures
	for f in fig5 fig6 fig7 fig8 fig9 fig-online fig-replication fig-locality; do \
		$(BIN)/vspexp -exp $$f -scale paper -repeats 3 -format svg -out figures; \
	done

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/metro-vod
	$(GO) run ./examples/heat-metrics
	$(GO) run ./examples/capacity-planning
	$(GO) run ./examples/trace-replay
	$(GO) run ./examples/replication
	$(GO) run ./examples/fault-repair
	$(GO) run ./examples/rolling-horizon
	$(GO) run ./examples/failover
	$(GO) run ./examples/sharded-intake
	$(GO) run ./examples/load-demo

# Two-node failover demo: durable primary + warm standby in one process,
# kill, fence, promote, byte-identical plan check (examples/failover).
failover-demo:
	$(GO) run ./examples/failover

# Sharded intake demo: a routing gateway over three horizon shards (one
# a durable primary/standby pair), placement policy comparison, merged
# plan validation, and a live primary kill with automatic promotion
# (examples/sharded-intake).
sharded-demo:
	$(GO) run ./examples/sharded-intake

# Load harness demo: a flash-crowd Pattern trace streamed straight into
# the closed-loop harness against a 2-shard auto-advancing gateway
# (examples/load-demo).
load-demo:
	$(GO) run ./examples/load-demo

# Closed-loop load measurement against an in-repo 2-shard gateway:
# generate a structured trace with vspgen, replay it with vspload, and
# record latency percentiles/shed rate as BENCH_load.json. Needs a
# running target: `make bench-load TARGET=http://127.0.0.1:8080`.
bench-load: build
	$(BIN)/vspgen -kind topology -gen metro -storages 6 -users 4 > /tmp/vsp-load-topo.json
	$(BIN)/vspgen -kind catalog -titles 50 > /tmp/vsp-load-catalog.json
	$(BIN)/vspgen -kind trace -topo /tmp/vsp-load-topo.json -catalog /tmp/vsp-load-catalog.json \
		-requests 20000 -diurnal 0.5 -flash 20h:3:0:0.7 -format jsonl -out /tmp/vsp-load-trace.jsonl
	$(BIN)/vspload -target $(TARGET) -trace /tmp/vsp-load-trace.jsonl -c 16 -out BENCH_load.json

clean:
	rm -rf $(BIN) figures
