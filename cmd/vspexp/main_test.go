package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig7CSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig7", "csv", 1, 0, "small", 3, 1, "."); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + one row per srate sweep point.
	if len(lines) != 10 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "with intermediate storage") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunFig9Table(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig9", "table", 1, 0, "small", 3, 1, "."); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "FIG9") {
		t.Errorf("missing title:\n%s", sb.String())
	}
}

func TestRunTable5Small(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "table5", "table", 1, 0, "small", 3, 1, "."); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE 5", "Method 2 or Method 4", "Cost increase"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig99", "table", 1, 0, "small", 1, 1, "."); err == nil {
		t.Error("expected unknown-experiment error")
	}
	if err := run(&sb, "fig5", "table", 1, 0, "galactic", 1, 1, "."); err == nil {
		t.Error("expected unknown-scale error")
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(&sb, "fig7", "svg", 1, 0, "small", 3, 1, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig7.svg"))
	if err != nil {
		t.Fatalf("svg not written: %v", err)
	}
	if !strings.Contains(string(blob), "<svg") || !strings.Contains(string(blob), "polyline") {
		t.Error("svg content unexpected")
	}
	if err := run(&sb, "fig7", "bogus", 1, 0, "small", 3, 1, dir); err == nil {
		t.Error("expected unknown-format error")
	}
}

func TestRunGridCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "grid", "csv", 1, 0, "small", 3, 1, "."); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Header + 6*4*8*4 = 768 rows.
	if len(lines) != 769 {
		t.Fatalf("grid rows = %d, want 769", len(lines))
	}
	if !strings.HasPrefix(lines[0], "srate_gbh,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig7", "markdown", 1, 0, "small", 3, 1, "."); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "### FIG7") || !strings.Contains(sb.String(), "|---|") {
		t.Errorf("markdown output unexpected:\n%s", sb.String())
	}
}
