// Command vspgen generates the JSON artifacts the other tools consume:
// service topologies, video catalogs and reservation workloads.
//
// Usage:
//
//	vspgen -kind topology -gen metro -storages 19 -users 10 -capacity-gb 5 > topo.json
//	vspgen -kind catalog -titles 500 -mean-gb 3.3 > catalog.json
//	vspgen -kind workload -topo topo.json -catalog catalog.json -alpha 0.271 > requests.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func main() {
	var (
		kind       = flag.String("kind", "topology", "what to generate: topology | catalog | workload")
		gen        = flag.String("gen", "metro", "topology generator: metro | star | chain | tree | ring | random")
		storages   = flag.Int("storages", 19, "number of intermediate storages")
		users      = flag.Int("users", 10, "users per neighborhood")
		capacityGB = flag.Float64("capacity-gb", 5, "per-storage capacity (GB)")
		fanout     = flag.Int("fanout", 2, "tree fanout (tree generator)")
		extraEdges = flag.Int("extra-edges", 6, "extra links (random generator)")
		titles     = flag.Int("titles", 500, "catalog size")
		meanGB     = flag.Float64("mean-gb", 3.3, "mean title size (GB)")
		topoPath   = flag.String("topo", "", "topology JSON (workload)")
		catPath    = flag.String("catalog", "", "catalog JSON (workload)")
		alpha      = flag.Float64("alpha", 0.271, "Zipf skew (workload)")
		windowH    = flag.Int("window-hours", 12, "reservation window (workload)")
		rpu        = flag.Int("rpu", 1, "requests per user (workload)")
		arrival    = flag.String("arrival", "uniform", "arrival process: uniform | peak | slotted")
		seed       = flag.Int64("seed", 1997, "RNG seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *kind, *gen, *storages, *users, *capacityGB, *fanout, *extraEdges,
		*titles, *meanGB, *topoPath, *catPath, *alpha, *windowH, *rpu, *arrival, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "vspgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind, gen string, storages, users int, capacityGB float64, fanout, extraEdges,
	titles int, meanGB float64, topoPath, catPath string, alpha float64,
	windowH, rpu int, arrival string, seed int64) error {

	switch kind {
	case "topology":
		cfg := topology.GenConfig{
			Storages:        storages,
			UsersPerStorage: users,
			Capacity:        units.GBf(capacityGB),
		}
		var topo *topology.Topology
		switch gen {
		case "metro":
			topo = topology.Metro(cfg, seed)
		case "star":
			topo = topology.Star(cfg)
		case "chain":
			topo = topology.Chain(cfg)
		case "tree":
			topo = topology.Tree(cfg, fanout)
		case "ring":
			topo = topology.Ring(cfg)
		case "random":
			topo = topology.Random(cfg, extraEdges, seed)
		default:
			return fmt.Errorf("unknown topology generator %q", gen)
		}
		st := topo.ComputeStats()
		fmt.Fprintf(os.Stderr, "vspgen: %d nodes, %d links, %d users; diameter %d hops, avg VW distance %.1f\n",
			st.Nodes, st.Links, st.Users, st.Diameter, st.AvgHops)
		return topo.Encode(w)

	case "catalog":
		cat, err := media.Generate(media.GenConfig{
			Titles:   titles,
			MeanSize: units.GBf(meanGB),
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		return cat.Encode(w)

	case "workload":
		if topoPath == "" || catPath == "" {
			return fmt.Errorf("workload generation needs -topo and -catalog")
		}
		topo, err := loadTopology(topoPath)
		if err != nil {
			return err
		}
		cat, err := loadCatalog(catPath)
		if err != nil {
			return err
		}
		var arr workload.Arrival
		switch arrival {
		case "uniform":
			arr = workload.Uniform
		case "peak":
			arr = workload.EveningPeak
		case "slotted":
			arr = workload.Slotted
		default:
			return fmt.Errorf("unknown arrival %q", arrival)
		}
		set, err := workload.Generate(topo, cat, workload.Config{
			Alpha:           alpha,
			Window:          simtime.Duration(windowH) * simtime.Hour,
			RequestsPerUser: rpu,
			Arrival:         arr,
			Seed:            seed,
		})
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(set)

	default:
		return fmt.Errorf("unknown kind %q (topology | catalog | workload)", kind)
	}
}

func loadTopology(path string) (*topology.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.Decode(f)
}

func loadCatalog(path string) (*media.Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return media.Decode(f)
}
