package experiment

import (
	"fmt"

	"github.com/vodsim/vsp/internal/stats"
)

// Figure is a regenerated paper figure: named series over a swept x axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
}

// Default sweep values from Table 4.
var (
	NRateSweep    = []float64{300, 400, 500, 600, 700, 800, 900, 1000}
	SRateSweep    = []float64{3, 4, 5, 6, 7, 8}
	SRateWide     = []float64{0, 25, 50, 75, 100, 150, 200, 250, 300}
	CapacitySweep = []float64{5, 8, 11, 14}
	AlphaSweep    = []float64{0.1, 0.271, 0.5, 0.7}
	AlphaWide     = []float64{0.1, 0.2, 0.271, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
)

// Fig5 regenerates Figure 5: total service cost vs network charging rate,
// one curve per storage charging rate, plus the system without
// intermediate storage. (α = 0.271, storage size 5 GB.)
func Fig5(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	fig := &Figure{
		ID:     "fig5",
		Title:  "Effect of network charging rate under different storage charging rates",
		XLabel: "network charging rate ($/GB)",
		YLabel: "total service cost ($)",
	}
	srates := []float64{3, 5, 7}
	var ps []Params
	for _, sr := range srates {
		for _, nr := range NRateSweep {
			p := base
			p.SRateGBHour, p.NRateGB = sr, nr
			ps = append(ps, p)
		}
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, sr := range srates {
		s := stats.Series{Name: fmt.Sprintf("srate=%g", sr)}
		for _, nr := range NRateSweep {
			s.Add(nr, float64(results[k].FinalCost))
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	// Network-only baseline (independent of srate; reuse the srate=3 row).
	noIS := stats.Series{Name: "without intermediate storage"}
	for i, nr := range NRateSweep {
		noIS.Add(nr, float64(results[i].DirectCost))
	}
	fig.Series = append(fig.Series, noIS)
	return fig, nil
}

// Fig6 regenerates Figure 6: total service cost vs network charging rate
// under different access patterns (Zipf α), fixed storage rate and size.
func Fig6(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	fig := &Figure{
		ID:     "fig6",
		Title:  "Effect of network charging rate under different access patterns",
		XLabel: "network charging rate ($/GB)",
		YLabel: "total service cost ($)",
	}
	var ps []Params
	for _, a := range AlphaSweep {
		for _, nr := range NRateSweep {
			p := base
			p.Alpha, p.NRateGB = a, nr
			ps = append(ps, p)
		}
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, a := range AlphaSweep {
		s := stats.Series{Name: fmt.Sprintf("alpha=%g", a)}
		for _, nr := range NRateSweep {
			s.Add(nr, float64(results[k].FinalCost))
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig7 regenerates Figure 7: total service cost vs storage charging rate,
// against the network-only system (α = 0.271, 5 GB storages, nrate 300).
func Fig7(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	base.NRateGB = 300
	fig := &Figure{
		ID:     "fig7",
		Title:  "Storage charging rate vs total service cost",
		XLabel: "storage charging rate ($/GB·h)",
		YLabel: "total service cost ($)",
	}
	var ps []Params
	for _, sr := range SRateWide {
		p := base
		p.SRateGBHour = sr
		if sr == 0 {
			p.SRateGBHour = 1e-9 // avoid the zero-means-default rule; effectively free storage
		}
		ps = append(ps, p)
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	with := stats.Series{Name: "with intermediate storage"}
	netOnly := stats.Series{Name: "network only system"}
	for i, sr := range SRateWide {
		with.Add(sr, float64(results[i].FinalCost))
		netOnly.Add(sr, float64(results[i].DirectCost))
	}
	fig.Series = append(fig.Series, with, netOnly)
	return fig, nil
}

// Fig8 regenerates Figure 8: total service cost vs storage charging rate
// under different network charging rates.
func Fig8(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	fig := &Figure{
		ID:     "fig8",
		Title:  "Storage charging rate vs total service cost under different network charging rates",
		XLabel: "storage charging rate ($/GB·h)",
		YLabel: "total service cost ($)",
	}
	nrates := []float64{300, 500, 700, 900}
	var ps []Params
	for _, nr := range nrates {
		for _, sr := range SRateWide {
			p := base
			p.NRateGB = nr
			p.SRateGBHour = sr
			if sr == 0 {
				p.SRateGBHour = 1e-9
			}
			ps = append(ps, p)
		}
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, nr := range nrates {
		s := stats.Series{Name: fmt.Sprintf("nrate=%g", nr)}
		for _, sr := range SRateWide {
			s.Add(sr, float64(results[k].FinalCost))
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9 regenerates Figure 9: total service cost vs access pattern skew for
// several intermediate storage sizes.
func Fig9(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	base.NRateGB = 300
	fig := &Figure{
		ID:     "fig9",
		Title:  "User access pattern vs intermediate storage size",
		XLabel: "alpha value of zipf distribution",
		YLabel: "total service cost ($)",
	}
	caps := []float64{5, 8, 11}
	var ps []Params
	for _, c := range caps {
		for _, a := range AlphaWide {
			p := base
			p.CapacityGB, p.Alpha = c, a
			ps = append(ps, p)
		}
	}
	results, err := RunAveraged(ps, repeats, parallelism)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, c := range caps {
		s := stats.Series{Name: fmt.Sprintf("storage=%gGB", c)}
		for _, a := range AlphaWide {
			s.Add(a, float64(results[k].FinalCost))
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
