package scheduler_test

import (
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/scheduler"
)

// BenchmarkSchedule measures the one-shot two-phase scheduler on a
// mid-size rig (500 requests). This is the number BENCH_scheduler.json
// tracks across PRs; keep the parameters stable.
func BenchmarkSchedule(b *testing.B) {
	r, err := experiment.Build(experiment.Params{
		Storages:        10,
		UsersPerStorage: 5,
		RequestsPerUser: 10,
		Titles:          50,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule10k is the stress-size companion to BenchmarkSchedule:
// the same two-phase solve on a 10,000-request rig (25 storages × 20
// users × 20 requests, 200 titles). It exists to keep the hot-path data
// structures honest at a scale where any superlinear behavior in the
// occupancy ledger or SORP would dominate; run it with `-cpu 1,4` (the
// bench-json target does) to also track the multi-core win.
func BenchmarkSchedule10k(b *testing.B) {
	r, err := experiment.Build(experiment.Params{
		Storages:        25,
		UsersPerStorage: 20,
		RequestsPerUser: 20,
		Titles:          200,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulePhase1 isolates the phase-1 per-file fan-out on the same
// rig as BenchmarkSchedule. Workers is left at 0 (GOMAXPROCS), so running
// it with `-cpu 1,4` compares the sequential path against a 4-worker pool
// on identical input; benchjson turns the pair into phase1_parallel_speedup.
// The output is byte-identical either way — only the wall clock moves, and
// only when real hardware parallelism is available.
func BenchmarkSchedulePhase1(b *testing.B) {
	r, err := experiment.Build(experiment.Params{
		Storages:        10,
		UsersPerStorage: 5,
		RequestsPerUser: 10,
		Titles:          50,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := scheduler.Config{SkipResolution: true, SkipValidation: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(r.Model, r.Requests, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
