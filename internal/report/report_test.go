package report

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/stats"
)

func sampleFigure() *experiment.Figure {
	s1 := stats.Series{Name: "srate=3"}
	s1.Add(300, 100000)
	s1.Add(400, 120000)
	s2 := stats.Series{Name: "no IS, with \"quotes\""}
	s2.Add(300, 110000)
	s2.Add(400, 140000)
	return &experiment.Figure{
		ID: "figX", Title: "sample", XLabel: "nrate", YLabel: "cost",
		Series: []stats.Series{s1, s2},
	}
}

func TestWriteFigureTable(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureTable(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"FIGX", "srate=3", "300", "100000", "140000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, ylabel, header, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestWriteFigureTableEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureTable(&b, &experiment.Figure{ID: "e"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Error("empty figure not flagged")
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureCSV(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != `nrate,srate=3,"no IS, with ""quotes"""` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "300,100000.00,110000.00" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteTable5(t *testing.T) {
	res := &experiment.Table5Result{
		TotalCases:   785,
		CostAffected: 622,
		Best2or4:     614,
	}
	res.Best[sorp.Period] = 100
	res.Best[sorp.PeriodPerCost] = 395
	res.Best[sorp.Space] = 120
	res.Best[sorp.SpacePerCost] = 437
	res.DeltaPct = stats.Summarize([]float64{12, 34, 2})
	var b strings.Builder
	if err := WriteTable5(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"785", "622",
		"395 out of 622 (64%)", // 63.5% rounds to 64 at %.0f
		"437 out of 622 (70%)",
		"614 out of 622 (99%)", // 98.7% rounds to 99 at %.0f
		"Method 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 missing %q:\n%s", want, out)
		}
	}
}

func TestWriteResults(t *testing.T) {
	rs := []experiment.Result{{
		Params:     experiment.Params{SRateGBHour: 5, NRateGB: 300, CapacityGB: 5, Alpha: 0.271},
		Phase1Cost: 100, FinalCost: 112, DirectCost: 150,
		Overflows: 3, Victims: 4, Requests: 190,
	}}
	var b strings.Builder
	if err := WriteResults(&b, rs); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "srate_gbh,") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "5,300,5,0.271,190,100.00,112.00,150.00,3,4,12.00,25.33") {
		t.Errorf("row wrong:\n%s", out)
	}
}

func TestWriteFigureMarkdown(t *testing.T) {
	var b strings.Builder
	if err := WriteFigureMarkdown(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### FIGX", "| nrate |", "| 300 | 100,000 | 110,000 |", "| 400 | 120,000 | 140,000 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	var e strings.Builder
	if err := WriteFigureMarkdown(&e, &experiment.Figure{ID: "e"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "no data") {
		t.Error("empty figure not flagged")
	}
}

func TestHumanMoney(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for in, want := range cases {
		if got := humanMoney(in); got != want {
			t.Errorf("humanMoney(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteTable5CSV(t *testing.T) {
	res := &experiment.Table5Result{TotalCases: 1}
	c := experiment.CaseResult{
		Params:     experiment.Params{SRateGBHour: 3, CapacityGB: 5, NRateGB: 300, Alpha: 0.1},
		Phase1Cost: 1000,
		Overflows:  2,
		Resolved:   true,
	}
	c.FinalCost[sorp.Period] = 1100
	c.FinalCost[sorp.PeriodPerCost] = 1050
	c.FinalCost[sorp.Space] = 1150
	c.FinalCost[sorp.SpacePerCost] = 1040
	res.Cases = []experiment.CaseResult{c}
	var b strings.Builder
	if err := WriteTable5CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "srate_gbh,") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "3,5,300,0.1,2,1000.00,1100.00,1050.00,1150.00,1040.00") {
		t.Errorf("row wrong:\n%s", out)
	}
}
