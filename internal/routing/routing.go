// Package routing computes cheapest routes over the priced service network.
// The scheduler needs, for every candidate stream, the route from a supply
// point (warehouse or a caching storage) to the destination storage that
// minimizes the summed network charging rate (paper §3.2 step 4: "If a new
// intermediate storage is introduced ... the scheduler has to compute the
// network transmission cost of transferring a file to a new cache").
package routing

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/topology"
)

// Route is a node sequence from source to destination. A single-element
// route means source == destination (a local cache hit; no network use).
type Route []topology.NodeID

// Src returns the first node of the route.
func (r Route) Src() topology.NodeID { return r[0] }

// Dst returns the last node of the route.
func (r Route) Dst() topology.NodeID { return r[len(r)-1] }

// Hops returns the number of edges traversed.
func (r Route) Hops() int { return len(r) - 1 }

// Clone returns an independent copy of the route.
func (r Route) Clone() Route { return append(Route(nil), r...) }

// Table holds cheapest routes between every pair of nodes, weighted by the
// rate book's per-edge nrate. Building it runs Dijkstra from every node:
// O(V·E·logV), microseconds at the paper's 20-node scale.
type Table struct {
	topo *topology.Topology
	book *pricing.Book
	// dist[s][d] is the cheapest summed nrate from s to d.
	dist [][]pricing.NRate
	// prev[s][d] is the node preceding d on a cheapest s->d route
	// (-1 for d == s or unreachable d).
	prev [][]topology.NodeID
	// routes[s][d] is the reconstructed cheapest route, precomputed so the
	// greedy's per-delivery Route call is a slice load instead of a
	// predecessor-chain walk plus allocation (nil when d is unreachable).
	routes [][]Route
}

// NewTable computes all-pairs cheapest routes for the book's topology.
// The table snapshots the book's current edge rates; rebuild it after
// changing rates.
func NewTable(book *pricing.Book) *Table {
	topo := book.Topology()
	n := topo.NumNodes()
	t := &Table{
		topo: topo,
		book: book,
		dist: make([][]pricing.NRate, n),
		prev: make([][]topology.NodeID, n),
	}
	for s := 0; s < n; s++ {
		t.dist[s], t.prev[s] = dijkstra(topo, book, topology.NodeID(s))
	}
	t.routes = make([][]Route, n)
	for s := 0; s < n; s++ {
		t.routes[s] = make([]Route, n)
		for d := 0; d < n; d++ {
			src, dst := topology.NodeID(s), topology.NodeID(d)
			if !t.Reachable(src, dst) {
				continue
			}
			t.routes[s][d] = t.reconstruct(src, dst)
		}
	}
	return t
}

// Rate returns the cheapest summed per-hop rate from src to dst. In the
// book's EndToEnd mode an explicit override, if present, takes precedence.
func (t *Table) Rate(src, dst topology.NodeID) pricing.NRate {
	if t.book.Mode() == pricing.EndToEnd {
		if r, ok := t.book.EndToEndOverride(src, dst); ok {
			return r
		}
	}
	return t.dist[src][dst]
}

// Reachable reports whether dst can be reached from src.
func (t *Table) Reachable(src, dst topology.NodeID) bool {
	return !math.IsInf(float64(t.dist[src][dst]), 1)
}

// Route returns a cheapest route from src to dst, or an error if dst is
// unreachable. The route is shared with the table and with every other
// caller: treat it as immutable and Clone it before modifying.
func (t *Table) Route(src, dst topology.NodeID) (Route, error) {
	r := t.routes[src][dst]
	if r == nil {
		return nil, fmt.Errorf("routing: node %d unreachable from %d", dst, src)
	}
	return r, nil
}

// reconstruct walks the predecessor chain dst -> src and reverses it.
func (t *Table) reconstruct(src, dst topology.NodeID) Route {
	if src == dst {
		return Route{src}
	}
	var rev Route
	for cur := dst; cur != src; cur = t.prev[src][cur] {
		rev = append(rev, cur)
		if len(rev) > t.topo.NumNodes() {
			panic("routing: predecessor chain cycle")
		}
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// dijkstra runs Dijkstra's algorithm from src, weighting each edge by its
// nrate, and returns per-destination distances and predecessors.
func dijkstra(topo *topology.Topology, book *pricing.Book, src topology.NodeID) ([]pricing.NRate, []topology.NodeID) {
	n := topo.NumNodes()
	dist := make([]pricing.NRate, n)
	prev := make([]topology.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = pricing.NRate(math.Inf(1))
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		topo.Neighbors(u, func(edgeIdx int, v topology.NodeID) {
			if done[v] {
				return
			}
			nd := dist[u] + book.NRate(edgeIdx)
			// Tie-break on the smaller predecessor ID so routes are
			// deterministic across runs.
			if nd < dist[v] || (nd == dist[v] && prev[v] >= 0 && u < prev[v]) {
				dist[v] = nd
				prev[v] = u
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		})
	}
	return dist, prev
}

type nodeItem struct {
	node topology.NodeID
	dist pricing.NRate
}

type nodeHeap []nodeItem

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
