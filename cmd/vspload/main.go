// Command vspload is the closed-loop load harness for the reservation
// intake tier. It replays a workload trace (CSV or JSONL, as emitted by
// vspgen) against the HTTP surface of a running vspserve or vspgateway:
// a fixed worker pool submits reservations back-to-back, a coalescing
// advancer closes epochs when the service reports them due, and the run
// is summarized as submit-latency percentiles (p50/p95/p99/max), shed
// (429) and late-arrival (409) rates, epoch advance lag and per-shard
// routing counts.
//
// Usage:
//
//	vspload -target http://127.0.0.1:8080 -trace trace.jsonl -c 16 \
//	        -advance-lag-hours 2 -out load.json
//
// Shed requests are counted, never retried: a 429 is the admission
// controller doing its job and the harness's business is to measure it.
// The -out JSON feeds the BENCH trajectory (see cmd/benchjson for the
// micro-benchmark side).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/vodsim/vsp/internal/loadgen"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

type options struct {
	target          string
	tracePath       string
	format          string
	name            string
	concurrency     int
	advanceLagHours float64
	noAdvance       bool
	timeout         time.Duration
	outPath         string
	quiet           bool
}

func main() {
	var o options
	flag.StringVar(&o.target, "target", "", "base URL of the intake surface — vspserve or vspgateway (required)")
	flag.StringVar(&o.tracePath, "trace", "", "workload trace to replay, CSV or JSONL (required; - reads stdin)")
	flag.StringVar(&o.format, "format", "", "trace format: csv | jsonl (default: by file extension)")
	flag.StringVar(&o.name, "name", "", "label this run; with -out, merge into an array keyed by name instead of overwriting")
	flag.IntVar(&o.concurrency, "c", 8, "closed-loop worker count")
	flag.Float64Var(&o.advanceLagHours, "advance-lag-hours", 2, "hold epoch advance targets this many hours behind the newest submitted arrival")
	flag.BoolVar(&o.noAdvance, "no-advance", false, "never POST /v1/advance (the target advances itself, e.g. a gateway with -auto-advance)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	flag.StringVar(&o.outPath, "out", "", "write the JSON result here")
	flag.BoolVar(&o.quiet, "quiet", false, "suppress the human-readable summary")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "vspload:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.target == "" || o.tracePath == "" {
		return fmt.Errorf("-target and -trace are required")
	}
	in := os.Stdin
	if o.tracePath != "-" {
		f, err := os.Open(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	format := o.format
	if format == "" {
		switch strings.ToLower(filepath.Ext(o.tracePath)) {
		case ".jsonl", ".ndjson":
			format = "jsonl"
		default:
			format = "csv"
		}
	}
	// The target validates users and videos against its own model; the
	// reader only rejects records that are malformed on any model.
	var tr workload.TraceReader
	switch format {
	case "csv":
		tr = workload.NewCSVTraceReader(in, nil, nil)
	case "jsonl":
		tr = workload.NewJSONLTraceReader(in, nil, nil)
	default:
		return fmt.Errorf("unknown format %q (csv | jsonl)", format)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	res, err := loadgen.Run(ctx, loadgen.Config{
		Target:         o.target,
		Concurrency:    o.concurrency,
		Timeout:        o.timeout,
		DisableAdvance: o.noAdvance,
		AdvanceLag:     simtime.Duration(o.advanceLagHours * float64(simtime.Hour)),
	}, tr)
	if err != nil {
		return err
	}
	res.Name = o.name

	if !o.quiet {
		printSummary(res)
	}
	if o.outPath != "" {
		if err := writeResult(o.outPath, res); err != nil {
			return err
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d submit errors (first: %s)", res.Errors, strings.Join(res.ErrorSamples, "; "))
	}
	return nil
}

// writeResult persists the measurement. An unnamed run keeps the legacy
// behaviour: the file is one result object, overwritten. A named run
// merges into an array of results keyed by name — an existing entry with
// the same name is replaced, others pass through byte-for-byte, and a
// legacy single-object file becomes the array's first element.
func writeResult(path string, res *loadgen.Result) error {
	nb, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if res.Name == "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644)
	}
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	merged, err := mergeNamed(existing, res.Name, nb)
	if err != nil {
		return fmt.Errorf("merging into %s: %w", path, err)
	}
	return os.WriteFile(path, append(merged, '\n'), 0o644)
}

func mergeNamed(existing []byte, name string, entry json.RawMessage) ([]byte, error) {
	var entries []json.RawMessage
	if trimmed := strings.TrimSpace(string(existing)); trimmed != "" {
		if strings.HasPrefix(trimmed, "[") {
			if err := json.Unmarshal([]byte(trimmed), &entries); err != nil {
				return nil, err
			}
		} else {
			// Legacy single-object file: keep it as the first element.
			if !json.Valid([]byte(trimmed)) {
				return nil, fmt.Errorf("existing file is not valid JSON")
			}
			entries = []json.RawMessage{json.RawMessage(trimmed)}
		}
	}
	replaced := false
	for i, e := range entries {
		var peek struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(e, &peek) == nil && peek.Name == name {
			entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, entry)
	}
	return json.MarshalIndent(entries, "", "  ")
}

func printSummary(res *loadgen.Result) {
	fmt.Printf("target      %s  (x%d workers)\n", res.Target, res.Concurrency)
	fmt.Printf("submitted   %d in %s  (%.0f accepted/s)\n",
		res.Submitted, time.Duration(res.ElapsedMS)*time.Millisecond, res.AcceptedPerSec)
	fmt.Printf("outcomes    %d accepted (%.1f%% available), %d shed (%.1f%%), %d late, %d errors\n",
		res.Accepted, 100*res.Availability, res.Shed, 100*res.ShedRate, res.Late, res.Errors)
	if len(res.ErrorsByCause) > 0 {
		causes := make([]string, 0, len(res.ErrorsByCause))
		for c := range res.ErrorsByCause {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fmt.Printf("err causes ")
		for _, c := range causes {
			fmt.Printf(" %s=%d", c, res.ErrorsByCause[c])
		}
		fmt.Println()
	}
	fmt.Printf("submit      p50 %s  p95 %s  p99 %s  max %s\n",
		res.Submit.P50, res.Submit.P95, res.Submit.P99, res.Submit.Max)
	if res.Advances > 0 {
		fmt.Printf("advance     %d epochs closed, p50 %s max %s, shard lag <= %dms, final epoch %d horizon %v\n",
			res.Advances, res.Advance.P50, res.Advance.Max, res.MaxShardLagMS, res.FinalEpoch, res.FinalHorizon)
	}
	if len(res.ShardRouted) > 0 {
		shards := make([]string, 0, len(res.ShardRouted))
		for s := range res.ShardRouted {
			shards = append(shards, s)
		}
		sort.Strings(shards)
		fmt.Printf("routing    ")
		for _, s := range shards {
			fmt.Printf(" %s=%d", s, res.ShardRouted[s])
		}
		fmt.Println()
	}
}
