package workload

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// countingWriter tracks bytes written without retaining them, so a large
// emit can be measured without the buffer itself dominating memory.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// Round-trip property (both formats): generate -> stream out -> stream
// in must reproduce the in-memory GeneratePattern set byte-identically.
func TestStreamRoundTripMatchesInMemory(t *testing.T) {
	topo, cat := patternFixture(t, 5)
	p := Pattern{
		Base:     Config{Seed: 4, Locality: 0.3},
		Requests: 2000,
		Diurnal:  Diurnal{Strength: 0.6},
		Flash:    []Flash{{At: simtime.Time(18 * simtime.Hour), Boost: 2, Video: 3, Share: 0.5}},
		Drift:    Drift{Interval: 2 * simtime.Hour},
	}
	want, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"csv", "jsonl"} {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			var tw TraceWriter
			if format == "csv" {
				tw = NewCSVTraceWriter(&buf)
			} else {
				tw = NewJSONLTraceWriter(&buf)
			}
			if err := p.Stream(topo, cat, tw.Write); err != nil {
				t.Fatal(err)
			}
			if err := tw.Close(); err != nil {
				t.Fatal(err)
			}
			var tr TraceReader
			if format == "csv" {
				tr = NewCSVTraceReader(&buf, topo, cat)
			} else {
				tr = NewJSONLTraceReader(&buf, topo, cat)
			}
			got, err := ReadAllTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("round-trip length %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d diverged after %s round-trip: %+v != %+v", i, format, got[i], want[i])
				}
			}
		})
	}
}

// The stream is identical regardless of how the consumer chunks it:
// PatternReader with different channel buffers, and Stream directly,
// all yield the same sequence for one seed.
func TestStreamDeterministicAcrossChunkSizes(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	p := Pattern{
		Base:     Config{Seed: 99, Locality: 0.5},
		Requests: 1500,
		Diurnal:  Diurnal{Strength: 0.7},
		Churn:    Churn{Interval: 3 * simtime.Hour, Fraction: 0.2},
		Regions:  2, CohortShare: 0.5,
	}
	want, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, buffer := range []int{1, 7, 256, 4096} {
		pr := NewPatternReader(topo, cat, p, buffer)
		var got Set
		for {
			r, err := pr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, r)
		}
		pr.Close()
		if len(got) != len(want) {
			t.Fatalf("buffer %d: %d requests, want %d", buffer, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("buffer %d: row %d differs: %+v != %+v", buffer, i, got[i], want[i])
			}
		}
	}
}

func TestPatternReaderEarlyClose(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	pr := NewPatternReader(topo, cat, Pattern{Base: Config{Seed: 1}, Requests: 100000}, 4)
	for i := 0; i < 10; i++ {
		if _, err := pr.Next(); err != nil {
			t.Fatal(err)
		}
	}
	pr.Close() // must not leak or deadlock the generator goroutine
	pr.Close() // idempotent
}

func TestPatternReaderSurfacesError(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	pr := NewPatternReader(topo, cat, Pattern{}, 4) // Requests == 0: invalid
	defer pr.Close()
	if _, err := pr.Next(); err == nil || err == io.EOF {
		t.Fatalf("invalid pattern surfaced %v, want validation error", err)
	}
}

// Streaming a 1M-request trace must not materialize it: heap growth
// during the emit stays far below the ~24 MB the Set itself would need.
func TestStreamBoundedMemoryMillionRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-request emit skipped in -short mode")
	}
	topo, cat := patternFixture(t, 10)
	p := Pattern{
		Base:     Config{Seed: 8},
		Requests: 1_000_000,
		Diurnal:  Diurnal{Strength: 0.5},
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	cw := &countingWriter{}
	tw := NewCSVTraceWriter(cw)
	emitted := 0
	err := p.Stream(topo, cat, func(r Request) error {
		emitted++
		return tw.Write(r)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	if emitted != p.Requests {
		t.Fatalf("emitted %d of %d", emitted, p.Requests)
	}
	if cw.n == 0 {
		t.Fatal("no bytes written")
	}
	// HeapAlloc may shrink across the GC cycle; only growth matters.
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const limit = 8 << 20 // one slot's events + the weight grid, with slack
	if growth > limit {
		t.Fatalf("heap grew %d bytes streaming 1M requests (limit %d): trace is materializing", growth, limit)
	}
}

func TestJSONLReaderErrors(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 2})
	cat := testCatalog(t, 5)
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "nope\n"},
		{"unknown user", `{"user":99,"video":1,"start":100}` + "\n"},
		{"unknown video", `{"user":0,"video":99,"start":100}` + "\n"},
		{"negative start", `{"user":0,"video":1,"start":-5}` + "\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := NewJSONLTraceReader(strings.NewReader(c.in), topo, cat)
			if _, err := tr.Next(); err == nil || err == io.EOF {
				t.Fatalf("expected error for %q, got %v", c.in, err)
			}
		})
	}
	// Blank lines are tolerated; empty input is a clean EOF.
	tr := NewJSONLTraceReader(strings.NewReader("\n\n"), topo, cat)
	if _, err := tr.Next(); err != io.EOF {
		t.Fatalf("blank-line input: %v, want EOF", err)
	}
}

func TestJSONLWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	tw := NewJSONLTraceWriter(&buf)
	if err := tw.Write(Request{User: 3, Video: 7, Start: 42}); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"user":3`, `"video":7`, `"start":42`} {
		if !strings.Contains(line, want) {
			t.Fatalf("JSONL line %q missing %s", line, want)
		}
	}
}

var sinkVideo media.VideoID

func BenchmarkPatternStream100k(b *testing.B) {
	topo := topology.Metro(topology.GenConfig{Storages: 8, UsersPerStorage: 10}, 1)
	cat, err := media.Generate(media.GenConfig{Titles: 200})
	if err != nil {
		b.Fatal(err)
	}
	p := Pattern{
		Base:     Config{Seed: 1, Locality: 0.3},
		Requests: 100_000,
		Diurnal:  Diurnal{Strength: 0.6},
		Flash:    []Flash{{At: simtime.Time(20 * simtime.Hour), Boost: 4, Video: 0, Share: 0.7}},
		Regions:  4, CohortShare: 0.3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := p.Stream(topo, cat, func(r Request) error {
			sinkVideo = r.Video
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
