package online

import (
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestOnlineFig2(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f.Model, f.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// U1 misses (first request). U2 misses locally but IS1 has a copy
	// (admitted from U1's stream? No — admission is at the REQUESTER's
	// local storage: U1's stream admits at IS1). U2 is then served from
	// IS1 (cheaper than VW), and admits a copy at IS2; U3 hits IS2
	// locally.
	if res.CacheHits != 2 || res.LocalHits != 1 {
		t.Errorf("hits: cache=%d local=%d", res.CacheHits, res.LocalHits)
	}
	if res.TotalCost() <= 0 {
		t.Error("cost must be positive")
	}
	// Network: 64.8 + 32.4 + 0 = $97.20 — same streams as the offline
	// optimum on this example.
	if !res.NetworkCost.ApproxEqual(units.Money(97.2), 1e-6) {
		t.Errorf("network = %v", res.NetworkCost)
	}
	// Storage: the online system cannot size residencies to future use,
	// so it pays at least the offline optimum's $11.25.
	if res.StorageCost < units.Money(11.25-1e-9) {
		t.Errorf("online storage %v below offline optimum", res.StorageCost)
	}
}

func TestOnlineNeverBeatsOfflineAtScale(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rig, err := testutil.NewPaperRig(9, 8, 40, 6*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Seed: seed + 60})
		if err != nil {
			t.Fatal(err)
		}
		off, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
		if err != nil {
			t.Fatal(err)
		}
		on, err := Run(rig.Model, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if on.Requests != len(reqs) {
			t.Fatalf("seed %d: served %d of %d", seed, on.Requests, len(reqs))
		}
		// The offline scheduler with full batch knowledge must not lose to
		// the reactive baseline. (Not a theorem for arbitrary inputs — the
		// greedy is heuristic — but a solid regression check across seeds.)
		if float64(off.FinalCost) > float64(on.TotalCost())*1.001 {
			t.Errorf("seed %d: offline %v worse than online %v", seed, off.FinalCost, on.TotalCost())
		}
	}
}

func TestOnlineEvictionUnderPressure(t *testing.T) {
	// One-slot storages (4 GB holding a single 2.5 GB title), two titles
	// requested alternately: each admission evicts the other title.
	topo := topology.Star(topology.GenConfig{Storages: 1, UsersPerStorage: 4, Capacity: 4 * units.GB})
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(1), pricing.PerGB(300))
	model := cost.NewModel(book, routing.NewTable(book), cat)
	users := topo.UsersAt(topo.Storages()[0])
	h := simtime.Time(5 * simtime.Hour)
	reqs := workload.Set{
		{User: users[0], Video: 0, Start: 0},
		{User: users[1], Video: 1, Start: h},
		{User: users[2], Video: 0, Start: 2 * h},
		{User: users[3], Video: 1, Start: 3 * h},
	}
	res, err := Run(model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Error("expected LRU evictions under space pressure")
	}
	if res.LocalHits != 0 {
		t.Errorf("alternating titles on a one-slot cache must never hit locally, got %d", res.LocalHits)
	}
}

func TestOnlinePinnedCopiesBlockAdmission(t *testing.T) {
	// Two concurrent playbacks of different titles at a one-slot storage:
	// the second title cannot be admitted while the first is being read.
	rig, err := testutil.NewPaperRig(2, 4, 2, 4*units.GB, testutil.PerGBHour(1), pricing.PerGB(300), 3)
	if err != nil {
		t.Fatal(err)
	}
	users := rig.Topo.UsersAt(rig.Topo.Storages()[0])
	reqs := workload.Set{
		{User: users[0], Video: 0, Start: 0},
		{User: users[1], Video: 1, Start: 600}, // overlaps title 0's playback
		{User: users[2], Video: 1, Start: 1200},
	}
	res, err := Run(rig.Model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Title 1 was never admitted (blocked at t=600), so the t=1200 request
	// cannot hit locally... unless admission succeeded at 1200 via the
	// second stream — which serves user 2 itself. Either way: no eviction
	// of a pinned copy may have occurred, and all requests are served.
	if res.Requests != 3 {
		t.Fatal("not all requests served")
	}
}

func TestOnlineOversizedTitleSkipsAdmission(t *testing.T) {
	rig, err := testutil.NewPaperRig(2, 2, 2, 1*units.GB, testutil.PerGBHour(1), pricing.PerGB(300), 3)
	if err != nil {
		t.Fatal(err)
	}
	users := rig.Topo.UsersAt(rig.Topo.Storages()[0])
	reqs := workload.Set{
		{User: users[0], Video: 0, Start: 0},
		{User: users[1], Video: 0, Start: 20000},
	}
	res, err := Run(rig.Model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.StorageCost != 0 {
		t.Errorf("oversized titles must never cache: %+v", res)
	}
}

func TestOnlineEvictionTieBreakDeterministic(t *testing.T) {
	// Two copies with identical lastUse compete for eviction: the victim
	// must be chosen by the documented rule (older load, then lower video
	// ID), not by sort.Slice's unspecified equal-key order. Requests for
	// titles 0 and 1 start at the same instant, so both cached copies
	// carry the same lastUse when title 2's admission forces an eviction.
	topo := topology.Star(topology.GenConfig{Storages: 1, UsersPerStorage: 4, Capacity: 5 * units.GB})
	cat, err := media.Uniform(3, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, testutil.PerGBHour(1), pricing.PerGB(300))
	model := cost.NewModel(book, routing.NewTable(book), cat)
	users := topo.UsersAt(topo.Storages()[0])
	h := simtime.Time(5 * simtime.Hour)
	reqs := workload.Set{
		{User: users[0], Video: 0, Start: 0},
		{User: users[1], Video: 1, Start: 0}, // same lastUse as title 0
		{User: users[2], Video: 2, Start: h}, // admission evicts exactly one
		{User: users[3], Video: 1, Start: 2 * h},
	}
	first, err := Run(model, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", first.Evictions)
	}
	// The tie must fall on title 0 (equal load time, lower video ID), so
	// title 1's copy survives and serves the final request locally.
	if first.LocalHits != 1 {
		t.Fatalf("local hits = %d, want 1 (title 1 must survive the tie)", first.LocalHits)
	}
	// And the whole outcome must be reproducible run over run.
	for i := 0; i < 10; i++ {
		again, err := Run(model, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if *again != *first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

func TestOnlineInputValidation(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f.Model, workload.Set{{User: 99, Video: 0, Start: 0}}); err == nil {
		t.Error("expected unknown-user error")
	}
	if _, err := Run(f.Model, workload.Set{{User: 0, Video: 42, Start: 0}}); err == nil {
		t.Error("expected unknown-video error")
	}
	res, err := Run(f.Model, nil)
	if err != nil || res.TotalCost() != 0 {
		t.Errorf("empty run: %+v, %v", res, err)
	}
}

func TestOnlineHitRate(t *testing.T) {
	r := &Result{Requests: 4, CacheHits: 1}
	if r.HitRate() != 0.25 {
		t.Error("HitRate wrong")
	}
	empty := &Result{}
	if empty.HitRate() != 0 {
		t.Error("empty HitRate must be 0")
	}
}
