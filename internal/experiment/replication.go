package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/placement"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/stats"
)

// FigReplication is an extension sweep comparing caching architectures
// across access-pattern skew:
//
//	direct            no caching at all (the paper's network-only system)
//	static            pre-placed standing copies only (strategic
//	                  replication, the paper's companion work [16])
//	dynamic           the paper's two-phase scheduler
//	dynamic+static    both combined
//
// The sweep quantifies the repository's placement finding: dynamic
// en-route caching dominates static replication under this cost model,
// and combining them adds the standing copies' committed cost without
// recovering it. PreloadFactor sets the off-peak bulk tariff for the
// static legs.
func FigReplication(base Params, preloadFactor float64, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if preloadFactor <= 0 {
		preloadFactor = 0.25
	}
	fig := &Figure{
		ID:     "fig-replication",
		Title:  "Caching architectures across access skew (extension)",
		XLabel: "alpha value of zipf distribution",
		YLabel: "total service cost ($)",
	}

	type point struct{ direct, static, dynamic, both float64 }
	pts := make([]point, len(AlphaWide))
	errs := make([]error, len(AlphaWide))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i, a := range AlphaWide {
		wg.Add(1)
		go func(i int, alpha float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for rpt := 0; rpt < maxInt(1, repeats); rpt++ {
				p := base
				p.Alpha = alpha
				p.Seed = base.Seed + int64(rpt)*104729
				rig, err := Build(p)
				if err != nil {
					errs[i] = err
					return
				}
				if err := rig.Book.SetPreloadFactor(preloadFactor); err != nil {
					errs[i] = err
					return
				}
				plan, err := placement.Build(rig.Model, placement.Config{
					Alpha:           alpha,
					RequestsPerUser: p.RequestsPerUser,
					// At the paper's 5 GB storages the default 50% budget
					// cannot hold one ~3.3 GB title; let the static legs
					// use most of the disk (dynamic legs keep their own
					// capacity checks).
					CapacityFraction: 0.8,
				})
				if err != nil {
					errs[i] = fmt.Errorf("experiment: replication plan: %w", err)
					return
				}
				seeds := plan.Seeds()

				runs := []struct {
					out *float64
					cfg scheduler.Config
				}{
					{&pts[i].direct, scheduler.Config{Policy: ivs.NoCaching}},
					{&pts[i].static, scheduler.Config{Policy: ivs.NoCaching, Seeds: seeds}},
					{&pts[i].dynamic, scheduler.Config{}},
					{&pts[i].both, scheduler.Config{Seeds: seeds}},
				}
				for _, rn := range runs {
					out, err := scheduler.Run(rig.Model, rig.Requests, rn.cfg)
					if err != nil {
						errs[i] = fmt.Errorf("experiment: replication leg: %w", err)
						return
					}
					*rn.out += float64(out.FinalCost)
				}
			}
			k := float64(maxInt(1, repeats))
			pts[i].direct /= k
			pts[i].static /= k
			pts[i].dynamic /= k
			pts[i].both /= k
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	series := []struct {
		name string
		get  func(point) float64
	}{
		{"dynamic (two-phase)", func(p point) float64 { return p.dynamic }},
		{"dynamic + static", func(p point) float64 { return p.both }},
		{"static replication only", func(p point) float64 { return p.static }},
		{"direct only", func(p point) float64 { return p.direct }},
	}
	for _, sp := range series {
		s := stats.Series{Name: sp.name}
		for i, a := range AlphaWide {
			s.Add(a, sp.get(pts[i]))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
