package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(10, 20)
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if iv.Len() != 10 {
		t.Errorf("Len = %d, want 10", iv.Len())
	}
	if !iv.Contains(10) || iv.Contains(20) || !iv.Contains(19) {
		t.Error("Contains must be half-open [start, end)")
	}
	if NewInterval(5, 5).Len() != 0 || !NewInterval(5, 5).Empty() {
		t.Error("degenerate interval must be empty with zero length")
	}
	if NewInterval(7, 3).Len() != 0 {
		t.Error("inverted interval must have zero length")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(5, 15)
	c := NewInterval(10, 20)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b must overlap")
	}
	if a.Overlaps(c) {
		t.Error("touching half-open intervals must not overlap")
	}
	got := a.Intersect(b)
	if got.Start != 5 || got.End != 10 {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	if !a.Intersect(c).Empty() {
		t.Error("intersection of touching intervals must be empty")
	}
	var empty Interval
	if empty.Overlaps(a) || a.Overlaps(empty) {
		t.Error("empty interval overlaps nothing")
	}
}

func TestIntervalUnion(t *testing.T) {
	a := NewInterval(0, 10)
	b := NewInterval(10, 20)
	u, ok := a.Union(b)
	if !ok || u.Start != 0 || u.End != 20 {
		t.Errorf("Union touching: got %v ok=%v", u, ok)
	}
	if _, ok := a.Union(NewInterval(11, 12)); ok {
		t.Error("Union of disjoint intervals must fail")
	}
	u, ok = a.Union(Interval{})
	if !ok || u != a {
		t.Error("Union with empty must return the other interval")
	}
}

func TestIntervalShift(t *testing.T) {
	iv := NewInterval(10, 20).Shift(5)
	if iv.Start != 15 || iv.End != 25 {
		t.Errorf("Shift = %v", iv)
	}
}

func TestMergeIntervals(t *testing.T) {
	in := []Interval{
		NewInterval(20, 30),
		NewInterval(0, 10),
		NewInterval(5, 15),
		NewInterval(40, 40), // empty, dropped
		NewInterval(30, 35), // touches [20,30)
	}
	out := MergeIntervals(in)
	want := []Interval{NewInterval(0, 15), NewInterval(20, 35)}
	if len(out) != len(want) {
		t.Fatalf("MergeIntervals = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("MergeIntervals[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if MergeIntervals(nil) != nil {
		t.Error("MergeIntervals(nil) must be nil")
	}
}

func TestTotalLen(t *testing.T) {
	in := []Interval{NewInterval(0, 10), NewInterval(5, 15), NewInterval(20, 25)}
	if got := TotalLen(in); got != 20 {
		t.Errorf("TotalLen = %d, want 20", got)
	}
}

// Property: merged intervals are sorted, disjoint, and cover exactly the
// union of the inputs (checked pointwise on integer samples).
func TestPropertyMergeCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8)
		ivs := make([]Interval, n)
		for i := range ivs {
			s := Time(r.Intn(50))
			ivs[i] = NewInterval(s, s.Add(Duration(r.Intn(20))))
		}
		merged := MergeIntervals(ivs)
		// Sorted and strictly separated.
		for i := 1; i < len(merged); i++ {
			if merged[i].Start <= merged[i-1].End {
				return false
			}
		}
		// Pointwise equivalence on [0, 100).
		for p := Time(0); p < 100; p++ {
			inOrig := false
			for _, iv := range ivs {
				if iv.Contains(p) {
					inOrig = true
					break
				}
			}
			inMerged := false
			for _, iv := range merged {
				if iv.Contains(p) {
					inMerged = true
					break
				}
			}
			if inOrig != inMerged {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
