package workload

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// Trace I/O. Two interchange formats carry reservation logs:
//
//   - CSV with the columns user,video,start_seconds and an optional
//     header row — the original format, compact and spreadsheet-able;
//   - JSONL with one default-marshaled Request per line — the same
//     objects a JSON batch file holds, newline-delimited so a trace
//     can be produced and consumed record by record.
//
// Both run through the TraceWriter/TraceReader iterator pair, so a
// million-request trace streams between the generator, the disk and the
// load harness without the full request set ever being resident. The
// whole-set helpers (WriteCSV, ReadCSV) remain as thin wrappers.

// TraceWriter emits reservation requests one at a time. Close flushes
// buffered output; it does not close the underlying io.Writer.
type TraceWriter interface {
	Write(Request) error
	Close() error
}

// TraceReader yields reservation requests one at a time in file order,
// returning io.EOF after the last one. Readers validate every record
// against their topology and catalog.
type TraceReader interface {
	Next() (Request, error)
}

// --- CSV ---

type csvTraceWriter struct {
	cw    *csv.Writer
	wrote bool
}

// NewCSVTraceWriter streams requests as CSV rows; the header row is
// written before the first record.
func NewCSVTraceWriter(w io.Writer) TraceWriter {
	return &csvTraceWriter{cw: csv.NewWriter(w)}
}

func (t *csvTraceWriter) Write(r Request) error {
	if !t.wrote {
		t.wrote = true
		if err := t.cw.Write([]string{"user", "video", "start_seconds"}); err != nil {
			return err
		}
	}
	return t.cw.Write([]string{
		strconv.Itoa(int(r.User)),
		strconv.Itoa(int(r.Video)),
		strconv.FormatInt(int64(r.Start), 10),
	})
}

func (t *csvTraceWriter) Close() error {
	if !t.wrote {
		// An empty trace still carries its header, so readers can tell
		// "no reservations" from "not a trace".
		if err := t.cw.Write([]string{"user", "video", "start_seconds"}); err != nil {
			return err
		}
	}
	t.cw.Flush()
	return t.cw.Error()
}

type csvTraceReader struct {
	cr   *csv.Reader
	topo *topology.Topology
	cat  *media.Catalog
	line int
}

// NewCSVTraceReader streams a CSV reservation log, validating each row.
// A first row of "user,video,start_seconds" is treated as a header and
// skipped.
func NewCSVTraceReader(r io.Reader, topo *topology.Topology, catalog *media.Catalog) TraceReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	return &csvTraceReader{cr: cr, topo: topo, cat: catalog}
}

func (t *csvTraceReader) Next() (Request, error) {
	for {
		rec, err := t.cr.Read()
		if err == io.EOF {
			return Request{}, io.EOF
		}
		if err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: %w", t.line+1, err)
		}
		t.line++
		if t.line == 1 && rec[0] == "user" {
			continue
		}
		user, err := strconv.Atoi(rec[0])
		if err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: bad user %q", t.line, rec[0])
		}
		video, err := strconv.Atoi(rec[1])
		if err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: bad video %q", t.line, rec[1])
		}
		start, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: bad start %q", t.line, rec[2])
		}
		req := Request{
			User:  topology.UserID(user),
			Video: media.VideoID(video),
			Start: simtime.Time(start),
		}
		if err := t.validateReq(req); err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: %w", t.line, err)
		}
		return req, nil
	}
}

func (t *csvTraceReader) validateReq(r Request) error {
	return validateRequest(r, t.topo, t.cat)
}

// validateRequest checks a decoded record. A nil topology or catalog
// skips the respective bounds check (the load harness replays traces
// against a remote service that enforces them itself); negative IDs and
// start times are always rejected.
func validateRequest(r Request, topo *topology.Topology, catalog *media.Catalog) error {
	if int(r.User) < 0 || (topo != nil && int(r.User) >= topo.NumUsers()) {
		return fmt.Errorf("unknown user %d", r.User)
	}
	if int(r.Video) < 0 || (catalog != nil && int(r.Video) >= catalog.Len()) {
		return fmt.Errorf("unknown video %d", r.Video)
	}
	if r.Start < 0 {
		return fmt.Errorf("negative start %d", int64(r.Start))
	}
	return nil
}

// --- JSONL ---

type jsonlTraceWriter struct {
	bw *bufio.Writer
}

// NewJSONLTraceWriter streams requests as newline-delimited JSON, one
// default-marshaled Request object per line.
func NewJSONLTraceWriter(w io.Writer) TraceWriter {
	return &jsonlTraceWriter{bw: bufio.NewWriter(w)}
}

func (t *jsonlTraceWriter) Write(r Request) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := t.bw.Write(b); err != nil {
		return err
	}
	return t.bw.WriteByte('\n')
}

func (t *jsonlTraceWriter) Close() error { return t.bw.Flush() }

type jsonlTraceReader struct {
	sc   *bufio.Scanner
	topo *topology.Topology
	cat  *media.Catalog
	line int
}

// NewJSONLTraceReader streams a JSONL reservation log, validating each
// record. Blank lines are skipped.
func NewJSONLTraceReader(r io.Reader, topo *topology.Topology, catalog *media.Catalog) TraceReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &jsonlTraceReader{sc: sc, topo: topo, cat: catalog}
}

func (t *jsonlTraceReader) Next() (Request, error) {
	for t.sc.Scan() {
		t.line++
		b := t.sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(b, &req); err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: %w", t.line, err)
		}
		if err := validateRequest(req, t.topo, t.cat); err != nil {
			return Request{}, fmt.Errorf("workload: trace line %d: %w", t.line, err)
		}
		return req, nil
	}
	if err := t.sc.Err(); err != nil {
		return Request{}, fmt.Errorf("workload: trace line %d: %w", t.line+1, err)
	}
	return Request{}, io.EOF
}

// --- whole-set helpers ---

// ReadAllTrace drains a reader into a chronologically sorted Set.
func ReadAllTrace(tr TraceReader) (Set, error) {
	var set Set
	for {
		r, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		set = append(set, r)
	}
	SortChronological(set)
	return set, nil
}

// WriteCSV writes the set as CSV with a header row.
func WriteCSV(w io.Writer, s Set) error {
	tw := NewCSVTraceWriter(w)
	for _, r := range s {
		if err := tw.Write(r); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ReadCSV parses a reservation log and validates every row against the
// topology and catalog. A first row of "user,video,start_seconds" is
// treated as a header and skipped; the result is sorted chronologically.
func ReadCSV(r io.Reader, topo *topology.Topology, catalog *media.Catalog) (Set, error) {
	return ReadAllTrace(NewCSVTraceReader(r, topo, catalog))
}

// --- streaming generation ---

// PatternReader adapts a Pattern generator into a TraceReader: the
// generator runs in a background goroutine feeding a small bounded
// channel, so the reader side consumes a multi-million-request trace in
// constant memory without an intermediate file. Close the reader to
// release the generator early.
type PatternReader struct {
	ch   chan Request
	stop chan struct{}
	done chan struct{}
	err  error // set before ch closes
}

// NewPatternReader starts generating p's trace. buffer is the channel
// depth between generator and consumer (<= 0 picks a small default).
func NewPatternReader(topo *topology.Topology, cat *media.Catalog, p Pattern, buffer int) *PatternReader {
	if buffer <= 0 {
		buffer = 256
	}
	pr := &PatternReader{
		ch:   make(chan Request, buffer),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(pr.done)
		err := p.Stream(topo, cat, func(r Request) error {
			select {
			case pr.ch <- r:
				return nil
			case <-pr.stop:
				return errReaderClosed
			}
		})
		if err == errReaderClosed {
			err = nil
		}
		pr.err = err
		close(pr.ch)
	}()
	return pr
}

var errReaderClosed = fmt.Errorf("workload: pattern reader closed")

// Next returns the next generated request, io.EOF at the end of the
// trace, or the generator's error.
func (pr *PatternReader) Next() (Request, error) {
	r, ok := <-pr.ch
	if !ok {
		if pr.err != nil {
			return Request{}, pr.err
		}
		return Request{}, io.EOF
	}
	return r, nil
}

// Close stops the generator goroutine; pending requests are discarded.
// It is safe to call after the stream is drained.
func (pr *PatternReader) Close() {
	select {
	case <-pr.stop:
	default:
		close(pr.stop)
	}
	<-pr.done
}
