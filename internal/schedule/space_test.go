package schedule

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vodsim/vsp/internal/simtime"
)

func TestSpaceIntegralClosedForm(t *testing.T) {
	size := 2.5e9
	P := 90 * simtime.Minute
	// Long residency: Δ = 3h -> total = size·(Δ + P/2).
	c := Residency{Load: 0, LastService: simtime.Time(3 * simtime.Hour)}
	want := size * ((3 * simtime.Hour).Seconds() + P.Seconds()/2)
	if got := c.TotalSpaceIntegral(size, P); math.Abs(got-want) > 1 {
		t.Errorf("long total = %g, want %g", got, want)
	}
	// Short residency: Δ = P/3 -> γ = 1/3, total = γ·size·(Δ + P/2).
	s := Residency{Load: 0, LastService: simtime.Time(P / 3)}
	wantShort := size / 3 * ((P / 3).Seconds() + P.Seconds()/2)
	if got := s.TotalSpaceIntegral(size, P); math.Abs(got-wantShort) > 1 {
		t.Errorf("short total = %g, want %g", got, wantShort)
	}
	// Zero-span residency occupies nothing.
	z := Residency{Load: 5, LastService: 5}
	if got := z.TotalSpaceIntegral(size, P); got != 0 {
		t.Errorf("zero-span total = %g, want 0", got)
	}
}

func TestSpaceIntegralWindows(t *testing.T) {
	size := 1000.0
	P := simtime.Duration(100)
	c := Residency{Load: 0, LastService: 200} // long; support [0, 300]
	full := c.TotalSpaceIntegral(size, P)
	// Disjoint window.
	if got := c.SpaceIntegral(simtime.NewInterval(400, 500), size, P); got != 0 {
		t.Errorf("disjoint window integral = %g", got)
	}
	// Window before load.
	if got := c.SpaceIntegral(simtime.NewInterval(-100, 0), size, P); got != 0 {
		t.Errorf("pre-load window integral = %g", got)
	}
	// Plateau-only window: [50, 150) at full height.
	if got := c.SpaceIntegral(simtime.NewInterval(50, 150), size, P); math.Abs(got-100*size) > 1e-9 {
		t.Errorf("plateau window = %g, want %g", got, 100*size)
	}
	// Decay-only window: [200, 300) is a triangle of area size·P/2.
	if got := c.SpaceIntegral(simtime.NewInterval(200, 300), size, P); math.Abs(got-size*50) > 1e-9 {
		t.Errorf("decay window = %g, want %g", got, size*50)
	}
	// Split windows sum to the whole.
	a := c.SpaceIntegral(simtime.NewInterval(0, 137), size, P)
	b := c.SpaceIntegral(simtime.NewInterval(137, 300), size, P)
	if math.Abs(a+b-full) > 1e-6 {
		t.Errorf("split integrals %g + %g != %g", a, b, full)
	}
}

// Property: the closed-form integral matches Riemann summation of SpaceAt.
func TestPropertyIntegralMatchesRiemann(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		P := simtime.Duration(r.Intn(200) + 1)
		load := simtime.Time(r.Intn(100))
		span := simtime.Duration(r.Intn(300))
		size := float64(r.Intn(1000) + 1)
		c := Residency{Load: load, LastService: load.Add(span)}
		a := simtime.Time(r.Intn(400))
		b := a.Add(simtime.Duration(r.Intn(300)))
		got := c.SpaceIntegral(simtime.NewInterval(a, b), size, P)
		// Riemann sum with unit steps: all breakpoints are integers, so
		// unit trapezoids are exact on every piece. The profile jumps at
		// Load (space is reserved instantaneously), so intervals entirely
		// before Load contribute zero rather than a trapezoid across the
		// jump.
		sum := 0.0
		for x := a; x < b; x++ {
			if x < load {
				continue
			}
			h0 := c.SpaceAt(x, size, P)
			h1 := c.SpaceAt(x+1, size, P)
			sum += (h0 + h1) / 2
		}
		return math.Abs(got-sum) < 1e-6*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
