package retryhttp_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/chaos"
	"github.com/vodsim/vsp/internal/retryhttp"
)

// A flapping peer that answers every attempt slowly-but-retryably can
// stretch a MaxAttempts-only loop far past the caller's deadline. The
// elapsed budget must stop the loop and surface the terminal answer.
func TestMaxElapsedBoundsSlowRetryableAnswers(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("chaos should answer before the backend")
	}))
	defer ts.Close()

	// Every call costs 10ms and comes back 502: individually retryable,
	// collectively unbounded without an elapsed budget.
	inj := chaos.New(11, chaos.Rule{Fault: chaos.Fault{
		LatencyMin: 10 * time.Millisecond,
		LatencyMax: 10 * time.Millisecond,
		ErrProb:    1,
		Code:       http.StatusBadGateway,
	}})
	opts := retryhttp.Options{
		Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
		MaxAttempts: 100,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		MaxElapsed:  150 * time.Millisecond,
	}

	start := time.Now()
	err := retryhttp.GetJSON(context.Background(), opts, ts.URL, nil)
	elapsed := time.Since(start)

	var se *retryhttp.StatusError
	if !asStatusError(err, &se) || se.Code != http.StatusBadGateway {
		t.Fatalf("want terminal 502 StatusError, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("budget 150ms, loop ran %v", elapsed)
	}
	if calls := inj.Stats().Calls; calls >= 100 {
		t.Fatalf("budget did not cut attempts short: %d calls", calls)
	}
}

// When every attempt dies at the transport layer, exhausting the budget
// must return an error naming it (there is no response to hand back).
func TestMaxElapsedBoundsTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	inj := chaos.New(12, chaos.Rule{Fault: chaos.Fault{Drop: 1}})
	opts := retryhttp.Options{
		Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
		MaxAttempts: 1000,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		MaxElapsed:  100 * time.Millisecond,
	}

	start := time.Now()
	err := retryhttp.GetJSON(context.Background(), opts, ts.URL, nil)
	if err == nil || !strings.Contains(err.Error(), "elapsed budget") {
		t.Fatalf("want elapsed-budget error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget 100ms, loop ran %v", elapsed)
	}
	if calls := inj.Stats().Calls; calls >= 1000 {
		t.Fatalf("budget did not cut attempts short: %d calls", calls)
	}
}

// Without a budget the loop still runs to MaxAttempts — the zero value
// keeps the old behavior.
func TestZeroMaxElapsedKeepsAttemptSemantics(t *testing.T) {
	inj := chaos.New(13, chaos.Rule{Fault: chaos.Fault{Drop: 1}})
	opts := retryhttp.Options{
		Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	}
	err := retryhttp.GetJSON(context.Background(), opts, "http://127.0.0.1:0/", nil)
	if err == nil || !strings.Contains(err.Error(), "4 attempts failed") {
		t.Fatalf("want attempts-exhausted error, got %v", err)
	}
	if calls := inj.Stats().Calls; calls != 4 {
		t.Fatalf("want 4 attempts, injector saw %d", calls)
	}
}

func asStatusError(err error, out **retryhttp.StatusError) bool {
	se, ok := err.(*retryhttp.StatusError)
	if ok {
		*out = se
	}
	return ok
}
