// Rolling-horizon: serve a reservation stream the way a live operator
// would. Reservations arrive two hours before they start; the intake
// service groups them into epochs and incrementally extends a committed
// schedule at every epoch boundary instead of re-solving the whole batch.
//
// The example replays one synthetic evening three ways and compares:
//
//   - rolling horizon  — incremental plan extension (this subsystem);
//   - one-shot batch   — full two-phase solve with total foreknowledge,
//     the cost floor the incremental service is measured against;
//   - reactive online  — nearest-copy service with LRU caches and no
//     foreknowledge at all, the system the paper argues against.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 8, Capacity: vsp.GB(6),
	}, 23)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 80, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(3), vsp.PerGB(400))
	if err != nil {
		log.Fatal(err)
	}
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{
		Alpha:   0.271,
		Arrival: vsp.EveningPeakArrival,
		Seed:    24,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Rolling horizon: each reservation arrives 2h before it starts;
	// an epoch closes every 20 pending reservations.
	const lead = 2 * vsp.Hour
	type arrival struct {
		at vsp.Time
		r  vsp.Request
	}
	trace := make([]arrival, len(reqs))
	for i, r := range reqs {
		at := r.Start.Add(-lead)
		if at < 0 {
			at = 0
		}
		trace[i] = arrival{at: at, r: r}
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].at != trace[j].at {
			return trace[i].at < trace[j].at
		}
		if trace[i].r.Start != trace[j].r.Start {
			return trace[i].r.Start < trace[j].r.Start
		}
		return trace[i].r.User < trace[j].r.User
	})

	ctx := context.Background()
	hz := sys.OpenHorizon(vsp.HorizonConfig{EpochRequests: 20})
	fmt.Printf("%-6s %-10s %9s %9s %8s %12s\n",
		"epoch", "horizon", "admitted", "replanned", "frozenD", "cost")
	for _, a := range trace {
		ack, err := hz.Submit(a.at, a.r)
		if err != nil {
			log.Fatal(err)
		}
		if !ack.EpochDue {
			continue
		}
		res, err := hz.Advance(ctx, a.at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10v %9d %9d %8d %12v\n",
			res.Epoch, res.Horizon, res.Admitted, res.Replanned,
			res.FrozenDeliveries, res.Cost)
	}
	if hz.Pending() > 0 {
		res, err := hz.Advance(ctx, trace[len(trace)-1].at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10v %9d %9d %8d %12v\n",
			res.Epoch, res.Horizon, res.Admitted, res.Replanned,
			res.FrozenDeliveries, res.Cost)
	}
	if err := sys.Validate(hz.Committed(), reqs); err != nil {
		log.Fatal(err)
	}

	// 2. One-shot batch: the cost floor, with total foreknowledge.
	batch, err := sys.Schedule(reqs, vsp.SchedulerConfig{Metric: vsp.SpacePerCost})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Reactive online LRU baseline: no foreknowledge at all.
	on, err := sys.ScheduleOnline(reqs)
	if err != nil {
		log.Fatal(err)
	}

	inc, full := hz.Cost(), batch.FinalCost
	fmt.Printf("\n%d reservations over %d epochs\n", len(reqs), hz.Epoch())
	fmt.Printf("rolling horizon (incremental):  %v\n", inc)
	fmt.Printf("one-shot batch (foreknowledge): %v\n", full)
	fmt.Printf("reactive online (LRU):          %v (hit rate %.0f%%)\n",
		on.TotalCost(), 100*on.HitRate())
	fmt.Printf("\nincremental premium over batch: %v (%.1f%%)\n",
		inc-full, 100*float64(inc-full)/float64(full))
	fmt.Printf("incremental saving over online: %v (%.1f%%)\n",
		on.TotalCost()-inc, 100*float64(on.TotalCost()-inc)/float64(on.TotalCost()))
}
