// Trace-replay: feed a recorded reservation log through the scheduler the
// way a deployed operator would. The example writes a synthetic evening's
// log to a temp file in the interchange CSV format (user,video,start),
// replays it, and prints the operator report — then contrasts the offline
// result with the reactive online baseline to show what batch foreknowledge
// was worth on this log.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	vsp "github.com/vodsim/vsp"
)

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 9, UsersPerStorage: 8, Capacity: vsp.GB(6),
	}, 23)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 80, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(3), vsp.PerGB(400))
	if err != nil {
		log.Fatal(err)
	}

	// 1. Record a synthetic log to disk (a real deployment would have one).
	reqs, err := vsp.GenerateWorkload(topo, catalog, vsp.WorkloadConfig{
		Alpha:    0.271,
		Arrival:  vsp.EveningPeakArrival,
		Locality: 0.3, // mild regional taste variation
		Seed:     24,
	})
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "reservations.csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := vsp.WriteTrace(f, reqs); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote %d reservations to %s\n\n", len(reqs), path)

	// 2. Replay the log.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := vsp.ReadTrace(f, topo, catalog)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	out, err := sys.Schedule(replayed, vsp.SchedulerConfig{Metric: vsp.SpacePerCost})
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.Analyze(out.Schedule)
	if err := rep.Write(os.Stdout, 5); err != nil {
		log.Fatal(err)
	}

	// 3. What was the reservation batch worth? Replay the same log through
	// the reactive online system (no foreknowledge).
	on, err := sys.ScheduleOnline(replayed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noffline (VOR batch):  %v\n", out.FinalCost)
	fmt.Printf("online (reactive):    %v (hit rate %.0f%%)\n", on.TotalCost(), 100*on.HitRate())
	fmt.Printf("foreknowledge saved:  %v (%.1f%%)\n",
		on.TotalCost()-out.FinalCost,
		100*float64(on.TotalCost()-out.FinalCost)/float64(on.TotalCost()))
}
