package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// snapMagic begins every snapshot file.
const snapMagic = "VSPSNAP1"

// SnapshotName is the snapshot's file name inside a data directory.
const SnapshotName = "snapshot"

// A snapshot is a single framed record (same layout as a log record)
// whose sequence number is the last log sequence the snapshot covers:
// recovery loads the snapshot and then replays only log records with a
// higher sequence. The file is published atomically — written to a
// temporary name, fsynced, renamed over SnapshotName, directory fsynced —
// so a reader only ever observes no snapshot or a complete one; a torn
// snapshot cannot exist, and any checksum failure in one is corruption.

// WriteSnapshot atomically publishes a snapshot covering every record
// with sequence <= seq.
func WriteSnapshot(dir string, seq uint64, payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: %d-byte snapshot exceeds record cap %d", len(payload), int64(MaxRecordBytes))
	}
	if seq == 0 {
		return fmt.Errorf("wal: snapshot must cover at least one record (seq >= 1)")
	}
	tmp := filepath.Join(dir, SnapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	_, werr := f.Write(append([]byte(snapMagic), encodeRecord(seq, payload)...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot publish: %w", err)
	}
	return syncDir(dir)
}

// ReadSnapshot loads the published snapshot. ok is false when none
// exists; a present but damaged snapshot is an error wrapping ErrCorrupt.
func ReadSnapshot(dir string) (seq uint64, payload []byte, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotName))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, false, fmt.Errorf("%w: snapshot bad magic", ErrCorrupt)
	}
	rem := data[len(snapMagic):]
	recs, tail, _, derr := decode(append([]byte(logMagic), rem...))
	if derr != nil {
		return 0, nil, false, fmt.Errorf("wal: snapshot: %w", derr)
	}
	if tail != TailClean || len(recs) != 1 {
		return 0, nil, false, fmt.Errorf("%w: snapshot holds %d records with %s tail (want exactly 1, clean)",
			ErrCorrupt, len(recs), tail)
	}
	return recs[0].Seq, recs[0].Payload, true, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Not every platform supports it; failure to open or sync the directory
// is reported only when it is not a support gap.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
