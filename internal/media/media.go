// Package media models the video catalog held by the warehouse: every
// title's size, playback length and reserved stream bandwidth. The cost
// model charges network transfers P·B bytes (playback length times reserved
// bandwidth) and storage residencies by file size, so these three attributes
// fully determine a title's resource footprint (paper §2.2).
package media

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/units"
)

// VideoID identifies a title; IDs are dense indices into the catalog,
// assigned in popularity-rank order (0 is the most popular title, matching
// the Zipf workload generator's ranking).
type VideoID int

// Video is one title in the catalog.
type Video struct {
	ID       VideoID
	Name     string
	Size     units.Bytes       // total file size
	Playback simtime.Duration  // playback length P_i
	Rate     units.BytesPerSec // reserved stream bandwidth B_i
}

// StreamBytes returns the amortized network volume of one delivery of the
// title: P_i · B_i bytes (paper §2.2.2).
func (v Video) StreamBytes() units.Bytes { return v.Rate.Over(v.Playback) }

// Validate checks the title's attributes are physically meaningful: the
// reserved bandwidth must be able to deliver the whole file within its
// playback length.
func (v Video) Validate() error {
	if v.Size <= 0 {
		return fmt.Errorf("media: video %d has non-positive size %d", v.ID, v.Size)
	}
	if v.Playback <= 0 {
		return fmt.Errorf("media: video %d has non-positive playback %d", v.ID, v.Playback)
	}
	if v.Rate <= 0 {
		return fmt.Errorf("media: video %d has non-positive rate %v", v.ID, v.Rate)
	}
	if v.StreamBytes() < v.Size {
		return fmt.Errorf("media: video %d reserved bandwidth %v cannot deliver %v in %v",
			v.ID, v.Rate, v.Size, v.Playback)
	}
	return nil
}

// Catalog is an immutable list of titles indexed by VideoID.
type Catalog struct {
	videos []Video
}

// NewCatalog validates and wraps a list of videos. IDs must be dense and in
// order (the constructors in this package guarantee that).
func NewCatalog(videos []Video) (*Catalog, error) {
	for i, v := range videos {
		if v.ID != VideoID(i) {
			return nil, fmt.Errorf("media: video at index %d has ID %d; IDs must be dense", i, v.ID)
		}
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return &Catalog{videos: append([]Video(nil), videos...)}, nil
}

// Len returns the number of titles.
func (c *Catalog) Len() int { return len(c.videos) }

// Video returns the title with the given ID; it panics on an invalid ID.
func (c *Catalog) Video(id VideoID) Video { return c.videos[id] }

// Videos returns all titles in ID order. The slice is shared; do not modify.
func (c *Catalog) Videos() []Video { return c.videos }

// MeanSize returns the average title size.
func (c *Catalog) MeanSize() units.Bytes {
	if len(c.videos) == 0 {
		return 0
	}
	var total float64
	for _, v := range c.videos {
		total += v.Size.Float()
	}
	return units.Bytes(math.Round(total / float64(len(c.videos))))
}

// Uniform builds a homogeneous catalog of n identical titles, the
// configuration of the paper's worked example (2.5 GB, 90 min, 6 Mbps).
func Uniform(n int, size units.Bytes, playback simtime.Duration, rate units.BytesPerSec) (*Catalog, error) {
	videos := make([]Video, n)
	for i := range videos {
		videos[i] = Video{
			ID:       VideoID(i),
			Name:     fmt.Sprintf("video-%03d", i),
			Size:     size,
			Playback: playback,
			Rate:     rate,
		}
	}
	return NewCatalog(videos)
}

// GenConfig parameterizes the synthetic catalog generator. Zero fields take
// the paper's Table 4 defaults: 500 titles averaging 3.3 GB.
type GenConfig struct {
	Titles   int         // number of titles (default 500)
	MeanSize units.Bytes // average title size (default 3.3 GB)
	Seed     int64       // RNG seed
}

// Generate builds a synthetic feature-film catalog. Playback lengths are
// drawn uniformly from 75–105 minutes and stream reservations from the
// common MPEG-2 service classes (4.5/6/7.5 Mbps); sizes are scaled so the
// catalog's expected size matches MeanSize while every title still fits
// within its reservation (Video.Validate holds for every generated title).
func Generate(cfg GenConfig) (*Catalog, error) {
	if cfg.Titles == 0 {
		cfg.Titles = 500
	}
	if cfg.MeanSize == 0 {
		cfg.MeanSize = units.GBf(3.3)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := []units.BytesPerSec{units.Mbps(4.5), units.Mbps(6), units.Mbps(7.5)}

	// Expected stream volume E[B·P] with B uniform over classes and P
	// uniform over [75, 105] minutes; fill chooses the fraction of the
	// reservation the file actually occupies, targeting MeanSize.
	meanRate := (float64(classes[0]) + float64(classes[1]) + float64(classes[2])) / 3
	meanPlay := (75 + 105) / 2.0 * 60
	fill := cfg.MeanSize.Float() / (meanRate * meanPlay)
	if fill >= 1 {
		return nil, fmt.Errorf("media: mean size %v exceeds deliverable volume for default classes", cfg.MeanSize)
	}

	videos := make([]Video, cfg.Titles)
	for i := range videos {
		playback := simtime.Duration(75*60 + rng.Intn(30*60+1))
		rate := classes[rng.Intn(len(classes))]
		size := units.Bytes(math.Floor(fill * float64(rate) * playback.Seconds()))
		videos[i] = Video{
			ID:       VideoID(i),
			Name:     fmt.Sprintf("video-%03d", i),
			Size:     size,
			Playback: playback,
			Rate:     rate,
		}
	}
	return NewCatalog(videos)
}
