// Package occupancy tracks disk usage at every intermediate storage over
// time and detects storage overflows (paper §4.1). The space requirement of
// one residency is the piecewise-linear profile f_c of Eq. 6; the total at
// a storage is the sum over resident copies, also piecewise linear with
// breakpoints at every residency's Load, LastService and LastService+P.
// Overflow detection is therefore exact: the maximum between breakpoints is
// attained at a breakpoint, and capacity crossings are solved linearly.
package occupancy

import (
	"fmt"
	"math"
	"sort"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

// eps absorbs float jitter when comparing byte quantities: occupancy sums
// are products of ~1e9-byte sizes and unit-free coefficients, so anything
// below a milli-byte is noise.
const eps = 1e-3

// Ref identifies a residency inside a global schedule.
type Ref struct {
	Video media.VideoID
	Index int // index into the FileSchedule's Residencies
}

// Overflow is one storage overflow situation OF_{Δt, ISj}: at storage Node,
// total occupancy exceeds capacity throughout Interval, peaking at Peak
// bytes (Excess bytes above capacity).
type Overflow struct {
	Node     topology.NodeID
	Interval simtime.Interval
	Peak     float64
	Excess   float64
}

func (o Overflow) String() string {
	return fmt.Sprintf("overflow@%d %s peak=%.0fB excess=%.0fB", o.Node, o.Interval, o.Peak, o.Excess)
}

type entry struct {
	ref      Ref
	res      schedule.Residency
	size     float64
	playback simtime.Duration
}

// Ledger is the scheduler's view of disk usage at every storage. It is not
// safe for concurrent mutation.
type Ledger struct {
	topo    *topology.Topology
	catalog *media.Catalog
	entries map[topology.NodeID][]entry
	// shared marks node slices whose backing array is shared with another
	// ledger (the other side of a Clone). A shared slice is never mutated
	// in place: own() copies it first. This makes Clone O(nodes) instead
	// of O(residencies) — the rejective greedy clones the full ledger for
	// every candidate reschedule, so clone cost multiplies into the
	// phase-2 inner loop.
	shared map[topology.NodeID]bool
}

// NewLedger returns an empty ledger for the topology.
func NewLedger(topo *topology.Topology, catalog *media.Catalog) *Ledger {
	return &Ledger{
		topo:    topo,
		catalog: catalog,
		entries: make(map[topology.NodeID][]entry),
	}
}

// FromSchedule builds a ledger holding every residency of the schedule,
// the integration step of paper §3.3.
func FromSchedule(topo *topology.Topology, catalog *media.Catalog, s *schedule.Schedule) *Ledger {
	l := NewLedger(topo, catalog)
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		for i, c := range fs.Residencies {
			l.Add(Ref{Video: vid, Index: i}, c)
		}
	}
	return l
}

// own makes the node's slice safe to mutate: if its backing array is
// shared with a clone, it is copied first.
func (l *Ledger) own(node topology.NodeID) {
	if !l.shared[node] {
		return
	}
	es := l.entries[node]
	cp := make([]entry, len(es))
	copy(cp, es)
	l.entries[node] = cp
	delete(l.shared, node)
}

// Add registers a residency under the given reference.
func (l *Ledger) Add(ref Ref, c schedule.Residency) {
	v := l.catalog.Video(c.Video)
	l.own(c.Loc)
	l.entries[c.Loc] = append(l.entries[c.Loc], entry{
		ref:      ref,
		res:      c,
		size:     v.Size.Float(),
		playback: v.Playback,
	})
}

// Update replaces the residency registered under ref (e.g. after extending
// its LastService). It reports whether the ref was found.
func (l *Ledger) Update(ref Ref, c schedule.Residency) bool {
	for node, es := range l.entries {
		for i := range es {
			if es[i].ref == ref {
				l.own(node)
				es = l.entries[node]
				if node == c.Loc {
					v := l.catalog.Video(c.Video)
					es[i].res = c
					es[i].size = v.Size.Float()
					es[i].playback = v.Playback
					return true
				}
				// Relocated: drop here and re-add at the new node.
				l.entries[node] = append(es[:i], es[i+1:]...)
				l.Add(ref, c)
				return true
			}
		}
	}
	return false
}

// Remove drops the residency registered under ref, reporting whether it was
// found.
func (l *Ledger) Remove(ref Ref) bool {
	for node, es := range l.entries {
		for i := range es {
			if es[i].ref == ref {
				l.own(node)
				es = l.entries[node]
				l.entries[node] = append(es[:i], es[i+1:]...)
				return true
			}
		}
	}
	return false
}

// Clone returns an independent copy of the ledger. The rejective greedy
// evaluates candidate reschedules against clones so rejected candidates
// leave the real ledger untouched.
//
// The copy is lazy: the clone shares the per-node slices with the source
// and both sides copy a slice only before first mutating it, so Clone
// itself is O(nodes). Because Clone marks the source's slices shared too,
// it counts as a mutation of the source: concurrent Clone calls on the
// same ledger must be serialized by the caller (sorp clones sequentially
// in its dispatch loop before fanning candidates out).
func (l *Ledger) Clone() *Ledger {
	out := NewLedger(l.topo, l.catalog)
	out.shared = make(map[topology.NodeID]bool, len(l.entries))
	if l.shared == nil {
		l.shared = make(map[topology.NodeID]bool, len(l.entries))
	}
	for node, es := range l.entries {
		out.entries[node] = es
		out.shared[node] = true
		l.shared[node] = true
	}
	return out
}

// RemoveVideo drops every residency of the given video from the ledger,
// the first step of rescheduling a victim file. Nodes holding no copy of
// the video are left untouched (and, on a clone, un-copied).
func (l *Ledger) RemoveVideo(vid media.VideoID) {
	for node, es := range l.entries {
		holds := false
		for _, e := range es {
			if e.ref.Video == vid {
				holds = true
				break
			}
		}
		if !holds {
			continue
		}
		l.own(node)
		es = l.entries[node]
		kept := es[:0]
		for _, e := range es {
			if e.ref.Video != vid {
				kept = append(kept, e)
			}
		}
		l.entries[node] = kept
	}
}

// NumEntries returns the number of residencies registered at the node.
func (l *Ledger) NumEntries(node topology.NodeID) int { return len(l.entries[node]) }

// SpaceAt returns the total occupancy at the node at time t, in bytes.
func (l *Ledger) SpaceAt(node topology.NodeID, t simtime.Time) float64 {
	total := 0.0
	for _, e := range l.entries[node] {
		total += e.res.SpaceAt(t, e.size, e.playback)
	}
	return total
}

// breakpoints returns the sorted distinct profile breakpoints of the node's
// entries, optionally restricted to [window.Start, window.End] (endpoints
// included so linear pieces at the window edges are evaluated).
func (l *Ledger) breakpoints(node topology.NodeID, window *simtime.Interval) []simtime.Time {
	var pts []simtime.Time
	add := func(t simtime.Time) {
		if window != nil && (t < window.Start || t > window.End) {
			return
		}
		pts = append(pts, t)
	}
	for _, e := range l.entries[node] {
		add(e.res.Load)
		add(e.res.LastService)
		add(e.res.LastService.Add(e.playback))
	}
	if window != nil {
		pts = append(pts, window.Start, window.End)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	out := pts[:0]
	var last simtime.Time
	for i, t := range pts {
		if i == 0 || t != last {
			out = append(out, t)
			last = t
		}
	}
	return out
}

// Peak returns the maximum total occupancy ever reached at the node and a
// time at which it is attained.
func (l *Ledger) Peak(node topology.NodeID) (float64, simtime.Time) {
	best, when := 0.0, simtime.Time(0)
	for _, t := range l.breakpoints(node, nil) {
		if s := l.SpaceAt(node, t); s > best {
			best, when = s, t
		}
	}
	return best, when
}

// jumpAt returns the instantaneous upward jump of the node's occupancy at
// time t: copies reserve their peak space the moment loading starts, so the
// profile jumps by the copy's value exactly at its Load breakpoint.
func (l *Ledger) jumpAt(node topology.NodeID, t simtime.Time) float64 {
	total := 0.0
	for _, e := range l.entries[node] {
		if e.res.Load == t {
			total += e.res.SpaceAt(t, e.size, e.playback)
		}
	}
	return total
}

// Overflows returns the maximal intervals during which the node's occupancy
// strictly exceeds its capacity, in chronological order. The warehouse
// never overflows (its capacity is unbounded by definition).
//
// Between breakpoints the total profile is linear; at a breakpoint it may
// jump upward (a copy's space is reserved instantaneously at Load). The
// walk therefore treats each piece [a, b) as the segment from the post-jump
// value at a to the left limit at b, which is exact.
func (l *Ledger) Overflows(node topology.NodeID) []Overflow {
	if l.topo.Node(node).Kind == topology.KindWarehouse {
		return nil
	}
	capacity := l.topo.Node(node).Capacity.Float()
	pts := l.breakpoints(node, nil)
	if len(pts) == 0 {
		return nil
	}
	over := func(s float64) bool { return s > capacity+eps }

	var out []Overflow
	open := false
	var start simtime.Time
	peak := 0.0
	closeAt := func(end simtime.Time) {
		out = append(out, Overflow{
			Node:     node,
			Interval: simtime.Interval{Start: start, End: end},
			Peak:     peak,
			Excess:   peak - capacity,
		})
		open = false
		peak = 0
	}

	for i := 0; i+1 <= len(pts); i++ {
		a := pts[i]
		sa := l.SpaceAt(node, a) // post-jump value at a
		var b simtime.Time
		var sb float64 // left limit approaching b
		last := i+1 == len(pts)
		if last {
			// After the final breakpoint every profile is zero.
			b, sb = a, sa
		} else {
			b = pts[i+1]
			sb = l.SpaceAt(node, b) - l.jumpAt(node, b)
		}
		if !open {
			switch {
			case over(sa):
				open, start, peak = true, a, sa
			case !last && over(sb):
				// Segment ramps above capacity strictly inside (a, b).
				open, start, peak = true, crossing(a, sa, b, sb, capacity), sb
			}
		}
		if open {
			if sa > peak {
				peak = sa
			}
			if sb > peak {
				peak = sb
			}
			switch {
			case last:
				closeAt(a)
			case !over(sb):
				closeAt(crossing(a, sa, b, sb, capacity))
			}
		}
	}
	if open {
		closeAt(pts[len(pts)-1])
	}
	return mergeOverflows(out)
}

// crossing solves for the time where the line through (t0,s0)-(t1,s1)
// crosses the capacity level, rounded to the enclosing integer second so
// overflow intervals are conservative (never narrower than reality).
func crossing(t0 simtime.Time, s0 float64, t1 simtime.Time, s1 float64, capacity float64) simtime.Time {
	if s1 == s0 {
		return t0
	}
	frac := (capacity - s0) / (s1 - s0)
	x := float64(t0) + frac*float64(t1-t0)
	if s1 > s0 {
		return simtime.Time(math.Floor(x)) // ascending: start earlier
	}
	return simtime.Time(math.Ceil(x)) // descending: end later
}

func mergeOverflows(ovs []Overflow) []Overflow {
	if len(ovs) <= 1 {
		return ovs
	}
	out := ovs[:1]
	for _, o := range ovs[1:] {
		last := &out[len(out)-1]
		if o.Interval.Start <= last.Interval.End {
			if o.Interval.End > last.Interval.End {
				last.Interval.End = o.Interval.End
			}
			if o.Peak > last.Peak {
				last.Peak = o.Peak
				last.Excess = o.Excess
			}
		} else {
			out = append(out, o)
		}
	}
	return out
}

// AllOverflows returns every overflow at every storage, ordered by node ID
// then time.
func (l *Ledger) AllOverflows() []Overflow {
	var out []Overflow
	for _, node := range l.topo.Storages() {
		out = append(out, l.Overflows(node)...)
	}
	return out
}

// OverflowSet returns the references of the residencies at the node whose
// space profile overlaps the interval — the candidate victims for the
// overflow OF_{Δt, node} (paper §4.1).
func (l *Ledger) OverflowSet(node topology.NodeID, iv simtime.Interval) []Ref {
	var out []Ref
	for _, e := range l.entries[node] {
		// Widen by one second: Overflow intervals may be degenerate
		// (single instant) and Support is half-open.
		sup := e.res.Support(e.playback)
		if sup.Start <= iv.End && iv.Start < sup.End {
			out = append(out, e.ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Video != out[j].Video {
			return out[i].Video < out[j].Video
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// CanFit reports whether adding the candidate residency to the node would
// keep total occupancy within capacity at all times. The check is exact:
// the combined profile is piecewise linear, so it suffices to test every
// breakpoint inside the candidate's support.
func (l *Ledger) CanFit(c schedule.Residency) bool {
	return l.CanFitExcluding(c, nil)
}

// CanFitExcluding is CanFit with one registered residency disregarded: the
// check for extending an existing copy passes the copy's own ref so its
// pre-extension profile is not double counted.
//
// This sits on the greedy's innermost path, so it avoids the sorted
// breakpoint list: the combined profile is piecewise linear with
// breakpoints at every entry's Load/LastService/decay-end plus the
// candidate's own, and its maximum is attained at one of them — the order
// of evaluation is irrelevant.
func (l *Ledger) CanFitExcluding(c schedule.Residency, exclude *Ref) bool {
	node := c.Loc
	if l.topo.Node(node).Kind == topology.KindWarehouse {
		return true
	}
	v := l.catalog.Video(c.Video)
	capacity := l.topo.Node(node).Capacity.Float()
	size, playback := v.Size.Float(), v.Playback
	sup := c.Support(playback)
	if sup.Empty() {
		// Zero-span tentative cache: peaks at γ=0, occupies nothing.
		return true
	}
	fitsAt := func(t simtime.Time) bool {
		if t < sup.Start || t > sup.End {
			return true
		}
		have := l.SpaceAt(node, t)
		if exclude != nil {
			for _, e := range l.entries[node] {
				if e.ref == *exclude {
					have -= e.res.SpaceAt(t, e.size, e.playback)
					break
				}
			}
		}
		return have+c.SpaceAt(t, size, playback) <= capacity+eps
	}
	if !fitsAt(c.Load) || !fitsAt(c.LastService) || !fitsAt(c.LastService.Add(playback)) {
		return false
	}
	for _, e := range l.entries[node] {
		if !fitsAt(e.res.Load) || !fitsAt(e.res.LastService) || !fitsAt(e.res.LastService.Add(e.playback)) {
			return false
		}
	}
	return true
}

// Banned describes a forbidden (interval, storage) pair the rejective
// greedy must respect when rescheduling a victim: the victim may not hold a
// copy at Node whose profile overlaps Interval (paper §4.2).
type Banned struct {
	Node     topology.NodeID
	Interval simtime.Interval
}

// Violates reports whether a candidate residency's space profile overlaps
// the banned window at the banned node.
func (bn Banned) Violates(c schedule.Residency, playback simtime.Duration) bool {
	if c.Loc != bn.Node {
		return false
	}
	sup := c.Support(playback)
	// Endpoint-inclusive: an overflow interval may be a single instant.
	return sup.Start <= bn.Interval.End && bn.Interval.Start < sup.End
}
