package vsp

import (
	"fmt"

	"github.com/vodsim/vsp/internal/analysis"
	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/bandwidth"
	"github.com/vodsim/vsp/internal/billing"
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/online"
	"github.com/vodsim/vsp/internal/optimal"
	"github.com/vodsim/vsp/internal/placement"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/repair"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/vodsim"
)

// System bundles a priced service infrastructure with a catalog: the unit
// everything else operates on. Build one with NewSystem, adjust rates with
// the Set* methods, then call Schedule.
type System struct {
	topo    *Topology
	catalog *Catalog
	book    *pricing.Book
	model   *cost.Model
	stale   bool // rates changed since the routing table was built
}

// NewSystem assembles a system charging every storage the same srate and
// every link the same nrate (the configuration of the paper's sweeps).
// Individual rates can be overridden afterwards with SetStorageRate and
// SetLinkRate.
func NewSystem(topo *Topology, catalog *Catalog, srate SRate, nrate NRate) (*System, error) {
	if topo == nil || catalog == nil {
		return nil, fmt.Errorf("vsp: nil topology or catalog")
	}
	if catalog.Len() == 0 {
		return nil, fmt.Errorf("vsp: empty catalog")
	}
	s := &System{topo: topo, catalog: catalog, book: pricing.Uniform(topo, srate, nrate)}
	s.rebuild()
	return s, nil
}

func (s *System) rebuild() {
	table := routing.NewTable(s.book)
	s.model = cost.NewModel(s.book, table, s.catalog)
	s.stale = false
}

// Topology returns the system's network.
func (s *System) Topology() *Topology { return s.topo }

// Catalog returns the system's title list.
func (s *System) Catalog() *Catalog { return s.catalog }

// SetStorageRate overrides one storage's charging rate. The warehouse's
// rate is fixed at zero.
func (s *System) SetStorageRate(n NodeID, r SRate) error {
	return s.book.SetSRate(n, r)
}

// SetLinkRate overrides one link's charging rate (by edge index). Routing
// is refreshed lazily before the next scheduling call.
func (s *System) SetLinkRate(edge int, r NRate) {
	s.book.SetNRate(edge, r)
	s.stale = true
}

func (s *System) fresh() *cost.Model {
	if s.stale {
		s.rebuild()
	}
	return s.model
}

// Schedule computes a service schedule for the batch with the two-phase
// heuristic.
func (s *System) Schedule(reqs RequestSet, cfg SchedulerConfig) (*Outcome, error) {
	return scheduler.Run(s.fresh(), reqs, cfg)
}

// ScheduleDirect computes the network-only baseline schedule (every
// request streamed straight from the warehouse).
func (s *System) ScheduleDirect(reqs RequestSet) (*Outcome, error) {
	return scheduler.RunDirect(s.fresh(), reqs)
}

// Cost evaluates Ψ(S) for any schedule under the system's rates.
func (s *System) Cost(sched *Schedule) Money {
	return s.fresh().ScheduleCost(sched)
}

// CostSplit returns the storage and network components of Ψ(S).
func (s *System) CostSplit(sched *Schedule) (storage, network Money) {
	b := s.fresh().CostBreakdown(sched)
	return b.Storage, b.Network
}

// Overflows returns the storage over-commit situations of a schedule
// (empty for schedules produced by Schedule, which resolves them).
func (s *System) Overflows(sched *Schedule) []Overflow {
	ledger := occupancy.FromSchedule(s.topo, s.catalog, sched)
	return ledger.AllOverflows()
}

// Validate checks a schedule's structural invariants and that it serves
// exactly the given batch.
func (s *System) Validate(sched *Schedule, reqs RequestSet) error {
	return sched.Validate(s.topo, s.catalog, reqs)
}

// Simulate executes a schedule on the event-driven simulator, returning
// per-link and per-node usage and an independently derived cost.
func (s *System) Simulate(sched *Schedule) *SimReport {
	return vodsim.Execute(s.fresh().Book(), s.catalog, sched)
}

// OpenHorizon starts a rolling-horizon intake service over the system:
// reservations stream in via Horizon.Submit, epochs close per the config's
// triggers, and Horizon.Advance incrementally extends the committed
// schedule. The horizon is pinned to the system's rates at open time;
// later SetLinkRate/SetStorageRate calls do not affect it.
func (s *System) OpenHorizon(cfg HorizonConfig) *Horizon {
	return horizon.New(s.fresh(), cfg)
}

// OpenDurableHorizon is OpenHorizon with crash safety: every accepted
// reservation and committed epoch is journaled to a write-ahead log under
// dir (fsync policy per cfg.Fsync) and periodically compacted into
// snapshots, and opening an existing directory recovers the prior state —
// replaying the journal deterministically and re-verifying the recovered
// committed schedule with the audit bundle before serving. Close the
// returned Horizon to release the journal.
func (s *System) OpenDurableHorizon(dir string, cfg HorizonConfig) (*Horizon, error) {
	return horizon.Recover(dir, s.fresh(), cfg)
}

// GenerateFaults synthesizes a seeded random fault scenario over the
// system's topology.
func (s *System) GenerateFaults(cfg FaultGenConfig) (*FaultScenario, error) {
	return faults.Generate(s.topo, cfg)
}

// SimulateUnder executes a schedule while injecting the fault scenario:
// copies at dead storages are wiped, streams over dead elements are
// severed or never start, and the report carries the damage tally. A nil
// or empty scenario reproduces Simulate exactly.
func (s *System) SimulateUnder(sched *Schedule, sc *FaultScenario) *SimReport {
	return vodsim.ExecuteScenario(s.fresh().Book(), s.catalog, sched, sc)
}

// Repair builds the failure-aware repaired schedule for sched under the
// scenario: surviving services are kept, dead copies are truncated, and
// every knocked-out future service is re-sourced through the cheapest
// surviving option (alternate copy, re-route, or warehouse fallback).
func (s *System) Repair(sched *Schedule, sc *FaultScenario, opts RepairOptions) (*RepairResult, error) {
	return repair.Repair(s.fresh(), sched, sc, opts)
}

// UniformLinkCapacities caps every link at the same bandwidth, for use
// with ResolveBandwidth.
func (s *System) UniformLinkCapacities(cap BytesPerSec) LinkCapacities {
	return bandwidth.UniformEdges(s.topo, cap)
}

// LinkOverloads returns the saturated-link windows of a schedule under the
// given capacities.
func (s *System) LinkOverloads(sched *Schedule, caps LinkCapacities) []bandwidth.Overload {
	return bandwidth.Analyze(s.topo, s.catalog, sched).Overloads(caps)
}

// ResolveBandwidth reroutes streams around saturated links (the paper's
// future-work extension).
func (s *System) ResolveBandwidth(sched *Schedule, caps LinkCapacities) (*BandwidthResult, error) {
	return bandwidth.Resolve(s.fresh(), sched, caps)
}

// UniformNodeCapacities caps every intermediate storage's I/O bandwidth,
// for use with ResolveNodeBandwidth (the warehouse stays uncapped).
func (s *System) UniformNodeCapacities(cap BytesPerSec) NodeCapacities {
	return bandwidth.UniformNodes(s.topo, cap)
}

// ResolveNodeBandwidth offloads over-committed storage I/O by re-pointing
// the cheapest excess reads at the warehouse (the second half of the
// paper's §6 future work).
func (s *System) ResolveNodeBandwidth(sched *Schedule, caps NodeCapacities) (*NodeBandwidthResult, error) {
	return bandwidth.ResolveNodes(s.fresh(), sched, caps)
}

// Analyze derives cache-effectiveness statistics from a schedule.
func (s *System) Analyze(sched *Schedule) *AnalysisReport {
	return analysis.Summarize(s.fresh(), sched)
}

// Bill attributes a schedule's total cost to its reservations by exact
// marginal attribution; the statement always sums to Cost(sched).
func (s *System) Bill(sched *Schedule) (*BillingStatement, error) {
	return billing.Attribute(s.fresh(), sched)
}

// ScheduleOnline replays the batch through the reactive online baseline
// (nearest-copy service, LRU caches, no batch foreknowledge) and returns
// the cost it incurs — the system the paper's VOR model argues against.
func (s *System) ScheduleOnline(reqs RequestSet) (*OnlineResult, error) {
	return online.Run(s.fresh(), reqs)
}

// OptimalFile exhaustively computes the minimum-cost schedule for one
// file's requests (small request sets only; see optimal.MaxRequests).
func (s *System) OptimalFile(video VideoID, reqs RequestSet) (*FileSchedule, Money, error) {
	return optimal.ScheduleFile(s.fresh(), video, reqs)
}

// PlanPlacement computes a strategic-replication plan: standing copies of
// the expected-hot titles pre-loaded at intermediate storages. Feed the
// plan's Seeds into SchedulerConfig.Seeds. See DESIGN.md for when this
// pays off (spoiler: dynamic en-route caching usually wins).
func (s *System) PlanPlacement(cfg PlacementConfig) (*PlacementPlan, error) {
	return placement.Build(s.fresh(), cfg)
}

// SetPreloadFactor sets the off-peak bulk tariff factor in (0, 1] applied
// to pre-placement transfers.
func (s *System) SetPreloadFactor(f float64) error {
	return s.book.SetPreloadFactor(f)
}

// Audit runs every independent check on a schedule — structural
// validation, capacity feasibility, event-simulator execution with cost
// agreement, and billing consistency — and returns the collected findings.
// Use it before trusting a schedule that arrived from outside (a file, an
// API response).
func (s *System) Audit(sched *Schedule, reqs RequestSet) *AuditReport {
	return audit.Run(s.fresh(), sched, reqs)
}
