// Command vspsim executes a service schedule on the event-driven simulator
// and reports feasibility and independently derived costs.
//
// Usage:
//
//	vspsim -topo topo.json -catalog catalog.json -schedule schedule.json \
//	       -requests requests.json -srate 5 -nrate 500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/vodsim"
)

func main() {
	var (
		topoPath  = flag.String("topo", "", "topology JSON (required)")
		catPath   = flag.String("catalog", "", "catalog JSON (required)")
		schedPath = flag.String("schedule", "", "schedule JSON (required)")
		reqPath   = flag.String("requests", "", "requests JSON (optional; validates coverage)")
		srate     = flag.Float64("srate", 5, "storage charging rate ($/GB·hour)")
		nrate     = flag.Float64("nrate", 500, "network charging rate ($/GB)")
		verbose   = flag.Bool("v", false, "print per-link and per-node usage")
		auditFlag = flag.Bool("audit", false, "run the full audit bundle (validation, capacity, cost triangle, billing)")
	)
	flag.Parse()
	if err := run(os.Stdout, *topoPath, *catPath, *schedPath, *reqPath, *srate, *nrate, *verbose, *auditFlag); err != nil {
		fmt.Fprintln(os.Stderr, "vspsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, topoPath, catPath, schedPath, reqPath string, srate, nrate float64, verbose, auditRun bool) error {
	if topoPath == "" || catPath == "" || schedPath == "" {
		return fmt.Errorf("-topo, -catalog and -schedule are required")
	}
	topo, err := cli.LoadTopology(topoPath)
	if err != nil {
		return err
	}
	cat, err := cli.LoadCatalog(catPath)
	if err != nil {
		return err
	}
	sched, err := cli.LoadSchedule(schedPath)
	if err != nil {
		return err
	}
	model := cli.BuildModel(topo, cat, srate, nrate)
	if reqPath != "" {
		reqs, err := cli.LoadRequests(reqPath)
		if err != nil {
			return err
		}
		if err := sched.Validate(topo, cat, reqs); err != nil {
			return fmt.Errorf("schedule validation: %w", err)
		}
		fmt.Fprintf(w, "validation        ok (%d requests)\n", len(reqs))
	}
	rep := vodsim.Execute(model.Book(), cat, sched)
	fmt.Fprintf(w, "streams           %d\n", rep.Streams)
	fmt.Fprintf(w, "cache loads       %d\n", rep.CacheLoads)
	fmt.Fprintf(w, "violations        %d\n", len(rep.Violations))
	for i, v := range rep.Violations {
		if i >= 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(rep.Violations)-10)
			break
		}
		fmt.Fprintf(w, "  %v\n", v)
	}
	fmt.Fprintf(w, "simulated cost    %v (network %v + storage %v)\n",
		rep.TotalCost(), rep.NetworkCost, rep.StorageCost)
	analytic := model.ScheduleCost(sched)
	fmt.Fprintf(w, "analytic Ψ(S)     %v\n", analytic)
	if !rep.TotalCost().ApproxEqual(analytic, 1e-3) {
		fmt.Fprintf(w, "WARNING: simulated and analytic costs disagree\n")
	}
	if verbose {
		fmt.Fprintln(w, "links:")
		for _, lu := range rep.Links {
			e := topo.Edge(lu.Edge)
			fmt.Fprintf(w, "  %s--%s  %v  peak %d streams (%v)\n",
				topo.Node(e.A).Name, topo.Node(e.B).Name, lu.Bytes, lu.PeakStreams, lu.PeakRate)
		}
		fmt.Fprintln(w, "storages:")
		for _, nu := range rep.Nodes {
			fmt.Fprintf(w, "  %-6s peak %.2f GB, %.3g GB·h\n",
				topo.Node(nu.Node).Name, nu.PeakReserved/1e9, nu.ByteSeconds/1e9/3600)
		}
	}
	if auditRun {
		if reqPath == "" {
			return fmt.Errorf("-audit needs -requests (coverage is part of the audit)")
		}
		reqs, err := cli.LoadRequestsAuto(reqPath, topo, cat)
		if err != nil {
			return err
		}
		arep := audit.Run(model, sched, reqs)
		fmt.Fprintf(w, "audit             %d finding(s)\n", len(arep.Findings))
		for _, fd := range arep.Findings {
			fmt.Fprintf(w, "  %v\n", fd)
		}
		if !arep.OK() {
			return fmt.Errorf("audit failed with %d finding(s)", len(arep.Findings))
		}
	}
	if !rep.OK() {
		return fmt.Errorf("%d violations", len(rep.Violations))
	}
	return nil
}
