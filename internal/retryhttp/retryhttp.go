// Package retryhttp is a small retrying HTTP client helper for the
// service's internal control-plane calls: WAL shipping, fencing, and the
// remote-intake drivers. It retries transient failures — connection
// errors, 429, and the retryable 5xx family — with jittered exponential
// backoff, honors Retry-After when the server names its own back-off,
// and respects context cancellation at every wait.
//
// It deliberately does not retry on other statuses: a 400 or 409 is a
// protocol answer (a stale leadership epoch, a late arrival), not a
// transient fault, and the caller must see it.
package retryhttp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Defaults for the zero Options value.
const (
	DefaultMaxAttempts = 5
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
)

// Options tunes the retry loop. The zero value is usable.
type Options struct {
	// Client issues the requests (default http.DefaultClient).
	Client *http.Client
	// MaxAttempts bounds the total number of tries (default
	// DefaultMaxAttempts; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the first back-off (default DefaultBaseDelay); each
	// retry doubles it, jittered to a uniform value in [d/2, d).
	BaseDelay time.Duration
	// MaxDelay caps the back-off, including server-supplied Retry-After
	// values (default DefaultMaxDelay).
	MaxDelay time.Duration
	// MaxElapsed bounds the *total* time the retry loop may consume
	// across attempts and back-off sleeps (0 = unbounded). When the
	// next back-off would cross the budget the loop stops early and
	// returns the terminal answer it has — the last retryable response,
	// or an error if every attempt failed at the transport layer.
	// Against a flapping peer that answers each attempt slowly,
	// MaxAttempts alone cannot keep a caller inside its deadline; this
	// can.
	MaxElapsed time.Duration
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = DefaultBaseDelay
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultMaxDelay
	}
	return o
}

// retryableStatus reports whether a response status signals a transient
// condition worth retrying: explicit back-pressure (429) or the gateway /
// availability 5xx family. 500 itself is excluded — the repo's handlers
// use it for deterministic internal failures that a retry only repeats.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do issues the request produced by newReq, retrying transient failures.
// newReq is called once per attempt so each try gets a fresh body. The
// returned response is the terminal one — a success, a non-retryable
// status, or the last retryable status once attempts are exhausted — and
// the caller owns its body. A non-nil error means no response was
// obtained at all (every attempt failed at the transport layer, or the
// context expired).
func Do(ctx context.Context, opts Options, newReq func() (*http.Request, error)) (*http.Response, error) {
	opts = opts.withDefaults()
	start := time.Now()
	// exhausted reports whether sleeping for wait would push the loop
	// past its total-elapsed budget, in which case retrying must stop.
	exhausted := func(wait time.Duration) bool {
		return opts.MaxElapsed > 0 && time.Since(start)+wait > opts.MaxElapsed
	}
	delay := opts.BaseDelay
	var lastErr error
	for attempt := 1; ; attempt++ {
		// An already-expired context must short-circuit before the attempt
		// is issued, not after a doomed dial plus a full backoff sleep.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		req, err := newReq()
		if err != nil {
			return nil, fmt.Errorf("retryhttp: build request: %w", err)
		}
		resp, err := opts.Client.Do(req.WithContext(ctx))
		switch {
		case err != nil:
			// A failure caused by the context is terminal, not transient:
			// retrying a cancelled call only burns attempts and backoff.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			lastErr = err
		case !retryableStatus(resp.StatusCode) || attempt == opts.MaxAttempts:
			return resp, nil
		default:
			// Retryable status: honor Retry-After if present, then retry.
			wait := retryAfter(resp, delay, opts.MaxDelay)
			if exhausted(wait) {
				// Out of elapsed budget: the retryable status becomes the
				// terminal answer, exactly as if attempts had run out.
				return resp, nil
			}
			drain(resp)
			if err := sleep(ctx, wait); err != nil {
				return nil, err
			}
			delay = nextDelay(delay, opts.MaxDelay)
			continue
		}
		if attempt == opts.MaxAttempts {
			return nil, fmt.Errorf("retryhttp: %d attempts failed: %w", attempt, lastErr)
		}
		wait := jitter(delay)
		if exhausted(wait) {
			return nil, fmt.Errorf("retryhttp: elapsed budget %v exhausted after %d attempts: %w",
				opts.MaxElapsed, attempt, lastErr)
		}
		if err := sleep(ctx, wait); err != nil {
			return nil, err
		}
		delay = nextDelay(delay, opts.MaxDelay)
	}
}

// jitter spreads a delay uniformly over [d/2, d) so synchronized clients
// desynchronize instead of retrying in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)))
}

func nextDelay(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		return max
	}
	return d
}

// retryAfter extracts a Retry-After delay (delta-seconds form; the
// HTTP-date form is rare and falls back to the computed back-off),
// capped at max.
func retryAfter(resp *http.Response, fallback, max time.Duration) time.Duration {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return jitter(fallback)
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return jitter(fallback)
	}
	d := time.Duration(secs) * time.Second
	if d > max {
		return max
	}
	return d
}

func sleep(ctx context.Context, d time.Duration) error {
	// Check first: select picks uniformly among ready cases, so a
	// cancelled context could otherwise lose the race against a timer
	// that has already fired (or a zero-length sleep).
	if err := ctx.Err(); err != nil {
		return err
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// StatusError reports a terminal non-2xx reply from a JSON endpoint.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("retryhttp: status %d: %s", e.Code, e.Message)
}

// GetJSON GETs url and decodes a 2xx JSON body into out (which may be
// nil to discard). Non-2xx replies become a *StatusError carrying the
// body's "error" field when present.
func GetJSON(ctx context.Context, opts Options, url string, out any) error {
	return doJSON(ctx, opts, http.MethodGet, url, nil, out)
}

// PostJSON POSTs in (JSON-encoded; nil for an empty body) to url and
// decodes a 2xx JSON reply into out.
func PostJSON(ctx context.Context, opts Options, url string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("retryhttp: encode body: %w", err)
		}
	}
	return doJSON(ctx, opts, http.MethodPost, url, body, out)
}

func doJSON(ctx context.Context, opts Options, method, url string, body []byte, out any) error {
	resp, err := Do(ctx, opts, func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &StatusError{Code: resp.StatusCode, Message: msg}
	}
	if out == nil {
		drain(resp)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("retryhttp: decode %s %s reply: %w", method, url, err)
	}
	return nil
}
