package horizon_test

import (
	"context"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

const benchEpochs = 10

// benchRig is the 500-request workload the acceptance criterion names:
// 10 storages × 5 users × 10 reservations each, replayed over 10 epochs.
func benchRig(b *testing.B) *experiment.Rig {
	b.Helper()
	r, err := experiment.Build(experiment.Params{
		Storages:        10,
		UsersPerStorage: 5,
		RequestsPerUser: 10,
		Titles:          50,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkHorizonAdvance replays the 500-request trace through 10
// incremental epoch advances: each epoch submits the reservations starting
// in its lookahead window and commits everything behind the new horizon,
// so later epochs only re-plan a sliver of the schedule. Compare against
// BenchmarkFullResolve, which re-runs the one-shot scheduler from scratch
// at every epoch boundary — the only strategy the repo had before
// internal/horizon.
func BenchmarkHorizonAdvance(b *testing.B) {
	r := benchRig(b)
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	step := simtime.Duration(int64(window) / benchEpochs)
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := horizon.New(r.Model, horizon.Config{})
		next := 0
		for k := 1; k <= benchEpochs; k++ {
			h := simtime.Time(int64(step) * int64(k))
			for next < len(reqs) && reqs[next].Start < h.Add(step) {
				if _, err := svc.Submit(reqs[next].Start, reqs[next]); err != nil {
					b.Fatal(err)
				}
				next++
			}
			if _, err := svc.Advance(ctx, h); err != nil {
				b.Fatal(err)
			}
		}
		if next != len(reqs) {
			b.Fatalf("replay bug: %d of %d submitted", next, len(reqs))
		}
	}
}

// BenchmarkFullResolve answers the same 10 epoch boundaries by re-solving
// the whole accumulated batch from scratch each time — the quadratic
// baseline the rolling horizon replaces.
func BenchmarkFullResolve(b *testing.B) {
	r := benchRig(b)
	reqs := append(workload.Set(nil), r.Requests...)
	workload.SortChronological(reqs)
	window := simtime.Duration(r.Params.WindowHours) * simtime.Hour
	step := simtime.Duration(int64(window) / benchEpochs)
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := 0
		for k := 1; k <= benchEpochs; k++ {
			h := simtime.Time(int64(step) * int64(k))
			for next < len(reqs) && reqs[next].Start < h.Add(step) {
				next++
			}
			if _, err := scheduler.Schedule(ctx, r.Model, reqs[:next], scheduler.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
