// Command vspsim executes a service schedule on the event-driven simulator
// and reports feasibility and independently derived costs. It can inject a
// fault scenario into the execution and compute a failure-aware repaired
// schedule.
//
// Usage:
//
//	vspsim -topo topo.json -catalog catalog.json -schedule schedule.json \
//	       -requests requests.json -srate 5 -nrate 500
//	vspsim ... -faults scenario.json -repair reroute
//	vspsim ... -fault-seed 42 -repair vw-direct
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/repair"
	"github.com/vodsim/vsp/internal/vodsim"
)

type options struct {
	topoPath, catPath, schedPath, reqPath string
	srate, nrate                          float64
	verbose, auditRun                     bool
	faultsPath                            string
	faultSeed                             int64
	repairPolicy                          string
	repairOut                             string
}

func main() {
	var o options
	flag.StringVar(&o.topoPath, "topo", "", "topology JSON (required)")
	flag.StringVar(&o.catPath, "catalog", "", "catalog JSON (required)")
	flag.StringVar(&o.schedPath, "schedule", "", "schedule JSON (required)")
	flag.StringVar(&o.reqPath, "requests", "", "requests JSON (optional; validates coverage)")
	flag.Float64Var(&o.srate, "srate", 5, "storage charging rate ($/GB·hour)")
	flag.Float64Var(&o.nrate, "nrate", 500, "network charging rate ($/GB)")
	flag.BoolVar(&o.verbose, "v", false, "print per-link and per-node usage")
	flag.BoolVar(&o.auditRun, "audit", false, "run the full audit bundle (validation, capacity, cost triangle, billing)")
	flag.StringVar(&o.faultsPath, "faults", "", "fault scenario JSON to inject into the execution")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "generate a random fault scenario from this seed (ignored with -faults)")
	flag.StringVar(&o.repairPolicy, "repair", "", "repair the schedule against the scenario: reroute or vw-direct")
	flag.StringVar(&o.repairOut, "repair-out", "", "write the repaired schedule JSON here (\"-\" for stdout)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "vspsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	if o.topoPath == "" || o.catPath == "" || o.schedPath == "" {
		return fmt.Errorf("-topo, -catalog and -schedule are required")
	}
	topo, err := cli.LoadTopology(o.topoPath)
	if err != nil {
		return err
	}
	cat, err := cli.LoadCatalog(o.catPath)
	if err != nil {
		return err
	}
	sched, err := cli.LoadSchedule(o.schedPath)
	if err != nil {
		return err
	}
	model := cli.BuildModel(topo, cat, o.srate, o.nrate)
	if o.reqPath != "" {
		reqs, err := cli.LoadRequests(o.reqPath)
		if err != nil {
			return err
		}
		if err := sched.Validate(topo, cat, reqs); err != nil {
			return fmt.Errorf("schedule validation: %w", err)
		}
		fmt.Fprintf(w, "validation        ok (%d requests)\n", len(reqs))
	}

	var sc *faults.Scenario
	switch {
	case o.faultsPath != "":
		if sc, err = cli.LoadScenario(o.faultsPath); err != nil {
			return err
		}
	case o.faultSeed != 0:
		if sc, err = faults.Generate(topo, faults.GenConfig{Seed: o.faultSeed}); err != nil {
			return err
		}
	}
	if err := sc.Validate(topo); err != nil {
		return err
	}

	rep := vodsim.ExecuteScenario(model.Book(), cat, sched, sc)
	fmt.Fprintf(w, "streams           %d\n", rep.Streams)
	fmt.Fprintf(w, "cache loads       %d\n", rep.CacheLoads)
	fmt.Fprintf(w, "violations        %d\n", len(rep.Violations))
	for i, v := range rep.Violations {
		if i >= 10 {
			fmt.Fprintf(w, "  ... %d more\n", len(rep.Violations)-10)
			break
		}
		fmt.Fprintf(w, "  %v\n", v)
	}
	if !sc.Empty() {
		fmt.Fprintf(w, "faults            %d (missed %d, severed %d, dead copies %d)\n",
			len(sc.Faults), rep.Missed, rep.Severed, rep.DeadResidencies)
		for _, f := range sc.Faults {
			fmt.Fprintf(w, "  inject: %v\n", f)
		}
		for i, n := range rep.FaultNotes {
			if i >= 10 {
				fmt.Fprintf(w, "  ... %d more\n", len(rep.FaultNotes)-10)
				break
			}
			fmt.Fprintf(w, "  %s\n", n)
		}
	}
	fmt.Fprintf(w, "simulated cost    %v (network %v + storage %v)\n",
		rep.TotalCost(), rep.NetworkCost, rep.StorageCost)
	analytic := model.ScheduleCost(sched)
	fmt.Fprintf(w, "analytic Ψ(S)     %v\n", analytic)
	// Under faults the execution legitimately diverges from the fault-free
	// plan cost, so the cross-check only applies to clean runs.
	if sc.Empty() && !rep.TotalCost().ApproxEqual(analytic, 1e-3) {
		fmt.Fprintf(w, "WARNING: simulated and analytic costs disagree\n")
	}

	if o.repairPolicy != "" {
		if sc.Empty() {
			return fmt.Errorf("-repair needs a fault scenario (-faults or -fault-seed)")
		}
		pol, err := repair.ParsePolicy(o.repairPolicy)
		if err != nil {
			return err
		}
		res, err := repair.Repair(model, sched, sc, repair.Options{Policy: pol})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "repair(%v)   repaired %d/%d impacted (cache %d, vw %d), missed %d\n",
			pol, res.Repaired, res.Impacted, res.FromCache, res.FromVW, len(res.Missed))
		for _, ms := range res.Missed {
			fmt.Fprintf(w, "  lost: video %d user %d at %v: %s\n", ms.Video, ms.User, ms.Start, ms.Reason)
		}
		fmt.Fprintf(w, "  cost %v -> %v (delta %v vs fault-free Ψ)\n", res.CostBefore, res.CostAfter, res.Delta())
		fmt.Fprintf(w, "  degraded cache: %d copies, hit rate %.1f%%\n", res.Copies, res.HitRatePct)
		if o.repairOut != "" {
			if err := cli.SaveJSON(o.repairOut, res.Schedule); err != nil {
				return err
			}
		}
	}

	if o.verbose {
		fmt.Fprintln(w, "links:")
		for _, lu := range rep.Links {
			e := topo.Edge(lu.Edge)
			fmt.Fprintf(w, "  %s--%s  %v  peak %d streams (%v)\n",
				topo.Node(e.A).Name, topo.Node(e.B).Name, lu.Bytes, lu.PeakStreams, lu.PeakRate)
		}
		fmt.Fprintln(w, "storages:")
		for _, nu := range rep.Nodes {
			fmt.Fprintf(w, "  %-6s peak %.2f GB, %.3g GB·h\n",
				topo.Node(nu.Node).Name, nu.PeakReserved/1e9, nu.ByteSeconds/1e9/3600)
		}
	}
	if o.auditRun {
		if o.reqPath == "" {
			return fmt.Errorf("-audit needs -requests (coverage is part of the audit)")
		}
		reqs, err := cli.LoadRequestsAuto(o.reqPath, topo, cat)
		if err != nil {
			return err
		}
		arep := audit.Run(model, sched, reqs)
		fmt.Fprintf(w, "audit             %d finding(s)\n", len(arep.Findings))
		for _, fd := range arep.Findings {
			fmt.Fprintf(w, "  %v\n", fd)
		}
		if !arep.OK() {
			return fmt.Errorf("audit failed with %d finding(s)", len(arep.Findings))
		}
	}
	if !rep.OK() {
		return fmt.Errorf("%d violations", len(rep.Violations))
	}
	return nil
}
