package cost

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// fig2 builds the paper's worked example (§3.2, Fig. 2): VW—IS1—IS2 with
// U1 local to IS1 and U2, U3 local to IS2, requesting the same 90-minute,
// 2.5 GB, 6 Mbps title at 1:00, 2:30 and 4:00 pm.
//
// Rates: nrate(VW,IS1) = 0.2 and nrate(IS1,IS2) = 0.1 cents/(Mbit/s · s)
// — i.e. cents per megabit — and srate(IS1) = $1/(GB·hour), the values
// that reproduce the paper's dollar figures exactly.
func fig2(t *testing.T) (*Model, *topology.Topology) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1) // U1
	b.AttachUsers(is2, 2) // U2, U3
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(1, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, 0, 0)
	// 0.2 cents per Mbit = $0.002 / (1e6/8 bytes) = $1.6e-8 per byte.
	centsPerMbit := func(c float64) pricing.NRate { return pricing.NRate(c / 100 * 8 / 1e6) }
	e01, _ := topo.EdgeBetween(vw, is1)
	e12, _ := topo.EdgeBetween(is1, is2)
	book.SetNRate(e01, centsPerMbit(0.2))
	book.SetNRate(e12, centsPerMbit(0.1))
	// $1 per GB·hour.
	perGBHour := pricing.SRate(1.0 / (1e9 * 3600))
	if err := book.SetSRate(is1, perGBHour); err != nil {
		t.Fatal(err)
	}
	if err := book.SetSRate(is2, perGBHour); err != nil {
		t.Fatal(err)
	}
	table := routing.NewTable(book)
	return NewModel(book, table, cat), topo
}

// Times of the three requests, measured from 1:00 pm.
const (
	tU1 = simtime.Time(0)
	tU2 = simtime.Time(90 * 60)  // 2:30 pm
	tU3 = simtime.Time(180 * 60) // 4:00 pm
)

func fig2Requests(topo *topology.Topology) workload.Set {
	is1, _ := topo.Lookup("IS1")
	is2, _ := topo.Lookup("IS2")
	u1 := topo.UsersAt(is1)[0]
	u23 := topo.UsersAt(is2)
	return workload.Set{
		{User: u1, Video: 0, Start: tU1},
		{User: u23[0], Video: 0, Start: tU2},
		{User: u23[1], Video: 0, Start: tU3},
	}
}

func route(t *testing.T, m *Model, src, dst topology.NodeID) routing.Route {
	t.Helper()
	r, err := m.Table().Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPaperFig2ScheduleS1 reproduces schedule S1: all three requests served
// directly from the warehouse. Ψ(S1) = $259.20.
func TestPaperFig2ScheduleS1(t *testing.T) {
	m, topo := fig2(t)
	reqs := fig2Requests(topo)
	is1, _ := topo.Lookup("IS1")
	is2, _ := topo.Lookup("IS2")
	vw := topo.Warehouse()

	fs := &schedule.FileSchedule{Video: 0}
	for _, r := range reqs {
		dst := is1
		if topo.User(r.User).Local == is2 {
			dst = is2
		}
		fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
			Video: 0, User: r.User, Start: r.Start,
			Route: route(t, m, vw, dst), SourceResidency: schedule.NoResidency,
		})
	}
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(topo, m.Catalog(), reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := m.ScheduleCost(s)
	if !got.ApproxEqual(units.Money(259.2), 1e-6) {
		t.Errorf("Ψ(S1) = %v, want $259.20", got)
	}
	b := m.CostBreakdown(s)
	if b.Storage != 0 {
		t.Errorf("S1 storage cost = %v, want 0", b.Storage)
	}
	if !b.Total().ApproxEqual(got, 1e-9) {
		t.Error("breakdown total mismatch")
	}
}

// TestPaperFig2ScheduleS2 reproduces schedule S2: U1 served from the
// warehouse while IS1 caches the stream; U2 and U3 are served from the
// cached copy. Ψ(S2) = $138.975.
func TestPaperFig2ScheduleS2(t *testing.T) {
	m, topo := fig2(t)
	reqs := fig2Requests(topo)
	is1, _ := topo.Lookup("IS1")
	is2, _ := topo.Lookup("IS2")
	vw := topo.Warehouse()
	u23 := topo.UsersAt(is2)

	fs := &schedule.FileSchedule{Video: 0}
	// Delivery 0: VW -> IS1 serving U1; the stream feeds the cache at IS1.
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: reqs[0].User, Start: tU1,
		Route: route(t, m, vw, is1), SourceResidency: schedule.NoResidency,
	})
	// Deliveries 1, 2: IS1 -> IS2 from the cached copy.
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: u23[0], Start: tU2,
		Route: route(t, m, is1, is2), SourceResidency: 0,
	})
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: u23[1], Start: tU3,
		Route: route(t, m, is1, is2), SourceResidency: 0,
	})
	fs.Residencies = append(fs.Residencies, schedule.Residency{
		Video: 0, Loc: is1, Src: vw,
		Load: tU1, LastService: tU3,
		FedBy: 0, Services: []int{1, 2},
	})
	s := schedule.New()
	s.Put(fs)
	if err := s.Validate(topo, m.Catalog(), reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := m.ScheduleCost(s)
	if !got.ApproxEqual(units.Money(138.975), 1e-6) {
		t.Errorf("Ψ(S2) = %v, want $138.975", got)
	}
	// Component check: storage $9.375, network $64.8 + 2×$32.4.
	b := m.CostBreakdown(s)
	if !b.Storage.ApproxEqual(units.Money(9.375), 1e-6) {
		t.Errorf("S2 storage = %v, want $9.375", b.Storage)
	}
	if !b.Network.ApproxEqual(units.Money(129.6), 1e-6) {
		t.Errorf("S2 network = %v, want $129.60", b.Network)
	}
}

func TestSpanCostShape(t *testing.T) {
	srate := pricing.PerGBSec(5)
	size := units.GBf(2)
	P := 90 * simtime.Minute

	if SpanCost(srate, size, P, 0) != 0 {
		t.Error("SpanCost(Δ=0) must be 0")
	}
	if SpanCost(srate, size, P, -1) != 0 {
		t.Error("SpanCost(Δ<0) must be 0")
	}
	if SpanCost(srate, size, 0, 100) != 0 {
		t.Error("SpanCost with zero playback must be 0")
	}
	// Continuity at Δ = P.
	below := SpanCost(srate, size, P, simtime.Duration(P)-1)
	at := SpanCost(srate, size, P, simtime.Duration(P))
	above := SpanCost(srate, size, P, simtime.Duration(P)+1)
	if !(below < at && at < above) {
		t.Errorf("not monotone around Δ=P: %v %v %v", below, at, above)
	}
	if float64(at-below) > float64(at)*0.001 {
		t.Errorf("discontinuity at Δ=P: %v vs %v", below, at)
	}
	// Long form: srate·size·(Δ+P/2).
	want := float64(srate) * size.Float() * (2*P.Seconds() + P.Seconds()/2)
	if got := SpanCost(srate, size, P, 2*P); math.Abs(float64(got)-want) > 1e-6 {
		t.Errorf("long SpanCost = %v, want %g", got, want)
	}
	// Short form: srate·size·(Δ/P)·(Δ+P/2).
	half := P / 2
	wantShort := float64(srate) * size.Float() * 0.5 * (half.Seconds() + P.Seconds()/2)
	if got := SpanCost(srate, size, P, half); math.Abs(float64(got)-wantShort) > 1e-6 {
		t.Errorf("short SpanCost = %v, want %g", got, wantShort)
	}
}

func TestPropertySpanCostMonotone(t *testing.T) {
	srate := pricing.PerGBSec(3)
	size := units.GBf(3.3)
	P := 90 * simtime.Minute
	f := func(a, b uint32) bool {
		d1 := simtime.Duration(a % 100000)
		d2 := simtime.Duration(b % 100000)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return SpanCost(srate, size, P, d1) <= SpanCost(srate, size, P, d2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendCostAdditive(t *testing.T) {
	m, topo := fig2(t)
	is1, _ := topo.Lookup("IS1")
	c := schedule.Residency{Video: 0, Loc: is1, Src: topo.Warehouse(), Load: 0, LastService: 0}
	// Extending 0 -> a -> b must equal extending 0 -> b.
	a := simtime.Time(40 * 60)
	b := simtime.Time(200 * 60)
	step1 := m.ExtendCost(c, a)
	c2 := c
	c2.LastService = a
	step2 := m.ExtendCost(c2, b)
	direct := m.ExtendCost(c, b)
	if !(step1 + step2).ApproxEqual(direct, 1e-9) {
		t.Errorf("ExtendCost not additive: %v + %v != %v", step1, step2, direct)
	}
	// Extending to the current LastService is free.
	if m.ExtendCost(c2, a) != 0 {
		t.Error("no-op extension must cost 0")
	}
}

func TestDeliveryCostModes(t *testing.T) {
	m, topo := fig2(t)
	vw := topo.Warehouse()
	is2, _ := topo.Lookup("IS2")
	d := schedule.Delivery{
		Video: 0, User: 1, Start: 0,
		Route: route(t, m, vw, is2), SourceResidency: schedule.NoResidency,
	}
	perHop := m.DeliveryCost(d)
	if !perHop.ApproxEqual(units.Money(97.2), 1e-6) {
		t.Errorf("per-hop VW->IS2 = %v, want $97.20", perHop)
	}
	m.Book().SetMode(pricing.EndToEnd)
	if got := m.DeliveryCost(d); !got.ApproxEqual(perHop, 1e-9) {
		t.Errorf("end-to-end default = %v, want %v", got, perHop)
	}
	m.Book().SetEndToEnd(vw, is2, 0)
	if got := m.DeliveryCost(d); got != 0 {
		t.Errorf("overridden end-to-end = %v, want 0", got)
	}
	m.Book().SetMode(pricing.PerHop)
	// TransferCost agrees with DeliveryCost along the cheapest route.
	if got := m.TransferCost(0, vw, is2); !got.ApproxEqual(perHop, 1e-9) {
		t.Errorf("TransferCost = %v, want %v", got, perHop)
	}
}

func TestResidencyCostZeroSpan(t *testing.T) {
	m, topo := fig2(t)
	is1, _ := topo.Lookup("IS1")
	c := schedule.Residency{Video: 0, Loc: is1, Src: topo.Warehouse(), Load: 100, LastService: 100}
	if got := m.ResidencyCost(c); got != 0 {
		t.Errorf("zero-span residency cost = %v, want 0 (tentative caches are free)", got)
	}
}

func TestFileCostSumsComponents(t *testing.T) {
	m, topo := fig2(t)
	vw := topo.Warehouse()
	is1, _ := topo.Lookup("IS1")
	fs := &schedule.FileSchedule{Video: 0}
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: 0, Start: 0, Route: route(t, m, vw, is1),
		SourceResidency: schedule.NoResidency,
	})
	fs.Residencies = append(fs.Residencies, schedule.Residency{
		Video: 0, Loc: is1, Src: vw, Load: 0, LastService: simtime.Time(2 * simtime.Hour), FedBy: 0,
	})
	want := m.DeliveryCost(fs.Deliveries[0]) + m.ResidencyCost(fs.Residencies[0])
	if got := m.FileCost(fs); !got.ApproxEqual(want, 1e-9) {
		t.Errorf("FileCost = %v, want %v", got, want)
	}
}

// Property: SpanCost is linear in file size and continuous across the
// short/long boundary for arbitrary playback lengths.
func TestPropertySpanCostLinearityAndContinuity(t *testing.T) {
	f := func(pRaw, dRaw uint16, szRaw uint8) bool {
		P := simtime.Duration(pRaw%5000) + 1
		span := simtime.Duration(dRaw % 10000)
		size := units.Bytes(int64(szRaw)+1) * units.MB
		srate := pricing.PerGBSec(2)
		// Linearity: doubling the size doubles the cost.
		a := SpanCost(srate, size, P, span)
		b := SpanCost(srate, 2*size, P, span)
		if math.Abs(float64(b-2*a)) > 1e-9*(1+math.Abs(float64(b))) {
			return false
		}
		// Continuity at the boundary: Δ=P−1 vs Δ=P within one second's
		// worth of cost.
		below := SpanCost(srate, size, P, P-1)
		at := SpanCost(srate, size, P, P)
		stepBound := float64(srate) * size.Float() * 3 // generous per-second bound
		return math.Abs(float64(at-below)) <= stepBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
