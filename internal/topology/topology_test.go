package topology

import (
	"testing"

	"github.com/vodsim/vsp/internal/units"
)

func smallTopo(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 5*units.GB)
	is2 := b.Storage("IS2", 8*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestBuilderBasics(t *testing.T) {
	topo := smallTopo(t)
	if topo.NumNodes() != 3 || topo.NumStorages() != 2 || topo.NumEdges() != 2 {
		t.Fatalf("counts: nodes=%d storages=%d edges=%d", topo.NumNodes(), topo.NumStorages(), topo.NumEdges())
	}
	if topo.NumUsers() != 3 {
		t.Fatalf("users = %d, want 3", topo.NumUsers())
	}
	vw := topo.Warehouse()
	if topo.Node(vw).Kind != KindWarehouse {
		t.Error("warehouse node has wrong kind")
	}
	is1, ok := topo.Lookup("IS1")
	if !ok {
		t.Fatal("Lookup(IS1) failed")
	}
	if topo.Node(is1).Capacity != 5*units.GB {
		t.Error("IS1 capacity wrong")
	}
	if got := topo.Degree(is1); got != 2 {
		t.Errorf("Degree(IS1) = %d, want 2", got)
	}
	is2, _ := topo.Lookup("IS2")
	if got := len(topo.UsersAt(is2)); got != 2 {
		t.Errorf("UsersAt(IS2) = %d, want 2", got)
	}
	if topo.User(topo.UsersAt(is2)[0]).Local != is2 {
		t.Error("user local storage mismatch")
	}
	if _, ok := topo.EdgeBetween(vw, is1); !ok {
		t.Error("EdgeBetween(VW, IS1) not found")
	}
	if _, ok := topo.EdgeBetween(vw, is2); ok {
		t.Error("EdgeBetween(VW, IS2) unexpectedly found")
	}
	if len(topo.Storages()) != 2 {
		t.Error("Storages() wrong length")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{A: 1, B: 2}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Error("Edge.Other wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("no warehouse", func(t *testing.T) {
		b := NewBuilder()
		b.Storage("IS1", units.GB)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for missing warehouse")
		}
	})
	t.Run("two warehouses", func(t *testing.T) {
		b := NewBuilder()
		b.Warehouse("VW1")
		b.Warehouse("VW2")
		if _, err := b.Build(); err == nil {
			t.Error("expected error for second warehouse")
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		b := NewBuilder()
		b.Warehouse("VW")
		b.Storage("IS1", units.GB)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for disconnected graph")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder()
		vw := b.Warehouse("VW")
		b.Connect(vw, vw)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for self loop")
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		b := NewBuilder()
		vw := b.Warehouse("VW")
		is := b.Storage("IS1", units.GB)
		b.Connect(vw, is)
		b.Connect(is, vw)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for duplicate edge")
		}
	})
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder()
		vw := b.Warehouse("X")
		is := b.Storage("X", units.GB)
		b.Connect(vw, is)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for duplicate name")
		}
	})
	t.Run("attach to warehouse", func(t *testing.T) {
		b := NewBuilder()
		vw := b.Warehouse("VW")
		is := b.Storage("IS1", units.GB)
		b.Connect(vw, is)
		b.AttachUsers(vw, 3)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for users on warehouse")
		}
	})
	t.Run("negative capacity", func(t *testing.T) {
		b := NewBuilder()
		vw := b.Warehouse("VW")
		is := b.Storage("IS1", -units.GB)
		b.Connect(vw, is)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for negative capacity")
		}
	})
	t.Run("invalid ids", func(t *testing.T) {
		b := NewBuilder()
		b.Warehouse("VW")
		b.Connect(0, 99)
		b.AttachUsers(99, 1)
		if _, err := b.Build(); err == nil {
			t.Error("expected error for invalid ids")
		}
	})
}

func TestNodeKindString(t *testing.T) {
	if KindWarehouse.String() != "warehouse" || KindStorage.String() != "storage" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(9).String() != "NodeKind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestNeighborsIteration(t *testing.T) {
	topo := smallTopo(t)
	is1, _ := topo.Lookup("IS1")
	var tos []NodeID
	topo.Neighbors(is1, func(edgeIdx int, to NodeID) {
		e := topo.Edge(edgeIdx)
		if e.Other(is1) != to {
			t.Error("edge/to mismatch in Neighbors")
		}
		tos = append(tos, to)
	})
	if len(tos) != 2 {
		t.Fatalf("Neighbors visited %d edges, want 2", len(tos))
	}
	// Sorted by far endpoint.
	if tos[0] > tos[1] {
		t.Error("Neighbors not sorted by endpoint")
	}
}

func TestComputeStats(t *testing.T) {
	// Chain VW - IS1 - IS2 - IS3: diameter 3, avg hops (1+2+3)/3 = 2,
	// one leaf storage (IS3; IS1 and IS2 have degree 2).
	topo := Chain(GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: units.GB})
	s := topo.ComputeStats()
	if s.Nodes != 4 || s.Storages != 3 || s.Links != 3 || s.Users != 6 {
		t.Errorf("counts: %+v", s)
	}
	if s.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", s.Diameter)
	}
	if s.AvgHops != 2 {
		t.Errorf("avg hops = %g, want 2", s.AvgHops)
	}
	if s.Leaves != 1 {
		t.Errorf("leaves = %d, want 1", s.Leaves)
	}
	if s.MaxDegree != 2 {
		t.Errorf("max degree = %d, want 2", s.MaxDegree)
	}
	// Star: diameter 2 (leaf-to-leaf), avg hops 1, all storages leaves.
	star := Star(GenConfig{Storages: 5, UsersPerStorage: 1, Capacity: units.GB})
	ss := star.ComputeStats()
	if ss.Diameter != 2 || ss.AvgHops != 1 || ss.Leaves != 5 || ss.MaxDegree != 5 {
		t.Errorf("star stats: %+v", ss)
	}
}
