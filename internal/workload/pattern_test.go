package workload

import (
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

func patternFixture(t *testing.T, usersPerStorage int) (*topology.Topology, *media.Catalog) {
	t.Helper()
	topo := topology.Metro(topology.GenConfig{Storages: 4, UsersPerStorage: usersPerStorage}, 1)
	cat, err := media.Generate(media.GenConfig{Titles: 40})
	if err != nil {
		t.Fatal(err)
	}
	return topo, cat
}

func TestPatternExactCountAndOrder(t *testing.T) {
	topo, cat := patternFixture(t, 6)
	p := Pattern{
		Base:     Config{Seed: 7},
		Requests: 1234,
		Span:     simtime.Day,
		Diurnal:  Diurnal{Strength: 0.8},
		Flash:    []Flash{{At: simtime.Time(20 * simtime.Hour), Boost: 3, Video: 5, Share: 0.9}},
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != p.Requests {
		t.Fatalf("emitted %d requests, want exactly %d", len(set), p.Requests)
	}
	for i := 1; i < len(set); i++ {
		if set[i].Start < set[i-1].Start {
			t.Fatalf("trace not chronological at %d: %v after %v", i, set[i].Start, set[i-1].Start)
		}
	}
	for i, r := range set {
		if r.Start < 0 || r.Start >= simtime.Time(p.Span) {
			t.Fatalf("request %d starts at %v, outside [0, %v)", i, r.Start, p.Span)
		}
		if int(r.Video) < 0 || int(r.Video) >= cat.Len() {
			t.Fatalf("request %d references video %d outside the catalog", i, r.Video)
		}
		if int(r.User) < 0 || int(r.User) >= topo.NumUsers() {
			t.Fatalf("request %d references user %d", i, r.User)
		}
	}
}

func TestPatternDeterministicPerSeed(t *testing.T) {
	topo, cat := patternFixture(t, 5)
	p := Pattern{
		Base:     Config{Seed: 11, Locality: 0.5, Alpha: 0.271},
		Requests: 500,
		Diurnal:  Diurnal{Strength: 0.5},
		Drift:    Drift{Interval: simtime.Hour},
		Churn:    Churn{Interval: 6 * simtime.Hour, Fraction: 0.1},
		Regions:  2, CohortShare: 0.4, RegionStagger: 3 * simtime.Hour,
	}
	a, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree on size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Base.Seed = 12
	c, err := GeneratePattern(topo, cat, p2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// The diurnal cycle must visibly shape the trace: with a strong cycle
// peaking at 20h, the peak quarter-day carries more demand than the
// trough quarter-day.
func TestPatternDiurnalShape(t *testing.T) {
	topo, cat := patternFixture(t, 8)
	p := Pattern{
		Base:     Config{Seed: 3},
		Requests: 20000,
		Diurnal:  Diurnal{Strength: 0.9, Peak: 20 * simtime.Hour},
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	peak, trough := 0, 0
	for _, r := range set {
		h := int64(r.Start) / int64(simtime.Hour)
		switch {
		case h >= 17 && h < 23: // around the 20h peak
			peak++
		case h >= 5 && h < 11: // around the 8h trough
			trough++
		}
	}
	if peak <= 2*trough {
		t.Fatalf("diurnal shape too flat: peak window %d vs trough window %d", peak, trough)
	}
}

// A premiere flash crowd concentrates demand on the premiered title
// around the premiere instant.
func TestPatternFlashAttribution(t *testing.T) {
	topo, cat := patternFixture(t, 8)
	premiere := media.VideoID(17)
	p := Pattern{
		Base:     Config{Seed: 5},
		Requests: 10000,
		Flash:    []Flash{{At: simtime.Time(12 * simtime.Hour), Duration: simtime.Hour, Boost: 5, Video: premiere, Share: 0.8}},
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	inWindow, onPremiere, outWindow := 0, 0, 0
	for _, r := range set {
		if r.Start >= simtime.Time(11*simtime.Hour) && r.Start < simtime.Time(13*simtime.Hour) {
			inWindow++
			if r.Video == premiere {
				onPremiere++
			}
		} else {
			outWindow++
		}
	}
	// The 2h window is 1/12 of the day but carries the 5x bump: it must
	// hold well over its flat share of the trace.
	if inWindow*6 < outWindow {
		t.Fatalf("flash window underloaded: %d in vs %d out", inWindow, outWindow)
	}
	// With Share 0.8 most crowd requests hit the premiered title.
	if onPremiere*3 < inWindow {
		t.Fatalf("premiere attribution too weak: %d of %d window requests", onPremiere, inWindow)
	}
}

// A zero-factor window silences its interval completely.
func TestPatternMaintenanceWindow(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	p := Pattern{
		Base:     Config{Seed: 9},
		Requests: 5000,
		Windows:  []Window{{From: simtime.Time(2 * simtime.Hour), To: simtime.Time(4 * simtime.Hour), Factor: 0}},
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range set {
		if r.Start >= simtime.Time(2*simtime.Hour) && r.Start < simtime.Time(4*simtime.Hour) {
			t.Fatalf("request %d lands at %v inside a zero-rate maintenance window", i, r.Start)
		}
	}
	if len(set) != p.Requests {
		t.Fatalf("window redistribution lost requests: %d of %d", len(set), p.Requests)
	}
}

// Drift and churn must actually move the ranking: with heavy churn the
// popularity mass shifts between the first and second half of the trace.
func TestPatternDriftChurnMoveRanks(t *testing.T) {
	topo, cat := patternFixture(t, 6)
	p := Pattern{
		Base:     Config{Seed: 21, Alpha: 0.1}, // strong skew: top ranks dominate
		Requests: 20000,
		Drift:    Drift{Interval: simtime.Hour, Swaps: 10},
		Churn:    Churn{Interval: 2 * simtime.Hour, Fraction: 0.3},
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	half := simtime.Time(12 * simtime.Hour)
	first := make(map[media.VideoID]int)
	second := make(map[media.VideoID]int)
	for _, r := range set {
		if r.Start < half {
			first[r.Video]++
		} else {
			second[r.Video]++
		}
	}
	top := func(m map[media.VideoID]int) media.VideoID {
		var best media.VideoID
		bestN := -1
		for v, n := range m {
			if n > bestN || (n == bestN && v < best) {
				best, bestN = v, n
			}
		}
		return best
	}
	// With 30% of a 40-title catalog re-rolled every 2h for 24h, the
	// initially hottest title cannot still dominate the second half.
	if top(first) == media.VideoID(0) && top(second) == media.VideoID(0) {
		t.Fatal("ranking never moved: video 0 tops both halves under heavy churn")
	}
}

// Regional cohorts give regions different tastes: with CohortShare 1 the
// per-region top title should differ between at least two regions.
func TestPatternCohortsDiverge(t *testing.T) {
	topo, cat := patternFixture(t, 8)
	p := Pattern{
		Base:        Config{Seed: 2, Alpha: 0.1},
		Requests:    20000,
		Regions:     4,
		CohortShare: 1,
	}
	set, err := GeneratePattern(topo, cat, p)
	if err != nil {
		t.Fatal(err)
	}
	regions := userRegions(topo, 4)
	counts := make([]map[media.VideoID]int, 4)
	for i := range counts {
		counts[i] = make(map[media.VideoID]int)
	}
	for _, r := range set {
		counts[regions[r.User]][r.Video]++
	}
	tops := make(map[media.VideoID]bool)
	for _, m := range counts {
		var best media.VideoID
		bestN := -1
		for v, n := range m {
			if n > bestN {
				best, bestN = v, n
			}
		}
		tops[best] = true
	}
	if len(tops) < 2 {
		t.Fatalf("all 4 cohort regions share one top title %v — cohort permutations had no effect", tops)
	}
}

func TestPatternValidation(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	cases := []struct {
		name string
		p    Pattern
	}{
		{"no requests", Pattern{}},
		{"bad diurnal", Pattern{Requests: 1, Diurnal: Diurnal{Strength: 1.5}}},
		{"negative boost", Pattern{Requests: 1, Flash: []Flash{{Boost: -1}}}},
		{"flash share without video", Pattern{Requests: 1, Flash: []Flash{{Boost: 1, Share: 0.5, Video: 999}}}},
		{"empty window", Pattern{Requests: 1, Windows: []Window{{From: 5, To: 5, Factor: 1}}}},
		{"negative window factor", Pattern{Requests: 1, Windows: []Window{{From: 0, To: 5, Factor: -2}}}},
		{"churn fraction", Pattern{Requests: 1, Churn: Churn{Interval: 1, Fraction: 2}}},
		{"cohort without regions", Pattern{Requests: 1, CohortShare: 0.5}},
		{"bad locality", Pattern{Requests: 1, Base: Config{Locality: 2}}},
		{"all demand cancelled", Pattern{Requests: 1, Windows: []Window{{From: 0, To: simtime.Time(simtime.Day), Factor: 0}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GeneratePattern(topo, cat, tc.p); err == nil {
				t.Fatalf("invalid pattern accepted: %+v", tc.p)
			}
		})
	}
}

// The zero-value Pattern beyond Requests is a flat trace: usable without
// configuring any of the layers.
func TestPatternZeroValueFlat(t *testing.T) {
	topo, cat := patternFixture(t, 4)
	set, err := GeneratePattern(topo, cat, Pattern{Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 100 {
		t.Fatalf("flat pattern emitted %d, want 100", len(set))
	}
}
