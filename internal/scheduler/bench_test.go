package scheduler_test

import (
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/scheduler"
)

// BenchmarkSchedule measures the one-shot two-phase scheduler on a
// mid-size rig (500 requests). This is the number BENCH_scheduler.json
// tracks across PRs; keep the parameters stable.
func BenchmarkSchedule(b *testing.B) {
	r, err := experiment.Build(experiment.Params{
		Storages:        10,
		UsersPerStorage: 5,
		RequestsPerUser: 10,
		Titles:          50,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
