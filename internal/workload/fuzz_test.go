package workload

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// FuzzReadCSV hammers the reservation-trace parser with arbitrary input:
// it must never panic, and whatever it accepts must be a valid request set
// for the fixture topology/catalog.
func FuzzReadCSV(f *testing.F) {
	f.Add("user,video,start_seconds\n0,1,100\n")
	f.Add("0,0,0\n1,1,1\n")
	f.Add("")
	f.Add("user,video,start_seconds\n")
	f.Add("9999,0,0\n")
	f.Add("0,0,-1\n")
	f.Add("a,b,c\n")
	f.Add("0,0\n")
	f.Add("0,0,0,0\n")
	f.Add("\x00\xff,1,2\n")

	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 2, Capacity: units.GB})
	cat := fuzzCatalog(f)
	f.Fuzz(func(t *testing.T, in string) {
		set, err := ReadCSV(strings.NewReader(in), topo, cat)
		if err != nil {
			return
		}
		for i, r := range set {
			if int(r.User) < 0 || int(r.User) >= topo.NumUsers() {
				t.Fatalf("accepted unknown user %d", r.User)
			}
			if int(r.Video) < 0 || int(r.Video) >= cat.Len() {
				t.Fatalf("accepted unknown video %d", r.Video)
			}
			if r.Start < 0 {
				t.Fatalf("accepted negative start %v", r.Start)
			}
			if i > 0 && set[i-1].Start > r.Start {
				t.Fatal("output not chronologically sorted")
			}
		}
	})
}

func fuzzCatalog(f *testing.F) *media.Catalog {
	f.Helper()
	c, err := media.Uniform(5, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		f.Fatal(err)
	}
	return c
}
