package retryhttp_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/retryhttp"
)

// fastOpts keeps the backoff far below test timeouts.
func fastOpts() retryhttp.Options {
	return retryhttp.Options{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// A transient 503 burst is retried until the server recovers.
func TestRetriesTransientStatus(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	var out struct {
		OK bool `json:"ok"`
	}
	if err := retryhttp.GetJSON(context.Background(), fastOpts(), ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 3 {
		t.Fatalf("ok=%v after %d hits, want success on 3rd", out.OK, hits.Load())
	}
}

// Protocol answers — 4xx and plain 500 — must surface immediately: they
// are deterministic, and a retry only repeats them.
func TestNoRetryOnTerminalStatus(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusConflict, http.StatusInternalServerError} {
		var hits atomic.Int32
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"nope"}`))
		}))
		err := retryhttp.GetJSON(context.Background(), fastOpts(), ts.URL, nil)
		ts.Close()
		var se *retryhttp.StatusError
		if !errors.As(err, &se) || se.Code != code || se.Message != "nope" {
			t.Fatalf("status %d: got %v, want StatusError carrying the body's error", code, err)
		}
		if hits.Load() != 1 {
			t.Fatalf("status %d retried %d times, want exactly 1 attempt", code, hits.Load())
		}
	}
}

// Exhausted retries still return the terminal response rather than
// swallowing it.
func TestExhaustionReturnsLastStatus(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"still down"}`))
	}))
	defer ts.Close()

	opts := fastOpts()
	opts.MaxAttempts = 3
	err := retryhttp.GetJSON(context.Background(), opts, ts.URL, nil)
	var se *retryhttp.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want terminal 503 StatusError", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("%d attempts, want 3", hits.Load())
	}
}

// A server-supplied Retry-After longer than MaxDelay is capped: the
// client backs off, but never for longer than its own ceiling.
func TestRetryAfterIsCapped(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	start := time.Now()
	if err := retryhttp.GetJSON(context.Background(), fastOpts(), ts.URL, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("waited %v; Retry-After was not capped at MaxDelay", elapsed)
	}
	if hits.Load() != 2 {
		t.Fatalf("%d attempts, want 2", hits.Load())
	}
}

// Transport-level failures (no response at all) are retried and, when
// persistent, reported as an error rather than a response.
func TestTransportErrorExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens here anymore

	opts := fastOpts()
	opts.MaxAttempts = 3
	err := retryhttp.GetJSON(context.Background(), opts, url, nil)
	if err == nil {
		t.Fatal("dead endpoint reported success")
	}
	var se *retryhttp.StatusError
	if errors.As(err, &se) {
		t.Fatalf("transport failure surfaced as StatusError: %v", err)
	}
}

// Context cancellation interrupts the backoff sleep promptly: with an
// hour-long backoff pending, the call must return within milliseconds of
// cancel, not after the timer.
func TestContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	opts := retryhttp.Options{BaseDelay: time.Hour, MaxDelay: time.Hour}
	done := make(chan error, 1)
	go func() { done <- retryhttp.GetJSON(ctx, opts, ts.URL, nil) }()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("cancellation took %v to interrupt the backoff", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff")
	}
}

// An already-expired context short-circuits before any attempt: no
// request reaches the server and the context error surfaces directly.
func TestAlreadyExpiredContext(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := retryhttp.GetJSON(ctx, fastOpts(), ts.URL, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired context took %v to surface", elapsed)
	}
	if hits.Load() != 0 {
		t.Fatalf("expired context still reached the server %d times", hits.Load())
	}
}

// A deadline shorter than the pending backoff bounds the whole call: the
// client gives up at the deadline instead of finishing the sleep, and the
// deadline error is not laundered into a retryable transport failure.
func TestShortDeadlineBoundsBackoff(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	opts := retryhttp.Options{BaseDelay: time.Hour, MaxDelay: time.Hour}
	start := time.Now()
	err := retryhttp.GetJSON(ctx, opts, ts.URL, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to bound the backoff", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatalf("%d attempts inside a 25ms deadline with 1h backoff, want exactly 1", hits.Load())
	}
}

// PostJSON sends a fresh body on every attempt — a retried request must
// not arrive with a drained reader.
func TestPostBodyResentOnRetry(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var in struct {
			N int `json:"n"`
		}
		if err := decodeInto(r, &in); err != nil || in.N != 42 {
			t.Errorf("attempt %d: bad body (%v, n=%d)", hits.Load()+1, err, in.N)
		}
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	in := struct {
		N int `json:"n"`
	}{N: 42}
	if err := retryhttp.PostJSON(context.Background(), fastOpts(), ts.URL, in, nil); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("%d attempts, want 2", hits.Load())
	}
}

func decodeInto(r *http.Request, v any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(v)
}
