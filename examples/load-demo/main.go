// Load harness demo: a premiere flash crowd against a 2-shard intake
// tier. This example wires the whole workload pipeline together in one
// process:
//
//  1. build a metro topology and catalog, and describe an evening of
//     demand as a workload Pattern — a diurnal cycle with a premiere
//     flash crowd tripling the rate at hour 20 and funneling most of
//     the surge onto the premiered title,
//  2. start two horizon shards behind a routing gateway that advances
//     epochs itself (auto-advance with a lagged target),
//  3. stream the generated trace straight from the generator into the
//     closed-loop load harness (loadgen) — no trace file, no in-memory
//     request set — and replay it against the gateway,
//  4. report what the run measured: submit latency percentiles, shed
//     and late rates, per-shard routing, epoch advances,
//  5. check the flash crowd actually reached the tier: the premiered
//     title must dominate the committed plans around the premiere.
//
// The same flow works against any vspserve/vspgateway over the network:
// `vspgen -kind trace | vspload -target ...` is this example as two
// commands.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"time"

	vsp "github.com/vodsim/vsp"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/loadgen"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

// serve binds h to a loopback port and returns its base URL.
func serve(h http.Handler) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }
}

func main() {
	topo := vsp.MetroTopology(vsp.GenConfig{
		Storages: 6, UsersPerStorage: 4, Capacity: vsp.GB(8),
	}, 41)
	catalog, err := vsp.GenerateCatalog(vsp.CatalogConfig{Titles: 30, Seed: 41})
	if err != nil {
		log.Fatal(err)
	}
	model := cli.BuildModel(topo, catalog, 5, 500)

	// An evening of demand: prime-time diurnal swell, and at hour 20 a
	// premiere triples the arrival rate with 70% of the crowd watching
	// title 0.
	const premiere = vsp.VideoID(0)
	pattern := workload.Pattern{
		Base:     workload.Config{Alpha: 0.271, Seed: 42},
		Requests: 600,
		Span:     simtime.Day,
		Diurnal:  workload.Diurnal{Strength: 0.5},
		Flash: []workload.Flash{{
			At:       simtime.Time(20 * simtime.Hour),
			Duration: 2 * simtime.Hour,
			Boost:    2,
			Video:    premiere,
			Share:    0.7,
		}},
	}
	fmt.Println("== flash-crowd pattern ==")
	fmt.Printf("%d reservations over 24h; diurnal strength 0.5; premiere of video %d at 20h (boost 2x, share 0.7)\n\n",
		pattern.Requests, premiere)

	// Two in-memory shards behind an auto-advancing gateway.
	var shards []vsp.GatewayShard
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("s%d", i)
		srv, err := server.NewWithOptions(model, server.Options{
			ShardID: id,
			Horizon: vsp.HorizonConfig{EpochRequests: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		url, stop := serve(srv)
		defer stop()
		defer srv.Close()
		shards = append(shards, vsp.GatewayShard{ID: id, Primary: url})
	}
	gw, err := vsp.NewGateway(vsp.GatewayConfig{
		Shards:      shards,
		Policy:      vsp.LocalityPlacement(),
		Topo:        topo,
		AutoAdvance: true,
		AdvanceLag:  2 * simtime.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	gwURL, stopGW := serve(gw)
	defer stopGW()
	defer gw.Close()

	// Stream the generator straight into the closed-loop harness. The
	// gateway advances epochs itself, so the harness only submits.
	trace := workload.NewPatternReader(topo, catalog, pattern, 0)
	defer trace.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         gwURL,
		Concurrency:    8,
		DisableAdvance: true,
	}, trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== load run ==")
	fmt.Printf("submitted %d in %v: %d accepted, %d shed (%.1f%%), %d late, %d errors\n",
		res.Submitted, time.Duration(res.ElapsedMS)*time.Millisecond,
		res.Accepted, res.Shed, 100*res.ShedRate, res.Late, res.Errors)
	fmt.Printf("submit latency: p50 %v  p95 %v  p99 %v  max %v\n",
		res.Submit.P50, res.Submit.P95, res.Submit.P99, res.Submit.Max)
	shardNames := make([]string, 0, len(res.ShardRouted))
	for s := range res.ShardRouted {
		shardNames = append(shardNames, s)
	}
	sort.Strings(shardNames)
	for _, s := range shardNames {
		fmt.Printf("  shard %s served %d reservations\n", s, res.ShardRouted[s])
	}

	// The gateway advanced epochs on its own; give in-flight closes a
	// moment, then force the tail of the trace through.
	time.Sleep(50 * time.Millisecond)
	finalAdvance(gwURL, simtime.Time(simtime.Day))

	// Did the premiere register? Count committed deliveries of the
	// premiered title in the merged plan.
	var plan struct {
		Schedule vsp.Schedule `json:"schedule"`
		Epoch    int          `json:"epoch"`
	}
	getJSON(gwURL+"/v1/plan", &plan)
	premiereDeliveries, others := 0, 0
	for _, fs := range plan.Schedule.Files {
		n := len(fs.Deliveries)
		if fs.Video == premiere {
			premiereDeliveries += n
		} else {
			others += n
		}
	}
	fmt.Println("\n== committed plan ==")
	fmt.Printf("epoch %d: %d deliveries of the premiered title, %d of the other %d titles\n",
		plan.Epoch, premiereDeliveries, others, catalog.Len()-1)
	if premiereDeliveries == 0 {
		log.Fatal("flash crowd never reached the plan")
	}
	fmt.Println("\nThe premiere's flash crowd flowed generator -> gateway -> shards -> plan without a trace file.")
}

func finalAdvance(base string, to simtime.Time) {
	body, _ := json.Marshal(map[string]simtime.Time{"to": to})
	resp, err := http.Post(base+"/v1/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

