// Package audit bundles every independent check the repository has into a
// single verdict on a schedule: structural validation, capacity
// feasibility, event-simulator execution with cost agreement, and billing
// attribution consistency. Operators call it before trusting a schedule
// produced elsewhere (a file from disk, a response from the HTTP service);
// the test suite uses the same bundle as its end-to-end oracle.
package audit

import (
	"fmt"

	"github.com/vodsim/vsp/internal/billing"
	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/vodsim"
	"github.com/vodsim/vsp/internal/workload"
)

// Finding is one failed check.
type Finding struct {
	Check  string
	Detail string
}

func (f Finding) String() string { return f.Check + ": " + f.Detail }

// Report is the audit outcome.
type Report struct {
	Findings []Finding
	// AnalyticCost is Ψ(S) under the model.
	AnalyticCost units.Money
	// SimulatedCost is the event simulator's independent total.
	SimulatedCost units.Money
	// BilledCost is the billing statement's total.
	BilledCost units.Money
	// Overflows counts storage over-commit situations.
	Overflows int
}

// OK reports whether every check passed.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

func (r *Report) add(check, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// Run audits a schedule against the model and the request batch it claims
// to serve. All checks always run; the report collects every failure
// rather than stopping at the first.
func Run(m *cost.Model, s *schedule.Schedule, reqs workload.Set) *Report {
	rep := &Report{}
	topo := m.Book().Topology()

	// 1. Structural validation + request coverage.
	if err := s.Validate(topo, m.Catalog(), reqs); err != nil {
		rep.add("validate", "%v", err)
	}

	// 2. Capacity feasibility.
	ledger := occupancy.FromSchedule(topo, m.Catalog(), s)
	ovs := ledger.AllOverflows()
	rep.Overflows = len(ovs)
	if len(ovs) > 0 {
		rep.add("capacity", "%d storage overflow(s), first %v", len(ovs), ovs[0])
	}

	// 3. Event-driven execution and independent cost derivation.
	rep.AnalyticCost = m.ScheduleCost(s)
	sim := vodsim.Execute(m.Book(), m.Catalog(), s)
	rep.SimulatedCost = sim.TotalCost()
	if !sim.OK() {
		rep.add("simulate", "%d violation(s), first %v", len(sim.Violations), sim.Violations[0])
	}
	if !rep.SimulatedCost.ApproxEqual(rep.AnalyticCost, costTolerance(rep.AnalyticCost)) {
		rep.add("cost-agreement", "simulated %v != analytic %v", rep.SimulatedCost, rep.AnalyticCost)
	}

	// 4. Billing attribution sums to Ψ(S).
	st, err := billing.Attribute(m, s)
	if err != nil {
		rep.add("billing", "%v", err)
	} else {
		rep.BilledCost = st.Total()
		if !rep.BilledCost.ApproxEqual(rep.AnalyticCost, costTolerance(rep.AnalyticCost)) {
			rep.add("billing-sum", "billed %v != analytic %v", rep.BilledCost, rep.AnalyticCost)
		}
		for _, l := range st.Lines {
			if l.Network < -1e-9 || l.Storage < -1e-9 {
				rep.add("billing-negative", "user %d charged %v network, %v storage", l.User, l.Network, l.Storage)
				break
			}
		}
	}
	return rep
}

// costTolerance scales the float tolerance with the magnitude of the cost.
func costTolerance(c units.Money) float64 {
	t := 1e-6 * (1 + float64(c))
	if t < 1e-6 {
		return 1e-6
	}
	return t
}
