package workload

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

func TestTraceRoundTrip(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 4, UsersPerStorage: 5, Capacity: units.GB})
	cat := testCatalog(t, 50)
	orig, err := Generate(topo, cat, Config{Alpha: 0.271, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()), topo, cat)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(orig) {
		t.Fatalf("len = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], orig[i])
		}
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 2, Capacity: units.GB})
	cat := testCatalog(t, 5)
	set, err := ReadCSV(strings.NewReader("0,1,3600\n1,0,100\n"), topo, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("len = %d", len(set))
	}
	// Sorted chronologically on read.
	if set[0].Start != 100 || set[1].Start != 3600 {
		t.Errorf("not sorted: %+v", set)
	}
}

func TestReadCSVErrors(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 2, Capacity: units.GB})
	cat := testCatalog(t, 5)
	cases := []struct {
		name string
		in   string
	}{
		{"wrong column count", "0,1\n"},
		{"bad user", "x,1,100\n"},
		{"bad video", "0,x,100\n"},
		{"bad start", "0,1,x\n"},
		{"unknown user", "99,1,100\n"},
		{"unknown video", "0,99,100\n"},
		{"negative start", "0,1,-5\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in), topo, cat); err == nil {
				t.Errorf("expected error for %q", c.in)
			}
		})
	}
	// Empty input is an empty, valid set.
	set, err := ReadCSV(strings.NewReader(""), topo, cat)
	if err != nil || len(set) != 0 {
		t.Errorf("empty input: %v, %v", set, err)
	}
}
