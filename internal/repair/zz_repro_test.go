package repair

import (
	"testing"

	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/vodsim"
)

// Repro: a copy whose feed is severed mid-fill survives in the skeleton
// (it has one surviving early reader), and resource() may pick it as the
// cheapest source for a later impacted service even though the copy only
// holds a prefix of the file.
func TestCascadeDeadCopyAsRepairSource(t *testing.T) {
	tr := newTriangle(t, 0.00001) // direct VW-IS2 rate irrelevant here
	vid := tr.model.Catalog().Video(0)
	_ = vid

	s := schedule.New()
	fs := &schedule.FileSchedule{Video: 0}
	u1 := tr.topo.UsersAt(tr.is1)[0]
	// Delivery 0 feeds the copy at IS1 from the VW.
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: u1, Start: 0,
		Route: routing.Route{tr.vw, tr.is1}, SourceResidency: schedule.NoResidency,
	})
	// Delivery 1: early reader at t=5m (keeps the copy in the skeleton).
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: u1, Start: minutes(5),
		Route: routing.Route{tr.is1}, SourceResidency: 0,
	})
	// Delivery 2: late reader at t=90m.
	fs.Deliveries = append(fs.Deliveries, schedule.Delivery{
		Video: 0, User: u1, Start: minutes(90),
		Route: routing.Route{tr.is1}, SourceResidency: 0,
	})
	fs.Residencies = append(fs.Residencies, schedule.Residency{
		Video: 0, Loc: tr.is1, Src: tr.vw, Load: 0, LastService: minutes(90),
		FedBy: 0, Services: []int{1, 2},
	})
	s.Put(fs)

	// The feed link dies at t=10m: delivery 0 severed, the copy is dead at
	// 10m holding only a prefix; delivery 1 (in flight) survives, delivery
	// 2 is missed.
	sc := &faults.Scenario{Faults: []faults.Fault{
		{Kind: faults.LinkDown, Edge: tr.e01, From: minutes(10), Until: minutes(50)},
	}}

	res, err := Repair(tr.model, s, sc, Options{Policy: Reroute})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("impacted=%d repaired=%d fromCache=%d fromVW=%d missed=%d",
		res.Impacted, res.Repaired, res.FromCache, res.FromVW, len(res.Missed))

	rep := vodsim.ExecuteScenario(tr.model.Book(), tr.model.Catalog(), res.Schedule, sc)
	if rep.Missed != 0 {
		t.Errorf("re-simulation of repaired schedule misses %d services\nnotes: %v", rep.Missed, rep.FaultNotes)
	}
	if !rep.OK() {
		t.Errorf("violations: %v", rep.Violations)
	}
}
