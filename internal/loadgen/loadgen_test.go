package loadgen_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/loadgen"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/workload"
)

func testRig(t *testing.T) *experiment.Rig {
	t.Helper()
	r, err := experiment.Build(experiment.Params{
		Storages: 4, UsersPerStorage: 3, Titles: 10,
		CapacityGB: 4, RequestsPerUser: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func tracePattern(requests int) workload.Pattern {
	return workload.Pattern{
		Base:     workload.Config{Seed: 17},
		Requests: requests,
		Span:     6 * simtime.Hour,
		Diurnal:  workload.Diurnal{Strength: 0.4, Peak: 3 * simtime.Hour, Period: 6 * simtime.Hour},
	}
}

// The harness drives a single vspserve node: every trace request lands,
// epochs advance on the server's own trigger, and the latency summary is
// populated.
func TestRunSingleServer(t *testing.T) {
	rig := testRig(t)
	srv, err := server.NewWithOptions(rig.Model, server.Options{
		Horizon: horizon.Config{EpochRequests: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	const n = 120
	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, tracePattern(n), 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      ts.URL,
		Concurrency: 4,
		AdvanceLag:  simtime.Hour,
	}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != n {
		t.Fatalf("submitted %d of %d", res.Submitted, n)
	}
	// Closed-loop replay of a chronological trace with a lagged advance
	// target: nothing should shed (no admission limit here) and nothing
	// should be lost.
	if res.Accepted+res.Late != n || res.Errors != 0 {
		t.Fatalf("accepted %d late %d errors %d %v of %d", res.Accepted, res.Late, res.Errors, res.ErrorSamples, n)
	}
	if res.Shed != 0 {
		t.Fatalf("unexpected shedding: %d", res.Shed)
	}
	if res.Submit.N != n || res.Submit.P50 <= 0 || res.Submit.Max < res.Submit.P99 {
		t.Fatalf("latency summary inconsistent: %+v", res.Submit)
	}
	if want := float64(res.Accepted) / float64(n); res.Availability != want {
		t.Fatalf("availability %v, want %v", res.Availability, want)
	}
	if res.ErrorsByCause != nil {
		t.Fatalf("clean run reported error causes: %v", res.ErrorsByCause)
	}
	if res.Advances == 0 {
		t.Fatal("epoch trigger never drove an advance")
	}
	if res.FinalEpoch == 0 {
		t.Fatalf("final epoch not captured: %+v", res)
	}
	if res.ShardRouted != nil {
		t.Fatalf("single server reported shard routing: %v", res.ShardRouted)
	}
}

// Against a 2-shard gateway the acks carry shard labels: the harness
// attributes traffic per shard and reads the gateway's advance lag.
func TestRunTwoShardGateway(t *testing.T) {
	rig := testRig(t)
	var urls []string
	for i := 0; i < 2; i++ {
		srv, err := server.NewWithOptions(rig.Model, server.Options{
			Horizon: horizon.Config{EpochRequests: 25},
			ShardID: "s" + string(rune('0'+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer func() { ts.Close(); srv.Close() }()
		urls = append(urls, ts.URL)
	}
	gw, err := gateway.New(gateway.Config{
		Shards: []gateway.ShardConfig{
			{ID: "s0", Primary: urls[0]},
			{ID: "s1", Primary: urls[1]},
		},
		Policy: gateway.RoundRobin(),
		Retry:  retryhttp.Options{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(gw)
	defer func() { gts.Close(); gw.Close() }()

	const n = 100
	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, tracePattern(n), 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:      gts.URL,
		Concurrency: 4,
		AdvanceLag:  simtime.Hour,
	}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.Late != n || res.Errors != 0 {
		t.Fatalf("accepted %d late %d errors %d %v of %d", res.Accepted, res.Late, res.Errors, res.ErrorSamples, n)
	}
	if len(res.ShardRouted) != 2 {
		t.Fatalf("round-robin over 2 shards routed %v", res.ShardRouted)
	}
	total := 0
	for _, c := range res.ShardRouted {
		total += c
	}
	if total != res.Accepted {
		t.Fatalf("shard counts %v don't cover %d accepted", res.ShardRouted, res.Accepted)
	}
}

// A saturated single-slot server sheds with 429: the harness must count
// shed traffic without retrying it.
func TestRunCountsShedding(t *testing.T) {
	rig := testRig(t)
	srv, err := server.NewWithOptions(rig.Model, server.Options{
		MaxInFlight: 1, MaxQueue: -1, // shed immediately at saturation
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	const n = 200
	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, tracePattern(n), 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         ts.URL,
		Concurrency:    16,
		DisableAdvance: true,
	}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != n {
		t.Fatalf("submitted %d of %d", res.Submitted, n)
	}
	if res.Accepted+res.Shed+res.Late+res.Errors != n {
		t.Fatalf("outcomes don't partition: %+v", res)
	}
	if res.Shed == 0 {
		t.Skip("16 workers never collided on the single slot (scheduler timing); counted path covered elsewhere")
	}
	if res.ShedRate <= 0 || res.ShedRate > 1 {
		t.Fatalf("shed rate %v", res.ShedRate)
	}
	if res.Advances != 0 {
		t.Fatalf("advance driven despite DisableAdvance: %d", res.Advances)
	}
}

// Error accounting partitions by cause: blown deadlines, connection
// death, and 5xx replies land in separate buckets of ErrorsByCause.
func TestRunPartitionsErrorCauses(t *testing.T) {
	rig := testRig(t)
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		switch n := calls.Add(1); {
		case n <= 3: // outlive the client's deadline
			time.Sleep(300 * time.Millisecond)
			w.WriteHeader(http.StatusAccepted)
		case n <= 6: // tear the connection down mid-exchange
			panic(http.ErrAbortHandler)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, tracePattern(9), 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         ts.URL,
		Concurrency:    1, // serialize so the handler's phases are deterministic
		Timeout:        60 * time.Millisecond,
		DisableAdvance: true,
	}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 9 || res.Accepted != 0 {
		t.Fatalf("error accounting: %+v", res)
	}
	want := map[string]int{"timeout": 3, "connection": 3, "5xx": 3}
	for cause, n := range want {
		if res.ErrorsByCause[cause] != n {
			t.Fatalf("errors_by_cause = %v, want %v", res.ErrorsByCause, want)
		}
	}
	if res.Availability != 0 {
		t.Fatalf("availability %v with zero accepted", res.Availability)
	}
}

// A dead target yields transport errors, not a harness failure.
func TestRunSurvivesErrors(t *testing.T) {
	rig := testRig(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, tracePattern(20), 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{Target: ts.URL, Concurrency: 2}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 20 || res.Accepted != 0 {
		t.Fatalf("error accounting: %+v", res)
	}
	if len(res.ErrorSamples) == 0 {
		t.Fatal("no error samples kept")
	}
}
