// Package placement implements strategic replication: choosing standing
// copies of popular titles to pre-load at intermediate storages before the
// scheduling cycle. The paper's companion work ([16], "Strategic
// Replication of Video Files in a Distributed Environment", by the same
// authors) studies exactly this; here it complements the reactive two-phase
// scheduler — pre-placed copies serve requests at zero marginal storage
// cost, and the scheduler's greedy picks them up automatically via
// ivs.Options.Seeds.
//
// The planner is expectation-greedy: for every (title, storage) pair it
// estimates the cycle's expected local demand from the Zipf popularity
// model, prices the standing copy (bulk pre-load plus the full-span
// storage booking), and takes positive-gain placements per storage in gain
// order while capacity lasts. Placements never exceed a storage's
// capacity on their own, so overflow resolution always retains enough
// freedom to strip the dynamic copies.
package placement

import (
	"fmt"
	"math"
	"sort"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Config parameterizes the planner. Zero values take the paper's workload
// defaults (α = 0.271, 12 h window, one request per user).
type Config struct {
	Alpha           float64          // expected popularity skew
	Window          simtime.Duration // standing-copy holding span
	RequestsPerUser int              // expected reservations per user
	MaxPerNode      int              // cap on copies per storage (0 = capacity-only)
	// CapacityFraction bounds how much of each storage the planner may
	// book (default 0.5), leaving headroom for the scheduler's dynamic
	// copies and guaranteeing overflow resolution can always succeed.
	CapacityFraction float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.271
	}
	if c.Window == 0 {
		c.Window = 12 * simtime.Hour
	}
	if c.RequestsPerUser == 0 {
		c.RequestsPerUser = 1
	}
	if c.CapacityFraction == 0 {
		c.CapacityFraction = 0.5
	}
	return c
}

// Placement is one planned standing copy with its expected economics.
type Placement struct {
	Copy            schedule.Residency
	ExpectedDemand  float64     // expected local requests over the cycle
	ExpectedBenefit units.Money // direct streams avoided
	CommittedCost   units.Money // pre-load transfer + full-span storage
}

// Gain returns the placement's expected net benefit.
func (p Placement) Gain() units.Money { return p.ExpectedBenefit - p.CommittedCost }

// Plan is the planner's output.
type Plan struct {
	Placements []Placement
	// ExpectedGain sums the placements' expected net benefits.
	ExpectedGain units.Money
}

// Seeds groups the planned copies per video, the form the scheduler
// consumes.
func (p *Plan) Seeds() map[media.VideoID][]schedule.Residency {
	out := make(map[media.VideoID][]schedule.Residency)
	for _, pl := range p.Placements {
		out[pl.Copy.Video] = append(out[pl.Copy.Video], pl.Copy)
	}
	return out
}

// NumCopies returns the total planned copies.
func (p *Plan) NumCopies() int { return len(p.Placements) }

// Build computes a placement plan for the model's infrastructure.
func Build(m *cost.Model, cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if cfg.CapacityFraction < 0 || cfg.CapacityFraction > 1 {
		return nil, fmt.Errorf("placement: capacity fraction must be in [0,1], got %g", cfg.CapacityFraction)
	}
	topo := m.Book().Topology()
	catalog := m.Catalog()
	if catalog.Len() == 0 {
		return nil, fmt.Errorf("placement: empty catalog")
	}
	zipf, err := workload.NewZipf(catalog.Len(), cfg.Alpha)
	if err != nil {
		return nil, err
	}
	windowEnd := simtime.Time(cfg.Window)

	plan := &Plan{}
	for _, node := range topo.Storages() {
		users := len(topo.UsersAt(node))
		if users == 0 {
			continue
		}
		budget := units.Bytes(float64(topo.Node(node).Capacity) * cfg.CapacityFraction)
		var candidates []Placement
		for _, v := range catalog.Videos() {
			draws := users * cfg.RequestsPerUser
			pv := zipf.Prob(int(v.ID))
			demand := pv * float64(draws)
			// Benefit model: the dynamic scheduler already shares repeat
			// requests through an on-demand copy, so a standing copy's
			// dependable saving is the FIRST local stream it replaces —
			// P(at least one local request) times the direct transfer —
			// plus the dynamic copy's storage it obviates, approximated by
			// half the window span at this storage's rate per expected
			// repeat request.
			firstHit := 1 - math.Pow(1-pv, float64(draws))
			benefit := units.Money(float64(m.TransferCost(v.ID, topo.Warehouse(), node)) * firstHit)
			if repeats := demand - firstHit; repeats > 0 {
				dynSpan := cfg.Window / 2
				benefit += units.Money(repeats) * cost.SpanCost(m.Book().SRate(node), v.Size, v.Playback, dynSpan) / units.Money(math.Max(1, demand))
			}
			copyRes := schedule.Residency{
				Video: v.ID, Loc: node, Src: topo.Warehouse(),
				Load: 0, LastService: windowEnd,
				FedBy: schedule.PrePlacedFeed,
			}
			committed := m.ResidencyCost(copyRes) + m.PrePlacementCost(copyRes)
			pl := Placement{
				Copy:            copyRes,
				ExpectedDemand:  demand,
				ExpectedBenefit: benefit,
				CommittedCost:   committed,
			}
			if pl.Gain() > 0 {
				candidates = append(candidates, pl)
			}
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].Gain() != candidates[b].Gain() {
				return candidates[a].Gain() > candidates[b].Gain()
			}
			return candidates[a].Copy.Video < candidates[b].Copy.Video
		})
		var used units.Bytes
		taken := 0
		for _, pl := range candidates {
			if cfg.MaxPerNode > 0 && taken >= cfg.MaxPerNode {
				break
			}
			size := catalog.Video(pl.Copy.Video).Size
			if used+size > budget {
				continue
			}
			used += size
			taken++
			plan.Placements = append(plan.Placements, pl)
			plan.ExpectedGain += pl.Gain()
		}
	}
	return plan, nil
}
