package routing

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/topology"
)

// RouteAvoiding computes a cheapest src→dst route that uses no edge for
// which banned returns true. It is the routing primitive of the bandwidth
// extension: when a link is saturated during a stream's window, the stream
// is rerouted around it. Returns the route and its summed per-hop rate.
func RouteAvoiding(book *pricing.Book, src, dst topology.NodeID, banned func(edgeIdx int) bool) (Route, pricing.NRate, error) {
	topo := book.Topology()
	if src == dst {
		return Route{src}, 0, nil
	}
	n := topo.NumNodes()
	dist := make([]pricing.NRate, n)
	prev := make([]topology.NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = pricing.NRate(math.Inf(1))
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(nodeItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		topo.Neighbors(u, func(edgeIdx int, v topology.NodeID) {
			if done[v] || banned(edgeIdx) {
				return
			}
			nd := dist[u] + book.NRate(edgeIdx)
			if nd < dist[v] || (nd == dist[v] && prev[v] >= 0 && u < prev[v]) {
				dist[v] = nd
				prev[v] = u
				heap.Push(pq, nodeItem{node: v, dist: nd})
			}
		})
	}
	if math.IsInf(float64(dist[dst]), 1) {
		return nil, 0, fmt.Errorf("routing: no route %d->%d avoiding banned edges", src, dst)
	}
	var rev Route
	for cur := dst; cur != src; cur = prev[cur] {
		rev = append(rev, cur)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst], nil
}
