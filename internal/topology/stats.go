package topology

// Stats summarizes a topology's shape: the numbers an operator checks when
// judging how far streams travel and how much route diversity exists.
type Stats struct {
	Nodes     int
	Storages  int
	Links     int
	Users     int
	Diameter  int     // longest shortest path (hops)
	AvgHops   float64 // mean shortest-path hops from the warehouse to each storage
	MaxDegree int
	Leaves    int // storages with a single link
}

// ComputeStats derives the summary with BFS from every node (hop metric,
// not rate-weighted).
func (t *Topology) ComputeStats() Stats {
	s := Stats{
		Nodes:    t.NumNodes(),
		Storages: t.NumStorages(),
		Links:    t.NumEdges(),
		Users:    t.NumUsers(),
	}
	for _, n := range t.nodes {
		if d := t.Degree(n.ID); d > s.MaxDegree {
			s.MaxDegree = d
		}
		if n.Kind == KindStorage && t.Degree(n.ID) == 1 {
			s.Leaves++
		}
	}
	var fromVW []int
	for src := range t.nodes {
		dist := t.bfs(NodeID(src))
		for dst, d := range dist {
			if d > s.Diameter {
				s.Diameter = d
			}
			if NodeID(src) == t.warehouse && t.nodes[dst].Kind == KindStorage {
				fromVW = append(fromVW, d)
			}
		}
	}
	if len(fromVW) > 0 {
		total := 0
		for _, d := range fromVW {
			total += d
		}
		s.AvgHops = float64(total) / float64(len(fromVW))
	}
	return s
}

// bfs returns hop distances from src to every node.
func (t *Topology) bfs(src NodeID) []int {
	dist := make([]int, len(t.nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, a := range t.adj[n] {
			if dist[a.to] == -1 {
				dist[a.to] = dist[n] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return dist
}
