package media

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/units"
)

func TestVideoStreamBytes(t *testing.T) {
	// The paper's worked example: 6 Mbps for 90 min.
	v := Video{ID: 0, Size: units.GBf(2.5), Playback: 90 * simtime.Minute, Rate: units.Mbps(6)}
	if got := v.StreamBytes(); got != units.Bytes(4.05e9) {
		t.Errorf("StreamBytes = %d, want 4.05e9", got)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestVideoValidate(t *testing.T) {
	base := Video{ID: 0, Size: units.GB, Playback: simtime.Hour, Rate: units.Mbps(6)}
	cases := []struct {
		name string
		mod  func(v Video) Video
		ok   bool
	}{
		{"valid", func(v Video) Video { return v }, true},
		{"zero size", func(v Video) Video { v.Size = 0; return v }, false},
		{"negative size", func(v Video) Video { v.Size = -1; return v }, false},
		{"zero playback", func(v Video) Video { v.Playback = 0; return v }, false},
		{"zero rate", func(v Video) Video { v.Rate = 0; return v }, false},
		{"undeliverable", func(v Video) Video { v.Size = 10 * units.GB; return v }, false},
	}
	for _, c := range cases {
		err := c.mod(base).Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestUniformCatalog(t *testing.T) {
	c, err := Uniform(10, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.MeanSize() != units.GBf(2.5) {
		t.Errorf("MeanSize = %v", c.MeanSize())
	}
	for i, v := range c.Videos() {
		if v.ID != VideoID(i) {
			t.Error("IDs not dense")
		}
	}
	if c.Video(3).Name != "video-003" {
		t.Errorf("name = %q", c.Video(3).Name)
	}
}

func TestNewCatalogRejectsBadIDs(t *testing.T) {
	_, err := NewCatalog([]Video{{ID: 1, Size: 1, Playback: 1, Rate: units.Mbps(600)}})
	if err == nil {
		t.Error("expected dense-ID error")
	}
	_, err = NewCatalog([]Video{{ID: 0, Size: 0, Playback: 1, Rate: 1}})
	if err == nil {
		t.Error("expected validation error")
	}
}

func TestGenerate(t *testing.T) {
	c, err := Generate(GenConfig{Titles: 200, MeanSize: units.GBf(3.3), Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if c.Len() != 200 {
		t.Fatalf("Len = %d", c.Len())
	}
	for _, v := range c.Videos() {
		if err := v.Validate(); err != nil {
			t.Fatalf("generated title invalid: %v", err)
		}
		if v.Playback < 75*simtime.Minute || v.Playback > 105*simtime.Minute {
			t.Errorf("playback %v out of range", v.Playback)
		}
	}
	// Mean size within 10% of target (finite-sample noise).
	got := c.MeanSize().Float()
	want := units.GBf(3.3).Float()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("mean size %v deviates from %v by >10%%", c.MeanSize(), units.GBf(3.3))
	}
}

func TestGenerateDefaultsAndDeterminism(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Len() != 500 {
		t.Errorf("default titles = %d, want 500", a.Len())
	}
	b, _ := Generate(GenConfig{Seed: 7})
	for i := range a.Videos() {
		if a.Video(VideoID(i)) != b.Video(VideoID(i)) {
			t.Fatal("Generate not deterministic")
		}
	}
}

func TestGenerateRejectsOversizedMean(t *testing.T) {
	if _, err := Generate(GenConfig{Titles: 5, MeanSize: 100 * units.GB, Seed: 1}); err == nil {
		t.Error("expected error for undeliverable mean size")
	}
}

func TestMeanSizeEmpty(t *testing.T) {
	c := &Catalog{}
	if c.MeanSize() != 0 {
		t.Error("empty catalog mean size must be 0")
	}
}
