package topology

import (
	"testing"

	"github.com/vodsim/vsp/internal/units"
)

func checkGenerated(t *testing.T, topo *Topology, storages, usersPer int) {
	t.Helper()
	if topo.NumStorages() != storages {
		t.Errorf("storages = %d, want %d", topo.NumStorages(), storages)
	}
	if topo.NumUsers() != storages*usersPer {
		t.Errorf("users = %d, want %d", topo.NumUsers(), storages*usersPer)
	}
	if !topo.Connected() {
		t.Error("generated topology disconnected")
	}
	for _, is := range topo.Storages() {
		if got := len(topo.UsersAt(is)); got != usersPer {
			t.Errorf("UsersAt(%d) = %d, want %d", is, got, usersPer)
		}
	}
}

func TestStar(t *testing.T) {
	topo := Star(GenConfig{Storages: 5, UsersPerStorage: 3, Capacity: units.GB})
	checkGenerated(t, topo, 5, 3)
	if topo.NumEdges() != 5 {
		t.Errorf("star edges = %d, want 5", topo.NumEdges())
	}
	if topo.Degree(topo.Warehouse()) != 5 {
		t.Error("star warehouse degree wrong")
	}
}

func TestChain(t *testing.T) {
	topo := Chain(GenConfig{Storages: 4, UsersPerStorage: 2, Capacity: units.GB})
	checkGenerated(t, topo, 4, 2)
	if topo.NumEdges() != 4 {
		t.Errorf("chain edges = %d, want 4", topo.NumEdges())
	}
	if topo.Degree(topo.Warehouse()) != 1 {
		t.Error("chain warehouse degree wrong")
	}
}

func TestTree(t *testing.T) {
	topo := Tree(GenConfig{Storages: 7, UsersPerStorage: 1, Capacity: units.GB}, 2)
	checkGenerated(t, topo, 7, 1)
	if topo.NumEdges() != 7 {
		t.Errorf("tree edges = %d, want 7", topo.NumEdges())
	}
	// Fanout sanitization.
	topo = Tree(GenConfig{Storages: 3, UsersPerStorage: 1, Capacity: units.GB}, 0)
	checkGenerated(t, topo, 3, 1)
}

func TestRing(t *testing.T) {
	topo := Ring(GenConfig{Storages: 6, UsersPerStorage: 2, Capacity: units.GB})
	checkGenerated(t, topo, 6, 2)
	if topo.NumEdges() != 7 {
		t.Errorf("ring edges = %d, want 7", topo.NumEdges())
	}
	for _, n := range topo.Nodes() {
		if topo.Degree(n.ID) != 2 {
			t.Errorf("ring node %d degree = %d, want 2", n.ID, topo.Degree(n.ID))
		}
	}
}

func TestMetroDeterminism(t *testing.T) {
	a := Metro(GenConfig{}, 7)
	b := Metro(GenConfig{}, 7)
	if a.NumEdges() != b.NumEdges() || a.NumNodes() != b.NumNodes() {
		t.Fatal("Metro not deterministic in size")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("Metro not deterministic in edges")
		}
	}
	checkGenerated(t, a, 19, 10)
}

func TestPaperTopology(t *testing.T) {
	topo := Paper(5 * units.GB)
	if topo.NumNodes() != 20 {
		t.Fatalf("paper topology has %d nodes, want 20", topo.NumNodes())
	}
	checkGenerated(t, topo, 19, 10)
	for _, is := range topo.Storages() {
		if topo.Node(is).Capacity != 5*units.GB {
			t.Error("capacity not propagated")
		}
	}
}

func TestRandomConnected(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		topo := Random(GenConfig{Storages: 12, UsersPerStorage: 2, Capacity: units.GB}, 6, seed)
		checkGenerated(t, topo, 12, 2)
		if topo.NumEdges() < 12 {
			t.Error("random topology missing spanning tree edges")
		}
	}
}

func TestGenDefaults(t *testing.T) {
	cfg := GenConfig{}.withDefaults()
	if cfg.Storages != 19 || cfg.UsersPerStorage != 10 || cfg.Capacity != 5*units.GB {
		t.Errorf("defaults = %+v", cfg)
	}
}
