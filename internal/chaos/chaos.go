// Package chaos injects deterministic, seeded faults into HTTP traffic.
//
// An Injector evaluates a set of scripted Rules — each a time window
// (optionally flapping with a duty cycle) scoped to a host/path and
// carrying a Fault — against every call. Faults compose added latency,
// hard connection drops, synthesized 5xx answers, and mid-body response
// cuts. The same Injector drives both sides of a connection:
//
//   - Transport wraps an http.RoundTripper, so a *client's* view of a
//     peer degrades. Because each client owns its transport, asymmetric
//     partitions (A→B dead while B→A is fine) fall out naturally: give
//     only A's client a drop rule for B's host.
//   - Middleware wraps an http.Handler, so a *server* misbehaves for
//     everyone who calls it.
//
// All randomness flows from a single seeded source, and time flows
// through a Clock, so a given (seed, rules, request sequence) replays
// identically — including under a VirtualClock where flap phases are
// exact.
//
// Fault ordering is chosen so that injected failures are unambiguous to
// the caller: latency is applied *before* the request is forwarded (a
// context expiring mid-sleep means the upstream never saw the request),
// and drops and synthesized error codes never forward at all. Only a
// cut touches a real upstream exchange, truncating the response body
// after it has been served.
package chaos

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what happens to a call matched by an active Rule.
// Probabilities are rolled independently per call from the injector's
// seeded source; zero values mean "not this fault".
type Fault struct {
	// LatencyMin/LatencyMax add a delay drawn uniformly from
	// [LatencyMin, LatencyMax] before the call proceeds. Equal values
	// give a fixed delay.
	LatencyMin time.Duration
	LatencyMax time.Duration

	// Drop is the probability the connection is severed: the transport
	// returns a transport-level error, the middleware aborts the
	// connection. The request is never forwarded.
	Drop float64

	// ErrProb is the probability a synthesized HTTP error (status
	// Code, default 503) is answered without forwarding the request.
	ErrProb float64
	Code    int

	// CutProb is the probability the *response body* is truncated
	// after CutAfter bytes. CutClean ends the body with a silent EOF
	// instead of an unexpected-EOF error, modelling a torn-but-tidy
	// proxy. Cuts only make sense where the request was forwarded.
	CutProb  float64
	CutAfter int
	CutClean bool
}

// Rule scopes a Fault to a target and a time window.
type Rule struct {
	// Host matches the request's target host (exact match, including
	// port, as seen by the transport or server). Empty matches any.
	Host string
	// Path matches by prefix on the request path. Empty matches any.
	Path string

	// [From, Until) bounds the window relative to the injector's
	// start. Until == 0 means "forever".
	From  time.Duration
	Until time.Duration

	// Period > 0 makes the rule flap: within its window it is active
	// only while ((elapsed - From + Phase) mod Period) < Duty*Period.
	Period time.Duration
	Duty   float64
	Phase  time.Duration

	Fault Fault
}

func (r Rule) activeAt(elapsed time.Duration) bool {
	if elapsed < r.From {
		return false
	}
	if r.Until > 0 && elapsed >= r.Until {
		return false
	}
	if r.Period > 0 {
		into := (elapsed - r.From + r.Phase) % r.Period
		if float64(into) >= r.Duty*float64(r.Period) {
			return false
		}
	}
	return true
}

func (r Rule) matches(host, path string) bool {
	if r.Host != "" && r.Host != host {
		return false
	}
	if r.Path != "" && !strings.HasPrefix(path, r.Path) {
		return false
	}
	return true
}

// Stats is a snapshot of the injector's fault counters.
type Stats struct {
	Calls   uint64 `json:"calls"`
	Delayed uint64 `json:"delayed"`
	Dropped uint64 `json:"dropped"`
	Errored uint64 `json:"errored"`
	Cut     uint64 `json:"cut"`
}

// Injector owns the rule set, the seeded randomness and the clock. It
// is safe for concurrent use; one injector typically backs many
// transports and middlewares so one seed governs a whole scenario.
type Injector struct {
	mu    sync.Mutex
	rnd   *rand.Rand
	rules []Rule
	clock Clock
	start time.Time

	calls   atomic.Uint64
	delayed atomic.Uint64
	dropped atomic.Uint64
	errored atomic.Uint64
	cut     atomic.Uint64
}

// New builds an injector on the wall clock.
func New(seed int64, rules ...Rule) *Injector {
	return NewWithClock(RealClock(), seed, rules...)
}

// NewWithClock builds an injector whose windows, flaps and injected
// latency all run on the given clock.
func NewWithClock(c Clock, seed int64, rules ...Rule) *Injector {
	return &Injector{
		rnd:   rand.New(rand.NewSource(seed)),
		rules: rules,
		clock: c,
		start: c.Now(),
	}
}

// Elapsed is the injector-relative time used to evaluate rule windows.
func (in *Injector) Elapsed() time.Duration {
	return in.clock.Now().Sub(in.start)
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:   in.calls.Load(),
		Delayed: in.delayed.Load(),
		Dropped: in.dropped.Load(),
		Errored: in.errored.Load(),
		Cut:     in.cut.Load(),
	}
}

// outcome is the composed fault decision for one call. Precedence on
// conflicting rolls is drop > error code > cut; delays accumulate.
type outcome struct {
	delay    time.Duration
	drop     bool
	code     int
	cut      int // bytes to keep; -1 = no cut
	cutClean bool
}

func (in *Injector) decide(host, path string) outcome {
	in.calls.Add(1)
	o := outcome{cut: -1}
	elapsed := in.Elapsed()

	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if !r.matches(host, path) || !r.activeAt(elapsed) {
			continue
		}
		f := r.Fault
		if f.LatencyMax > 0 || f.LatencyMin > 0 {
			lo, hi := f.LatencyMin, f.LatencyMax
			if hi < lo {
				hi = lo
			}
			d := lo
			if hi > lo {
				d += time.Duration(in.rnd.Int63n(int64(hi-lo) + 1))
			}
			o.delay += d
		}
		if !o.drop && f.Drop > 0 && in.rnd.Float64() < f.Drop {
			o.drop = true
		}
		if o.code == 0 && f.ErrProb > 0 && in.rnd.Float64() < f.ErrProb {
			o.code = f.Code
			if o.code == 0 {
				o.code = 503
			}
		}
		if o.cut < 0 && f.CutProb > 0 && in.rnd.Float64() < f.CutProb {
			o.cut = f.CutAfter
			o.cutClean = f.CutClean
		}
	}
	return o
}
