package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func fixtures(t *testing.T) (topoP, catP, reqP string) {
	t.Helper()
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(topo, cat, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	topoP = filepath.Join(dir, "topo.json")
	f, err := os.Create(topoP)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, err = os.Create(catP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqP = filepath.Join(dir, "requests.json")
	if err := cli.SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	return topoP, catP, reqP
}

func TestRunSchedulesAndSaves(t *testing.T) {
	topoP, catP, reqP := fixtures(t)
	outP := filepath.Join(t.TempDir(), "schedule.json")
	if err := run(topoP, catP, reqP, 2, 400, "space-per-cost", "cache-on-route", outP, true, false, false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	sched, err := cli.LoadSchedule(outP)
	if err != nil {
		t.Fatalf("saved schedule unreadable: %v", err)
	}
	if sched.NumDeliveries() != 6 {
		t.Errorf("deliveries = %d, want 6", sched.NumDeliveries())
	}
}

func TestRunWithReportAndAnalysis(t *testing.T) {
	topoP, catP, reqP := fixtures(t)
	if err := run(topoP, catP, reqP, 2, 400, "period", "cache-at-destination", "", false, true, true, 2); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	topoP, catP, reqP := fixtures(t)
	if err := run("", catP, reqP, 2, 400, "period", "cache-on-route", "", true, false, false, 0); err == nil {
		t.Error("expected missing-flag error")
	}
	if err := run(topoP, catP, reqP, 2, 400, "bogus", "cache-on-route", "", true, false, false, 0); err == nil {
		t.Error("expected bad-metric error")
	}
	if err := run(topoP, catP, reqP, 2, 400, "period", "bogus", "", true, false, false, 0); err == nil {
		t.Error("expected bad-policy error")
	}
	if err := run(filepath.Join(t.TempDir(), "none.json"), catP, reqP, 2, 400, "period", "cache-on-route", "", true, false, false, 0); err == nil {
		t.Error("expected load error")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, m := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		got, err := parseMetric(m.String())
		if err != nil || got != m {
			t.Errorf("parseMetric(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := parseMetric("x"); err == nil {
		t.Error("expected metric parse error")
	}
	for _, p := range []ivs.Policy{ivs.CacheOnRoute, ivs.CacheAtDestination, ivs.NoCaching} {
		got, err := parsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("parsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := parsePolicy("x"); err == nil {
		t.Error("expected policy parse error")
	}
}
