package bandwidth

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// diamond builds VW with two disjoint 2-hop paths to IS3:
// VW - IS1 - IS3 (cheap) and VW - IS2 - IS3 (dear).
func diamond(t *testing.T) (*cost.Model, *topology.Topology) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 50*units.GB)
	is2 := b.Storage("IS2", 50*units.GB)
	is3 := b.Storage("IS3", 50*units.GB)
	b.Connect(vw, is1)
	b.Connect(vw, is2)
	b.Connect(is1, is3)
	b.Connect(is2, is3)
	b.AttachUsers(is3, 4)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	book := pricing.Uniform(topo, 0, pricing.PerGB(100))
	// Make the IS2 path twice as expensive so the cheapest route always
	// goes via IS1.
	e02, _ := topo.EdgeBetween(vw, is2)
	e23, _ := topo.EdgeBetween(is2, is3)
	book.SetNRate(e02, pricing.PerGB(200))
	book.SetNRate(e23, pricing.PerGB(200))
	table := routing.NewTable(book)
	return cost.NewModel(book, table, cat), topo
}

// directSchedule serves n simultaneous requests for distinct titles via
// direct streams (all on the cheap path).
func directSchedule(t *testing.T, m *cost.Model, topo *topology.Topology, n int) (*schedule.Schedule, workload.Set) {
	t.Helper()
	is3, _ := topo.Lookup("IS3")
	users := topo.UsersAt(is3)
	var reqs workload.Set
	for i := 0; i < n; i++ {
		reqs = append(reqs, workload.Request{User: users[i], Video: media.VideoID(i), Start: 0})
	}
	out, err := scheduler.RunDirect(m, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out.Schedule, reqs
}

func TestAnalyzePeaks(t *testing.T) {
	m, topo := diamond(t)
	s, _ := directSchedule(t, m, topo, 3)
	u := Analyze(topo, m.Catalog(), s)
	is1, _ := topo.Lookup("IS1")
	e01, _ := topo.EdgeBetween(topo.Warehouse(), is1)
	if got := u.PeakRate(e01).Mbit(); math.Abs(got-18) > 1e-9 {
		t.Errorf("peak on cheap first hop = %g Mbps, want 18 (3 concurrent 6 Mbps streams)", got)
	}
	is2, _ := topo.Lookup("IS2")
	e02, _ := topo.EdgeBetween(topo.Warehouse(), is2)
	if got := u.PeakRate(e02); got != 0 {
		t.Errorf("dear path unexpectedly used: %v", got)
	}
	// MaxRateDuring respects the window.
	if got := u.MaxRateDuring(e01, simtime.NewInterval(0, 10)).Mbit(); math.Abs(got-18) > 1e-9 {
		t.Errorf("MaxRateDuring during streams = %g", got)
	}
	after := simtime.Time(90 * simtime.Minute)
	if got := u.MaxRateDuring(e01, simtime.NewInterval(after+1, after+100)); got != 0 {
		t.Errorf("MaxRateDuring after streams = %v", got)
	}
}

func TestOverloadDetection(t *testing.T) {
	m, topo := diamond(t)
	s, _ := directSchedule(t, m, topo, 3)
	u := Analyze(topo, m.Catalog(), s)
	// Cap at 12 Mbps: 3 concurrent 6 Mbps streams overload both cheap-path
	// links.
	caps := UniformEdges(topo, units.Mbps(12))
	ovs := u.Overloads(caps)
	if len(ovs) != 2 {
		t.Fatalf("overloads = %v, want 2 (both cheap-path links)", ovs)
	}
	for _, o := range ovs {
		if o.Interval.Start != 0 {
			t.Errorf("overload start = %v, want 0", o.Interval.Start)
		}
		if o.Interval.End != simtime.Time(90*simtime.Minute) {
			t.Errorf("overload end = %v, want stream end", o.Interval.End)
		}
		if math.Abs(o.Peak.Mbit()-18) > 1e-9 {
			t.Errorf("overload peak = %v", o.Peak)
		}
		if o.String() == "" {
			t.Error("String empty")
		}
	}
	// Cap at 18 Mbps: fits exactly; no overload (strict exceedance).
	if ovs := u.Overloads(UniformEdges(topo, units.Mbps(18))); len(ovs) != 0 {
		t.Errorf("at-capacity overloads: %v", ovs)
	}
	// Uncapped: no overloads.
	if ovs := u.Overloads(Capacities{}); len(ovs) != 0 {
		t.Errorf("uncapped overloads: %v", ovs)
	}
}

func TestResolveReroutesAroundSaturation(t *testing.T) {
	m, topo := diamond(t)
	s, reqs := directSchedule(t, m, topo, 3)
	caps := UniformEdges(topo, units.Mbps(12))
	res, err := Resolve(m, s, caps)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(res.Unresolved) != 0 {
		t.Fatalf("unresolved: %v", res.Unresolved)
	}
	if res.Reroutes == 0 {
		t.Fatal("expected at least one reroute")
	}
	u := Analyze(topo, m.Catalog(), res.Schedule)
	if ovs := u.Overloads(caps); len(ovs) != 0 {
		t.Fatalf("overloads after resolve: %v", ovs)
	}
	// Rerouting onto the dear path costs more.
	if res.CostAfter <= res.CostBefore {
		t.Errorf("detour did not increase cost: %v -> %v", res.CostBefore, res.CostAfter)
	}
	if res.Delta() != res.CostAfter-res.CostBefore {
		t.Error("Delta inconsistent")
	}
	// Still a valid schedule serving all requests.
	if err := res.Schedule.Validate(topo, m.Catalog(), reqs); err != nil {
		t.Fatalf("rerouted schedule invalid: %v", err)
	}
	// Input untouched.
	uOrig := Analyze(topo, m.Catalog(), s)
	if len(uOrig.Overloads(caps)) == 0 {
		t.Error("Resolve modified its input")
	}
}

func TestResolveReportsUnresolvable(t *testing.T) {
	m, topo := diamond(t)
	// 4 simultaneous streams, all links capped at 6 Mbps: only 2 streams
	// fit (one per path); the rest are unresolvable by rerouting.
	s, _ := directSchedule(t, m, topo, 4)
	caps := UniformEdges(topo, units.Mbps(6))
	res, err := Resolve(m, s, caps)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(res.Unresolved) == 0 {
		t.Fatal("expected unresolved overloads")
	}
}

func TestResolveNoopWhenUnderCapacity(t *testing.T) {
	m, topo := diamond(t)
	s, _ := directSchedule(t, m, topo, 2)
	caps := UniformEdges(topo, units.Mbps(100))
	res, err := Resolve(m, s, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reroutes != 0 || res.CostAfter != res.CostBefore {
		t.Error("no-op resolve changed the schedule")
	}
}

func TestResolvePreservesCacheFeeds(t *testing.T) {
	// A schedule whose stream feeds a cache at IS1: rerouting that stream
	// via IS2 would orphan the cache, so the resolver must reroute a
	// different stream (or leave the overload unresolved).
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fig2's chain has no alternative routes at all: any cap below the
	// stream rate is unresolvable, and the feed must remain intact.
	caps := UniformEdges(f.Topo, units.Mbps(3))
	res, err := Resolve(f.Model, out.Schedule, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unresolved) == 0 {
		t.Fatal("chain topology cannot reroute; expected unresolved")
	}
	if err := res.Schedule.Validate(f.Topo, f.Model.Catalog(), f.Requests); err != nil {
		t.Fatalf("schedule corrupted: %v", err)
	}
}

func TestRouteAvoiding(t *testing.T) {
	m, topo := diamond(t)
	is3, _ := topo.Lookup("IS3")
	is1, _ := topo.Lookup("IS1")
	e01, _ := topo.EdgeBetween(topo.Warehouse(), is1)
	r, rate, err := routing.RouteAvoiding(m.Book(), topo.Warehouse(), is3, func(e int) bool { return e == e01 })
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 || r[1] == is1 {
		t.Errorf("avoiding route = %v", r)
	}
	if math.Abs(float64(rate)-float64(pricing.PerGB(400))) > 1e-15 {
		t.Errorf("avoiding rate = %v, want 400/GB", rate)
	}
	// Banning both first hops disconnects VW.
	e02, _ := topo.EdgeBetween(topo.Warehouse(), topology.NodeID(2))
	_, _, err = routing.RouteAvoiding(m.Book(), topo.Warehouse(), is3, func(e int) bool {
		return e == e01 || e == e02
	})
	if err == nil {
		t.Error("expected no-route error")
	}
	// Self route.
	r, rate, err = routing.RouteAvoiding(m.Book(), is3, is3, func(int) bool { return true })
	if err != nil || len(r) != 1 || rate != 0 {
		t.Errorf("self route = %v %v %v", r, rate, err)
	}
}
