// Package pricing holds the charging-rate book of the cost model (paper
// §2.2): every intermediate storage has a storage charging rate srate in
// $/(byte·second), and every network link has a network charging rate nrate
// in $/byte. The warehouse stores all titles permanently at rate zero.
//
// The paper quotes rates in per-gigabyte units ("storage charging rate 3–8
// per GByte·sec", "network charging rate 300–1000 per GByte"); the PerGBSec
// and PerGB helpers convert those quoted values to the per-byte rates used
// internally.
package pricing

import (
	"fmt"
	"math/rand"

	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Mode selects how network transfers are charged (paper §2.2.2).
type Mode int

const (
	// PerHop charges a transfer the sum of the edge rates along its route.
	PerHop Mode = iota
	// EndToEnd charges a transfer a single source→destination rate. We
	// derive it as the cheapest per-hop route rate, which is how an
	// infrastructure operator quoting end-to-end prices would floor them;
	// explicit overrides are available via SetEndToEnd.
	EndToEnd
)

func (m Mode) String() string {
	switch m {
	case PerHop:
		return "per-hop"
	case EndToEnd:
		return "end-to-end"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SRate is a storage charging rate in $/(byte·second).
type SRate float64

// NRate is a network charging rate in $/byte.
type NRate float64

// PerGBSec converts a paper-style storage rate quoted per GByte·sec into
// the internal per-byte·sec rate.
func PerGBSec(v float64) SRate { return SRate(v / float64(units.GB)) }

// PerGB converts a paper-style network rate quoted per GByte into the
// internal per-byte rate.
func PerGB(v float64) NRate { return NRate(v / float64(units.GB)) }

// Book is the rate book for one topology. It is immutable after
// construction except through the Set* methods, which are intended for
// experiment setup, not concurrent use.
type Book struct {
	topo    *topology.Topology
	mode    Mode
	srate   []SRate // indexed by NodeID
	nrate   []NRate // indexed by edge index
	e2e     map[[2]topology.NodeID]NRate
	preload float64 // bulk pre-load tariff factor (0 < f <= 1)
}

// Uniform builds a rate book charging every intermediate storage the same
// srate and every link the same nrate, the configuration used throughout
// the paper's parameter sweeps. The warehouse's srate is pinned to zero.
func Uniform(topo *topology.Topology, s SRate, n NRate) *Book {
	b := &Book{
		topo:    topo,
		mode:    PerHop,
		srate:   make([]SRate, topo.NumNodes()),
		nrate:   make([]NRate, topo.NumEdges()),
		preload: 1,
	}
	for _, node := range topo.Nodes() {
		if node.Kind == topology.KindStorage {
			b.srate[node.ID] = s
		}
	}
	for i := range b.nrate {
		b.nrate[i] = n
	}
	return b
}

// Topology returns the topology the book prices.
func (b *Book) Topology() *topology.Topology { return b.topo }

// Mode returns the network charging mode.
func (b *Book) Mode() Mode { return b.mode }

// SetMode switches between per-hop and end-to-end network charging.
func (b *Book) SetMode(m Mode) { b.mode = m }

// SRate returns the storage charging rate of node n (zero for the
// warehouse).
func (b *Book) SRate(n topology.NodeID) SRate { return b.srate[n] }

// SetSRate overrides the storage rate for one node. Setting a nonzero rate
// on the warehouse is rejected: the paper fixes srate(VW)=0.
func (b *Book) SetSRate(n topology.NodeID, s SRate) error {
	if b.topo.Node(n).Kind == topology.KindWarehouse && s != 0 {
		return fmt.Errorf("pricing: warehouse storage rate is fixed at zero")
	}
	b.srate[n] = s
	return nil
}

// NRate returns the network charging rate of the edge with index i.
func (b *Book) NRate(i int) NRate { return b.nrate[i] }

// SetNRate overrides the rate of one edge.
func (b *Book) SetNRate(i int, n NRate) { b.nrate[i] = n }

// SetEndToEnd overrides the end-to-end rate for an (ordered) node pair.
// Only consulted in EndToEnd mode.
func (b *Book) SetEndToEnd(src, dst topology.NodeID, n NRate) {
	if b.e2e == nil {
		b.e2e = make(map[[2]topology.NodeID]NRate)
	}
	b.e2e[[2]topology.NodeID{src, dst}] = n
}

// EndToEndOverride returns the explicit end-to-end rate for (src, dst), if
// one was set.
func (b *Book) EndToEndOverride(src, dst topology.NodeID) (NRate, bool) {
	n, ok := b.e2e[[2]topology.NodeID{src, dst}]
	return n, ok
}

// PreloadFactor returns the tariff factor applied to bulk pre-load
// transfers (strategic replication). Pre-loads run off the real-time path
// — typically overnight, on otherwise idle capacity — so operators price
// them below the reserved-stream rate. 1 (the default) means no discount.
func (b *Book) PreloadFactor() float64 { return b.preload }

// SetPreloadFactor sets the bulk pre-load tariff factor in (0, 1].
func (b *Book) SetPreloadFactor(f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("pricing: preload factor must be in (0,1], got %g", f)
	}
	b.preload = f
	return nil
}

// RandomizeSRates assigns every intermediate storage a rate drawn
// uniformly from [lo, hi] (deterministic per seed). The paper notes that
// "per unit cost is inherent to an individual resource entity" (§2.2);
// heterogeneous books model providers whose sites differ in disk cost.
func (b *Book) RandomizeSRates(lo, hi SRate, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, node := range b.topo.Nodes() {
		if node.Kind == topology.KindStorage {
			b.srate[node.ID] = lo + SRate(rng.Float64())*(hi-lo)
		}
	}
}

// RandomizeNRates assigns every link a rate drawn uniformly from [lo, hi]
// (deterministic per seed).
func (b *Book) RandomizeNRates(lo, hi NRate, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range b.nrate {
		b.nrate[i] = lo + NRate(rng.Float64())*(hi-lo)
	}
}

// RouteRate returns the summed per-hop rate along a path given as a node
// sequence. It panics if consecutive nodes are not adjacent.
func (b *Book) RouteRate(path []topology.NodeID) NRate {
	var total NRate
	for i := 1; i < len(path); i++ {
		ei, ok := b.topo.EdgeBetween(path[i-1], path[i])
		if !ok {
			panic(fmt.Sprintf("pricing: path hop %v-%v is not an edge", path[i-1], path[i]))
		}
		total += b.nrate[ei]
	}
	return total
}
