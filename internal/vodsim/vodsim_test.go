package vodsim

import (
	"math"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/testutil"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func TestExecuteFig2MatchesAnalyticCost(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-6) {
		t.Errorf("simulated cost %v != analytic %v", rep.TotalCost(), out.FinalCost)
	}
	// The greedy's optimum: 2 streams (VW->IS1, IS1->IS2) and the local
	// IS2 hit (zero hops), 2 cache loads.
	if rep.Streams != 3 {
		t.Errorf("streams = %d, want 3", rep.Streams)
	}
	if rep.CacheLoads != 2 {
		t.Errorf("cache loads = %d, want 2", rep.CacheLoads)
	}
	// Per-component agreement.
	bd := f.Model.CostBreakdown(out.Schedule)
	if !rep.NetworkCost.ApproxEqual(bd.Network, 1e-6) {
		t.Errorf("network: sim %v vs model %v", rep.NetworkCost, bd.Network)
	}
	if !rep.StorageCost.ApproxEqual(bd.Storage, 1e-6) {
		t.Errorf("storage: sim %v vs model %v", rep.StorageCost, bd.Storage)
	}
}

// TestExecuteMatchesModelAtScale is the central cross-validation property:
// for full two-phase schedules over many seeds, the event simulator's
// independently accumulated cost must equal Ψ(S) and no violation may
// occur.
func TestExecuteMatchesModelAtScale(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rig, err := testutil.NewPaperRig(9, 8, 40, 5*units.GB, testutil.PerGBHour(3), pricing.PerGB(500), seed)
		if err != nil {
			t.Fatal(err)
		}
		reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 8 * simtime.Hour, Seed: seed + 50})
		if err != nil {
			t.Fatal(err)
		}
		out, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rep := Execute(rig.Book, rig.Catalog, out.Schedule)
		if !rep.OK() {
			t.Fatalf("seed %d: violations: %v", seed, rep.Violations[:min(3, len(rep.Violations))])
		}
		if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-3) {
			t.Errorf("seed %d: simulated %v != analytic %v", seed, rep.TotalCost(), out.FinalCost)
		}
		if rep.Streams != len(reqs) {
			t.Errorf("seed %d: streams = %d, requests = %d", seed, rep.Streams, len(reqs))
		}
	}
}

func TestExecuteDetectsOverCommit(t *testing.T) {
	// Run phase 1 only on a rig known to overflow; the simulator must
	// report capacity violations that SORP would have fixed.
	rig, err := testutil.NewPaperRig(6, 8, 12, 4*units.GB, pricing.PerGBSec(5.0/3600), pricing.PerGB(500), 11)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(rig.Topo, rig.Catalog, workload.Config{Alpha: 0.1, Window: 6 * simtime.Hour, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := scheduler.Run(rig.Model, reqs, scheduler.Config{SkipResolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Overflows == 0 {
		t.Skip("rig did not overflow")
	}
	rep := Execute(rig.Book, rig.Catalog, raw.Schedule)
	if rep.OK() {
		t.Fatal("simulator missed the over-commit that the ledger detected")
	}
	// And the resolved schedule must execute cleanly.
	fixed, err := scheduler.Run(rig.Model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Execute(rig.Book, rig.Catalog, fixed.Schedule)
	if !rep2.OK() {
		t.Fatalf("resolved schedule still violates: %v", rep2.Violations)
	}
}

func TestExecuteLinkAccounting(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.RunDirect(f.Model, f.Requests)
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// Direct: 3 streams from VW. VW-IS1 carries all three (3 × 4.05 GB);
	// IS1-IS2 carries two.
	if len(rep.Links) != 2 {
		t.Fatalf("links used = %d, want 2", len(rep.Links))
	}
	vol := 4.05e9
	e01, _ := f.Topo.EdgeBetween(f.VW, f.IS1)
	e12, _ := f.Topo.EdgeBetween(f.IS1, f.IS2)
	byEdge := map[int]LinkUsage{}
	for _, lu := range rep.Links {
		byEdge[lu.Edge] = lu
	}
	if got := byEdge[e01].Bytes.Float(); math.Abs(got-3*vol) > 1 {
		t.Errorf("VW-IS1 bytes = %g, want %g", got, 3*vol)
	}
	if got := byEdge[e12].Bytes.Float(); math.Abs(got-2*vol) > 1 {
		t.Errorf("IS1-IS2 bytes = %g, want %g", got, 2*vol)
	}
	// No temporal overlap between the three 90-minute streams (they start
	// 90 min apart), so peak concurrency is 1.
	if byEdge[e01].PeakStreams != 1 {
		t.Errorf("peak streams = %d, want 1", byEdge[e01].PeakStreams)
	}
	if math.Abs(byEdge[e01].PeakRate.Mbit()-6) > 1e-9 {
		t.Errorf("peak rate = %v, want 6 Mbps", byEdge[e01].PeakRate)
	}
	if rep.StorageCost != 0 {
		t.Error("direct schedule must have zero storage cost")
	}
}

func TestExecuteNodePeakMatchesLedger(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	ledger := occupancy.FromSchedule(f.Topo, f.Model.Catalog(), out.Schedule)
	for _, nu := range rep.Nodes {
		peak, _ := ledger.Peak(nu.Node)
		if math.Abs(peak-nu.PeakReserved) > 1 {
			t.Errorf("node %d: sim peak %g vs ledger peak %g", nu.Node, nu.PeakReserved, peak)
		}
	}
}

func TestExecuteContinuityViolation(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build a corrupt schedule: a delivery reads the cache before it
	// is loaded. (Validate would reject it; the simulator must too.)
	r1, _ := f.Model.Table().Route(f.VW, f.IS1)
	r2, _ := f.Model.Table().Route(f.IS1, f.IS2)
	fs := &schedule.FileSchedule{Video: 0}
	fs.Deliveries = []schedule.Delivery{
		{Video: 0, User: f.Topo.UsersAt(f.IS1)[0], Start: 5000, Route: r1, SourceResidency: schedule.NoResidency},
		{Video: 0, User: f.Topo.UsersAt(f.IS2)[0], Start: 1000, Route: r2, SourceResidency: 0},
	}
	fs.Residencies = []schedule.Residency{
		{Video: 0, Loc: f.IS1, Src: f.VW, Load: 5000, LastService: 6000, FedBy: 0, Services: []int{1}},
	}
	s := schedule.New()
	s.Put(fs)
	rep := Execute(f.Model.Book(), f.Model.Catalog(), s)
	if rep.OK() {
		t.Fatal("simulator accepted a stream reading an unloaded cache")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPhysicalVsEnvelope pins the relationship between the paper's
// reservation envelope (Eq. 6–7) and the physically held bytes:
//
//   - for a LONG residency the envelope upper-bounds physical usage and
//     both peak at the full file size;
//   - for a SHORT residency both peak at γ·size, but the physical plateau
//     outlives the envelope's decay (the writer is still filling), so
//     physical can transiently exceed the envelope — the simulator reports
//     this via PhysicalNotes when it crosses capacity.
func TestPhysicalVsEnvelope(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	P := f.Model.Catalog().Video(0).Playback
	size := f.Model.Catalog().Video(0).Size.Float()
	u1 := f.Topo.UsersAt(f.IS1)[0]

	// Long residency: two services 2P apart.
	long := workload.Set{
		{User: u1, Video: 0, Start: 0},
		{User: f.Topo.UsersAt(f.IS1)[0], Video: 0, Start: simtime.Time(2 * P)},
	}
	out, err := scheduler.Run(f.Model, long, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	for _, nu := range rep.Nodes {
		if nu.PeakPhysical > nu.PeakReserved+1e-3 {
			t.Errorf("long residency: physical peak %g exceeds envelope peak %g", nu.PeakPhysical, nu.PeakReserved)
		}
		if math.Abs(nu.PeakReserved-size) > 1e-3 {
			t.Errorf("long residency envelope peak = %g, want full size", nu.PeakReserved)
		}
	}

	// Short residency: second service at P/2 after the first.
	short := workload.Set{
		{User: u1, Video: 0, Start: 0},
		{User: f.Topo.UsersAt(f.IS1)[0], Video: 0, Start: simtime.Time(P / 2)},
	}
	out2, err := scheduler.Run(f.Model, short, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Execute(f.Model.Book(), f.Model.Catalog(), out2.Schedule)
	if !rep2.OK() {
		t.Fatalf("violations: %v", rep2.Violations)
	}
	for _, nu := range rep2.Nodes {
		// γ = 1/2: both peaks at size/2 (the plateau height).
		if math.Abs(nu.PeakPhysical-size/2) > 1 || math.Abs(nu.PeakReserved-size/2) > 1 {
			t.Errorf("short residency peaks: physical %g, reserved %g, want %g", nu.PeakPhysical, nu.PeakReserved, size/2)
		}
	}
}

// TestPrePlacementBulkAccounting verifies the simulator's bulk-flow
// accounting for standing copies: each pre-load carries exactly the file
// size per hop, priced at the book's preload factor, and the total still
// matches the analytic Ψ(S).
func TestPrePlacementBulkAccounting(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Model.Book().SetPreloadFactor(0.5); err != nil {
		t.Fatal(err)
	}
	// A standing copy at IS2 (2 hops from VW) serving one local request.
	seed := schedule.Residency{
		Video: 0, Loc: f.IS2, Src: f.VW,
		Load: 0, LastService: simtime.Time(6 * simtime.Hour),
		FedBy: schedule.PrePlacedFeed,
	}
	u := f.Topo.UsersAt(f.IS2)[0]
	reqs := workload.Set{{User: u, Video: 0, Start: simtime.Time(simtime.Hour)}}
	out, err := scheduler.Run(f.Model, reqs, scheduler.Config{
		Seeds: map[media.VideoID][]schedule.Residency{0: {seed}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// The request is a local cache hit: the only traffic is the pre-load,
	// 2.5 GB on each of the two hops.
	size := 2.5e9
	if len(rep.Links) != 2 {
		t.Fatalf("links used = %d, want 2 (pre-load route)", len(rep.Links))
	}
	for _, lu := range rep.Links {
		if math.Abs(lu.BulkBytes.Float()-size) > 1 {
			t.Errorf("edge %d bulk bytes = %v, want 2.5GB", lu.Edge, lu.BulkBytes)
		}
		if lu.Bytes != lu.BulkBytes {
			t.Errorf("edge %d carries non-bulk traffic %v", lu.Edge, lu.Bytes-lu.BulkBytes)
		}
	}
	if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-6) {
		t.Errorf("simulated %v != analytic %v", rep.TotalCost(), out.FinalCost)
	}
	// Halving the preload factor halved the pre-load's network charge:
	// recompute at factor 1 for comparison.
	if err := f.Model.Book().SetPreloadFactor(1); err != nil {
		t.Fatal(err)
	}
	full := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if full.NetworkCost <= rep.NetworkCost {
		t.Errorf("full-tariff network %v not above discounted %v", full.NetworkCost, rep.NetworkCost)
	}
}

// TestExecuteEndToEndPricing verifies the simulator prices streams at the
// end-to-end rate (overrides included) when the book is in that mode, so
// the cost triangle holds under both charging bases of paper §2.2.2.
func TestExecuteEndToEndPricing(t *testing.T) {
	f, err := testutil.NewFig2()
	if err != nil {
		t.Fatal(err)
	}
	f.Model.Book().SetMode(pricing.EndToEnd)
	// Flat override: every remote pair costs the same per byte.
	for _, a := range f.Topo.Nodes() {
		for _, b := range f.Topo.Nodes() {
			if a.ID != b.ID {
				f.Model.Book().SetEndToEnd(a.ID, b.ID, pricing.PerGB(120))
			}
		}
	}
	out, err := scheduler.Run(f.Model, f.Requests, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Execute(f.Model.Book(), f.Model.Catalog(), out.Schedule)
	if !rep.OK() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if !rep.TotalCost().ApproxEqual(out.FinalCost, 1e-3) {
		t.Fatalf("end-to-end mode: simulated %v != analytic %v", rep.TotalCost(), out.FinalCost)
	}
	// Under flat pricing remote relays save nothing, so the scheduler
	// caches locally at IS2 (zero-rate self service) where profitable.
	if rep.NetworkCost <= 0 {
		t.Error("network cost must be positive")
	}
}
