// Package cost implements the paper's cost model (§2.2): the mapping Ψ
// from a service schedule to a single monetary quantity, the sum of the
// storage cost of every residency (Eq. 2–3) and the network cost of every
// delivery (Eq. 4).
//
//	Ψ(S) = Σ Ψc(c_i) + Σ Ψd(d_i)
//
// Storage charges the amortized time–space product of a copy at the
// storage's rate; the network charges the amortized stream volume P·B at
// the route's per-byte rate (summed per hop, or a single end-to-end rate).
package cost

import (
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Model evaluates Ψ for one topology, rate book and catalog.
type Model struct {
	book    *pricing.Book
	table   *routing.Table
	catalog *media.Catalog
}

// NewModel builds a cost model. The routing table must have been built from
// the same rate book.
func NewModel(book *pricing.Book, table *routing.Table, catalog *media.Catalog) *Model {
	return &Model{book: book, table: table, catalog: catalog}
}

// Book returns the model's rate book.
func (m *Model) Book() *pricing.Book { return m.book }

// Table returns the model's routing table.
func (m *Model) Table() *routing.Table { return m.table }

// Catalog returns the model's catalog.
func (m *Model) Catalog() *media.Catalog { return m.catalog }

// SpanCost returns the storage cost of holding a copy of a file with the
// given size and playback length for a caching span Δ (Eq. 2–3):
//
//	long  (Δ ≥ P): srate · size · (Δ + P/2)
//	short (Δ < P): srate · size · (Δ/P) · (Δ + P/2)
//
// The function is zero at Δ = 0, strictly increasing, and continuous at the
// short/long boundary Δ = P (both forms give 3P/2·srate·size).
func SpanCost(srate pricing.SRate, size units.Bytes, playback, span simtime.Duration) units.Money {
	if span < 0 || playback <= 0 {
		return 0
	}
	base := float64(srate) * size.Float() * (span.Seconds() + playback.Seconds()/2)
	if span >= playback {
		return units.Money(base)
	}
	return units.Money(base * span.Seconds() / playback.Seconds())
}

// ResidencyCost returns Ψc(c) for a residency of the model's catalog.
func (m *Model) ResidencyCost(c schedule.Residency) units.Money {
	v := m.catalog.Video(c.Video)
	return SpanCost(m.book.SRate(c.Loc), v.Size, v.Playback, c.Span())
}

// ExtendCost returns the marginal storage cost of extending a residency's
// LastService from its current value to newLast: Ψc(Δ') − Ψc(Δ). This is
// what the greedy charges for serving one more request from a cached copy.
func (m *Model) ExtendCost(c schedule.Residency, newLast simtime.Time) units.Money {
	v := m.catalog.Video(c.Video)
	rate := m.book.SRate(c.Loc)
	oldCost := SpanCost(rate, v.Size, v.Playback, c.Span())
	newCost := SpanCost(rate, v.Size, v.Playback, newLast.Sub(c.Load))
	return newCost - oldCost
}

// DeliveryCost returns Ψd(d) for a delivery: the amortized stream volume
// P·B priced at the route's rate. In PerHop mode the actual route's summed
// edge rates are charged; in EndToEnd mode the source→destination rate from
// the routing table (with any explicit override) is charged.
func (m *Model) DeliveryCost(d schedule.Delivery) units.Money {
	v := m.catalog.Video(d.Video)
	volume := v.StreamBytes().Float()
	var rate pricing.NRate
	if m.book.Mode() == pricing.EndToEnd {
		rate = m.table.Rate(d.Src(), d.Dst())
	} else {
		rate = m.book.RouteRate(d.Route)
	}
	return units.Money(volume * float64(rate))
}

// TransferCost returns the network cost of one stream of the given video
// from src to dst along the cheapest route, without materializing a
// delivery. This is the quantity the greedy compares across candidate
// supply points.
func (m *Model) TransferCost(video media.VideoID, src, dst topology.NodeID) units.Money {
	v := m.catalog.Video(video)
	return units.Money(v.StreamBytes().Float() * float64(m.table.Rate(src, dst)))
}

// StreamCost prices one stream of precomputed volume from src to dst —
// TransferCost with the per-call catalog lookup hoisted out: stream must
// be the video's StreamBytes().Float(). It exists for the greedy's
// innermost candidate loop, which prices every supply point of every
// request and amortizes the video-dependent work across the loop.
func (m *Model) StreamCost(stream float64, src, dst topology.NodeID) units.Money {
	return units.Money(stream * float64(m.table.Rate(src, dst)))
}

// CandidateCost prices serving one request from an existing copy: the
// marginal storage of extending the copy to newLast (ExtendCost) plus one
// stream from the copy's node to dst (TransferCost), with the per-call
// catalog lookups hoisted out like StreamCost. oldCost must be the copy's
// current span cost, SpanCost(SRate(c.Loc), v.Size, v.Playback, c.Span());
// the greedy caches it per residency so pricing a candidate costs one
// SpanCost, not two. The arithmetic matches ExtendCost + TransferCost bit
// for bit.
func (m *Model) CandidateCost(v *media.Video, stream float64, oldCost units.Money,
	c *schedule.Residency, newLast simtime.Time, dst topology.NodeID) units.Money {
	rate := m.book.SRate(c.Loc)
	newCost := SpanCost(rate, v.Size, v.Playback, newLast.Sub(c.Load))
	return newCost - oldCost + units.Money(stream*float64(m.table.Rate(c.Loc, dst)))
}

// PrePlacementCost returns the bulk-transfer cost of loading a pre-placed
// copy from the warehouse: the file's size priced at the cheapest route
// rate times the book's off-peak preload factor. Unlike a playback stream
// (charged P·B), a pre-load moves exactly the file once, off the
// real-time path.
func (m *Model) PrePlacementCost(c schedule.Residency) units.Money {
	v := m.catalog.Video(c.Video)
	rate := float64(m.table.Rate(m.book.Topology().Warehouse(), c.Loc))
	return units.Money(v.Size.Float() * rate * m.book.PreloadFactor())
}

// FileCost returns Ψ(S_i) for one file schedule, pre-placement transfers
// included.
func (m *Model) FileCost(fs *schedule.FileSchedule) units.Money {
	var total units.Money
	for _, d := range fs.Deliveries {
		total += m.DeliveryCost(d)
	}
	for _, c := range fs.Residencies {
		total += m.ResidencyCost(c)
		if c.FedBy == schedule.PrePlacedFeed {
			total += m.PrePlacementCost(c)
		}
	}
	return total
}

// ScheduleCost returns Ψ(S) for the global schedule.
func (m *Model) ScheduleCost(s *schedule.Schedule) units.Money {
	var total units.Money
	for _, id := range s.VideoIDs() {
		total += m.FileCost(s.Files[id])
	}
	return total
}

// Breakdown separates a schedule's cost into its storage and network
// components, the decomposition the paper's Experiment 2 discusses.
type Breakdown struct {
	Storage units.Money
	Network units.Money
}

// Total returns storage plus network cost.
func (b Breakdown) Total() units.Money { return b.Storage + b.Network }

// CostBreakdown returns the storage/network decomposition of Ψ(S).
// Pre-placement bulk transfers count as network cost.
func (m *Model) CostBreakdown(s *schedule.Schedule) Breakdown {
	var b Breakdown
	for _, fs := range s.Files {
		for _, d := range fs.Deliveries {
			b.Network += m.DeliveryCost(d)
		}
		for _, c := range fs.Residencies {
			b.Storage += m.ResidencyCost(c)
			if c.FedBy == schedule.PrePlacedFeed {
				b.Network += m.PrePlacementCost(c)
			}
		}
	}
	return b
}
