// Command vspgen generates the artifacts the other tools consume:
// service topologies, video catalogs and reservation workloads.
//
// Usage:
//
//	vspgen -kind topology -gen metro -storages 19 -users 10 -capacity-gb 5 > topo.json
//	vspgen -kind catalog -titles 500 -mean-gb 3.3 > catalog.json
//	vspgen -kind workload -topo topo.json -catalog catalog.json -alpha 0.271 > requests.json
//	vspgen -kind trace -topo topo.json -catalog catalog.json -requests 1000000 \
//	       -diurnal 0.6 -flash 20h:4:0:0.7 -format jsonl -out trace.jsonl
//
// The workload kind emits one JSON array and suits batch scheduling
// (vspsched). The trace kind streams a structured Pattern workload —
// diurnal cycle, premiere flash crowds, rate windows, rank drift,
// catalog churn, regional cohorts — record by record through a
// TraceWriter, so a million-request trace goes straight to disk without
// ever being resident; replay it with vspload or vsphorizon.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

type genOptions struct {
	kind string

	// topology
	gen        string
	storages   int
	users      int
	capacityGB float64
	fanout     int
	extraEdges int

	// catalog
	titles int
	meanGB float64

	// workload & trace
	topoPath string
	catPath  string
	alpha    float64
	locality float64
	seed     int64

	// workload (batch)
	windowH int
	rpu     int
	arrival string

	// trace (streaming pattern)
	requests      int
	spanHours     float64
	slotMinutes   float64
	diurnal       float64
	diurnalPeakH  float64
	flashSpecs    string
	windowSpecs   string
	driftHours    float64
	driftSwaps    int
	churnHours    float64
	churnFraction float64
	regions       int
	cohortShare   float64
	staggerHours  float64
	format        string
	outPath       string
}

func main() {
	var o genOptions
	flag.StringVar(&o.kind, "kind", "topology", "what to generate: topology | catalog | workload | trace")
	flag.StringVar(&o.gen, "gen", "metro", "topology generator: metro | star | chain | tree | ring | random")
	flag.IntVar(&o.storages, "storages", 19, "number of intermediate storages")
	flag.IntVar(&o.users, "users", 10, "users per neighborhood")
	flag.Float64Var(&o.capacityGB, "capacity-gb", 5, "per-storage capacity (GB)")
	flag.IntVar(&o.fanout, "fanout", 2, "tree fanout (tree generator)")
	flag.IntVar(&o.extraEdges, "extra-edges", 6, "extra links (random generator)")
	flag.IntVar(&o.titles, "titles", 500, "catalog size")
	flag.Float64Var(&o.meanGB, "mean-gb", 3.3, "mean title size (GB)")
	flag.StringVar(&o.topoPath, "topo", "", "topology JSON (workload | trace)")
	flag.StringVar(&o.catPath, "catalog", "", "catalog JSON (workload | trace)")
	flag.Float64Var(&o.alpha, "alpha", 0.271, "Zipf skew (workload | trace)")
	flag.Float64Var(&o.locality, "locality", 0, "neighborhood taste variation in [0,1] (workload | trace)")
	flag.IntVar(&o.windowH, "window-hours", 12, "reservation window (workload)")
	flag.IntVar(&o.rpu, "rpu", 1, "requests per user (workload)")
	flag.StringVar(&o.arrival, "arrival", "uniform", "arrival process: uniform | peak | slotted (workload)")
	flag.Int64Var(&o.seed, "seed", 1997, "RNG seed")
	flag.IntVar(&o.requests, "requests", 10000, "total reservations to emit (trace)")
	flag.Float64Var(&o.spanHours, "span-hours", 24, "trace duration in hours (trace)")
	flag.Float64Var(&o.slotMinutes, "slot-minutes", 5, "rate-profile resolution in minutes (trace)")
	flag.Float64Var(&o.diurnal, "diurnal", 0, "diurnal cycle strength in [0,1] (trace)")
	flag.Float64Var(&o.diurnalPeakH, "diurnal-peak-hours", 20, "diurnal peak offset in hours (trace)")
	flag.StringVar(&o.flashSpecs, "flash", "", "premiere flash crowds as at_hours:boost:video:share, comma-separated (trace)")
	flag.StringVar(&o.windowSpecs, "rate-window", "", "rate windows as from_hours:to_hours:factor, comma-separated (trace)")
	flag.Float64Var(&o.driftHours, "drift-hours", 0, "rank drift interval in hours, 0 = off (trace)")
	flag.IntVar(&o.driftSwaps, "drift-swaps", 0, "adjacent-rank swaps per drift interval, 0 = titles/20 (trace)")
	flag.Float64Var(&o.churnHours, "churn-hours", 0, "catalog churn interval in hours, 0 = off (trace)")
	flag.Float64Var(&o.churnFraction, "churn-fraction", 0.05, "catalog fraction re-rolled per churn interval (trace)")
	flag.IntVar(&o.regions, "regions", 0, "contiguous metro regions for cohort demand, 0 = off (trace)")
	flag.Float64Var(&o.cohortShare, "cohort-share", 0, "probability a request follows its region's taste permutation (trace)")
	flag.Float64Var(&o.staggerHours, "region-stagger-hours", 0, "diurnal phase shift per region in hours (trace)")
	flag.StringVar(&o.format, "format", "jsonl", "trace format: csv | jsonl (trace)")
	flag.StringVar(&o.outPath, "out", "", "write the trace here instead of stdout (trace)")
	flag.Parse()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "vspgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o genOptions) error {
	switch o.kind {
	case "topology":
		cfg := topology.GenConfig{
			Storages:        o.storages,
			UsersPerStorage: o.users,
			Capacity:        units.GBf(o.capacityGB),
		}
		var topo *topology.Topology
		switch o.gen {
		case "metro":
			topo = topology.Metro(cfg, o.seed)
		case "star":
			topo = topology.Star(cfg)
		case "chain":
			topo = topology.Chain(cfg)
		case "tree":
			topo = topology.Tree(cfg, o.fanout)
		case "ring":
			topo = topology.Ring(cfg)
		case "random":
			topo = topology.Random(cfg, o.extraEdges, o.seed)
		default:
			return fmt.Errorf("unknown topology generator %q", o.gen)
		}
		st := topo.ComputeStats()
		fmt.Fprintf(os.Stderr, "vspgen: %d nodes, %d links, %d users; diameter %d hops, avg VW distance %.1f\n",
			st.Nodes, st.Links, st.Users, st.Diameter, st.AvgHops)
		return topo.Encode(w)

	case "catalog":
		cat, err := media.Generate(media.GenConfig{
			Titles:   o.titles,
			MeanSize: units.GBf(o.meanGB),
			Seed:     o.seed,
		})
		if err != nil {
			return err
		}
		return cat.Encode(w)

	case "workload":
		topo, cat, err := loadModel(o)
		if err != nil {
			return err
		}
		var arr workload.Arrival
		switch o.arrival {
		case "uniform":
			arr = workload.Uniform
		case "peak":
			arr = workload.EveningPeak
		case "slotted":
			arr = workload.Slotted
		default:
			return fmt.Errorf("unknown arrival %q", o.arrival)
		}
		set, err := workload.Generate(topo, cat, workload.Config{
			Alpha:           o.alpha,
			Locality:        o.locality,
			Window:          simtime.Duration(o.windowH) * simtime.Hour,
			RequestsPerUser: o.rpu,
			Arrival:         arr,
			Seed:            o.seed,
		})
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(set)

	case "trace":
		topo, cat, err := loadModel(o)
		if err != nil {
			return err
		}
		p, err := o.pattern()
		if err != nil {
			return err
		}
		out := w
		if o.outPath != "" {
			f, err := os.Create(o.outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		var tw workload.TraceWriter
		switch o.format {
		case "csv":
			tw = workload.NewCSVTraceWriter(out)
		case "jsonl":
			tw = workload.NewJSONLTraceWriter(out)
		default:
			return fmt.Errorf("unknown format %q (csv | jsonl)", o.format)
		}
		if err := p.Stream(topo, cat, tw.Write); err != nil {
			return err
		}
		if err := tw.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "vspgen: streamed %d requests over %.0fh\n", p.Requests, o.spanHours)
		return nil

	default:
		return fmt.Errorf("unknown kind %q (topology | catalog | workload | trace)", o.kind)
	}
}

// pattern assembles the trace kind's Pattern from the flat flags.
func (o genOptions) pattern() (workload.Pattern, error) {
	p := workload.Pattern{
		Base:     workload.Config{Alpha: o.alpha, Locality: o.locality, Seed: o.seed},
		Requests: o.requests,
		Span:     hours(o.spanHours),
		Slot:     simtime.Duration(o.slotMinutes * float64(simtime.Minute)),
		Diurnal: workload.Diurnal{
			Strength: o.diurnal,
			Peak:     hours(o.diurnalPeakH),
		},
		Drift:         workload.Drift{Interval: hours(o.driftHours), Swaps: o.driftSwaps},
		Regions:       o.regions,
		CohortShare:   o.cohortShare,
		RegionStagger: hours(o.staggerHours),
	}
	if o.churnHours > 0 {
		p.Churn = workload.Churn{Interval: hours(o.churnHours), Fraction: o.churnFraction}
	}
	for _, spec := range splitSpecs(o.flashSpecs) {
		f, err := parseFlash(spec)
		if err != nil {
			return p, err
		}
		p.Flash = append(p.Flash, f)
	}
	for _, spec := range splitSpecs(o.windowSpecs) {
		w, err := parseWindow(spec)
		if err != nil {
			return p, err
		}
		p.Windows = append(p.Windows, w)
	}
	return p, nil
}

func hours(h float64) simtime.Duration { return simtime.Duration(h * float64(simtime.Hour)) }

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// parseFlash reads "at_hours:boost[:video[:share]]", e.g. "20h:4:0:0.7"
// (the h suffix on the first field is optional).
func parseFlash(spec string) (workload.Flash, error) {
	var f workload.Flash
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return f, fmt.Errorf("flash %q: want at_hours:boost[:video[:share]]", spec)
	}
	at, err := strconv.ParseFloat(strings.TrimSuffix(parts[0], "h"), 64)
	if err != nil {
		return f, fmt.Errorf("flash %q: bad at %q", spec, parts[0])
	}
	f.At = simtime.Time(hours(at))
	if f.Boost, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return f, fmt.Errorf("flash %q: bad boost %q", spec, parts[1])
	}
	if len(parts) >= 3 {
		v, err := strconv.Atoi(parts[2])
		if err != nil {
			return f, fmt.Errorf("flash %q: bad video %q", spec, parts[2])
		}
		f.Video = media.VideoID(v)
	}
	if len(parts) == 4 {
		if f.Share, err = strconv.ParseFloat(parts[3], 64); err != nil {
			return f, fmt.Errorf("flash %q: bad share %q", spec, parts[3])
		}
	}
	return f, nil
}

// parseWindow reads "from_hours:to_hours:factor", e.g. "2:4:0".
func parseWindow(spec string) (workload.Window, error) {
	var w workload.Window
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return w, fmt.Errorf("rate-window %q: want from_hours:to_hours:factor", spec)
	}
	from, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return w, fmt.Errorf("rate-window %q: bad from %q", spec, parts[0])
	}
	to, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return w, fmt.Errorf("rate-window %q: bad to %q", spec, parts[1])
	}
	w.From, w.To = simtime.Time(hours(from)), simtime.Time(hours(to))
	if w.Factor, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return w, fmt.Errorf("rate-window %q: bad factor %q", spec, parts[2])
	}
	return w, nil
}

func loadModel(o genOptions) (*topology.Topology, *media.Catalog, error) {
	if o.topoPath == "" || o.catPath == "" {
		return nil, nil, fmt.Errorf("%s generation needs -topo and -catalog", o.kind)
	}
	topo, err := loadTopology(o.topoPath)
	if err != nil {
		return nil, nil, err
	}
	cat, err := loadCatalog(o.catPath)
	if err != nil {
		return nil, nil, err
	}
	return topo, cat, nil
}

func loadTopology(path string) (*topology.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return topology.Decode(f)
}

func loadCatalog(path string) (*media.Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return media.Decode(f)
}
