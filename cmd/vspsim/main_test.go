package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func fixtures(t *testing.T) (topoP, catP, reqP, schedP string) {
	t.Helper()
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(topo, cat, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := cli.BuildModel(topo, cat, 2, 400)
	out, err := scheduler.Run(model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	topoP = filepath.Join(dir, "topo.json")
	f, _ := os.Create(topoP)
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, _ = os.Create(catP)
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqP = filepath.Join(dir, "requests.json")
	if err := cli.SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	schedP = filepath.Join(dir, "schedule.json")
	if err := cli.SaveJSON(schedP, out.Schedule); err != nil {
		t.Fatal(err)
	}
	return
}

func TestSimulateCleanSchedule(t *testing.T) {
	topoP, catP, reqP, schedP := fixtures(t)
	var sb strings.Builder
	if err := run(&sb, topoP, catP, schedP, reqP, 2, 400, true, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"validation        ok", "violations        0", "simulated cost", "links:", "storages:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Error("cost mismatch warning on a clean schedule")
	}
}

func TestSimulateWithoutRequests(t *testing.T) {
	topoP, catP, _, schedP := fixtures(t)
	var sb strings.Builder
	if err := run(&sb, topoP, catP, schedP, "", 2, 400, false, false); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), "validation") {
		t.Error("validation line present without -requests")
	}
}

func TestSimulateErrors(t *testing.T) {
	topoP, catP, reqP, schedP := fixtures(t)
	var sb strings.Builder
	if err := run(&sb, "", catP, schedP, reqP, 2, 400, false, false); err == nil {
		t.Error("expected missing-flag error")
	}
	// Wrong requests file (mismatched coverage) must fail validation: use
	// the schedule file as the "requests" (decode error).
	if err := run(&sb, topoP, catP, schedP, filepath.Join(t.TempDir(), "none.json"), 2, 400, false, false); err == nil {
		t.Error("expected load error")
	}
}
