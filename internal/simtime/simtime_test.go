package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	if got := t0.Add(50); got != Time(150) {
		t.Errorf("Add: got %d, want 150", got)
	}
	if got := t0.Add(-200); got != Time(-100) {
		t.Errorf("Add negative: got %d, want -100", got)
	}
	if got := Time(150).Sub(t0); got != Duration(50) {
		t.Errorf("Sub: got %d, want 50", got)
	}
	if !t0.Before(Time(101)) || t0.Before(t0) {
		t.Error("Before misbehaves")
	}
	if !Time(101).After(t0) || t0.After(t0) {
		t.Error("After misbehaves")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "00:00:00"},
		{Time(Hour + 30*Minute), "01:30:00"},
		{Time(Day + 2*Hour + 3*Minute + 4*Second), "1d02:03:04"},
		{Time(-90), "-00:01:30"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{0, "0s"},
		{45, "45s"},
		{Minute, "1m"},
		{90, "1m30s"},
		{Hour, "1h"},
		{Hour + 30*Minute, "1h30m"},
		{Hour + 30*Minute + 5*Second, "1h30m5s"},
		{-90, "-1m30s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDurationStd(t *testing.T) {
	if got := (2 * Minute).Std(); got != 2*time.Minute {
		t.Errorf("Std: got %v, want 2m", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
}

func TestSecondsConversions(t *testing.T) {
	if Time(90).Seconds() != 90.0 {
		t.Error("Time.Seconds wrong")
	}
	if Duration(90).Seconds() != 90.0 {
		t.Error("Duration.Seconds wrong")
	}
}

func TestPropertyAddSubInverse(t *testing.T) {
	f := func(a int32, d int32) bool {
		t0 := Time(a)
		return t0.Add(Duration(d)).Sub(t0) == Duration(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
