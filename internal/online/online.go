// Package online implements a reactive caching baseline: the system the
// paper's Video-On-Reservation model argues against. Requests are revealed
// one at a time (no batch foreknowledge); each is served from the nearest
// live copy, and the destination storage caches what passes through it,
// evicting least-recently-used copies under space pressure.
//
// Contrasting this baseline with the two-phase offline scheduler isolates
// the value of advance reservations (paper §1: the provider "can perform
// global optimizations based on the user request information"): the online
// system cannot size a copy's residency to its future readers, cannot pick
// victims by global heat, and holds copies speculatively until evicted.
package online

import (
	"fmt"
	"sort"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Result summarizes an online run. The online system produces no offline
// schedule artifact; its outcome is the cost it actually incurred.
type Result struct {
	Requests    int
	CacheHits   int // requests served from some cached copy
	LocalHits   int // served from the requester's own storage
	Evictions   int
	StorageCost units.Money
	NetworkCost units.Money
}

// TotalCost returns the run's total service cost.
func (r *Result) TotalCost() units.Money { return r.StorageCost + r.NetworkCost }

// HitRate returns the fraction of requests served from cached copies.
func (r *Result) HitRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.Requests)
}

// copy is one live cached title at a storage node.
type copyState struct {
	video    media.VideoID
	loaded   simtime.Time
	lastUse  simtime.Time
	size     units.Bytes
	playback simtime.Duration
	// reading marks the end of the latest playback reading this copy; a
	// copy cannot be evicted while a reader depends on it.
	readingUntil simtime.Time
}

// nodeCache is the LRU cache of one storage.
type nodeCache struct {
	copies []copyState
	used   units.Bytes
}

// Run replays the batch through the reactive system and returns the
// incurred cost. Policy:
//
//   - a request is served from the cheapest live copy (the rate book's
//     cheapest route), the warehouse included;
//   - after serving, the requester's local storage admits a copy of the
//     title (filled from the passing stream, so no extra transfer) if the
//     title is larger than the storage, admission is skipped;
//   - admission evicts least-recently-used copies, never a copy still
//     being read;
//   - at the end of the cycle every surviving copy is discarded.
//
// Storage is charged per the paper's model over each copy's actual held
// span Δ (Eq. 2–3 with tf−ts = eviction−load): the online system pays for
// speculative retention that the offline scheduler never books.
func Run(m *cost.Model, reqs workload.Set) (*Result, error) {
	topo := m.Book().Topology()
	ordered := append(workload.Set(nil), reqs...)
	workload.SortChronological(ordered)

	caches := make([]nodeCache, topo.NumNodes())
	res := &Result{}

	evict := func(node topology.NodeID, idx int, at simtime.Time) {
		nc := &caches[node]
		c := nc.copies[idx]
		span := at.Sub(c.loaded)
		res.StorageCost += cost.SpanCost(m.Book().SRate(node), c.size, c.playback, span)
		nc.used -= c.size
		nc.copies = append(nc.copies[:idx], nc.copies[idx+1:]...)
	}

	for _, r := range ordered {
		if int(r.User) < 0 || int(r.User) >= topo.NumUsers() {
			return nil, fmt.Errorf("online: unknown user %d", r.User)
		}
		if int(r.Video) < 0 || int(r.Video) >= m.Catalog().Len() {
			return nil, fmt.Errorf("online: unknown video %d", r.Video)
		}
		v := m.Catalog().Video(r.Video)
		dst := topo.User(r.User).Local
		res.Requests++

		// Cheapest live source: warehouse, or any node holding the title.
		bestSrc := topo.Warehouse()
		bestRate := m.Table().Rate(topo.Warehouse(), dst)
		fromCache := false
		for n := range caches {
			node := topology.NodeID(n)
			for i := range caches[n].copies {
				if caches[n].copies[i].video != r.Video {
					continue
				}
				if rate := m.Table().Rate(node, dst); rate < bestRate {
					bestRate, bestSrc, fromCache = rate, node, true
				} else if node == dst && rate == bestRate {
					// Prefer the local copy on rate ties.
					bestSrc, fromCache = node, true
				}
			}
		}
		res.NetworkCost += units.Money(v.StreamBytes().Float() * float64(bestRate))
		if fromCache {
			res.CacheHits++
			if bestSrc == dst {
				res.LocalHits++
			}
			// Touch the source copy.
			nc := &caches[bestSrc]
			for i := range nc.copies {
				if nc.copies[i].video == r.Video {
					nc.copies[i].lastUse = r.Start
					if end := r.Start.Add(v.Playback); end > nc.copies[i].readingUntil {
						nc.copies[i].readingUntil = end
					}
					break
				}
			}
		}

		// Admit a local copy from the passing stream (if absent).
		admit(m, caches, dst, r, v, res, evict)
	}

	// Cycle end: discard every surviving copy, paying for its held span.
	// Copies drain after their final reader, so the span closes at
	// max(lastUse + P, load).
	for n := range caches {
		node := topology.NodeID(n)
		for len(caches[n].copies) > 0 {
			c := caches[n].copies[0]
			end := simtime.Max(c.lastUse.Add(c.playback), c.loaded)
			evict(node, 0, end)
		}
	}
	return res, nil
}

func admit(m *cost.Model, caches []nodeCache, dst topology.NodeID, r workload.Request,
	v media.Video, res *Result, evict func(topology.NodeID, int, simtime.Time)) {

	capacity := m.Book().Topology().Node(dst).Capacity
	if v.Size > capacity {
		return // title cannot fit at all
	}
	nc := &caches[dst]
	for i := range nc.copies {
		if nc.copies[i].video == r.Video {
			return // already cached locally
		}
	}
	// Evict LRU copies (not currently read) until the title fits.
	for nc.used+v.Size > capacity {
		candidates := make([]int, 0, len(nc.copies))
		for i := range nc.copies {
			if nc.copies[i].readingUntil <= r.Start {
				candidates = append(candidates, i)
			}
		}
		if len(candidates) == 0 {
			return // everything pinned by readers; skip admission
		}
		sort.Slice(candidates, func(a, b int) bool {
			ca, cb := &nc.copies[candidates[a]], &nc.copies[candidates[b]]
			if ca.lastUse != cb.lastUse {
				return ca.lastUse < cb.lastUse
			}
			// lastUse ties (common with slotted arrivals) must break
			// deterministically or the evicted title — and hence the run's
			// cost — depends on sort.Slice's unspecified equal-key order.
			if ca.loaded != cb.loaded {
				return ca.loaded < cb.loaded
			}
			return ca.video < cb.video
		})
		evict(dst, candidates[0], r.Start)
		res.Evictions++
	}
	nc.copies = append(nc.copies, copyState{
		video:        r.Video,
		loaded:       r.Start,
		lastUse:      r.Start,
		size:         v.Size,
		playback:     v.Playback,
		readingUntil: r.Start.Add(v.Playback),
	})
	nc.used += v.Size
}
