package faults

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := &Scenario{Faults: []Fault{
		{Kind: NodeOutage, Node: 1, From: 100, Until: 200},
		{Kind: LinkDown, Edge: 0, From: 50, Until: 75},
		{Kind: VWBrownout, From: 0, Until: 10},
	}}
	var buf bytes.Buffer
	if err := sc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", sc, got)
	}
}

func TestKindJSONRejectsUnknown(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString(`{"faults":[{"kind":"meteor-strike","from":0,"until":1}]}`)); err == nil {
		t.Fatal("unknown kind decoded without error")
	}
}

func TestScenarioValidate(t *testing.T) {
	topo := testTopo(t)
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"storage outage", Fault{Kind: NodeOutage, Node: 1, From: 0, Until: 10}, true},
		{"warehouse outage rejected", Fault{Kind: NodeOutage, Node: topo.Warehouse(), From: 0, Until: 10}, false},
		{"unknown node", Fault{Kind: NodeOutage, Node: 99, From: 0, Until: 10}, false},
		{"link down", Fault{Kind: LinkDown, Edge: 1, From: 0, Until: 10}, true},
		{"unknown edge", Fault{Kind: LinkDown, Edge: 9, From: 0, Until: 10}, false},
		{"brownout", Fault{Kind: VWBrownout, From: 5, Until: 6}, true},
		{"inverted window", Fault{Kind: VWBrownout, From: 6, Until: 5}, false},
	}
	for _, tc := range cases {
		sc := &Scenario{Faults: []Fault{tc.f}}
		err := sc.Validate(topo)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestScenarioQueries(t *testing.T) {
	sc := &Scenario{Faults: []Fault{
		{Kind: NodeOutage, Node: 2, From: 100, Until: 200},
		{Kind: LinkDown, Edge: 1, From: 300, Until: 400},
		{Kind: VWBrownout, From: 500, Until: 600},
	}}
	if !sc.NodeDownAt(2, 100) || sc.NodeDownAt(2, 200) || sc.NodeDownAt(1, 150) {
		t.Error("NodeDownAt window semantics wrong")
	}
	if !sc.NodeDown(2, simtime.NewInterval(150, 160)) || sc.NodeDown(2, simtime.NewInterval(200, 300)) {
		t.Error("NodeDown overlap semantics wrong")
	}
	if !sc.EdgeDown(1, simtime.NewInterval(399, 500)) || sc.EdgeDown(0, simtime.NewInterval(0, 1000)) {
		t.Error("EdgeDown semantics wrong")
	}
	if !sc.VWBrownedOutAt(500) || sc.VWBrownedOutAt(600) {
		t.Error("VWBrownedOutAt semantics wrong")
	}
	bans := sc.BannedPairs()
	if len(bans) != 1 || bans[0].Node != 2 || bans[0].Interval != simtime.NewInterval(100, 200) {
		t.Errorf("BannedPairs = %+v", bans)
	}
}

func TestEmpty(t *testing.T) {
	var nilSc *Scenario
	if !nilSc.Empty() {
		t.Error("nil scenario should be empty")
	}
	if !(&Scenario{}).Empty() {
		t.Error("zero scenario should be empty")
	}
	if !(&Scenario{Faults: []Fault{{Kind: LinkDown, From: 5, Until: 5}}}).Empty() {
		t.Error("zero-length windows should count as empty")
	}
	if (&Scenario{Faults: []Fault{{Kind: LinkDown, From: 5, Until: 6}}}).Empty() {
		t.Error("real fault should not be empty")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	topo := testTopo(t)
	cfg := GenConfig{Seed: 42, NodeOutages: 3, LinkDowns: 2, Brownouts: 1}
	a, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scenarios")
	}
	if err := a.Validate(topo); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	if len(a.Faults) != 6 {
		t.Fatalf("got %d faults, want 6", len(a.Faults))
	}
	c, err := Generate(topo, GenConfig{Seed: 43, NodeOutages: 3, LinkDowns: 2, Brownouts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scenarios")
	}
}
