package server

import (
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Admission control: a bounded in-flight limiter with a small wait queue.
// Scheduling requests are CPU-heavy, so under overload the failure mode
// of an unlimited server is the worst one — every request slows down
// until all of them time out while the connection count (and memory)
// grows without bound. The limiter instead admits up to maxInFlight
// requests, parks up to maxQueue more for at most wait, and sheds the
// rest immediately with 429 and a Retry-After header so well-behaved
// clients back off instead of piling on. GET /healthz bypasses the
// limiter: liveness probes must answer precisely when the server is
// saturated.
type limiter struct {
	slots      chan struct{} // in-flight tokens
	queue      chan struct{} // wait-queue tokens
	wait       time.Duration
	retryAfter string
	shed       atomic.Uint64
}

func newLimiter(maxInFlight, maxQueue int, wait time.Duration) *limiter {
	return &limiter{
		slots:      make(chan struct{}, maxInFlight),
		queue:      make(chan struct{}, maxQueue),
		wait:       wait,
		retryAfter: strconv.Itoa(int(math.Max(1, math.Ceil(wait.Seconds())))),
	}
}

// Shed returns how many requests were rejected with 429.
func (l *limiter) Shed() uint64 { return l.shed.Load() }

// InFlight returns the number of requests currently admitted.
func (l *limiter) InFlight() int { return len(l.slots) }

// Capacity returns the in-flight bound.
func (l *limiter) Capacity() int { return cap(l.slots) }

func (l *limiter) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Liveness and readiness probes bypass admission control: a load
		// balancer must get an answer precisely when the server is
		// saturated, and a readiness 503 under overload would eject a
		// perfectly serviceable node from rotation.
		if r.Method == http.MethodGet && (r.URL.Path == "/healthz" || r.URL.Path == "/readyz") {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case l.slots <- struct{}{}:
		default:
			// Saturated: take a queue token or shed on the spot.
			select {
			case l.queue <- struct{}{}:
			default:
				l.reject(w)
				return
			}
			timer := time.NewTimer(l.wait)
			select {
			case l.slots <- struct{}{}:
				timer.Stop()
				<-l.queue
			case <-timer.C:
				<-l.queue
				l.reject(w)
				return
			case <-r.Context().Done():
				timer.Stop()
				<-l.queue
				l.reject(w)
				return
			}
		}
		defer func() { <-l.slots }()
		next.ServeHTTP(w, r)
	})
}

func (l *limiter) reject(w http.ResponseWriter) {
	l.shed.Add(1)
	w.Header().Set("Retry-After", l.retryAfter)
	writeJSON(w, http.StatusTooManyRequests,
		map[string]string{"error": "server overloaded; retry after backoff"})
}
