package main

import (
	"strings"
	"testing"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in                string
		id, prim, stand   string
		wantErrContaining string
	}{
		{in: "s0=http://a:8080", id: "s0", prim: "http://a:8080"},
		{in: "s1=http://a:8080,http://b:8081", id: "s1", prim: "http://a:8080", stand: "http://b:8081"},
		{in: "http://a:8080", wantErrContaining: "id=primaryURL"},
		{in: "=http://a:8080", wantErrContaining: "id=primaryURL"},
		{in: "s0=", wantErrContaining: "empty primary"},
		{in: "s0=,http://b:8081", wantErrContaining: "empty primary"},
		{in: "s0=http://a,http://b,http://c", wantErrContaining: "at most one standby"},
	}
	for _, c := range cases {
		sc, err := parseShard(c.in)
		if c.wantErrContaining != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErrContaining) {
				t.Errorf("parseShard(%q) err = %v, want containing %q", c.in, err, c.wantErrContaining)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShard(%q): %v", c.in, err)
			continue
		}
		if sc.ID != c.id || sc.Primary != c.prim || sc.Standby != c.stand {
			t.Errorf("parseShard(%q) = %+v, want {%s %s %s}", c.in, sc, c.id, c.prim, c.stand)
		}
	}
}
