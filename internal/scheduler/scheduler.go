// Package scheduler assembles the paper's two-phase Video Scheduler (§3.1):
// phase 1 computes a minimum-cost schedule for every file individually,
// assuming unbounded intermediate storage; phase 2 integrates them, detects
// storage overflows, and resolves them by heat-ranked victim rescheduling.
package scheduler

import (
	"context"
	"fmt"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/parallel"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Config selects the scheduler's policies.
type Config struct {
	// Policy is the caching policy for both phases (default CacheOnRoute).
	Policy ivs.Policy
	// Metric is the victim-selection heat metric for phase 2 (default
	// SpacePerCost, the paper's best performer).
	Metric sorp.HeatMetric
	// SkipResolution stops after phase 1, returning the possibly
	// over-committed integrated schedule (used by studies that inspect
	// raw overflows).
	SkipResolution bool
	// SkipValidation disables the final structural validation (the
	// validation is cheap; this exists for benchmarks isolating pure
	// scheduling time).
	SkipValidation bool
	// Refine enables the post-resolution improvement sweep: each file is
	// rescheduled against the other files' actual disk usage and kept when
	// strictly cheaper, repeating to a fixpoint. An extension beyond the
	// paper's two phases; never increases cost and never re-introduces
	// overflows (the sweep is capacity-aware).
	Refine bool
	// RefinePasses bounds the improvement sweep (default 10).
	RefinePasses int
	// Seeds installs pre-placed standing copies per video (strategic
	// replication; see internal/placement). The greedy serves from them at
	// zero marginal storage cost, resolution treats them as immovable, and
	// their committed cost appears in every reported total.
	Seeds map[media.VideoID][]schedule.Residency
	// Workers bounds the worker pool for phase-1 per-file scheduling and
	// phase-2 candidate evaluation. Phase-1 results are merged in video-ID
	// order and phase-2 victims are picked by a total order over the
	// candidate set, so the produced schedule is byte-identical for every
	// worker count. 0 means GOMAXPROCS, 1 forces the sequential path.
	Workers int
}

// Outcome reports a full scheduling run.
type Outcome struct {
	// Schedule is the final service schedule.
	Schedule *schedule.Schedule
	// Phase1Cost is Ψ(S_good): the cost after individual scheduling,
	// before overflow resolution.
	Phase1Cost units.Money
	// FinalCost is Ψ(S_SORP), the cost of the returned schedule.
	FinalCost units.Money
	// Overflows is the number of distinct overflow situations detected
	// when the individual schedules were integrated.
	Overflows int
	// Victims lists the phase-2 rescheduling decisions in order.
	Victims []sorp.Victim
	// RefinedFiles counts files improved by the refinement sweep and
	// RefineSavings the total cost it recovered (zero unless Config.Refine).
	RefinedFiles  int
	RefineSavings units.Money
}

// ResolutionDelta returns Ψ(S_SORP) − Ψ(S_good), the cost increase caused
// by storage overflow resolution (§5.5 reports 12% of Ψ(S) on average).
func (o *Outcome) ResolutionDelta() units.Money { return o.FinalCost - o.Phase1Cost }

// Run executes the two-phase scheduler on a request batch.
func Run(m *cost.Model, reqs workload.Set, cfg Config) (*Outcome, error) {
	return Schedule(context.Background(), m, reqs, cfg)
}

// Schedule is Run with cancellation: the context is checked before every
// phase-1 file dispatch, every phase-2 victim iteration, and every
// refinement pass, so a cancelled or timed-out ctx aborts the run promptly
// with ctx.Err() wrapped in the returned error. Work done so far is
// discarded — a partial schedule is not a schedule.
//
// Phase 1 fans the per-file individual scheduling out over the bounded
// worker pool selected by Config.Workers. File schedules are independent
// in phase 1 (unbounded-storage assumption, paper §3.2), so this is safe;
// results are merged in video-ID order, keeping the outcome byte-identical
// to a sequential run.
func Schedule(ctx context.Context, m *cost.Model, reqs workload.Set, cfg Config) (*Outcome, error) {
	parts := reqs.ByVideo()
	videos := reqs.Videos()
	s := schedule.New()
	fss := make([]*schedule.FileSchedule, len(videos))
	errs := make([]error, len(videos))
	if err := parallel.Do(ctx, cfg.Workers, len(videos), func(i int) {
		fss[i], errs[i] = ivs.ScheduleFile(m, videos[i], parts[videos[i]],
			ivs.Options{Policy: cfg.Policy, Seeds: cfg.Seeds[videos[i]]})
	}); err != nil {
		return nil, fmt.Errorf("scheduler: phase 1 aborted: %w", err)
	}
	for i, vid := range videos {
		if errs[i] != nil {
			return nil, fmt.Errorf("scheduler: phase 1 for video %d: %w", vid, errs[i])
		}
		s.Put(fss[i])
	}
	// Seeded videos nobody requested still occupy space and money; carry
	// them so costs and occupancy stay truthful.
	for vid, seeds := range cfg.Seeds {
		if s.File(vid) != nil || len(seeds) == 0 {
			continue
		}
		fs, err := ivs.ScheduleFile(m, vid, nil, ivs.Options{Policy: cfg.Policy, Seeds: seeds})
		if err != nil {
			return nil, fmt.Errorf("scheduler: seeding video %d: %w", vid, err)
		}
		s.Put(fs)
	}
	out := &Outcome{Schedule: s, Phase1Cost: m.ScheduleCost(s)}

	ledger := occupancy.FromSchedule(m.Book().Topology(), m.Catalog(), s)
	out.Overflows = len(ledger.AllOverflows())

	if cfg.SkipResolution || out.Overflows == 0 {
		out.FinalCost = out.Phase1Cost
	} else {
		res, err := sorp.ResolveContext(ctx, m, s, parts, sorp.Options{
			Metric: cfg.Metric, Policy: cfg.Policy, Seeds: cfg.Seeds, Workers: cfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("scheduler: phase 2: %w", err)
		}
		out.Schedule = res.Schedule
		out.FinalCost = res.CostAfter
		out.Victims = res.Victims
	}

	if cfg.Refine && !cfg.SkipResolution {
		rr, err := refine(ctx, m, out.Schedule, parts, cfg.Policy, cfg.RefinePasses, cfg.Seeds)
		if err != nil {
			return nil, err
		}
		out.RefinedFiles = rr.moved
		out.RefineSavings = rr.savings
		out.FinalCost = m.ScheduleCost(out.Schedule)
	}

	if !cfg.SkipValidation {
		if err := out.Schedule.Validate(m.Book().Topology(), m.Catalog(), reqs); err != nil {
			return nil, fmt.Errorf("scheduler: produced invalid schedule: %w", err)
		}
		if !cfg.SkipResolution {
			l := occupancy.FromSchedule(m.Book().Topology(), m.Catalog(), out.Schedule)
			if ovs := l.AllOverflows(); len(ovs) > 0 {
				return nil, fmt.Errorf("scheduler: %d overflows survive resolution, first %v", len(ovs), ovs[0])
			}
		}
	}
	return out, nil
}

// RunDirect schedules every request as a direct warehouse stream — the
// paper's "network only system" baseline. It never uses storage and never
// overflows.
func RunDirect(m *cost.Model, reqs workload.Set) (*Outcome, error) {
	return Run(m, reqs, Config{Policy: ivs.NoCaching})
}
