// Package vodsim executes a service schedule on a discrete-event simulator
// and verifies, from first principles, what the scheduler promised:
//
//   - every request receives its stream at its reserved start time;
//   - disk reservations at every intermediate storage stay within capacity;
//   - the independently-accounted network bytes and storage byte·seconds,
//     priced at the rate book, reproduce the analytic Ψ(S) exactly.
//
// The simulator does not reuse the cost model's formulas: link usage is
// accumulated per stream event, and storage usage is integrated by an
// event-driven level/slope integrator fed by reserve/drain events. Equality
// with Ψ(S) is therefore a genuine end-to-end check of the cost model.
package vodsim

import (
	"fmt"
	"sort"

	"github.com/vodsim/vsp/internal/des"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Violation is one observed breach of the schedule's guarantees.
type Violation struct {
	At   simtime.Time
	Node topology.NodeID // storage node, or -1 for link/stream violations
	Msg  string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v node=%d: %s", v.At, v.Node, v.Msg)
}

// LinkUsage aggregates one link's traffic over the run.
type LinkUsage struct {
	Edge        int
	Bytes       units.Bytes // total volume carried (pre-loads included)
	BulkBytes   units.Bytes // pre-load volume, priced at the preload factor
	PeakStreams int         // max concurrent streams
	PeakRate    units.BytesPerSec
}

// NodeUsage aggregates one storage node's disk usage over the run.
type NodeUsage struct {
	Node         topology.NodeID
	PeakReserved float64 // bytes booked by the cost model's envelope
	ByteSeconds  float64 // ∫ reserved dt
	// PeakPhysical tracks the bytes actually present (written minus
	// drained by the final reader). Per copy its peak equals the booked
	// envelope's peak (γ·size), but the SHAPES differ: the paper's Eq. 6
	// envelope decays from LastService while a short residency physically
	// holds its plateau until the writer finishes at Load+P, so aggregate
	// physical usage can exceed the aggregate envelope — and even the
	// node's capacity — inside those tail windows. The simulator surfaces
	// this as PhysicalNotes rather than violations: it is a property of
	// the paper's amortization, not of a particular schedule.
	PeakPhysical float64
}

// Report is the outcome of executing a schedule.
type Report struct {
	Streams     int
	CacheLoads  int
	Violations  []Violation
	Links       []LinkUsage
	Nodes       []NodeUsage
	NetworkCost units.Money // priced from accumulated link bytes
	StorageCost units.Money // priced from integrated byte·seconds
	// PhysicalNotes flags nodes whose physically-held bytes peaked above
	// capacity even though every booked reservation fit: the paper's
	// short-residency envelope (Eq. 6) decays from the last service while
	// the writer is still filling, so the amortized booking understates
	// the transient physical footprint. Informational, not a violation of
	// the paper's model.
	PhysicalNotes []string

	// Fault-injection outcome (all zero on a fault-free run). Missed
	// counts services that could not start because their source, route or
	// destination was down; Severed counts streams cut mid-playback;
	// DeadResidencies counts cached copies lost (or never written) to a
	// fault. FaultNotes narrates each casualty. Faults are environment
	// damage, not schedule bugs, so they are reported here rather than as
	// Violations.
	Missed          int
	Severed         int
	DeadResidencies int
	FaultNotes      []string
}

// TotalCost returns the simulator's independently derived Ψ(S).
func (r *Report) TotalCost() units.Money { return r.NetworkCost + r.StorageCost }

// OK reports whether the run observed no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

type nodeState struct {
	level      float64 // current reserved bytes
	slope      float64 // bytes/sec
	phys       float64 // bytes physically present
	physSlope  float64 // bytes/sec
	lastUpdate simtime.Time
	integral   float64 // reserved byte·seconds so far
	peak       float64
	physPeak   float64
	capacity   float64
	unbounded  bool
}

func (ns *nodeState) advance(now simtime.Time) {
	dt := now.Sub(ns.lastUpdate).Seconds()
	if dt > 0 {
		next := ns.level + ns.slope*dt
		ns.integral += (ns.level + next) / 2 * dt
		ns.level = next
		ns.phys += ns.physSlope * dt
		if ns.level < 0 && ns.level > -1e-3 {
			ns.level = 0 // float cancellation guard
		}
		if ns.phys < 0 && ns.phys > -1e-3 {
			ns.phys = 0
		}
		ns.lastUpdate = now
	}
	if ns.level > ns.peak {
		ns.peak = ns.level
	}
	if ns.phys > ns.physPeak {
		ns.physPeak = ns.phys
	}
}

type linkState struct {
	streams   int
	rate      float64
	bytes     float64
	bulkBytes float64 // pre-load volume, priced at the preload factor
	peakN     int
	peakRate  float64
	lastAt    simtime.Time
}

// Execute runs the schedule on the simulator under a perfect (fault-free)
// infrastructure. The rate book supplies the topology and the prices; the
// catalog supplies sizes, playback lengths and stream bandwidths.
func Execute(book *pricing.Book, catalog *media.Catalog, s *schedule.Schedule) *Report {
	return ExecuteScenario(book, catalog, s, nil)
}

// ExecuteScenario runs the schedule under a fault scenario: affected
// residencies are marked dead at fault onset (their reservation is released
// and their disk integration stops), in-flight streams crossing a failed
// element are severed at onset (link bytes accrue only up to the cut), and
// services whose source, route or destination is down at start time are
// missed entirely. A nil or empty scenario reproduces the fault-free run
// exactly.
func ExecuteScenario(book *pricing.Book, catalog *media.Catalog, s *schedule.Schedule, sc *faults.Scenario) *Report {
	topo := book.Topology()
	imp := faults.Assess(topo, catalog, s, sc)
	eng := des.New(0)
	rep := &Report{}
	if imp != nil {
		rep.Missed = imp.Missed
		rep.Severed = imp.Severed
		rep.DeadResidencies = imp.DeadResidencies
	}

	nodes := make([]nodeState, topo.NumNodes())
	for _, n := range topo.Nodes() {
		nodes[n.ID].capacity = n.Capacity.Float()
		nodes[n.ID].unbounded = n.Kind == topology.KindWarehouse
	}
	links := make([]linkState, topo.NumEdges())

	violate := func(at simtime.Time, node topology.NodeID, format string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{At: at, Node: node, Msg: fmt.Sprintf(format, args...)})
	}

	// Cheapest-route table for pre-placement bulk flows and end-to-end
	// pricing, built lazily.
	var routes *routing.Table
	tableLazy := func() *routing.Table {
		if routes == nil {
			routes = routing.NewTable(book)
		}
		return routes
	}
	routeFromVW := func(dst topology.NodeID) (routing.Route, error) {
		return tableLazy().Route(topo.Warehouse(), dst)
	}
	// In EndToEnd mode streams are charged a single src→dst rate (possibly
	// an explicit override), not the sum of their hops; accumulate that
	// here while the per-link byte accounting below keeps tracking traffic.
	endToEnd := book.Mode() == pricing.EndToEnd
	var e2eNetwork units.Money

	// Residency state machines: verify that services read live copies.
	type cacheKey struct {
		vid int
		idx int
	}
	type cacheState struct {
		res      schedule.Residency
		playback simtime.Duration
	}
	caches := make(map[cacheKey]cacheState)

	schedAt := func(t simtime.Time, fn des.Event) {
		if err := eng.At(t, fn); err != nil {
			violate(t, -1, "event before time origin: %v", err)
		}
	}

	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		v := catalog.Video(vid)
		playback := v.Playback
		rate := float64(v.Rate)
		size := v.Size.Float()

		for j, c := range fs.Residencies {
			caches[cacheKey{int(vid), j}] = cacheState{res: c, playback: playback}
			cc := c
			rimp := imp.Residency(vid, j)
			dead := rimp.Dead
			// deadAt sentinels past every event for a surviving copy, so
			// every "before death" comparison below degenerates to the
			// fault-free behaviour.
			deadAt := cc.LastService.Add(playback).Add(simtime.Second)
			if dead {
				deadAt = rimp.DeadAt
				rep.FaultNotes = append(rep.FaultNotes, fmt.Sprintf(
					"residency %d of video %d at node %d dead at %v: %s",
					j, vid, cc.Loc, rimp.DeadAt, rimp.Cause))
			}
			if dead && deadAt <= cc.Load {
				// The copy never materializes: no bulk fill, no
				// reservation, no disk usage, no load counted.
				continue
			}
			// A pre-placed copy is filled by a bulk transfer from the
			// warehouse over [Load, Load+P] at the file's data rate: the
			// route carries exactly size bytes, matching the analytic
			// PrePlacementCost. A mid-fill death cuts the transfer short.
			if cc.FedBy == schedule.PrePlacedFeed {
				route, err := routeFromVW(cc.Loc)
				if err != nil {
					violate(cc.Load, cc.Loc, "pre-placement route: %v", err)
				} else {
					bulkRate := size / playback.Seconds()
					bulkEnd := cc.Load.Add(playback)
					bulkVol := bulkRate * playback.Seconds()
					if dead && deadAt < bulkEnd {
						bulkEnd = deadAt
						bulkVol = bulkRate * bulkEnd.Sub(cc.Load).Seconds()
					}
					for h := 1; h < len(route); h++ {
						ei, ok := topo.EdgeBetween(route[h-1], route[h])
						if !ok {
							continue
						}
						edge := ei
						schedAt(cc.Load, func(now simtime.Time) {
							ls := &links[edge]
							ls.streams++
							ls.rate += bulkRate
							if ls.streams > ls.peakN {
								ls.peakN = ls.streams
							}
							if ls.rate > ls.peakRate {
								ls.peakRate = ls.rate
							}
						})
						schedAt(bulkEnd, func(now simtime.Time) {
							ls := &links[edge]
							ls.streams--
							ls.rate -= bulkRate
							ls.bulkBytes += bulkVol
						})
					}
				}
			}
			gamma := cc.Gamma(playback)
			reserve := gamma * size
			// Reserve at Load; begin linear drain at LastService; stop the
			// drain (slope restored) at LastService + P. A dead copy's
			// remaining reservation is released at the instant of death and
			// any in-progress drain slope cancelled.
			schedAt(cc.Load, func(now simtime.Time) {
				ns := &nodes[cc.Loc]
				ns.advance(now)
				ns.level += reserve
				if ns.level > ns.peak {
					ns.peak = ns.level
				}
				if !ns.unbounded && ns.level > ns.capacity+1e-3 {
					violate(now, cc.Loc, "reservation %.0fB exceeds capacity %.0fB", ns.level, ns.capacity)
				}
				rep.CacheLoads++
			})
			drainRate := reserve / playback.Seconds()
			drainStarted := cc.LastService < deadAt
			if drainStarted {
				schedAt(cc.LastService, func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.slope -= drainRate
				})
			}
			if !dead {
				schedAt(cc.LastService.Add(playback), func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.slope += drainRate
				})
			} else {
				remaining := reserve
				if drainStarted {
					remaining -= drainRate * deadAt.Sub(cc.LastService).Seconds()
				}
				rel := remaining
				schedAt(deadAt, func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.level -= rel
					if drainStarted {
						ns.slope += drainRate
					}
				})
			}
			// Physical profile: the copy is written at the stream's data
			// rate size/P over [Load, Load+P] and drained by the final
			// reader over [LastService, LastService+P]. Death stops the
			// writer and wipes whatever bytes are still on disk.
			fillRate := size / playback.Seconds()
			fillEnd := cc.Load.Add(playback)
			if dead && deadAt < fillEnd {
				fillEnd = deadAt
			}
			schedAt(cc.Load, func(now simtime.Time) {
				ns := &nodes[cc.Loc]
				ns.advance(now)
				ns.physSlope += fillRate
			})
			schedAt(fillEnd, func(now simtime.Time) {
				ns := &nodes[cc.Loc]
				ns.advance(now)
				ns.physSlope -= fillRate
			})
			if drainStarted {
				schedAt(cc.LastService, func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.physSlope -= fillRate
				})
			}
			if !dead {
				schedAt(cc.LastService.Add(playback), func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.physSlope += fillRate
				})
			} else {
				physLeft := fillRate * fillEnd.Sub(cc.Load).Seconds()
				if drainStarted {
					physLeft -= fillRate * deadAt.Sub(cc.LastService).Seconds()
				}
				wipe := physLeft
				schedAt(deadAt, func(now simtime.Time) {
					ns := &nodes[cc.Loc]
					ns.advance(now)
					ns.phys -= wipe
					if drainStarted {
						ns.physSlope += fillRate
					}
				})
			}
		}

		for di, d := range fs.Deliveries {
			dd := d
			dimp := imp.Delivery(vid, di)
			if dimp.Fate == faults.FateMissed {
				// The service never starts: no stream, no network bytes.
				rep.FaultNotes = append(rep.FaultNotes, fmt.Sprintf(
					"missed: video %d delivery %d for user %d at %v: %s",
					vid, di, dd.User, dd.Start, dimp.Cause))
				continue
			}
			severed := dimp.Fate == faults.FateSevered
			end := dd.Start.Add(playback)
			if severed {
				end = dimp.At
				rep.FaultNotes = append(rep.FaultNotes, fmt.Sprintf(
					"severed: video %d delivery %d for user %d at %v: %s",
					vid, di, dd.User, dimp.At, dimp.Cause))
			}
			// Dynamic continuity check at stream start.
			if dd.SourceResidency != schedule.NoResidency {
				key := cacheKey{int(vid), dd.SourceResidency}
				start := dd.Start
				schedAt(start, func(now simtime.Time) {
					cs, ok := caches[key]
					if !ok {
						violate(now, dd.Src(), "stream reads unknown cache %v", key)
						return
					}
					if now < cs.res.Load || now > cs.res.LastService {
						violate(now, dd.Src(), "stream reads cache outside its residency [%v, %v]",
							cs.res.Load, cs.res.LastService)
					}
				})
			}
			if endToEnd {
				carried := float64(v.StreamBytes())
				if severed {
					carried = rate * end.Sub(dd.Start).Seconds()
				}
				e2eNetwork += units.Money(carried * float64(tableLazy().Rate(dd.Src(), dd.Dst())))
			}
			// Stream occupies each edge of its route for P at rate B (up
			// to the sever instant when a fault cuts it).
			for h := 1; h < len(dd.Route); h++ {
				ei, ok := topo.EdgeBetween(dd.Route[h-1], dd.Route[h])
				if !ok {
					violate(dd.Start, -1, "route hop %v-%v is not a link", dd.Route[h-1], dd.Route[h])
					continue
				}
				edge := ei
				schedAt(dd.Start, func(now simtime.Time) {
					ls := &links[edge]
					ls.streams++
					ls.rate += rate
					if ls.streams > ls.peakN {
						ls.peakN = ls.streams
					}
					if ls.rate > ls.peakRate {
						ls.peakRate = ls.rate
					}
				})
				carried := rate * playback.Seconds()
				if severed {
					carried = rate * end.Sub(dd.Start).Seconds()
				}
				vol := carried
				schedAt(end, func(now simtime.Time) {
					ls := &links[edge]
					ls.streams--
					ls.rate -= rate
					ls.bytes += vol
				})
			}
			rep.Streams++
		}
	}

	eng.Run()

	// Final accounting: close node integrals (levels decay to zero by the
	// last event, but advance anyway for safety) and price everything.
	for id := range nodes {
		ns := &nodes[id]
		ns.advance(eng.Now())
		if ns.level > 1e-3 {
			violate(eng.Now(), topology.NodeID(id), "residual reservation %.0fB at end of run", ns.level)
		}
		if ns.phys > 1e-3 {
			violate(eng.Now(), topology.NodeID(id), "residual physical bytes %.0f at end of run", ns.phys)
		}
		if !ns.unbounded && ns.physPeak > ns.capacity+1e-3 {
			rep.PhysicalNotes = append(rep.PhysicalNotes, fmt.Sprintf(
				"node %d: physical peak %.0fB exceeds capacity %.0fB (short-residency tail; see Eq. 6 note)",
				id, ns.physPeak, ns.capacity))
		}
		if ns.integral > 0 || ns.peak > 0 {
			rep.Nodes = append(rep.Nodes, NodeUsage{
				Node:         topology.NodeID(id),
				PeakReserved: ns.peak,
				ByteSeconds:  ns.integral,
				PeakPhysical: ns.physPeak,
			})
			rep.StorageCost += units.Money(ns.integral * float64(book.SRate(topology.NodeID(id))))
		}
	}
	for ei := range links {
		ls := &links[ei]
		if ls.streams != 0 {
			violate(eng.Now(), -1, "link %d ends with %d dangling streams", ei, ls.streams)
		}
		if ls.bytes > 0 || ls.bulkBytes > 0 {
			rep.Links = append(rep.Links, LinkUsage{
				Edge:        ei,
				Bytes:       units.Bytes(ls.bytes + ls.bulkBytes),
				BulkBytes:   units.Bytes(ls.bulkBytes),
				PeakStreams: ls.peakN,
				PeakRate:    units.BytesPerSec(ls.peakRate),
			})
			if !endToEnd {
				rep.NetworkCost += units.Money(ls.bytes * float64(book.NRate(ei)))
			}
			rep.NetworkCost += units.Money(ls.bulkBytes * float64(book.NRate(ei)) * book.PreloadFactor())
		}
	}
	rep.NetworkCost += e2eNetwork
	sort.Slice(rep.Links, func(i, j int) bool { return rep.Links[i].Edge < rep.Links[j].Edge })
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })
	return rep
}
