package gateway_test

import (
	"testing"

	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/schedule"
)

// Hand-built parts sharing one video: the merge must concatenate record
// lists and rebase every index-valued cross-reference by the receiving
// file's offsets, leaving the sentinels alone.
func TestMergeSchedulesRebasesIndexes(t *testing.T) {
	a := schedule.New()
	a.Put(&schedule.FileSchedule{
		Video: 7,
		Deliveries: []schedule.Delivery{
			{Video: 7, User: 0, SourceResidency: schedule.NoResidency},
			{Video: 7, User: 1, SourceResidency: 0},
		},
		Residencies: []schedule.Residency{
			{Video: 7, FedBy: 0, Services: []int{1}},
		},
	})
	a.Put(&schedule.FileSchedule{
		Video: 9,
		Deliveries: []schedule.Delivery{
			{Video: 9, User: 2, SourceResidency: schedule.NoResidency},
		},
	})

	b := schedule.New()
	b.Put(&schedule.FileSchedule{
		Video: 7,
		Deliveries: []schedule.Delivery{
			{Video: 7, User: 3, SourceResidency: schedule.NoResidency},
			{Video: 7, User: 4, SourceResidency: 0},
			{Video: 7, User: 5, SourceResidency: 0},
		},
		Residencies: []schedule.Residency{
			{Video: 7, FedBy: schedule.PrePlacedFeed, Services: []int{1, 2}},
		},
	})

	merged := gateway.MergeSchedules(a, b)

	fs := merged.File(7)
	if fs == nil {
		t.Fatal("video 7 missing from merge")
	}
	if len(fs.Deliveries) != 5 || len(fs.Residencies) != 2 {
		t.Fatalf("video 7 merged to %d deliveries / %d residencies, want 5 / 2",
			len(fs.Deliveries), len(fs.Residencies))
	}
	// Part A's records keep their indices; part B's shift by (2, 1).
	if got := fs.Deliveries[2].SourceResidency; got != schedule.NoResidency {
		t.Fatalf("b.Deliveries[0].SourceResidency = %d after merge, want NoResidency sentinel", got)
	}
	if got := fs.Deliveries[3].SourceResidency; got != 1 {
		t.Fatalf("b.Deliveries[1].SourceResidency = %d after merge, want 1 (0 + residency offset)", got)
	}
	rc := fs.Residencies[1]
	if rc.FedBy != schedule.PrePlacedFeed {
		t.Fatalf("pre-placed FedBy sentinel rewritten to %d", rc.FedBy)
	}
	if len(rc.Services) != 2 || rc.Services[0] != 3 || rc.Services[1] != 4 {
		t.Fatalf("b residency services = %v after merge, want [3 4]", rc.Services)
	}
	if fs.Residencies[0].Services[0] != 1 || fs.Residencies[0].FedBy != 0 {
		t.Fatal("part A's residency cross-references were disturbed")
	}
	if merged.File(9) == nil || len(merged.File(9).Deliveries) != 1 {
		t.Fatal("video 9 (present in one part only) not carried over")
	}

	// Inputs must be untouched.
	if len(a.File(7).Deliveries) != 2 || len(b.File(7).Deliveries) != 3 {
		t.Fatal("merge mutated its inputs")
	}
	if b.File(7).Residencies[0].Services[0] != 1 {
		t.Fatal("merge rebased the input's services slice in place")
	}
}
