package schedule

import (
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// fixture: VW(0) - IS1(1) - IS2(2); one user at IS1, two at IS2.
func fixture(t *testing.T) (*topology.Topology, *media.Catalog) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(2, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	return topo, cat
}

const p90 = 90 * simtime.Minute

func validSchedule(topo *topology.Topology) (*Schedule, workload.Set) {
	vw := topology.NodeID(0)
	is1 := topology.NodeID(1)
	is2 := topology.NodeID(2)
	reqs := workload.Set{
		{User: 0, Video: 0, Start: 0},
		{User: 1, Video: 0, Start: 5400},
		{User: 2, Video: 0, Start: 10800},
	}
	fs := &FileSchedule{Video: 0}
	fs.Deliveries = []Delivery{
		{Video: 0, User: 0, Start: 0, Route: routing.Route{vw, is1}, SourceResidency: NoResidency},
		{Video: 0, User: 1, Start: 5400, Route: routing.Route{is1, is2}, SourceResidency: 0},
		{Video: 0, User: 2, Start: 10800, Route: routing.Route{is1, is2}, SourceResidency: 0},
	}
	fs.Residencies = []Residency{
		{Video: 0, Loc: is1, Src: vw, Load: 0, LastService: 10800, FedBy: 0, Services: []int{1, 2}},
	}
	s := New()
	s.Put(fs)
	return s, reqs
}

func TestValidateAccepts(t *testing.T) {
	topo, cat := fixture(t)
	s, reqs := validSchedule(topo)
	if err := s.Validate(topo, cat, reqs); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	topo, cat := fixture(t)
	vw := topology.NodeID(0)
	is1 := topology.NodeID(1)

	mutations := []struct {
		name string
		mut  func(s *Schedule, reqs *workload.Set)
		want string
	}{
		{"unserved request", func(s *Schedule, reqs *workload.Set) {
			*reqs = append(*reqs, workload.Request{User: 0, Video: 1, Start: 99})
		}, "not served"},
		{"spurious delivery", func(s *Schedule, reqs *workload.Set) {
			fs := s.File(0)
			fs.Deliveries = append(fs.Deliveries, Delivery{
				Video: 0, User: 0, Start: 7777, Route: routing.Route{vw, is1}, SourceResidency: NoResidency,
			})
		}, "matches no request"},
		{"empty route", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[0].Route = nil
		}, "empty route"},
		{"negative start", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[0].Start = -5
			(*reqs)[0].Start = -5
		}, "negative time"},
		{"non-adjacent hop", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[0].Route = routing.Route{vw, topology.NodeID(2)}
		}, "not a link"},
		{"wrong destination", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[1].Route = routing.Route{is1}
		}, "local to"},
		{"warehouse-claim from storage", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[1].SourceResidency = NoResidency
		}, "warehouse supply"},
		{"residency index out of range", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[1].SourceResidency = 5
		}, "references residency"},
		{"service before load", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Load = 10
			s.File(0).Deliveries[0].Start = 10
			(*reqs)[0].Start = 10
			s.File(0).Deliveries[1].Start = 5
			(*reqs)[1].Start = 5
		}, "outside residency window"},
		{"load after last service", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Load = 99999
		}, ""},
		{"residency at warehouse", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Loc = vw
		}, ""},
		{"bad feed index", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].FedBy = 9
		}, "fed by"},
		{"feed start mismatch", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].FedBy = 1
		}, ""},
		{"off-route residency", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Loc = topology.NodeID(2)
		}, ""},
		{"stale last service", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].LastService = 20000
		}, ""},
		{"orphan service claim", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Services = []int{1}
			// delivery 2 still points at residency 0 but is unlisted.
		}, ""},
		{"duplicate service entry", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Residencies[0].Services = []int{1, 1, 2}
		}, "twice"},
		{"service list references foreign delivery", func(s *Schedule, reqs *workload.Set) {
			s.File(0).Deliveries[1].SourceResidency = NoResidency
			s.File(0).Deliveries[1].Route = routing.Route{vw, is1, topology.NodeID(2)}
		}, ""},
	}
	for _, mcase := range mutations {
		t.Run(mcase.name, func(t *testing.T) {
			s, reqs := validSchedule(topo)
			mcase.mut(s, &reqs)
			err := s.Validate(topo, cat, reqs)
			if err == nil {
				t.Fatal("expected validation error")
			}
			if mcase.want != "" && !strings.Contains(err.Error(), mcase.want) {
				t.Errorf("error %q does not contain %q", err, mcase.want)
			}
		})
	}
}

func TestValidateUnknownVideo(t *testing.T) {
	topo, cat := fixture(t)
	s := New()
	s.Put(&FileSchedule{Video: 99})
	if err := s.Validate(topo, cat, nil); err == nil {
		t.Error("expected error for unknown video")
	}
	s = New()
	s.Files[3] = &FileSchedule{Video: 0}
	if err := s.Validate(topo, cat, nil); err == nil {
		t.Error("expected error for mismatched map key")
	}
}

func TestResidencyGeometry(t *testing.T) {
	c := Residency{Video: 0, Loc: 1, Src: 0, Load: 1000, LastService: 1000 + simtime.Time(p90)}
	if !c.Long(p90) {
		t.Error("Δ=P must be long")
	}
	if c.Gamma(p90) != 1 {
		t.Error("long gamma must be 1")
	}
	short := Residency{Load: 0, LastService: simtime.Time(p90 / 3)}
	if short.Long(p90) {
		t.Error("Δ<P must be short")
	}
	if g := short.Gamma(p90); g < 0.33 || g > 0.34 {
		t.Errorf("short gamma = %g, want 1/3", g)
	}
	sup := c.Support(p90)
	if sup.Start != 1000 || sup.End != c.LastService.Add(p90) {
		t.Errorf("Support = %v", sup)
	}
	if c.Gamma(0) != 0 {
		t.Error("zero playback gamma must be 0")
	}
}

func TestSpaceAtProfile(t *testing.T) {
	size := 1000.0
	c := Residency{Load: 100, LastService: 100 + simtime.Time(2*p90)} // long
	if got := c.SpaceAt(50, size, p90); got != 0 {
		t.Errorf("before load: %g", got)
	}
	if got := c.SpaceAt(100, size, p90); got != size {
		t.Errorf("at load: %g, want full size (long residency reserves all)", got)
	}
	if got := c.SpaceAt(c.LastService, size, p90); got != size {
		t.Errorf("at last service: %g", got)
	}
	mid := c.LastService.Add(p90 / 2)
	if got := c.SpaceAt(mid, size, p90); got != size/2 {
		t.Errorf("mid-decay: %g, want %g", got, size/2)
	}
	if got := c.SpaceAt(c.LastService.Add(p90), size, p90); got != 0 {
		t.Errorf("after decay: %g", got)
	}
	// Short residency peaks at γ·size.
	s := Residency{Load: 0, LastService: simtime.Time(p90 / 2)}
	if got := s.SpaceAt(10, size, p90); got != size/2 {
		t.Errorf("short plateau: %g, want %g", got, size/2)
	}
}

func TestScheduleAccessors(t *testing.T) {
	topo, _ := fixture(t)
	s, _ := validSchedule(topo)
	if s.NumDeliveries() != 3 || s.NumResidencies() != 1 {
		t.Error("counters wrong")
	}
	if s.File(0) == nil || s.File(1) != nil {
		t.Error("File accessor wrong")
	}
	ids := s.VideoIDs()
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("VideoIDs = %v", ids)
	}
	s.Put(&FileSchedule{Video: 5})
	s.Put(&FileSchedule{Video: 2})
	ids = s.VideoIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 5 {
		t.Errorf("VideoIDs = %v, want sorted", ids)
	}
}

func TestCloneIndependence(t *testing.T) {
	topo, _ := fixture(t)
	s, _ := validSchedule(topo)
	c := s.Clone()
	c.File(0).Deliveries[0].Start = 999
	c.File(0).Residencies[0].Services[0] = 99
	c.File(0).Deliveries[0].Route[0] = 99
	if s.File(0).Deliveries[0].Start == 999 {
		t.Error("Clone shares deliveries")
	}
	if s.File(0).Residencies[0].Services[0] == 99 {
		t.Error("Clone shares service lists")
	}
	if s.File(0).Deliveries[0].Route[0] == 99 {
		t.Error("Clone shares routes")
	}
}
