package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/faults"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

func fixtures(t *testing.T) (topoP, catP, reqP, schedP string) {
	t.Helper()
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(topo, cat, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := cli.BuildModel(topo, cat, 2, 400)
	out, err := scheduler.Run(model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	topoP = filepath.Join(dir, "topo.json")
	f, _ := os.Create(topoP)
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, _ = os.Create(catP)
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqP = filepath.Join(dir, "requests.json")
	if err := cli.SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	schedP = filepath.Join(dir, "schedule.json")
	if err := cli.SaveJSON(schedP, out.Schedule); err != nil {
		t.Fatal(err)
	}
	return
}

func baseOptions(topoP, catP, schedP, reqP string) options {
	return options{topoPath: topoP, catPath: catP, schedPath: schedP, reqPath: reqP, srate: 2, nrate: 400}
}

func TestSimulateCleanSchedule(t *testing.T) {
	topoP, catP, reqP, schedP := fixtures(t)
	var sb strings.Builder
	o := baseOptions(topoP, catP, schedP, reqP)
	o.verbose, o.auditRun = true, true
	if err := run(&sb, o); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"validation        ok", "violations        0", "simulated cost", "links:", "storages:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Error("cost mismatch warning on a clean schedule")
	}
	if strings.Contains(out, "faults") {
		t.Error("fault summary printed without a scenario")
	}
}

func TestSimulateWithoutRequests(t *testing.T) {
	topoP, catP, _, schedP := fixtures(t)
	var sb strings.Builder
	if err := run(&sb, baseOptions(topoP, catP, schedP, "")); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(sb.String(), "validation") {
		t.Error("validation line present without -requests")
	}
}

// faultFixtures builds a triangle infrastructure (VW—IS1—IS2 plus a direct
// VW—IS2 edge) and a schedule whose 90m and 180m services hang off a cached
// copy at IS2, so cutting the VW—IS2 link just before 90m knocks both out
// while an alternate route survives.
func faultFixtures(t *testing.T) (topoP, catP, reqP, schedP string, sc *faults.Scenario) {
	t.Helper()
	dir := t.TempDir()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 10*units.GB)
	is2 := b.Storage("IS2", 10*units.GB)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.Connect(vw, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(1, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	u2 := topo.UsersAt(is2)
	reqs := workload.Set{
		{User: topo.UsersAt(is1)[0], Video: 0, Start: 0},
		{User: u2[0], Video: 0, Start: simtime.Time(90 * simtime.Minute)},
		{User: u2[1], Video: 0, Start: simtime.Time(180 * simtime.Minute)},
	}
	model := cli.BuildModel(topo, cat, 2, 400)
	out, err := scheduler.Run(model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e02, ok := topo.EdgeBetween(vw, is2)
	if !ok {
		t.Fatal("no VW-IS2 edge")
	}
	sc = &faults.Scenario{Faults: []faults.Fault{{
		Kind: faults.LinkDown, Edge: e02,
		From: simtime.Time(85 * simtime.Minute), Until: simtime.Time(95 * simtime.Minute),
	}}}
	topoP = filepath.Join(dir, "topo.json")
	f, _ := os.Create(topoP)
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	catP = filepath.Join(dir, "catalog.json")
	f, _ = os.Create(catP)
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reqP = filepath.Join(dir, "requests.json")
	if err := cli.SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	schedP = filepath.Join(dir, "schedule.json")
	if err := cli.SaveJSON(schedP, out.Schedule); err != nil {
		t.Fatal(err)
	}
	return
}

// TestSimulateWithFaultsAndRepair is the end-to-end -faults/-repair
// demonstration: inject a link failure (warehouse alive), observe missed
// services, and repair them with zero losses.
func TestSimulateWithFaultsAndRepair(t *testing.T) {
	topoP, catP, reqP, schedP, sc := faultFixtures(t)
	dir := t.TempDir()
	faultsP := filepath.Join(dir, "scenario.json")
	f, err := os.Create(faultsP)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var sb strings.Builder
	o := baseOptions(topoP, catP, schedP, reqP)
	o.faultsPath = faultsP
	o.repairPolicy = "reroute"
	o.repairOut = filepath.Join(dir, "repaired.json")
	if err := run(&sb, o); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"faults            1", "inject: link", "repair(reroute)", "missed 0", "delta", "degraded cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "repaired 0/0") {
		t.Errorf("scenario impacted nothing; demonstration proves nothing:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("clean-run cost cross-check fired under faults:\n%s", out)
	}
	if _, err := os.Stat(o.repairOut); err != nil {
		t.Errorf("repaired schedule not written: %v", err)
	}
}

// TestSimulateGeneratedFaults: -fault-seed synthesizes a scenario when no
// file is given.
func TestSimulateGeneratedFaults(t *testing.T) {
	topoP, catP, _, schedP := fixtures(t)
	var sb strings.Builder
	o := baseOptions(topoP, catP, schedP, "")
	o.faultSeed = 42
	if err := run(&sb, o); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "inject:") {
		t.Errorf("no injected faults reported:\n%s", sb.String())
	}
}

func TestSimulateErrors(t *testing.T) {
	topoP, catP, reqP, schedP := fixtures(t)
	var sb strings.Builder
	o := baseOptions("", catP, schedP, reqP)
	if err := run(&sb, o); err == nil {
		t.Error("expected missing-flag error")
	}
	o = baseOptions(topoP, catP, schedP, filepath.Join(t.TempDir(), "none.json"))
	if err := run(&sb, o); err == nil {
		t.Error("expected load error")
	}
	// -repair without a scenario is a usage error.
	o = baseOptions(topoP, catP, schedP, "")
	o.repairPolicy = "reroute"
	if err := run(&sb, o); err == nil {
		t.Error("expected -repair-without-faults error")
	}
	// Unknown repair policy.
	o.faultSeed = 1
	o.repairPolicy = "pray"
	if err := run(&sb, o); err == nil {
		t.Error("expected unknown-policy error")
	}
}
