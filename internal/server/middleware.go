package server

import (
	"log"
	"net/http"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
)

// Options tunes the hardening middleware around the API handlers.
type Options struct {
	// RequestTimeout bounds each request's handling time; the client gets
	// 503 with a JSON body when it elapses. 0 means DefaultRequestTimeout;
	// negative disables the timeout (used by tests that need slow handlers).
	RequestTimeout time.Duration
	// MaxRequestBytes caps request body size; larger bodies get 413.
	// 0 means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// Horizon configures the rolling-horizon intake service behind
	// /v1/reservations, /v1/plan and /v1/advance. The zero value is usable:
	// no epoch trigger ever fires on its own and clients advance explicitly.
	Horizon horizon.Config
	// Workers bounds the scheduling worker pool used by /v1/schedule (the
	// rolling-horizon endpoints take theirs from Horizon.Workers). The
	// produced schedule is byte-identical for any value; 0 means GOMAXPROCS,
	// 1 forces the sequential path.
	Workers int
}

const (
	// DefaultRequestTimeout is the per-request handling budget.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultMaxRequestBytes caps POST bodies at 16 MiB — far above any
	// legitimate reservation batch, far below a memory-exhaustion payload.
	DefaultMaxRequestBytes = 16 << 20
)

func (o Options) withDefaults() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.RequestTimeout < 0 {
		o.RequestTimeout = 0
	}
	if o.MaxRequestBytes == 0 {
		o.MaxRequestBytes = DefaultMaxRequestBytes
	}
	return o
}

// harden wraps the router with the protective layers, innermost first:
// body-size capping (so handlers can never buffer an unbounded body), the
// per-request timeout, and outermost panic recovery (http.TimeoutHandler
// propagates inner-handler panics to its caller, so recovery must sit
// outside it).
func harden(h http.Handler, opts Options) http.Handler {
	h = limitBody(h, opts.MaxRequestBytes)
	if opts.RequestTimeout > 0 {
		h = http.TimeoutHandler(h, opts.RequestTimeout, `{"error":"request timed out"}`)
	}
	return recoverPanics(h)
}

// limitBody caps the request body via http.MaxBytesReader; reads past the
// limit fail with *http.MaxBytesError, which the JSON decode path maps to
// 413.
func limitBody(next http.Handler, limit int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// recoverPanics converts a handler panic into a 500 JSON error instead of
// tearing down the connection, and logs the panic value. A panicking
// handler may already have written a partial response; in that case the
// write of the error body fails silently, which is the best that can be
// done after the fact.
func recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				log.Printf("server: panic serving %s %s: %v", r.Method, r.URL.Path, v)
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}
