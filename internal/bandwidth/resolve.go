package bandwidth

import (
	"fmt"
	"math"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Result reports a bandwidth-resolution pass.
type Result struct {
	Schedule   *schedule.Schedule
	Reroutes   int
	CostBefore units.Money
	CostAfter  units.Money
	// Unresolved lists overloads that no feasible reroute could clear
	// (every alternative route was itself saturated or cut off).
	Unresolved []Overload
}

// Delta returns the cost increase paid for bandwidth feasibility.
func (r *Result) Delta() units.Money { return r.CostAfter - r.CostBefore }

// Resolve reroutes streams until no capped link is overloaded (or no
// further reroute is feasible). Victim streams are chosen per overload by
// minimum incremental network cost of the detour. A reroute is only
// accepted when the detour does not overload any other capped link during
// the stream's window and every residency fed by the stream remains on the
// new route.
//
// The input schedule is not modified.
func Resolve(m *cost.Model, s *schedule.Schedule, caps Capacities) (*Result, error) {
	topo := m.Book().Topology()
	work := s.Clone()
	res := &Result{Schedule: work, CostBefore: m.ScheduleCost(s)}

	maxIter := 10 * (work.NumDeliveries() + 1)
	for iter := 0; ; iter++ {
		usage := Analyze(topo, m.Catalog(), work)
		overloads := usage.Overloads(caps)
		overloads = filterResolved(overloads, res.Unresolved)
		if len(overloads) == 0 {
			break
		}
		if iter >= maxIter {
			return nil, fmt.Errorf("bandwidth: no convergence after %d reroutes", iter)
		}
		of := overloads[0]
		vid, di, newRoute, ok := pickReroute(m, work, usage, caps, of)
		if !ok {
			res.Unresolved = append(res.Unresolved, of)
			continue
		}
		work.Files[vid].Deliveries[di].Route = newRoute
		res.Reroutes++
	}
	res.CostAfter = m.ScheduleCost(work)
	return res, nil
}

// filterResolved drops overloads already declared unresolvable so the loop
// can terminate with a partial result.
func filterResolved(ovs, unresolved []Overload) []Overload {
	if len(unresolved) == 0 {
		return ovs
	}
	kept := ovs[:0]
	for _, o := range ovs {
		skip := false
		for _, u := range unresolved {
			if o.Edge == u.Edge && o.Interval.Overlaps(u.Interval) {
				skip = true
				break
			}
		}
		if !skip {
			kept = append(kept, o)
		}
	}
	return kept
}

// pickReroute chooses the stream crossing the overloaded (edge, window)
// whose cheapest feasible detour has the minimum incremental cost.
func pickReroute(m *cost.Model, work *schedule.Schedule, usage *Usage, caps Capacities, of Overload) (bestVid media.VideoID, bestIdx int, bestRoute routing.Route, found bool) {
	topo := m.Book().Topology()
	book := m.Book()
	bestDelta := math.Inf(1)

	for _, vid := range work.VideoIDs() {
		fs := work.Files[vid]
		v := m.Catalog().Video(vid)
		for di, d := range fs.Deliveries {
			window := simtime.NewInterval(d.Start, d.Start.Add(v.Playback))
			if !window.Overlaps(of.Interval) && !window.Contains(of.Interval.Start) {
				continue
			}
			if !routeUsesEdge(topo, d.Route, of.Edge) {
				continue
			}
			// Residencies fed by this stream must stay on the detour.
			newRoute, _, err := routing.RouteAvoiding(book, d.Src(), d.Dst(), func(e int) bool {
				return e == of.Edge
			})
			if err != nil {
				continue
			}
			if !feedsRemainOnRoute(fs, di, newRoute) {
				continue
			}
			// The detour must not overload other capped links.
			if detourOverloads(topo, usage, caps, d.Route, newRoute, window, float64(v.Rate)) {
				continue
			}
			delta := float64(book.RouteRate(newRoute)-book.RouteRate(d.Route)) * v.StreamBytes().Float()
			if delta < bestDelta {
				bestDelta = delta
				bestVid, bestIdx, bestRoute, found = vid, di, newRoute, true
			}
		}
	}
	return bestVid, bestIdx, bestRoute, found
}

func routeUsesEdge(topo *topology.Topology, r routing.Route, edge int) bool {
	for h := 1; h < len(r); h++ {
		if ei, ok := topo.EdgeBetween(r[h-1], r[h]); ok && ei == edge {
			return true
		}
	}
	return false
}

func feedsRemainOnRoute(fs *schedule.FileSchedule, di int, newRoute routing.Route) bool {
	for _, c := range fs.Residencies {
		if c.FedBy != di {
			continue
		}
		on := false
		for _, n := range newRoute {
			if n == c.Loc {
				on = true
				break
			}
		}
		if !on {
			return false
		}
	}
	return true
}

func detourOverloads(topo *topology.Topology, usage *Usage, caps Capacities, oldRoute, newRoute routing.Route, window simtime.Interval, rate float64) bool {
	oldEdges := map[int]bool{}
	for h := 1; h < len(oldRoute); h++ {
		if ei, ok := topo.EdgeBetween(oldRoute[h-1], oldRoute[h]); ok {
			oldEdges[ei] = true
		}
	}
	for h := 1; h < len(newRoute); h++ {
		ei, ok := topo.EdgeBetween(newRoute[h-1], newRoute[h])
		if !ok {
			return true
		}
		if oldEdges[ei] || !caps.Capped(ei) {
			continue // already carried the stream, or uncapped
		}
		if float64(usage.MaxRateDuring(ei, window))+rate > float64(caps.Edge[ei])+1e-6 {
			return true
		}
	}
	return false
}
