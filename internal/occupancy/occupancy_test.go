package occupancy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

const p = 100 * simtime.Second // playback length for test videos

// fixture: VW - IS1 - IS2, two 1000-byte videos with P = 100 s,
// IS capacities 1500 bytes.
func fixture(t testing.TB) (*topology.Topology, *media.Catalog) {
	t.Helper()
	b := topology.NewBuilder()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", 1500)
	is2 := b.Storage("IS2", 1500)
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 1)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cat, err := media.Uniform(2, 1000, p, units.BytesPerSec(1000.0/100*2))
	if err != nil {
		t.Fatal(err)
	}
	return topo, cat
}

func res(video media.VideoID, loc topology.NodeID, load, last simtime.Time) schedule.Residency {
	return schedule.Residency{Video: video, Loc: loc, Src: 0, Load: load, LastService: last}
}

func TestSpaceAtSumsEntries(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))   // long: full 1000 on [0,200]
	l.Add(Ref{1, 0}, res(1, is1, 100, 150)) // short: γ=0.5 -> 500 on [100,150]
	if got := l.SpaceAt(is1, 50); got != 1000 {
		t.Errorf("t=50: %g, want 1000", got)
	}
	if got := l.SpaceAt(is1, 120); got != 1500 {
		t.Errorf("t=120: %g, want 1500", got)
	}
	if got := l.SpaceAt(is1, 0); got != 1000 {
		t.Errorf("t=0: %g", got)
	}
	if got := l.SpaceAt(topology.NodeID(2), 50); got != 0 {
		t.Errorf("other node: %g", got)
	}
	if l.NumEntries(is1) != 2 {
		t.Error("NumEntries wrong")
	}
}

func TestPeak(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	l.Add(Ref{1, 0}, res(1, is1, 100, 150))
	peak, when := l.Peak(is1)
	if peak != 1500 {
		t.Errorf("peak = %g, want 1500", peak)
	}
	if when < 100 || when > 150 {
		t.Errorf("peak time = %v, want within [100,150]", when)
	}
	if pk, _ := l.Peak(topology.NodeID(2)); pk != 0 {
		t.Error("empty node peak must be 0")
	}
}

func TestNoOverflowUnderCapacity(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	if ovs := l.Overflows(is1); len(ovs) != 0 {
		t.Errorf("unexpected overflows: %v", ovs)
	}
	// Exactly at capacity is NOT an overflow (strict exceedance).
	l.Add(Ref{1, 0}, res(1, is1, 100, 150))
	if ovs := l.Overflows(is1); len(ovs) != 0 {
		t.Errorf("at-capacity must not overflow: %v", ovs)
	}
}

func TestOverflowDetection(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	// Two long residencies both at full size 1000: total 2000 > 1500 while
	// both plateaus overlap: [100, 200].
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	l.Add(Ref{1, 0}, res(1, is1, 100, 350))
	ovs := l.Overflows(is1)
	if len(ovs) != 1 {
		t.Fatalf("overflows = %v, want 1", ovs)
	}
	o := ovs[0]
	if o.Interval.Start != 100 {
		t.Errorf("overflow start = %v, want 100 (jump at second load)", o.Interval.Start)
	}
	// First residency decays from 200 to 300: total = 2000 - 10(t-200);
	// crosses 1500 at t = 250.
	if o.Interval.End != 250 {
		t.Errorf("overflow end = %v, want 250", o.Interval.End)
	}
	if math.Abs(o.Peak-2000) > eps {
		t.Errorf("peak = %g, want 2000", o.Peak)
	}
	if math.Abs(o.Excess-500) > eps {
		t.Errorf("excess = %g, want 500", o.Excess)
	}
	if o.Node != is1 {
		t.Error("overflow node wrong")
	}
	if o.String() == "" {
		t.Error("String empty")
	}
}

func TestTwoDistinctOverflows(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	// Overflow 1: [100, ~] from copies 0+1; overflow 2 disjoint: [1000, ~].
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	l.Add(Ref{1, 0}, res(1, is1, 100, 200))
	l.Add(Ref{0, 1}, res(0, is1, 1000, 1200))
	l.Add(Ref{1, 1}, res(1, is1, 1000, 1200))
	ovs := l.Overflows(is1)
	if len(ovs) != 2 {
		t.Fatalf("overflows = %v, want 2", ovs)
	}
	if ovs[0].Interval.Start != 100 || ovs[1].Interval.Start != 1000 {
		t.Errorf("overflow starts: %v, %v", ovs[0].Interval.Start, ovs[1].Interval.Start)
	}
	all := l.AllOverflows()
	if len(all) != 2 {
		t.Errorf("AllOverflows = %d", len(all))
	}
}

func TestOverflowFromRampCrossing(t *testing.T) {
	topo, cat := fixture(t)
	// Capacity 1500; one full-size copy (1000) plus a decaying copy that
	// pushes the total above capacity only during part of the decay.
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 300))    // 1000 on [0,300], decay to 400
	l.Add(Ref{1, 0}, res(1, is1, 200, 1000)) // 1000 on [200,1000]
	// Total on [200,300] = 2000; decay of copy 0 over [300,400]: crosses
	// 1500 at t=350.
	ovs := l.Overflows(is1)
	if len(ovs) != 1 {
		t.Fatalf("overflows = %v", ovs)
	}
	if ovs[0].Interval.Start != 200 || ovs[0].Interval.End != 350 {
		t.Errorf("interval = %v, want [200,350]", ovs[0].Interval)
	}
}

func TestOverflowSet(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))   // support [0, 300]
	l.Add(Ref{1, 0}, res(1, is1, 100, 350)) // support [100, 450]
	l.Add(Ref{1, 1}, res(1, is1, 900, 950)) // support [900, 1050]
	refs := l.OverflowSet(is1, simtime.NewInterval(100, 250))
	if len(refs) != 2 {
		t.Fatalf("OverflowSet = %v, want 2 refs", refs)
	}
	if refs[0] != (Ref{0, 0}) || refs[1] != (Ref{1, 0}) {
		t.Errorf("OverflowSet = %v", refs)
	}
	// Degenerate instant interval still matches overlapping supports.
	refs = l.OverflowSet(is1, simtime.NewInterval(950, 950))
	if len(refs) != 1 || refs[0] != (Ref{1, 1}) {
		t.Errorf("instant OverflowSet = %v", refs)
	}
}

func TestRemoveVideo(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1, is2 := topology.NodeID(1), topology.NodeID(2)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	l.Add(Ref{1, 0}, res(1, is1, 100, 350))
	l.Add(Ref{1, 1}, res(1, is2, 0, 100))
	l.RemoveVideo(1)
	if l.NumEntries(is1) != 1 || l.NumEntries(is2) != 0 {
		t.Errorf("entries after remove: %d, %d", l.NumEntries(is1), l.NumEntries(is2))
	}
	if got := l.SpaceAt(is1, 120); got != 1000 {
		t.Errorf("space after remove = %g", got)
	}
}

func TestFromSchedule(t *testing.T) {
	topo, cat := fixture(t)
	s := schedule.New()
	fs := &schedule.FileSchedule{Video: 0}
	fs.Residencies = append(fs.Residencies, res(0, 1, 0, 200))
	s.Put(fs)
	l := FromSchedule(topo, cat, s)
	if l.NumEntries(1) != 1 {
		t.Error("FromSchedule missed residency")
	}
}

func TestCanFit(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 200))
	// A second full copy overlapping the plateau: 2000 > 1500.
	if l.CanFit(res(1, is1, 100, 350)) {
		t.Error("overlapping full copy must not fit")
	}
	// Same copy after the first one's support ends (t >= 300).
	if !l.CanFit(res(1, is1, 300, 500)) {
		t.Error("disjoint copy must fit")
	}
	// A short copy with γ=0.5 (500 bytes) fits alongside 1000.
	if !l.CanFit(res(1, is1, 100, 150)) {
		t.Error("short copy within headroom must fit")
	}
	// Zero-span tentative cache always fits.
	if !l.CanFit(res(1, is1, 100, 100)) {
		t.Error("zero-span cache must fit")
	}
	// Warehouse is unbounded.
	if !l.CanFit(res(1, topo.Warehouse(), 0, 10000)) {
		t.Error("warehouse must always fit")
	}
}

func TestBannedViolates(t *testing.T) {
	bn := Banned{Node: 1, Interval: simtime.NewInterval(100, 200)}
	// Overlapping support violates.
	if !bn.Violates(res(0, 1, 150, 160), p) {
		t.Error("overlapping residency must violate")
	}
	// Support ending before the window: support [0, 0+span+P].
	if bn.Violates(res(0, 1, 0, 0), p) {
		t.Error("support [0,100) must not violate window starting at 100")
	}
	// Different node never violates.
	if bn.Violates(res(0, 2, 150, 160), p) {
		t.Error("other node must not violate")
	}
	// Support beginning after the window.
	if bn.Violates(res(0, 1, 201, 300), p) {
		t.Error("later residency must not violate")
	}
	// Instant window at 200 (endpoint-inclusive end).
	inst := Banned{Node: 1, Interval: simtime.NewInterval(200, 200)}
	if !inst.Violates(res(0, 1, 150, 250), p) {
		t.Error("instant window inside support must violate")
	}
}

// Property: Overflows is consistent with pointwise sampling — at every
// integer second inside a reported overflow interval's interior the space
// exceeds capacity, and seconds far from any interval do not.
func TestPropertyOverflowPointwise(t *testing.T) {
	topo, cat := fixture(t)
	is1 := topology.NodeID(1)
	capacity := 1500.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger(topo, cat)
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			load := simtime.Time(rng.Intn(500))
			span := simtime.Duration(rng.Intn(400))
			l.Add(Ref{media.VideoID(rng.Intn(2)), i}, res(media.VideoID(rng.Intn(2)), is1, load, load.Add(span)))
		}
		ovs := l.Overflows(is1)
		inOverflow := func(x simtime.Time) bool {
			for _, o := range ovs {
				if x >= o.Interval.Start && x <= o.Interval.End {
					return true
				}
			}
			return false
		}
		for x := simtime.Time(0); x < 1100; x++ {
			s := l.SpaceAt(is1, x)
			if s > capacity+1 && !inOverflow(x) {
				return false
			}
			// Conservative widening allows boundary seconds inside the
			// interval to be at/below capacity, but interior points more
			// than 1 s from every boundary must exceed it.
			interior := false
			for _, o := range ovs {
				if x > o.Interval.Start && x < o.Interval.End {
					interior = true
				}
			}
			if interior && s <= capacity-1 {
				// Strictly inside an interval yet clearly below capacity:
				// only possible at merged boundaries; tolerate a 1-byte
				// epsilon but not a real dip.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: CanFitExcluding agrees with dense pointwise sampling of the
// combined profile on random ledger states.
func TestPropertyCanFitMatchesPointwise(t *testing.T) {
	topo, cat := fixture(t)
	is1 := topology.NodeID(1)
	capacity := 1500.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger(topo, cat)
		n := rng.Intn(5)
		for i := 0; i < n; i++ {
			load := simtime.Time(rng.Intn(300))
			span := simtime.Duration(rng.Intn(250))
			l.Add(Ref{media.VideoID(rng.Intn(2)), i}, res(media.VideoID(rng.Intn(2)), is1, load, load.Add(span)))
		}
		load := simtime.Time(rng.Intn(300))
		span := simtime.Duration(rng.Intn(250))
		cand := res(media.VideoID(rng.Intn(2)), is1, load, load.Add(span))
		got := l.CanFit(cand)

		// Dense check at every second of the candidate's support. The
		// profile is piecewise linear with integer breakpoints, so unit
		// sampling is exact at the extremes.
		v := cat.Video(cand.Video)
		want := true
		sup := cand.Support(v.Playback)
		for x := sup.Start; x <= sup.End; x++ {
			if l.SpaceAt(is1, x)+cand.SpaceAt(x, v.Size.Float(), v.Playback) > capacity+eps {
				want = false
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUpdateRemoveClone(t *testing.T) {
	topo, cat := fixture(t)
	is1, is2 := topology.NodeID(1), topology.NodeID(2)
	l := NewLedger(topo, cat)
	ref := Ref{0, 0}
	l.Add(ref, res(0, is1, 0, 200))

	// In-place update (same node): extended span changes occupancy.
	if !l.Update(ref, res(0, is1, 0, 400)) {
		t.Fatal("Update returned false for existing ref")
	}
	if got := l.SpaceAt(is1, 350); got != 1000 {
		t.Errorf("space after extension = %g, want 1000", got)
	}

	// Relocating update: entry moves to the other node.
	if !l.Update(ref, res(0, is2, 0, 400)) {
		t.Fatal("relocating Update returned false")
	}
	if l.NumEntries(is1) != 0 || l.NumEntries(is2) != 1 {
		t.Errorf("entries after relocation: %d, %d", l.NumEntries(is1), l.NumEntries(is2))
	}

	// Unknown ref.
	if l.Update(Ref{9, 9}, res(0, is1, 0, 10)) {
		t.Error("Update returned true for unknown ref")
	}

	// Clone independence.
	c := l.Clone()
	if !c.Remove(ref) {
		t.Fatal("Remove on clone failed")
	}
	if c.NumEntries(is2) != 0 {
		t.Error("clone entry not removed")
	}
	if l.NumEntries(is2) != 1 {
		t.Error("Remove on clone affected the original")
	}

	// Remove on original.
	if !l.Remove(ref) {
		t.Error("Remove returned false for existing ref")
	}
	if l.Remove(ref) {
		t.Error("double Remove returned true")
	}
}

// A residency whose decay ends exactly when another loads must hand the
// space over without an instant of double counting: SpaceAt is zero at
// t >= LastService+P, so the boundary second belongs to the newcomer only.
func TestBoundaryHandoffNoDoubleCount(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	// Copy 0: plateau [0,100], decay [100,200), gone at exactly 200.
	// Copy 1: loads at exactly 200.
	l.Add(Ref{0, 0}, res(0, is1, 0, 100))
	l.Add(Ref{1, 0}, res(1, is1, 200, 400))
	if got := l.SpaceAt(is1, 200); got != 1000 {
		t.Errorf("boundary space = %g, want 1000 (old copy must be gone)", got)
	}
	if got := l.SpaceAt(is1, 199); math.Abs(got-10) > eps {
		t.Errorf("t=199: %g, want 10 (decay tail only; newcomer not loaded yet)", got)
	}
	// Double counting at the handoff instant would read 2000 > 1500 and
	// fabricate a phantom overflow.
	if ovs := l.Overflows(is1); len(ovs) != 0 {
		t.Errorf("phantom overflow at handoff boundary: %v", ovs)
	}
	if peak, _ := l.Peak(is1); peak != 1000 {
		t.Errorf("peak = %g, want 1000", peak)
	}
}

// SpaceAt's decay endpoint is exclusive: positive one second before the
// support ends, exactly zero at the end.
func TestBoundarySpaceAtSupportEnd(t *testing.T) {
	_, cat := fixture(t)
	c := res(0, 1, 0, 100) // support [0, 200)
	v := cat.Video(0)
	size, pb := v.Size.Float(), v.Playback
	if got := c.SpaceAt(199, size, pb); got <= 0 {
		t.Errorf("t=199 (inside decay): %g, want > 0", got)
	}
	if got := c.SpaceAt(200, size, pb); got != 0 {
		t.Errorf("t=200 (support end): %g, want exactly 0", got)
	}
	if got := c.SpaceAt(100, size, pb); got != 1000 {
		t.Errorf("t=100 (LastService): %g, want full plateau", got)
	}
}

// CanFit across a handoff boundary: a full-size candidate loading exactly
// when a registered copy's decay ends must fit — their profiles never
// coexist, even for one instant.
func TestBoundaryCanFitAtHandoff(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 100)) // support [0, 200)
	// 1000 (candidate) + 1000 (copy 0, if double-counted at t=200) would
	// exceed the 1500 capacity; the correct answer is 1000 <= 1500.
	if !l.CanFit(res(1, is1, 200, 400)) {
		t.Error("candidate loading at the exact support end must fit")
	}
	// One second earlier the decay tail (10 bytes) still fits within the
	// 500-byte headroom...
	if !l.CanFit(res(1, is1, 199, 399)) {
		t.Error("candidate overlapping only the thin decay tail must fit")
	}
	// ...but overlapping the full plateau does not.
	if l.CanFit(res(1, is1, 50, 250)) {
		t.Error("candidate overlapping the plateau must not fit")
	}
}

// OverflowSet's support test is half-open: a copy gone at exactly the
// overflow's start instant is not a candidate victim.
func TestBoundaryOverflowSetExcludesEndedSupport(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 100))   // support [0, 200)
	l.Add(Ref{1, 0}, res(1, is1, 200, 400)) // support [200, 500)
	refs := l.OverflowSet(is1, simtime.NewInterval(200, 250))
	if len(refs) != 1 || refs[0] != (Ref{1, 0}) {
		t.Errorf("OverflowSet = %v, want only the live copy", refs)
	}
	// An interval ending exactly at a support's start excludes it: the
	// abutting copy loads at the overflow's closing instant and holds no
	// space anywhere inside the overflow, so rescheduling it cannot help.
	refs = l.OverflowSet(is1, simtime.NewInterval(150, 200))
	if len(refs) != 1 || refs[0] != (Ref{0, 0}) {
		t.Errorf("OverflowSet = %v, want only the overlapping copy", refs)
	}
}

// Regression for the old "widen degenerate intervals by one second" rule:
// copies that merely abut a non-degenerate overflow — loading exactly at
// its end, or fully decayed exactly at its start — are not victims, while
// a degenerate (single-instant) overflow still matches the copy whose
// support covers the instant.
func TestOverflowSetAbuttingResidency(t *testing.T) {
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	l.Add(Ref{0, 0}, res(0, is1, 0, 100))   // support [0, 200)
	l.Add(Ref{1, 0}, res(1, is1, 300, 500)) // support [300, 600)

	// Non-degenerate window between the two supports, abutting both: the
	// first copy's support ends exactly at its start (half-open, excluded)
	// and the second loads exactly at its end (holds nothing inside).
	if refs := l.OverflowSet(is1, simtime.NewInterval(200, 300)); len(refs) != 0 {
		t.Errorf("OverflowSet(200,300) = %v, want none", refs)
	}
	// Degenerate instants are endpoint-inclusive on the left: the instant
	// at a support's start matches, the instant at its (half-open) end
	// does not.
	if refs := l.OverflowSet(is1, simtime.NewInterval(300, 300)); len(refs) != 1 || refs[0] != (Ref{1, 0}) {
		t.Errorf("OverflowSet(300,300) = %v, want the loading copy", refs)
	}
	if refs := l.OverflowSet(is1, simtime.NewInterval(200, 200)); len(refs) != 0 {
		t.Errorf("OverflowSet(200,200) = %v, want none", refs)
	}
	// A window straddling a support edge by one second does overlap.
	if refs := l.OverflowSet(is1, simtime.NewInterval(199, 300)); len(refs) != 1 || refs[0] != (Ref{0, 0}) {
		t.Errorf("OverflowSet(199,300) = %v, want the decaying copy", refs)
	}
}

func TestCrossingHorizontalSegment(t *testing.T) {
	// A flat segment at the capacity level: crossing() degenerates to the
	// left endpoint; exercised through Overflows with a plateau exactly at
	// capacity followed by a jump.
	topo, cat := fixture(t)
	l := NewLedger(topo, cat)
	is1 := topology.NodeID(1)
	// Plateau of 1500 (at capacity, no overflow), then a second copy jumps
	// the total above.
	l.Add(Ref{0, 0}, res(0, is1, 0, 1000)) // 1000
	l.Add(Ref{1, 0}, res(1, is1, 0, 500))  // short? span 500 >= P=100 -> long: +1000 = 2000 > 1500
	ovs := l.Overflows(is1)
	if len(ovs) != 1 {
		t.Fatalf("overflows = %v", ovs)
	}
	if ovs[0].Interval.Start != 0 {
		t.Errorf("start = %v", ovs[0].Interval.Start)
	}
}
