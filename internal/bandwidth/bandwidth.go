// Package bandwidth implements the paper's stated future work (§6):
// resolving "the bandwidth constraints of the intermediate storages and
// communication network". The cost-optimal schedule reserves link bandwidth
// implicitly — every delivery occupies its route at the title's reserved
// rate for the playback length — but nothing in the two-phase heuristic
// keeps concurrent reservations under a link's capacity.
//
// This package adds: per-link capacity books, exact detection of bandwidth
// overloads (reserved rate is a step function of time, so overload windows
// are computed by event sweep), and a resolution pass that reroutes the
// cheapest-to-move streams around saturated links without creating new
// overloads.
package bandwidth

import (
	"fmt"
	"sort"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
)

// Capacities holds per-edge bandwidth limits. A zero entry means the link
// is uncapped.
type Capacities struct {
	Edge []units.BytesPerSec
}

// UniformEdges caps every link of the topology at the same rate.
func UniformEdges(topo *topology.Topology, cap units.BytesPerSec) Capacities {
	c := Capacities{Edge: make([]units.BytesPerSec, topo.NumEdges())}
	for i := range c.Edge {
		c.Edge[i] = cap
	}
	return c
}

// Capped reports whether the edge has a finite limit.
func (c Capacities) Capped(edge int) bool {
	return edge < len(c.Edge) && c.Edge[edge] > 0
}

// Overload is one saturated-link situation: reserved bandwidth exceeds the
// link's capacity throughout Interval, peaking at Peak.
type Overload struct {
	Edge     int
	Interval simtime.Interval
	Peak     units.BytesPerSec
}

func (o Overload) String() string {
	return fmt.Sprintf("link %d overloaded %s peak=%v", o.Edge, o.Interval, o.Peak)
}

type event struct {
	at   simtime.Time
	rate float64 // signed
}

// Usage is the per-link reserved-bandwidth profile of a schedule.
type Usage struct {
	topo   *topology.Topology
	events [][]event // per edge, time-sorted
}

// Analyze builds the usage profile of a schedule.
func Analyze(topo *topology.Topology, catalog *media.Catalog, s *schedule.Schedule) *Usage {
	u := &Usage{topo: topo, events: make([][]event, topo.NumEdges())}
	for _, vid := range s.VideoIDs() {
		fs := s.Files[vid]
		v := catalog.Video(vid)
		for _, d := range fs.Deliveries {
			u.addDelivery(d, float64(v.Rate), v.Playback)
		}
	}
	for e := range u.events {
		sort.Slice(u.events[e], func(i, j int) bool { return u.events[e][i].at < u.events[e][j].at })
	}
	return u
}

func (u *Usage) addDelivery(d schedule.Delivery, rate float64, playback simtime.Duration) {
	for h := 1; h < len(d.Route); h++ {
		ei, ok := u.topo.EdgeBetween(d.Route[h-1], d.Route[h])
		if !ok {
			continue // schedule validation catches this; usage skips it
		}
		u.events[ei] = append(u.events[ei],
			event{at: d.Start, rate: rate},
			event{at: d.Start.Add(playback), rate: -rate})
	}
}

// PeakRate returns the maximum reserved rate ever seen on the edge.
func (u *Usage) PeakRate(edge int) units.BytesPerSec {
	peak, cur := 0.0, 0.0
	for _, ev := range u.events[edge] {
		cur += ev.rate
		if cur > peak {
			peak = cur
		}
	}
	return units.BytesPerSec(peak)
}

// MaxRateDuring returns the maximum reserved rate on the edge within the
// half-open window [iv.Start, iv.End).
func (u *Usage) MaxRateDuring(edge int, iv simtime.Interval) units.BytesPerSec {
	peak, cur := 0.0, 0.0
	evs := u.events[edge]
	for i := 0; i < len(evs); i++ {
		cur += evs[i].rate
		// Level `cur` holds from evs[i].at until the next event.
		from := evs[i].at
		to := simtime.Time(1<<62 - 1)
		if i+1 < len(evs) {
			to = evs[i+1].at
		}
		if from < iv.End && iv.Start < to && cur > peak {
			peak = cur
		}
	}
	return units.BytesPerSec(peak)
}

// stepExceedance holds one maximal window where a step function strictly
// exceeds a limit.
type stepExceedance struct {
	iv   simtime.Interval
	peak float64
}

// sweepSteps walks a time-sorted signed-rate event list and returns the
// maximal windows where the running sum strictly exceeds limit.
func sweepSteps(evs []event, limit float64) []stepExceedance {
	const eps = 1e-6
	var out []stepExceedance
	cur := 0.0
	open := -1 // index into out
	for i := 0; i < len(evs); i++ {
		at := evs[i].at
		cur += evs[i].rate
		// Coalesce simultaneous events.
		for i+1 < len(evs) && evs[i+1].at == at {
			i++
			cur += evs[i].rate
		}
		if cur > limit+eps {
			if open < 0 {
				out = append(out, stepExceedance{iv: simtime.NewInterval(at, at)})
				open = len(out) - 1
			}
			if cur > out[open].peak {
				out[open].peak = cur
			}
		} else if open >= 0 {
			out[open].iv.End = at
			open = -1
		}
	}
	// A step function returns to zero after the last event, so an open
	// window here means inconsistent events; close it defensively.
	if open >= 0 && len(evs) > 0 {
		out[open].iv.End = evs[len(evs)-1].at
	}
	return out
}

// Overloads returns the maximal windows where each capped link's reserved
// rate strictly exceeds its capacity, ordered by edge then time.
func (u *Usage) Overloads(caps Capacities) []Overload {
	var out []Overload
	for e := range u.events {
		if !caps.Capped(e) {
			continue
		}
		for _, x := range sweepSteps(u.events[e], float64(caps.Edge[e])) {
			out = append(out, Overload{Edge: e, Interval: x.iv, Peak: units.BytesPerSec(x.peak)})
		}
	}
	return out
}
