package simtime

import "fmt"

// Interval is a half-open span [Start, End) of simulated time.
// An interval with End <= Start is empty.
type Interval struct {
	Start Time
	End   Time
}

// NewInterval returns the interval [start, end).
func NewInterval(start, end Time) Interval { return Interval{Start: start, End: end} }

// Empty reports whether the interval contains no time.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Len returns the length of the interval (zero if empty).
func (iv Interval) Len() Duration {
	if iv.Empty() {
		return 0
	}
	return iv.End.Sub(iv.Start)
}

// Contains reports whether t lies inside [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the two intervals share any time.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Start < other.End && other.Start < iv.End
}

// Intersect returns the overlap of the two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Start: Max(iv.Start, other.Start), End: Min(iv.End, other.End)}
}

// Union returns the smallest interval covering both. It is only meaningful
// when the intervals overlap or touch; ok is false otherwise.
func (iv Interval) Union(other Interval) (Interval, bool) {
	if iv.Empty() {
		return other, true
	}
	if other.Empty() {
		return iv, true
	}
	if iv.Start > other.End || other.Start > iv.End {
		return Interval{}, false
	}
	return Interval{Start: Min(iv.Start, other.Start), End: Max(iv.End, other.End)}, true
}

// Shift returns the interval translated by d.
func (iv Interval) Shift(d Duration) Interval {
	return Interval{Start: iv.Start.Add(d), End: iv.End.Add(d)}
}

// String formats the interval as "[start, end)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Start, iv.End)
}

// MergeIntervals coalesces a set of intervals into a minimal sorted set of
// disjoint non-touching intervals. Empty inputs are dropped. The input slice
// is not modified.
func MergeIntervals(ivs []Interval) []Interval {
	nonEmpty := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sortIntervals(nonEmpty)
	out := []Interval{nonEmpty[0]}
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// TotalLen returns the summed length of a set of (possibly overlapping)
// intervals, counting overlapped time once.
func TotalLen(ivs []Interval) Duration {
	var total Duration
	for _, iv := range MergeIntervals(ivs) {
		total += iv.Len()
	}
	return total
}

func sortIntervals(ivs []Interval) {
	// Insertion sort: interval sets here are small (overflow windows per IS).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && (ivs[j].Start < ivs[j-1].Start ||
			(ivs[j].Start == ivs[j-1].Start && ivs[j].End < ivs[j-1].End)); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
}
