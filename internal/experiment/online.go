package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/vodsim/vsp/internal/online"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/stats"
)

// FigOnline is an extension beyond the paper's own figures: it quantifies
// the value of Video-On-Reservation batch knowledge by comparing, across
// access-pattern skews, the offline two-phase scheduler against a reactive
// online system (nearest-copy service with LRU caches) and the no-cache
// direct baseline. The paper motivates VOR with this comparison in prose
// (§1); this sweep puts numbers on it.
func FigOnline(base Params, repeats, parallelism int) (*Figure, error) {
	base = base.WithDefaults()
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	fig := &Figure{
		ID:     "fig-online",
		Title:  "Value of reservation foreknowledge: offline two-phase vs online LRU vs direct (extension)",
		XLabel: "alpha value of zipf distribution",
		YLabel: "total service cost ($)",
	}

	type point struct {
		offline, online, direct float64
	}
	pts := make([]point, len(AlphaWide))
	errs := make([]error, len(AlphaWide))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i, a := range AlphaWide {
		wg.Add(1)
		go func(i int, alpha float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for r := 0; r < maxInt(1, repeats); r++ {
				p := base
				p.Alpha = alpha
				p.Seed = base.Seed + int64(r)*104729
				rig, err := Build(p)
				if err != nil {
					errs[i] = err
					return
				}
				off, err := scheduler.Run(rig.Model, rig.Requests, scheduler.Config{})
				if err != nil {
					errs[i] = fmt.Errorf("experiment: online sweep offline leg: %w", err)
					return
				}
				on, err := online.Run(rig.Model, rig.Requests)
				if err != nil {
					errs[i] = fmt.Errorf("experiment: online sweep online leg: %w", err)
					return
				}
				direct, err := scheduler.RunDirect(rig.Model, rig.Requests)
				if err != nil {
					errs[i] = err
					return
				}
				pts[i].offline += float64(off.FinalCost)
				pts[i].online += float64(on.TotalCost())
				pts[i].direct += float64(direct.FinalCost)
			}
			k := float64(maxInt(1, repeats))
			pts[i].offline /= k
			pts[i].online /= k
			pts[i].direct /= k
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	offline := stats.Series{Name: "offline two-phase (VOR)"}
	onl := stats.Series{Name: "online LRU (reactive)"}
	direct := stats.Series{Name: "direct only"}
	for i, a := range AlphaWide {
		offline.Add(a, pts[i].offline)
		onl.Add(a, pts[i].online)
		direct.Add(a, pts[i].direct)
	}
	fig.Series = append(fig.Series, offline, onl, direct)
	return fig, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
