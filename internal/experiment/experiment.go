// Package experiment regenerates every figure and table of the paper's
// evaluation (§5): the effect of the network charging rate (Figs. 5–6), of
// the storage charging rate (Figs. 7–8), of the access pattern and storage
// size (Fig. 9), and the heat-metric comparison across the full parameter
// cross product (Table 5 and the §5.5 cost-increase statistics).
//
// Calibration notes (recorded per the reproduction rules):
//
//   - Table 4 quotes the storage charging rate as "3..8 (1Gbyte·sec)"; taken
//     literally per GB·second a single cached hour would dwarf the network
//     cost of the whole workload and no schedule would ever cache, which
//     contradicts every figure. The figures are consistent with a per
//     GB·HOUR rate (Fig. 7's sweep to 300 then saturating at the
//     network-only cost pins this), so rates here are $/GB·hour.
//   - The paper's Fig. 4 topology is unpublished; topology.Paper is a
//     deterministic 20-node metro hierarchy at the same scale.
//   - Each of the 190 users reserves one title per cycle over a 12-hour
//     reservation window (the paper does not state the batch density; one
//     request per user is the natural Video-On-Reservation reading).
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/vodsim/vsp/internal/cost"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/routing"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/sorp"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Params is one experimental configuration. Zero fields take the paper's
// §5.1 defaults.
type Params struct {
	Storages        int     // intermediate storages (default 19)
	UsersPerStorage int     // users per neighborhood (default 10)
	Titles          int     // catalog size (default 500)
	CapacityGB      float64 // per-storage capacity in GB (default 5)
	SRateGBHour     float64 // storage rate, $/(GB·hour) (default 5)
	NRateGB         float64 // network rate, $/GB per hop (default 500)
	Alpha           float64 // Zipf skew (default 0.271)
	Locality        float64 // regional taste variation in [0,1] (default 0)
	WindowHours     int     // reservation window (default 12)
	RequestsPerUser int     // reservations per user (default 1)
	Seed            int64   // master seed (default 1997)
	Metric          sorp.HeatMetric
	Policy          ivs.Policy
}

// WithDefaults fills zero fields with the paper's defaults.
func (p Params) WithDefaults() Params {
	if p.Storages == 0 {
		p.Storages = 19
	}
	if p.UsersPerStorage == 0 {
		p.UsersPerStorage = 10
	}
	if p.Titles == 0 {
		p.Titles = 500
	}
	if p.CapacityGB == 0 {
		p.CapacityGB = 5
	}
	if p.SRateGBHour == 0 {
		p.SRateGBHour = 5
	}
	if p.NRateGB == 0 {
		p.NRateGB = 500
	}
	if p.Alpha == 0 {
		p.Alpha = 0.271
	}
	if p.WindowHours == 0 {
		p.WindowHours = 12
	}
	if p.RequestsPerUser == 0 {
		p.RequestsPerUser = 1
	}
	if p.Seed == 0 {
		p.Seed = 1997
	}
	if p.Metric == 0 {
		p.Metric = sorp.SpacePerCost
	}
	return p
}

// SRate converts the quoted per-GB·hour rate to the internal unit.
func (p Params) SRate() pricing.SRate {
	return pricing.SRate(p.SRateGBHour / (float64(units.GB) * 3600))
}

// NRate converts the quoted per-GB rate to the internal unit.
func (p Params) NRate() pricing.NRate { return pricing.PerGB(p.NRateGB) }

// Rig is a fully constructed experimental environment for one Params.
type Rig struct {
	Params   Params
	Topo     *topology.Topology
	Catalog  *media.Catalog
	Book     *pricing.Book
	Model    *cost.Model
	Requests workload.Set
}

// Build constructs the rig: topology, catalog, rates, routing and the
// request batch. Construction is deterministic in Params.
func Build(p Params) (*Rig, error) {
	p = p.WithDefaults()
	topo := topology.Metro(topology.GenConfig{
		Storages:        p.Storages,
		UsersPerStorage: p.UsersPerStorage,
		Capacity:        units.GBf(p.CapacityGB),
	}, p.Seed)
	cat, err := media.Generate(media.GenConfig{Titles: p.Titles, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	book := pricing.Uniform(topo, p.SRate(), p.NRate())
	table := routing.NewTable(book)
	model := cost.NewModel(book, table, cat)
	reqs, err := workload.Generate(topo, cat, workload.Config{
		Alpha:           p.Alpha,
		Locality:        p.Locality,
		Window:          simtime.Duration(p.WindowHours) * simtime.Hour,
		RequestsPerUser: p.RequestsPerUser,
		Seed:            p.Seed + 7919, // decouple workload stream from structural seed
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return &Rig{Params: p, Topo: topo, Catalog: cat, Book: book, Model: model, Requests: reqs}, nil
}

// Result is the outcome of scheduling one configuration.
type Result struct {
	Params     Params
	Phase1Cost units.Money
	FinalCost  units.Money
	DirectCost units.Money
	Overflows  int
	Victims    int
	Requests   int
}

// DeltaPct returns 100·(Ψ(S_SORP) − Ψ(S))/Ψ(S), the §5.5 statistic.
func (r Result) DeltaPct() float64 {
	if r.Phase1Cost == 0 {
		return 0
	}
	return 100 * float64(r.FinalCost-r.Phase1Cost) / float64(r.Phase1Cost)
}

// SavingsPct returns the percentage saved versus the network-only system.
func (r Result) SavingsPct() float64 {
	if r.DirectCost == 0 {
		return 0
	}
	return 100 * float64(r.DirectCost-r.FinalCost) / float64(r.DirectCost)
}

// RunOne builds and schedules one configuration, including the
// network-only baseline.
func RunOne(p Params) (Result, error) {
	rig, err := Build(p)
	if err != nil {
		return Result{}, err
	}
	out, err := scheduler.Run(rig.Model, rig.Requests, scheduler.Config{
		Metric: rig.Params.Metric,
		Policy: rig.Params.Policy,
	})
	if err != nil {
		return Result{}, fmt.Errorf("experiment: %v: %w", p, err)
	}
	direct, err := scheduler.RunDirect(rig.Model, rig.Requests)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Params:     rig.Params,
		Phase1Cost: out.Phase1Cost,
		FinalCost:  out.FinalCost,
		DirectCost: direct.FinalCost,
		Overflows:  out.Overflows,
		Victims:    len(out.Victims),
		Requests:   len(rig.Requests),
	}, nil
}

// RunAveraged runs each configuration `repeats` times under decorrelated
// seeds and returns the per-configuration mean of every cost metric, in
// input order. The paper's curves are single draws of a 190-request
// workload; averaging removes the sampling jitter so the reported shapes
// are the distributional ones.
func RunAveraged(ps []Params, repeats, parallelism int) ([]Result, error) {
	if repeats <= 1 {
		return RunMany(ps, parallelism)
	}
	all := make([]Params, 0, len(ps)*repeats)
	for r := 0; r < repeats; r++ {
		for _, p := range ps {
			q := p.WithDefaults()
			q.Seed += int64(r) * 104729
			all = append(all, q)
		}
	}
	raw, err := RunMany(all, parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(ps))
	for i := range ps {
		acc := Result{Params: ps[i].WithDefaults()}
		for r := 0; r < repeats; r++ {
			got := raw[r*len(ps)+i]
			acc.Phase1Cost += got.Phase1Cost
			acc.FinalCost += got.FinalCost
			acc.DirectCost += got.DirectCost
			acc.Overflows += got.Overflows
			acc.Victims += got.Victims
			acc.Requests += got.Requests
		}
		k := units.Money(repeats)
		acc.Phase1Cost /= k
		acc.FinalCost /= k
		acc.DirectCost /= k
		acc.Overflows /= repeats
		acc.Victims /= repeats
		acc.Requests /= repeats
		out[i] = acc
	}
	return out, nil
}

// RunMany schedules the configurations concurrently (bounded by
// parallelism; <= 0 means GOMAXPROCS) and returns results in input order.
func RunMany(ps []Params, parallelism int) ([]Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(ps))
	errs := make([]error, len(ps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism)
	for i := range ps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunOne(ps[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (p Params) String() string {
	return fmt.Sprintf("srate=%g/GBh nrate=%g/GB cap=%gGB alpha=%g", p.SRateGBHour, p.NRateGB, p.CapacityGB, p.Alpha)
}
