// Command vspsched runs the two-phase video scheduler on a reservation
// batch and emits the service schedule plus a cost report.
//
// Usage:
//
//	vspsched -topo topo.json -catalog catalog.json -requests requests.json \
//	         -srate 5 -nrate 500 -metric space-per-cost -out schedule.json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/vodsim/vsp/internal/analysis"
	"github.com/vodsim/vsp/internal/billing"
	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/ivs"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/sorp"
)

func main() {
	var (
		topoPath = flag.String("topo", "", "topology JSON (required)")
		catPath  = flag.String("catalog", "", "catalog JSON (required)")
		reqPath  = flag.String("requests", "", "requests JSON (required)")
		srate    = flag.Float64("srate", 5, "storage charging rate ($/GB·hour)")
		nrate    = flag.Float64("nrate", 500, "network charging rate ($/GB)")
		metric   = flag.String("metric", "space-per-cost", "heat metric: period | period-per-cost | space | space-per-cost")
		policy   = flag.String("policy", "cache-on-route", "caching policy: cache-on-route | cache-at-destination | no-caching")
		outPath  = flag.String("out", "", "write schedule JSON here (default stdout suppressed; report always on stderr-free stdout)")
		quiet    = flag.Bool("quiet", false, "suppress the human-readable report")
		analyze  = flag.Bool("analyze", false, "print cache-effectiveness analysis")
		bill     = flag.Bool("bill", false, "print the per-reservation invoice")
		workers  = flag.Int("workers", 0, "scheduling worker pool size (0 = GOMAXPROCS, 1 = sequential; output is identical for any value)")
	)
	flag.Parse()
	if err := run(*topoPath, *catPath, *reqPath, *srate, *nrate, *metric, *policy, *outPath, *quiet, *analyze, *bill, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "vspsched:", err)
		os.Exit(1)
	}
}

func parseMetric(s string) (sorp.HeatMetric, error) {
	for _, m := range []sorp.HeatMetric{sorp.Period, sorp.PeriodPerCost, sorp.Space, sorp.SpacePerCost} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown heat metric %q", s)
}

func parsePolicy(s string) (ivs.Policy, error) {
	for _, p := range []ivs.Policy{ivs.CacheOnRoute, ivs.CacheAtDestination, ivs.NoCaching} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown caching policy %q", s)
}

func run(topoPath, catPath, reqPath string, srate, nrate float64, metricName, policyName, outPath string, quiet, analyze, bill bool, workers int) error {
	if topoPath == "" || catPath == "" || reqPath == "" {
		return fmt.Errorf("-topo, -catalog and -requests are required")
	}
	topo, err := cli.LoadTopology(topoPath)
	if err != nil {
		return err
	}
	cat, err := cli.LoadCatalog(catPath)
	if err != nil {
		return err
	}
	reqs, err := cli.LoadRequestsAuto(reqPath, topo, cat)
	if err != nil {
		return err
	}
	metric, err := parseMetric(metricName)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	model := cli.BuildModel(topo, cat, srate, nrate)
	out, err := scheduler.Run(model, reqs, scheduler.Config{Metric: metric, Policy: policy, Workers: workers})
	if err != nil {
		return err
	}
	if !quiet {
		bd := model.CostBreakdown(out.Schedule)
		fmt.Printf("requests          %d\n", len(reqs))
		fmt.Printf("deliveries        %d\n", out.Schedule.NumDeliveries())
		fmt.Printf("residencies       %d\n", out.Schedule.NumResidencies())
		fmt.Printf("overflows (raw)   %d\n", out.Overflows)
		fmt.Printf("victims           %d\n", len(out.Victims))
		fmt.Printf("phase-1 cost      %v\n", out.Phase1Cost)
		fmt.Printf("final cost        %v\n", out.FinalCost)
		fmt.Printf("  storage         %v\n", bd.Storage)
		fmt.Printf("  network         %v\n", bd.Network)
	}
	if analyze {
		fmt.Println("--- analysis ---")
		if err := analysis.Summarize(model, out.Schedule).Write(os.Stdout, 5); err != nil {
			return err
		}
	}
	if bill {
		st, err := billing.Attribute(model, out.Schedule)
		if err != nil {
			return err
		}
		fmt.Println("--- invoice ---")
		if err := st.Write(os.Stdout); err != nil {
			return err
		}
	}
	if outPath != "" {
		return cli.SaveJSON(outPath, out.Schedule)
	}
	return nil
}
