package cli

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/scheduler"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// writeFixtures produces a consistent topo/catalog/requests/schedule file
// quartet in dir.
func writeFixtures(t *testing.T, dir string) (topoP, catP, reqP, schedP string) {
	t.Helper()
	topo := topology.Star(topology.GenConfig{Storages: 3, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(4, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := workload.Generate(topo, cat, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	model := BuildModel(topo, cat, 2, 400)
	out, err := scheduler.Run(model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}

	topoP = filepath.Join(dir, "topo.json")
	f, err := os.Create(topoP)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	catP = filepath.Join(dir, "catalog.json")
	f, err = os.Create(catP)
	if err != nil {
		t.Fatal(err)
	}
	if err := cat.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reqP = filepath.Join(dir, "requests.json")
	if err := SaveJSON(reqP, reqs); err != nil {
		t.Fatal(err)
	}
	schedP = filepath.Join(dir, "schedule.json")
	if err := SaveJSON(schedP, out.Schedule); err != nil {
		t.Fatal(err)
	}
	return topoP, catP, reqP, schedP
}

func TestRoundTripLoaders(t *testing.T) {
	dir := t.TempDir()
	topoP, catP, reqP, schedP := writeFixtures(t, dir)

	topo, err := LoadTopology(topoP)
	if err != nil {
		t.Fatalf("LoadTopology: %v", err)
	}
	if topo.NumStorages() != 3 || topo.NumUsers() != 6 {
		t.Errorf("topology: %d storages, %d users", topo.NumStorages(), topo.NumUsers())
	}
	cat, err := LoadCatalog(catP)
	if err != nil {
		t.Fatalf("LoadCatalog: %v", err)
	}
	if cat.Len() != 4 {
		t.Errorf("catalog: %d", cat.Len())
	}
	reqs, err := LoadRequests(reqP)
	if err != nil {
		t.Fatalf("LoadRequests: %v", err)
	}
	if len(reqs) != 6 {
		t.Errorf("requests: %d", len(reqs))
	}
	sched, err := LoadSchedule(schedP)
	if err != nil {
		t.Fatalf("LoadSchedule: %v", err)
	}
	// The reloaded schedule must still validate against the reloaded
	// topology/catalog/requests — the full persistence round trip.
	if err := sched.Validate(topo, cat, reqs); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
	// And cost identically.
	model := BuildModel(topo, cat, 2, 400)
	orig, err := scheduler.Run(model, reqs, scheduler.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := model.ScheduleCost(sched); !got.ApproxEqual(orig.FinalCost, 1e-6) {
		t.Errorf("round-tripped cost %v != %v", got, orig.FinalCost)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.json")
	if _, err := LoadTopology(missing); err == nil {
		t.Error("LoadTopology must fail on a missing file")
	}
	if _, err := LoadCatalog(missing); err == nil {
		t.Error("LoadCatalog must fail on a missing file")
	}
	if _, err := LoadRequests(missing); err == nil {
		t.Error("LoadRequests must fail on a missing file")
	}
	if _, err := LoadSchedule(missing); err == nil {
		t.Error("LoadSchedule must fail on a missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRequests(bad); err == nil {
		t.Error("LoadRequests must fail on broken JSON")
	}
	if _, err := LoadSchedule(bad); err == nil {
		t.Error("LoadSchedule must fail on broken JSON")
	}
}

func TestBuildModelRates(t *testing.T) {
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 1, Capacity: units.GB})
	cat, err := media.Uniform(1, units.GBf(1), simtime.Hour, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	m := BuildModel(topo, cat, 3600e9, 1e9)
	is1, _ := topo.Lookup("IS1")
	if got := float64(m.Book().SRate(is1)); got != 1 {
		t.Errorf("srate = %g, want 1 $/byte·s", got)
	}
	if got := float64(m.Book().NRate(0)); got != 1 {
		t.Errorf("nrate = %g, want 1 $/byte", got)
	}
}

func TestSaveJSONStdout(t *testing.T) {
	// "-" writes to stdout without error.
	if err := SaveJSON("-", map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	// Unwritable path errors.
	if err := SaveJSON(filepath.Join(t.TempDir(), "no", "such", "dir.json"), 1); err == nil {
		t.Error("expected error for unwritable path")
	}
}

func TestLoadRequestsAuto(t *testing.T) {
	dir := t.TempDir()
	topo := topology.Star(topology.GenConfig{Storages: 2, UsersPerStorage: 2, Capacity: 10 * units.GB})
	cat, err := media.Uniform(3, units.GBf(2.5), 90*simtime.Minute, units.Mbps(6))
	if err != nil {
		t.Fatal(err)
	}
	// CSV path.
	csvPath := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(csvPath, []byte("user,video,start_seconds\n0,1,100\n2,0,50\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := LoadRequestsAuto(csvPath, topo, cat)
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if len(set) != 2 || set[0].Start != 50 {
		t.Errorf("csv set = %+v", set)
	}
	// JSON path.
	jsonPath := filepath.Join(dir, "reqs.json")
	if err := SaveJSON(jsonPath, set); err != nil {
		t.Fatal(err)
	}
	set2, err := LoadRequestsAuto(jsonPath, topo, cat)
	if err != nil || len(set2) != 2 {
		t.Errorf("json: %v, %v", set2, err)
	}
	// Missing CSV errors.
	if _, err := LoadRequestsAuto(filepath.Join(dir, "none.csv"), topo, cat); err == nil {
		t.Error("expected missing csv error")
	}
}
