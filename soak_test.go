//go:build soak

// Soak test: excluded from the default suite (build tag "soak"); run with
//
//	go test -tags soak -run TestSoak -v .
//
// It sweeps many random paper-scale scenarios through the full pipeline and
// audits every schedule with the complete verification bundle.
package vsp_test

import (
	"testing"

	vsp "github.com/vodsim/vsp"
	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/scheduler"
)

func TestSoakRandomScenarios(t *testing.T) {
	alphas := []float64{0.1, 0.271, 0.5, 0.7, 0.9}
	caps := []float64{4, 5, 8, 14}
	for seed := int64(0); seed < 50; seed++ {
		p := experiment.Params{
			Storages:        9 + int(seed%11),
			UsersPerStorage: 4 + int(seed%7),
			Titles:          30 + int(seed%471),
			CapacityGB:      caps[seed%int64(len(caps))],
			SRateGBHour:     float64(1 + seed%8),
			NRateGB:         float64(300 + 100*(seed%8)),
			Alpha:           alphas[seed%int64(len(alphas))],
			RequestsPerUser: 1 + int(seed%2),
			Seed:            1000 + seed,
		}
		rig, err := experiment.Build(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out, err := scheduler.Run(rig.Model, rig.Requests, scheduler.Config{Refine: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := audit.Run(rig.Model, out.Schedule, rig.Requests)
		if !rep.OK() {
			t.Fatalf("seed %d (%v): audit findings %v", seed, p, rep.Findings)
		}
		direct, err := scheduler.RunDirect(rig.Model, rig.Requests)
		if err != nil {
			t.Fatal(err)
		}
		if float64(out.FinalCost) > float64(direct.FinalCost)*1.0001 {
			t.Fatalf("seed %d: scheduler %v lost to direct %v", seed, out.FinalCost, direct.FinalCost)
		}
	}
	_ = vsp.SpacePerCost // keep the public package in the soak build
}
