package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/vodsim/vsp/internal/horizon"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/schedule"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/units"
	"github.com/vodsim/vsp/internal/workload"
)

// Rolling-horizon intake endpoints. Unlike the batch /v1/schedule handler,
// these are stateful: the server owns one horizon.Service and the three
// endpoints drive its reservation stream.
//
//	POST /v1/reservations    {"user": U, "video": V, "start": s, "at": a}
//	                          -> 202 intake ack (409 for late arrivals)
//	GET  /v1/plan            -> committed schedule + horizon + cost
//	POST /v1/advance         {"to": T} -> epoch result

// ReservationRequest is the POST /v1/reservations body. At is the arrival
// instant on the service's reservation clock; it defaults to the start
// time (a reservation can never arrive later than it starts).
type ReservationRequest struct {
	User  topology.UserID `json:"user"`
	Video media.VideoID   `json:"video"`
	Start simtime.Time    `json:"start"`
	At    *simtime.Time   `json:"at,omitempty"`
}

// ReservationResponse is the POST /v1/reservations reply.
type ReservationResponse struct {
	Accepted     bool    `json:"accepted"`
	Pending      int     `json:"pending"`
	PendingBytes float64 `json:"pending_bytes"`
	EpochDue     bool    `json:"epoch_due"`
	Trigger      string  `json:"trigger,omitempty"`
}

func (s *Server) handleReservation(w http.ResponseWriter, r *http.Request) {
	// Fencing: only the leader may accept reservations — a fenced
	// ex-primary or a follower answers with the stale-leadership error
	// so two nodes never both grow the journal.
	if !s.checkLeader(w) {
		return
	}
	var req ReservationRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Start < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("negative start time %v", req.Start))
		return
	}
	at := req.Start
	if req.At != nil {
		at = *req.At
	}
	ack, err := s.horizon.Submit(at, workload.Request{User: req.User, Video: req.Video, Start: req.Start})
	if err != nil {
		if errors.Is(err, horizon.ErrLateArrival) {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, ReservationResponse{
		Accepted:     true,
		Pending:      ack.Pending,
		PendingBytes: ack.PendingBytes,
		EpochDue:     ack.EpochDue,
		Trigger:      string(ack.Trigger),
	})
}

// PlanResponse is the GET /v1/plan reply: the committed schedule and the
// service's rolling-horizon state.
type PlanResponse struct {
	Schedule *schedule.Schedule `json:"schedule"`
	Horizon  simtime.Time       `json:"horizon"`
	Epoch    int                `json:"epoch"`
	Pending  int                `json:"pending"`
	Cost     units.Money        `json:"cost"`
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, PlanResponse{
		Schedule: s.horizon.Committed(),
		Horizon:  s.horizon.Horizon(),
		Epoch:    s.horizon.Epoch(),
		Pending:  s.horizon.Pending(),
		Cost:     s.horizon.Cost(),
	})
}

// AdvanceRequest is the POST /v1/advance body.
type AdvanceRequest struct {
	To simtime.Time `json:"to"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.checkLeader(w) {
		return
	}
	var req AdvanceRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t0 := time.Now()
	res, err := s.horizon.Advance(r.Context(), req.To)
	if err == nil {
		s.advances.Add(1)
		s.advanceNanos.Add(int64(time.Since(t0)))
	}
	if err != nil {
		if s.horizon.Horizon() > req.To {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeErr(w, schedulingStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}
