package routing

import (
	"sort"

	"github.com/vodsim/vsp/internal/pricing"
	"github.com/vodsim/vsp/internal/topology"
)

// RatedRoute pairs a route with its summed per-hop rate.
type RatedRoute struct {
	Route Route
	Rate  pricing.NRate
}

// KShortest returns up to k cheapest loopless routes from src to dst in
// ascending rate order (Yen's algorithm). The paper's scheduler only needs
// the cheapest route — a pricier path never lowers the current request's
// cost — but alternative routes are what the bandwidth extension detours
// onto, and operators use them to see how much slack a topology has
// (§3.2 step 4: "there can be more than one path between any pair of
// nodes").
func KShortest(book *pricing.Book, src, dst topology.NodeID, k int) []RatedRoute {
	if k <= 0 {
		return nil
	}
	first, rate, err := RouteAvoiding(book, src, dst, func(int) bool { return false })
	if err != nil {
		return nil
	}
	result := []RatedRoute{{Route: first, Rate: rate}}
	if k == 1 || src == dst {
		return result
	}

	topo := book.Topology()
	var candidates []RatedRoute
	for len(result) < k {
		prev := result[len(result)-1].Route
		// For every spur node of the previous route, ban the outgoing
		// edges used by already-found routes sharing the same prefix, ban
		// the prefix's interior nodes, and find a spur path.
		for i := 0; i < len(prev)-1; i++ {
			spur := prev[i]
			rootPath := prev[:i+1]

			bannedEdges := map[int]bool{}
			for _, rr := range result {
				if len(rr.Route) > i && routesEqual(rr.Route[:i+1], rootPath) && len(rr.Route) > i+1 {
					if ei, ok := topo.EdgeBetween(rr.Route[i], rr.Route[i+1]); ok {
						bannedEdges[ei] = true
					}
				}
			}
			bannedNodes := map[topology.NodeID]bool{}
			for _, n := range rootPath[:len(rootPath)-1] {
				bannedNodes[n] = true
			}

			spurRoute, _, err := RouteAvoiding(book, spur, dst, func(ei int) bool {
				if bannedEdges[ei] {
					return true
				}
				e := topo.Edge(ei)
				return bannedNodes[e.A] || bannedNodes[e.B]
			})
			if err != nil {
				continue
			}
			total := append(Route{}, rootPath...)
			total = append(total, spurRoute[1:]...)
			if hasLoop(total) {
				continue
			}
			rr := RatedRoute{Route: total, Rate: book.RouteRate(total)}
			if !containsRoute(result, rr.Route) && !containsRoute(candidates, rr.Route) {
				candidates = append(candidates, rr)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			if candidates[a].Rate != candidates[b].Rate {
				return candidates[a].Rate < candidates[b].Rate
			}
			return len(candidates[a].Route) < len(candidates[b].Route)
		})
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}

func routesEqual(a, b Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasLoop(r Route) bool {
	seen := map[topology.NodeID]bool{}
	for _, n := range r {
		if seen[n] {
			return true
		}
		seen[n] = true
	}
	return false
}

func containsRoute(rs []RatedRoute, r Route) bool {
	for _, rr := range rs {
		if routesEqual(rr.Route, r) {
			return true
		}
	}
	return false
}
