// Package topology models the distributed service infrastructure of the
// paper: a single video warehouse (VW) archiving every title, a set of
// intermediate storages (IS) — one per neighborhood — and the undirected
// high-speed network connecting them. Users attach to exactly one local IS;
// the path between a user and its local IS is fixed and is not part of the
// scheduling problem (paper §2.1).
package topology

import (
	"fmt"
	"sort"

	"github.com/vodsim/vsp/internal/units"
)

// NodeID identifies a storage node (warehouse or intermediate storage).
// IDs are dense indices assigned by the builder in insertion order.
type NodeID int

// UserID identifies a user. IDs are dense indices in attachment order.
type UserID int

// NodeKind distinguishes the archive from the caches.
type NodeKind int

const (
	// KindWarehouse is the permanent archive; it stores every video at
	// zero charging rate (paper: srate(VW) = 0) and has no capacity limit.
	KindWarehouse NodeKind = iota
	// KindStorage is an intermediate storage with finite capacity and a
	// per-byte-second charging rate.
	KindStorage
)

func (k NodeKind) String() string {
	switch k {
	case KindWarehouse:
		return "warehouse"
	case KindStorage:
		return "storage"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a storage node in the service network.
type Node struct {
	ID       NodeID
	Kind     NodeKind
	Name     string
	Capacity units.Bytes // disk capacity; ignored for the warehouse
}

// Edge is an undirected network link between two storage nodes.
// Edges are identified by their index in Topology.Edges().
type Edge struct {
	A, B NodeID
}

// Other returns the endpoint of e opposite to n.
func (e Edge) Other(n NodeID) NodeID {
	if e.A == n {
		return e.B
	}
	return e.A
}

// User is a service subscriber attached to its local intermediate storage.
type User struct {
	ID    UserID
	Local NodeID // the user's neighborhood IS
}

// Topology is an immutable service network. Construct one with a Builder or
// one of the generators in this package.
type Topology struct {
	nodes     []Node
	edges     []Edge
	users     []User
	adj       [][]adjEntry // node -> incident edges
	warehouse NodeID
	byName    map[string]NodeID
}

type adjEntry struct {
	edge int    // index into edges
	to   NodeID // the far endpoint
}

// NumNodes returns the number of storage nodes (warehouse included).
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumStorages returns the number of intermediate storages.
func (t *Topology) NumStorages() int { return len(t.nodes) - 1 }

// NumEdges returns the number of network links.
func (t *Topology) NumEdges() int { return len(t.edges) }

// NumUsers returns the number of attached users.
func (t *Topology) NumUsers() int { return len(t.users) }

// Warehouse returns the ID of the video warehouse.
func (t *Topology) Warehouse() NodeID { return t.warehouse }

// Node returns the node with the given ID; it panics on an invalid ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[id] }

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
func (t *Topology) Nodes() []Node { return t.nodes }

// Storages returns the IDs of all intermediate storages in ID order.
func (t *Topology) Storages() []NodeID {
	out := make([]NodeID, 0, t.NumStorages())
	for _, n := range t.nodes {
		if n.Kind == KindStorage {
			out = append(out, n.ID)
		}
	}
	return out
}

// Edges returns all links. The slice is shared; do not modify.
func (t *Topology) Edges() []Edge { return t.edges }

// Edge returns the edge with the given index; it panics on an invalid index.
func (t *Topology) Edge(i int) Edge { return t.edges[i] }

// Users returns all users in ID order. The slice is shared; do not modify.
func (t *Topology) Users() []User { return t.users }

// User returns the user with the given ID; it panics on an invalid ID.
func (t *Topology) User(id UserID) User { return t.users[id] }

// UsersAt returns the IDs of the users whose local storage is n.
func (t *Topology) UsersAt(n NodeID) []UserID {
	var out []UserID
	for _, u := range t.users {
		if u.Local == n {
			out = append(out, u.ID)
		}
	}
	return out
}

// Lookup returns the node with the given name.
func (t *Topology) Lookup(name string) (NodeID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// Neighbors calls fn for every edge incident to n, passing the edge index
// and the far endpoint.
func (t *Topology) Neighbors(n NodeID, fn func(edgeIdx int, to NodeID)) {
	for _, a := range t.adj[n] {
		fn(a.edge, a.to)
	}
}

// Degree returns the number of links incident to n.
func (t *Topology) Degree(n NodeID) int { return len(t.adj[n]) }

// EdgeBetween returns the index of an edge connecting a and b, if any.
func (t *Topology) EdgeBetween(a, b NodeID) (int, bool) {
	for _, ae := range t.adj[a] {
		if ae.to == b {
			return ae.edge, true
		}
	}
	return 0, false
}

// Connected reports whether every node is reachable from the warehouse.
func (t *Topology) Connected() bool {
	if len(t.nodes) == 0 {
		return false
	}
	seen := make([]bool, len(t.nodes))
	stack := []NodeID{t.warehouse}
	seen[t.warehouse] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range t.adj[n] {
			if !seen[a.to] {
				seen[a.to] = true
				count++
				stack = append(stack, a.to)
			}
		}
	}
	return count == len(t.nodes)
}

// Builder assembles a Topology. The zero value is ready to use.
type Builder struct {
	nodes []Node
	edges []Edge
	users []User
	errs  []error
	hasVW bool
	names map[string]NodeID
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{names: make(map[string]NodeID)}
}

func (b *Builder) addNode(kind NodeKind, name string, cap units.Bytes) NodeID {
	id := NodeID(len(b.nodes))
	if name == "" {
		switch kind {
		case KindWarehouse:
			name = "VW"
		default:
			name = fmt.Sprintf("IS%d", id)
		}
	}
	if _, dup := b.names[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate node name %q", name))
	}
	b.names[name] = id
	b.nodes = append(b.nodes, Node{ID: id, Kind: kind, Name: name, Capacity: cap})
	return id
}

// Warehouse adds the video warehouse. Exactly one is required.
func (b *Builder) Warehouse(name string) NodeID {
	if b.hasVW {
		b.errs = append(b.errs, fmt.Errorf("second warehouse %q added", name))
	}
	b.hasVW = true
	return b.addNode(KindWarehouse, name, 0)
}

// Storage adds an intermediate storage with the given disk capacity.
func (b *Builder) Storage(name string, capacity units.Bytes) NodeID {
	if capacity < 0 {
		b.errs = append(b.errs, fmt.Errorf("storage %q has negative capacity %d", name, capacity))
	}
	return b.addNode(KindStorage, name, capacity)
}

// Connect adds an undirected link between two nodes.
func (b *Builder) Connect(a, c NodeID) {
	if !b.validID(a) || !b.validID(c) {
		b.errs = append(b.errs, fmt.Errorf("connect: invalid node id (%d, %d)", a, c))
		return
	}
	if a == c {
		b.errs = append(b.errs, fmt.Errorf("connect: self loop at node %d", a))
		return
	}
	for _, e := range b.edges {
		if (e.A == a && e.B == c) || (e.A == c && e.B == a) {
			b.errs = append(b.errs, fmt.Errorf("connect: duplicate edge (%d, %d)", a, c))
			return
		}
	}
	b.edges = append(b.edges, Edge{A: a, B: c})
}

// AttachUsers attaches n users to the given intermediate storage.
func (b *Builder) AttachUsers(local NodeID, n int) {
	if !b.validID(local) {
		b.errs = append(b.errs, fmt.Errorf("attach: invalid node id %d", local))
		return
	}
	if b.nodes[local].Kind != KindStorage {
		b.errs = append(b.errs, fmt.Errorf("attach: node %d is not an intermediate storage", local))
		return
	}
	for i := 0; i < n; i++ {
		b.users = append(b.users, User{ID: UserID(len(b.users)), Local: local})
	}
}

func (b *Builder) validID(id NodeID) bool {
	return id >= 0 && int(id) < len(b.nodes)
}

// Build validates and returns the topology. It fails if no warehouse was
// added, any earlier operation errored, or the graph is disconnected.
func (b *Builder) Build() (*Topology, error) {
	if !b.hasVW {
		b.errs = append(b.errs, fmt.Errorf("no warehouse"))
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("topology: %d error(s), first: %w", len(b.errs), b.errs[0])
	}
	t := &Topology{
		nodes:  append([]Node(nil), b.nodes...),
		edges:  append([]Edge(nil), b.edges...),
		users:  append([]User(nil), b.users...),
		byName: make(map[string]NodeID, len(b.nodes)),
	}
	for name, id := range b.names {
		t.byName[name] = id
	}
	for _, n := range t.nodes {
		if n.Kind == KindWarehouse {
			t.warehouse = n.ID
		}
	}
	t.adj = make([][]adjEntry, len(t.nodes))
	for i, e := range t.edges {
		t.adj[e.A] = append(t.adj[e.A], adjEntry{edge: i, to: e.B})
		t.adj[e.B] = append(t.adj[e.B], adjEntry{edge: i, to: e.A})
	}
	for n := range t.adj {
		a := t.adj[n]
		sort.Slice(a, func(i, j int) bool { return a[i].to < a[j].to })
	}
	if !t.Connected() {
		return nil, fmt.Errorf("topology: graph is not connected")
	}
	return t, nil
}
