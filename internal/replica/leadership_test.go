package replica

import (
	"errors"
	"testing"

	"github.com/vodsim/vsp/internal/wal"
)

func TestParseRole(t *testing.T) {
	for in, want := range map[string]Role{"primary": RolePrimary, "follower": RoleFollower} {
		got, err := ParseRole(in)
		if err != nil || got != want {
			t.Fatalf("ParseRole(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseRole("king"); err == nil {
		t.Fatal("unknown role accepted")
	}
}

// The zero Role must be primary: a zero server.Options builds a normal
// single-node primary, not a follower that rejects all intake.
func TestZeroRoleIsPrimary(t *testing.T) {
	var r Role
	if r != RolePrimary {
		t.Fatalf("zero Role is %v, want primary", r)
	}
}

func TestCheckPrimary(t *testing.T) {
	lead := NewLeadership(RolePrimary, 0)
	if err := lead.CheckPrimary(); err != nil {
		t.Fatalf("primary refuses intake: %v", err)
	}
	if lead.Epoch() != 1 {
		t.Fatalf("primary epoch defaulted to %d, want 1", lead.Epoch())
	}
	follower := NewLeadership(RoleFollower, 0)
	err := follower.CheckPrimary()
	if !errors.Is(err, ErrStaleLeadership) {
		t.Fatalf("follower intake error %v does not wrap ErrStaleLeadership", err)
	}
}

// Observe adopts strictly higher epochs only, demoting a primary that
// learns it has been superseded.
func TestObserveDemotesOnHigherEpoch(t *testing.T) {
	lead := NewLeadership(RolePrimary, 3)
	if lead.Observe(3) || lead.Observe(2) {
		t.Fatal("non-superseding epoch demoted the primary")
	}
	if !lead.IsPrimary() {
		t.Fatal("primary lost leadership without a higher epoch")
	}
	if !lead.Observe(4) {
		t.Fatal("higher epoch did not demote")
	}
	if lead.IsPrimary() || lead.Epoch() != 4 {
		t.Fatalf("after demotion: primary=%v epoch=%d", lead.IsPrimary(), lead.Epoch())
	}
	// Observing the same epoch again reports no further demotion.
	if lead.Observe(4) {
		t.Fatal("repeat observation demoted twice")
	}
}

// Fence rejects non-superseding epochs, so a deposed primary cannot
// fence the node that replaced it.
func TestFenceRequiresSupersedingEpoch(t *testing.T) {
	lead := NewLeadership(RolePrimary, 5)
	for _, e := range []uint64{0, 4, 5} {
		if err := lead.Fence(e); !errors.Is(err, ErrStaleLeadership) {
			t.Fatalf("fence at epoch %d: %v, want ErrStaleLeadership", e, err)
		}
	}
	if !lead.IsPrimary() {
		t.Fatal("failed fences demoted the primary")
	}
	if err := lead.Fence(6); err != nil {
		t.Fatal(err)
	}
	if lead.IsPrimary() || lead.Epoch() != 6 {
		t.Fatalf("after fence: primary=%v epoch=%d", lead.IsPrimary(), lead.Epoch())
	}
}

func TestPromoteBumpsEpoch(t *testing.T) {
	lead := NewLeadership(RoleFollower, 7)
	epoch, err := lead.Promote()
	if err != nil || epoch != 8 {
		t.Fatalf("promote: epoch=%d err=%v, want 8", epoch, err)
	}
	if !lead.IsPrimary() {
		t.Fatal("promotion did not take leadership")
	}
	if _, err := lead.Promote(); err == nil {
		t.Fatal("double promotion accepted")
	}
}

// Wire records carry the WAL checksum; Verify must catch any bit flip in
// payload or sequence.
func TestRecordVerify(t *testing.T) {
	rec := FromWAL(wal.Record{Seq: 9, Payload: []byte("op")})
	if err := rec.Verify(); err != nil {
		t.Fatal(err)
	}
	tampered := rec
	tampered.Payload = []byte("oq")
	if err := tampered.Verify(); err == nil {
		t.Fatal("payload tampering passed verification")
	}
	tampered = rec
	tampered.Seq = 10
	if err := tampered.Verify(); err == nil {
		t.Fatal("sequence tampering passed verification")
	}
}
