// Command vspgateway runs the sharded-intake routing tier: an HTTP front
// end that spreads reservation traffic across independent horizon shards
// (each a vspserve primary, optionally backed by a warm standby) while
// presenting the single-server surface — POST /v1/reservations routes to
// one shard by the configured placement policy, POST /v1/advance
// broadcasts to all shards, and GET /v1/plan merges the per-shard
// committed schedules into one plan.
//
// When a shard is declared with a standby and its primary stops
// answering (or answers with the stale-leadership 409 after a fence),
// the gateway promotes the standby itself and re-issues the request;
// accepted reservations survive the failover.
//
// Usage:
//
//	vspgateway -addr :8070 \
//	    -shard s0=http://localhost:8080,http://localhost:8081 \
//	    -shard s1=http://localhost:8090 \
//	    -policy least-loaded -poll-interval 2s
//
// Region-aware placement needs the same topology the shards serve:
//
//	vspgateway -addr :8070 -topo topo.json -policy locality \
//	    -shard s0=http://localhost:8080 -shard s1=http://localhost:8090
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/vodsim/vsp/internal/cli"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
)

const drainTimeout = 10 * time.Second

// parseShard decodes one -shard value: "id=primaryURL[,standbyURL]".
func parseShard(v string) (gateway.ShardConfig, error) {
	id, urls, ok := strings.Cut(v, "=")
	if !ok || id == "" {
		return gateway.ShardConfig{}, fmt.Errorf("shard %q: want id=primaryURL[,standbyURL]", v)
	}
	primary, standby, _ := strings.Cut(urls, ",")
	if primary == "" {
		return gateway.ShardConfig{}, fmt.Errorf("shard %q: empty primary URL", v)
	}
	if strings.Contains(standby, ",") {
		return gateway.ShardConfig{}, fmt.Errorf("shard %q: at most one standby per shard", v)
	}
	return gateway.ShardConfig{ID: id, Primary: primary, Standby: standby}, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8070", "listen address")
		policyName  = flag.String("policy", "round-robin", "placement policy: round-robin, least-loaded, locality, or hash")
		topoPath    = flag.String("topo", "", "topology JSON; required by -policy locality, optional otherwise")
		pollEvery   = flag.Duration("poll-interval", 2*time.Second, "period of the background shard stats poll feeding least-loaded placement (0 disables)")
		autoAdvance = flag.Bool("auto-advance", true, "close a shard's epoch in the background when its intake trigger fires")
		advanceLagH = flag.Float64("advance-lag-hours", 1, "hold auto-advance targets this many hours behind the newest acked arrival, so stragglers never land inside the frozen window")
		idleTimeout = flag.Duration("idle-timeout", 120*time.Second, "keep-alive connection idle timeout")

		breakerOn    = flag.Bool("breaker", true, "eject gray-failing shards with per-shard circuit breakers")
		breakerOpen  = flag.Duration("breaker-open-for", gateway.DefaultBreakerOpenFor, "cool-off before an ejected shard is probed again")
		breakerSlow  = flag.Duration("breaker-slow-call", 0, "count shard calls slower than this as failures (gray-failure ejection; 0 = off)")
		shardTimeout = flag.Duration("shard-timeout", 0, "deadline for each shard intake call (0 = the client's own deadline only)")
	)
	var shards []gateway.ShardConfig
	flag.Func("shard", "shard spec id=primaryURL[,standbyURL] (repeatable, at least one)", func(v string) error {
		sc, err := parseShard(v)
		if err != nil {
			return err
		}
		shards = append(shards, sc)
		return nil
	})
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "vspgateway: at least one -shard is required")
		os.Exit(1)
	}
	policy, err := gateway.ParsePlacement(*policyName)
	if err != nil {
		log.Fatalf("vspgateway: %v", err)
	}
	var topo *topology.Topology
	if *topoPath != "" {
		if topo, err = cli.LoadTopology(*topoPath); err != nil {
			log.Fatalf("vspgateway: %v", err)
		}
	} else if *policyName == "locality" {
		log.Fatal("vspgateway: -policy locality needs -topo to map users onto regions")
	}

	gw, err := gateway.New(gateway.Config{
		Shards:       shards,
		Policy:       policy,
		Topo:         topo,
		PollInterval: *pollEvery,
		AutoAdvance:  *autoAdvance,
		AdvanceLag:   simtime.Duration(*advanceLagH * float64(simtime.Hour)),
		ShardTimeout: *shardTimeout,
		Breaker: gateway.BreakerConfig{
			Disabled: !*breakerOn,
			OpenFor:  *breakerOpen,
			SlowCall: *breakerSlow,
		},
	})
	if err != nil {
		log.Fatalf("vspgateway: %v", err)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      gw,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 120 * time.Second,
		IdleTimeout:  *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	for _, sc := range shards {
		standby := "no standby"
		if sc.Standby != "" {
			standby = "standby " + sc.Standby
		}
		log.Printf("vspgateway: shard %s -> %s (%s)", sc.ID, sc.Primary, standby)
	}
	log.Printf("vspgateway: routing %d shard(s) by %s; listening on %s", len(shards), policy.Name(), *addr)

	select {
	case err := <-errc:
		log.Fatalf("vspgateway: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		log.Printf("vspgateway: shutting down, draining for up to %v", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("vspgateway: drain incomplete: %v", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("vspgateway: %v", err)
		}
		gw.Close()
		log.Print("vspgateway: stopped")
	}
}
