// Quickstart: build the paper's Fig. 2 scenario by hand — a warehouse, two
// intermediate storages, three users requesting the same movie at 1:00,
// 2:30 and 4:00 pm — schedule it, and compare against serving everyone
// directly from the warehouse.
package main

import (
	"fmt"
	"log"

	vsp "github.com/vodsim/vsp"
)

func main() {
	// Topology: VW — IS1 — IS2, one user in neighborhood 1, two in
	// neighborhood 2.
	b := vsp.NewTopology()
	vw := b.Warehouse("VW")
	is1 := b.Storage("IS1", vsp.GB(10))
	is2 := b.Storage("IS2", vsp.GB(10))
	b.Connect(vw, is1)
	b.Connect(is1, is2)
	b.AttachUsers(is1, 1)
	b.AttachUsers(is2, 2)
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Catalog: one 90-minute, 2.5 GB title streaming at 6 Mbps.
	catalog, err := vsp.UniformCatalog(1, vsp.GB(2.5), 90*vsp.Minute, vsp.Mbps(6))
	if err != nil {
		log.Fatal(err)
	}

	// Rates: $2/GB·hour for cache space, $200/GB per network hop.
	sys, err := vsp.NewSystem(topo, catalog, vsp.PerGBHour(2), vsp.PerGB(200))
	if err != nil {
		log.Fatal(err)
	}

	// The reservation batch: users 0, 1, 2 watch title 0 at 1:00, 2:30
	// and 4:00 pm (times measured from 1:00 pm).
	reqs := vsp.RequestSet{
		{User: 0, Video: 0, Start: 0},
		{User: 1, Video: 0, Start: vsp.Time(90 * vsp.Minute)},
		{User: 2, Video: 0, Start: vsp.Time(180 * vsp.Minute)},
	}

	out, err := sys.Schedule(reqs, vsp.SchedulerConfig{Metric: vsp.SpacePerCost})
	if err != nil {
		log.Fatal(err)
	}
	direct, err := sys.ScheduleDirect(reqs)
	if err != nil {
		log.Fatal(err)
	}

	storage, network := sys.CostSplit(out.Schedule)
	fmt.Printf("two-phase schedule: %v (storage %v + network %v)\n", out.FinalCost, storage, network)
	fmt.Printf("direct-only:        %v\n", direct.FinalCost)
	fmt.Printf("savings:            %.1f%%\n",
		100*float64(direct.FinalCost-out.FinalCost)/float64(direct.FinalCost))

	fmt.Println("\ncached copies:")
	for _, fs := range out.Schedule.Files {
		for _, c := range fs.Residencies {
			fmt.Printf("  title %d at %s: loaded %v, last read %v, serves %d request(s)\n",
				c.Video, topo.Node(c.Loc).Name, c.Load, c.LastService, len(c.Services))
		}
	}

	// Execute the schedule on the event simulator as a sanity check.
	rep := sys.Simulate(out.Schedule)
	fmt.Printf("\nsimulated: %d streams, %d cache loads, %d violations, cost %v\n",
		rep.Streams, rep.CacheLoads, len(rep.Violations), rep.TotalCost())
}
