package main

import (
	"math"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/vodsim/vsp/internal/horizon
cpu: Example CPU
BenchmarkHorizonAdvance-8             36          31018870 ns/op        14074702 B/op     135689 allocs/op
BenchmarkFullResolve-8                 1        3638931633 ns/op       1604029008 B/op  15832805 allocs/op
PASS
ok      github.com/vodsim/vsp/internal/horizon  5.812s
pkg: github.com/vodsim/vsp/internal/scheduler
BenchmarkSchedule-8                    3         400123456 ns/op
BenchmarkSchedulePhase1                5         100000000 ns/op
BenchmarkSchedulePhase1-4             18          28000000 ns/op
PASS
ok      github.com/vodsim/vsp/internal/scheduler        2.101s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	adv := rep.Benchmarks[0]
	if adv.Name != "BenchmarkHorizonAdvance" || adv.Iterations != 36 || adv.CPU != 8 {
		t.Fatalf("first benchmark: %+v", adv)
	}
	if adv.NsPerOp != 31018870 || adv.BytesPerOp != 14074702 || adv.AllocsPerOp != 135689 {
		t.Fatalf("metrics: %+v", adv)
	}
	// BenchmarkSchedule ran without -benchmem: alloc fields stay zero.
	sched := rep.Benchmarks[2]
	if sched.Name != "BenchmarkSchedule" || sched.BytesPerOp != 0 || sched.AllocsPerOp != 0 {
		t.Fatalf("schedule benchmark: %+v", sched)
	}
	// A suffix-free line (GOMAXPROCS=1 run) parses with CPU 0; the -cpu 4
	// run of the same benchmark keeps the same name with CPU 4.
	p1 := rep.Benchmarks[3]
	if p1.Name != "BenchmarkSchedulePhase1" || p1.CPU != 0 {
		t.Fatalf("phase-1 sequential benchmark: %+v", p1)
	}
	if got := rep.Benchmarks[4]; got.Name != "BenchmarkSchedulePhase1" || got.CPU != 4 {
		t.Fatalf("phase-1 parallel benchmark: %+v", got)
	}
	want := 3638931633.0 / 31018870.0
	if math.Abs(rep.HorizonSpeedup-want) > 1e-9 {
		t.Fatalf("speedup = %v, want %v", rep.HorizonSpeedup, want)
	}
	if wantP1 := 100000000.0 / 28000000.0; math.Abs(rep.Phase1ParallelSpeedup-wantP1) > 1e-9 {
		t.Fatalf("phase-1 speedup = %v, want %v", rep.Phase1ParallelSpeedup, wantP1)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Fatalf("environment fields missing: %+v", rep)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok  pkg 0.1s\n")); err == nil {
		t.Fatal("input without benchmark lines must fail")
	}
}

func TestParseLineMalformedCount(t *testing.T) {
	if _, _, err := parseLine("BenchmarkX-8  notanint  12 ns/op"); err == nil {
		t.Fatal("malformed iteration count must fail")
	}
}
