//go:build chaossoak

package gateway_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/vodsim/vsp/internal/audit"
	"github.com/vodsim/vsp/internal/chaos"
	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/gateway"
	"github.com/vodsim/vsp/internal/loadgen"
	"github.com/vodsim/vsp/internal/media"
	"github.com/vodsim/vsp/internal/retryhttp"
	"github.com/vodsim/vsp/internal/server"
	"github.com/vodsim/vsp/internal/simtime"
	"github.com/vodsim/vsp/internal/topology"
	"github.com/vodsim/vsp/internal/workload"
)

// The chaos soak: a pattern-generated trace replayed through a 3-shard
// gateway while a randomized (but seed-deterministic) chaos schedule
// tears at the gateway→shard links — gray latency, hard partitions,
// flapping, 5xx bursts, torn plan reads. The driver retries every submit
// until it is acked, which is safe because the chaos transport never
// injects an ambiguous write failure (an injected fault means the shard
// never saw the request). Afterwards the run must satisfy the paradigm's
// invariants exactly:
//
//   - every acked reservation appears in exactly one shard's committed
//     plan, and nowhere twice (no lost or duplicated accepts);
//   - every shard's plan passes the audit bundle for its own subset,
//     and the merged plan passes schedule.Validate for the full set;
//   - no breaker is wedged open once the faults clear;
//   - no late arrival (409) was ever produced — the low-watermark
//     advance keeps the commit horizon behind every in-flight start;
//   - no submit attempt overran its deadline beyond a grace bound.
//
// Build-tagged chaossoak; CI runs the -short slice (one seed).
func TestChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { soak(t, seed) })
	}
}

type soakKey struct {
	u topology.UserID
	v media.VideoID
	s simtime.Time
}

func soak(t *testing.T, seed int64) {
	rig := testRig(t)
	trace := soakTrace(t, rig, seed, 240)

	var shards []gateway.ShardConfig
	var shardURLs, hosts []string
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, rig, server.Options{ShardID: fmt.Sprintf("s%d", i)})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
		shardURLs = append(shardURLs, url)
		hosts = append(hosts, strings.TrimPrefix(url, "http://"))
	}

	const chaosFor = 3 * time.Second
	inj := chaos.New(seed, chaos.RandomRules(seed, hosts, chaosFor)...)
	_, base := startGateway(t, gateway.Config{
		Shards: shards,
		Retry: retryhttp.Options{
			Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
			MaxAttempts: 2,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    10 * time.Millisecond,
			MaxElapsed:  800 * time.Millisecond,
		},
		ShardTimeout: time.Second,
		Breaker: gateway.BreakerConfig{
			Window:      2 * time.Second,
			Buckets:     8,
			MinSamples:  4,
			FailureRate: 0.5,
			SlowCall:    300 * time.Millisecond,
			OpenFor:     250 * time.Millisecond,
		},
	})

	// Phase A replays 90% of the trace while chaos is live; phase B
	// replays the rest after the faults (and the breaker cool-offs) have
	// cleared, so every tripped breaker gets its half-open probe from
	// real traffic and must close.
	split := len(trace) * 9 / 10
	const (
		attemptBudget = 2 * time.Second
		grace         = time.Second
	)
	var late, blown atomic.Int64
	// pace spreads the replay across the chaos schedule: an unpaced
	// loopback replay finishes in milliseconds and would slip between the
	// fault windows entirely.
	drive := func(reqs workload.Set, pace time.Duration) {
		t.Helper()
		feed := make(chan workload.Request)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for req := range feed {
					deadline := time.Now().Add(30 * time.Second)
					for {
						ctx, cancel := context.WithTimeout(context.Background(), attemptBudget)
						at := req.Start
						var ack gateway.ReservationResponse
						t0 := time.Now()
						err := retryhttp.PostJSON(ctx, retryhttp.Options{MaxAttempts: 1},
							base+"/v1/reservations",
							server.ReservationRequest{User: req.User, Video: req.Video, Start: req.Start, At: &at}, &ack)
						cancel()
						if time.Since(t0) > attemptBudget+grace {
							blown.Add(1)
						}
						if err == nil && ack.Accepted {
							break
						}
						var se *retryhttp.StatusError
						if errors.As(err, &se) && se.Code == http.StatusConflict {
							late.Add(1)
							return // a 409 is an invariant violation; no point retrying
						}
						if time.Now().After(deadline) {
							t.Errorf("submit (user %d, video %d, %v) never acked: %v", req.User, req.Video, req.Start, err)
							return
						}
						time.Sleep(5 * time.Millisecond)
					}
				}
			}()
		}
		for _, r := range reqs {
			feed <- r
			if pace > 0 {
				time.Sleep(pace)
			}
		}
		close(feed)
		wg.Wait()
	}

	drive(trace[:split], chaosFor/time.Duration(len(trace)))

	// Low-watermark advance at the phase boundary, under chaos: the
	// target sits a full hour behind the earliest start still to come, so
	// nothing in phase B can arrive behind the horizon. Partial broadcast
	// failures are expected here and tolerated.
	if target := trace[split].Start.Add(-simtime.Hour); target > 0 {
		_ = retryhttp.PostJSON(context.Background(), retryhttp.Options{MaxAttempts: 1},
			base+"/v1/advance", server.AdvanceRequest{To: target}, nil)
	}

	// Let every chaos window and every breaker cool-off expire.
	if rem := chaosFor - inj.Elapsed(); rem > 0 {
		time.Sleep(rem)
	}
	time.Sleep(300 * time.Millisecond)

	drive(trace[split:], 0)

	if n := late.Load(); n != 0 {
		t.Fatalf("%d late (409) arrivals; the low-watermark advance must prevent all of them", n)
	}
	if n := blown.Load(); n != 0 {
		t.Fatalf("%d submit attempts overran their %v budget by more than %v", n, attemptBudget, grace)
	}
	if t.Failed() {
		t.FailNow() // un-acked submits: the plan checks below would be noise
	}

	// Final advance past every start must eventually succeed on all
	// shards — the faults are gone.
	end := trace[len(trace)-1].Start
	for _, r := range trace {
		if r.Start > end {
			end = r.Start
		}
	}
	finalDeadline := time.Now().Add(10 * time.Second)
	for {
		var adv gateway.AdvanceResponse
		err := retryhttp.PostJSON(context.Background(), fastRetry,
			base+"/v1/advance", server.AdvanceRequest{To: end.Add(simtime.Hour)}, &adv)
		if err == nil && len(adv.Failed) == 0 && len(adv.Shards) == 3 {
			break
		}
		if time.Now().After(finalDeadline) {
			t.Fatalf("final advance never clean: err=%v failed=%+v", err, adv.Failed)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Breakers must not be wedged: phase B traffic probed and closed
	// every tripped breaker.
	st := gatewayStats(t, base)
	for _, row := range st.Shards {
		if row.Breaker == nil {
			t.Fatalf("shard %s reports no breaker", row.ID)
		}
		if row.Breaker.State != "closed" {
			t.Fatalf("shard %s breaker wedged %q after faults cleared: %+v", row.ID, row.Breaker.State, row.Breaker)
		}
	}
	if st.HealthyShards != 3 {
		t.Fatalf("healthy_shards %d, want 3", st.HealthyShards)
	}

	// Exactly-once: collect every shard's committed deliveries and check
	// the acked set is partitioned — each reservation in exactly one
	// shard's plan, none duplicated, none lost. Each shard's plan must
	// also pass the audit bundle against exactly the subset it committed
	// (shards schedule independently, so capacity is a per-shard claim;
	// the merged plan gets the structural validation below).
	byKey := make(map[soakKey]workload.Request, len(trace))
	for _, r := range trace {
		byKey[soakKey{r.User, r.Video, r.Start}] = r
	}
	counts := make(map[soakKey]int)
	for i, url := range shardURLs {
		var plan server.PlanResponse
		if err := retryhttp.GetJSON(context.Background(), fastRetry, url+"/v1/plan", &plan); err != nil {
			t.Fatalf("shard %d plan: %v", i, err)
		}
		if plan.Pending != 0 {
			t.Fatalf("shard %d still has %d pending after the final advance", i, plan.Pending)
		}
		var subset workload.Set
		for _, fs := range plan.Schedule.Files {
			for _, d := range fs.Deliveries {
				k := soakKey{d.User, d.Video, d.Start}
				counts[k]++
				if req, ok := byKey[k]; ok {
					subset = append(subset, req)
				}
			}
		}
		if err := plan.Schedule.Validate(rig.Topo, rig.Catalog, subset); err != nil {
			t.Fatalf("shard %d plan invalid: %v", i, err)
		}
		if rep := audit.Run(rig.Model, plan.Schedule, subset); !rep.OK() {
			t.Fatalf("audit found %d defect(s) in shard %d's plan: %+v", len(rep.Findings), i, rep.Findings)
		}
	}
	for _, req := range trace {
		k := soakKey{req.User, req.Video, req.Start}
		if c := counts[k]; c != 1 {
			t.Fatalf("acked reservation (user %d, video %d, %v) committed %d times across shards, want exactly 1",
				req.User, req.Video, req.Start, c)
		}
	}
	committed := 0
	for _, c := range counts {
		committed += c
	}
	if committed != len(trace) {
		t.Fatalf("shards committed %d deliveries for %d acked reservations", committed, len(trace))
	}

	// The merged plan must hold up to full structural validation against
	// exactly the acked request set. (The capacity/cost audit ran per
	// shard above: shards schedule independently against their own slice
	// of the stream, so the union may legitimately overlap on storage.)
	var merged gateway.PlanResponse
	if err := retryhttp.GetJSON(context.Background(), fastRetry, base+"/v1/plan", &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Pending != 0 {
		t.Fatalf("merged plan still pending %d", merged.Pending)
	}
	if err := merged.Schedule.Validate(rig.Topo, rig.Catalog, trace); err != nil {
		t.Fatalf("merged plan invalid after chaos run: %v", err)
	}

	// The schedule must actually have bitten, or the soak proved nothing.
	if s := inj.Stats(); s.Dropped+s.Errored+s.Delayed == 0 {
		t.Fatalf("chaos schedule never fired: %+v", s)
	}
	t.Logf("seed %d: %d reservations, chaos %+v, sheds %d", seed, len(trace), inj.Stats(), st.GatewayShed)
}

// soakTrace generates the seed's trace: a diurnal pattern deduplicated
// by (user, video, start) — the exactly-once accounting needs distinct
// keys — and sorted chronologically so the low-watermark advance works.
func soakTrace(t *testing.T, rig *experiment.Rig, seed int64, n int) workload.Set {
	t.Helper()
	set, err := workload.GeneratePattern(rig.Topo, rig.Catalog, workload.Pattern{
		Base:     workload.Config{Seed: seed},
		Requests: n,
		Span:     12 * simtime.Hour,
		Diurnal:  workload.Diurnal{Strength: 0.4, Peak: 6 * simtime.Hour, Period: 12 * simtime.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[soakKey]bool)
	out := set[:0]
	for _, r := range set {
		k := soakKey{r.User, r.Video, r.Start}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	workload.SortChronological(out)
	return out
}

// The gray-failure benchmark behind the breaker work: one shard answers
// 2s late (alive, useless), and the run is measured twice through
// loadgen — breakers off and on. With breakers disabled every third
// request eats the 2s; with the slow-call breaker plus a shard deadline
// the sick shard is ejected after a handful of samples and p99 collapses.
// The acceptance bar is 5×; the assertion keeps a margin for CI noise.
// Set CHAOS_BENCH_OUT to merge both measurements into a BENCH json file.
func TestGrayFailureBreakerBenefit(t *testing.T) {
	if testing.Short() {
		t.Skip("gray-failure bench replays 2s-latency traffic; skipped in -short")
	}
	rig := testRig(t)
	pattern := workload.Pattern{
		Base:     workload.Config{Seed: 11},
		Requests: 600,
		Span:     12 * simtime.Hour,
	}

	off := grayRun(t, rig, pattern, false)
	on := grayRun(t, rig, pattern, true)
	t.Logf("breakers off: p99 %v avail %.3f | breakers on: p99 %v avail %.3f",
		off.Submit.P99, off.Availability, on.Submit.P99, on.Availability)

	if on.Submit.P99 <= 0 {
		t.Fatalf("hardened run has no latency data: %+v", on.Submit)
	}
	ratio := float64(off.Submit.P99) / float64(on.Submit.P99)
	if ratio < 3 {
		t.Fatalf("breakers bought only %.1fx on p99 (off %v, on %v), want >= 3x (target 5x)",
			ratio, off.Submit.P99, on.Submit.P99)
	}
	// Ejection cost is bounded by the in-flight window: every worker that
	// routed to the sick shard before the first 300ms outcome landed eats
	// one 502, so at most ~Concurrency requests fail, ever.
	if failBudget := 1.0 - float64(2*16)/600.0; on.Availability < failBudget {
		t.Fatalf("hardened availability %.3f, want >= %.3f (ejection must cost at most the in-flight window)",
			on.Availability, failBudget)
	}

	if out := os.Getenv("CHAOS_BENCH_OUT"); out != "" {
		for _, r := range []*loadgen.Result{off, on} {
			if err := mergeBenchEntry(out, r); err != nil {
				t.Fatalf("recording %q: %v", r.Name, err)
			}
		}
		t.Logf("recorded both runs in %s", out)
	}
}

// grayRun stands up a fresh 3-shard gateway whose middle shard is 2s
// slow on the upstream link and replays the pattern through loadgen.
func grayRun(t *testing.T, rig *experiment.Rig, pattern workload.Pattern, hardened bool) *loadgen.Result {
	t.Helper()
	var shards []gateway.ShardConfig
	var hosts []string
	for i := 0; i < 3; i++ {
		url, _, _ := startShard(t, rig, server.Options{ShardID: fmt.Sprintf("s%d", i)})
		shards = append(shards, gateway.ShardConfig{ID: fmt.Sprintf("s%d", i), Primary: url})
		hosts = append(hosts, strings.TrimPrefix(url, "http://"))
	}
	inj := chaos.New(7, chaos.Rule{
		Host:  hosts[1],
		Fault: chaos.Fault{LatencyMin: 2 * time.Second, LatencyMax: 2 * time.Second},
	})
	cfg := gateway.Config{
		Shards: shards,
		Retry: retryhttp.Options{
			Client:      &http.Client{Transport: &chaos.Transport{Injector: inj}},
			MaxAttempts: 1,
		},
		Breaker: gateway.BreakerConfig{Disabled: true},
	}
	name := "gray-failure breakers off"
	if hardened {
		name = "gray-failure breakers on"
		cfg.ShardTimeout = 300 * time.Millisecond
		cfg.Breaker = gateway.BreakerConfig{
			Window:      2 * time.Second,
			Buckets:     8,
			MinSamples:  3,
			FailureRate: 0.5,
			SlowCall:    250 * time.Millisecond,
			OpenFor:     10 * time.Second, // outlive the run: no mid-run re-probe
		}
	}
	_, base := startGateway(t, cfg)

	pr := workload.NewPatternReader(rig.Topo, rig.Catalog, pattern, 0)
	defer pr.Close()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Target:         base,
		Concurrency:    16,
		Timeout:        30 * time.Second,
		DisableAdvance: true,
	}, pr)
	if err != nil {
		t.Fatal(err)
	}
	res.Name = name
	if res.Submitted != pattern.Requests {
		t.Fatalf("%s: submitted %d of %d", name, res.Submitted, pattern.Requests)
	}
	return res
}

// mergeBenchEntry merges one named loadgen result into a BENCH json
// array file, replacing an entry with the same name and wrapping a
// legacy single-object file as the first element.
func mergeBenchEntry(path string, res *loadgen.Result) error {
	nb, err := json.Marshal(res)
	if err != nil {
		return err
	}
	var entries []json.RawMessage
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	if trimmed := strings.TrimSpace(string(existing)); trimmed != "" {
		if strings.HasPrefix(trimmed, "[") {
			if err := json.Unmarshal([]byte(trimmed), &entries); err != nil {
				return err
			}
		} else {
			entries = []json.RawMessage{json.RawMessage(trimmed)}
		}
	}
	replaced := false
	for i, e := range entries {
		var peek struct {
			Name string `json:"name"`
		}
		if json.Unmarshal(e, &peek) == nil && peek.Name == res.Name {
			entries[i] = nb
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, nb)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
