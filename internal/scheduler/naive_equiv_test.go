package scheduler_test

import (
	"fmt"
	"testing"

	"github.com/vodsim/vsp/internal/experiment"
	"github.com/vodsim/vsp/internal/occupancy"
	"github.com/vodsim/vsp/internal/scheduler"
)

// TestScheduleNaiveIndexedByteIdentical is the rewrite-safety property for
// the occupancy hot path: the full two-phase scheduler output — schedule,
// costs and victim sequence — must serialize to the same bytes whether the
// ledger answers queries through the incremental event index or through
// the reference per-entry re-scan, at every worker count. A single ulp of
// drift between the paths would show up here as a diverging greedy
// decision or victim order.
func TestScheduleNaiveIndexedByteIdentical(t *testing.T) {
	defer occupancy.SetNaiveForTesting(false)
	for _, seed := range []int64{3, 77} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r, err := experiment.Build(experiment.Params{
				Storages:        6,
				UsersPerStorage: 4,
				RequestsPerUser: 3,
				Titles:          20,
				CapacityGB:      2, // tight: forces overflows, so phase 2 runs
				Seed:            seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			run := func(naive bool, workers int) string {
				occupancy.SetNaiveForTesting(naive)
				defer occupancy.SetNaiveForTesting(false)
				out, err := scheduler.Run(r.Model, r.Requests, scheduler.Config{Workers: workers})
				if err != nil {
					t.Fatalf("naive=%v workers=%d: %v", naive, workers, err)
				}
				return fingerprint(t, out)
			}
			want := run(true, 1)
			if want == "" {
				t.Fatal("empty fingerprint")
			}
			for _, workers := range []int{0, 1, 4, 8} {
				if got := run(false, workers); got != want {
					t.Errorf("indexed Workers=%d differs from naive sequential output", workers)
				}
			}
		})
	}
}
